import pytest

from repro.minidb import Database
from repro.oltp import populate_oltp
from repro.oltp.schema import customer_key, district_key, stock_key
from repro.oltp.transactions import new_order, order_status, payment, run_mix


@pytest.fixture(scope="module")
def db():
    db = Database("oltp-test")
    populate_oltp(db, warehouses=2, customers_per_district=20, n_items=50)
    return db


def test_populate_counts(db):
    assert db.table("item").n_rows == 50
    assert db.table("warehouse").n_rows == 2
    assert db.table("district").n_rows == 20
    assert db.table("tpcc_customer").n_rows == 2 * 10 * 20
    assert db.table("stock").n_rows == 50 * 2
    assert db.table("oorder").n_rows == 0


def test_new_order_advances_district_counter(db):
    d_key = district_key(1, 1)
    before = db.table("district").index_on("d_key").search(d_key)[0]
    next_before = db.table("district").fetch(before)[4]
    o_id = new_order(db, 1, 1, 5, [(1, 3), (2, 1)])
    assert o_id == next_before
    after = db.table("district").fetch(before)[4]
    assert after == next_before + 1


def test_new_order_creates_lines_and_updates_stock(db):
    stock_tid = db.table("stock").index_on("s_key").search(stock_key(3, 1))[0]
    qty_before = db.table("stock").fetch(stock_tid)[3]
    o_id = new_order(db, 1, 2, 7, [(3, 4)])
    qty_after = db.table("stock").fetch(stock_tid)[3]
    assert qty_after in (qty_before - 4, qty_before - 4 + 91)
    lines = db.table("order_line").index_on("ol_o_key").search(
        district_key(1, 2) * 1_000_000 + o_id
    )
    assert len(lines) == 1


def test_payment_updates_balances(db):
    c_key = customer_key(2, 3, 11)
    tid = db.table("tpcc_customer").index_on("c_key").search(c_key)[0]
    before = db.table("tpcc_customer").fetch(tid)
    new_balance = payment(db, 2, 3, 11, 50.0)
    after = db.table("tpcc_customer").fetch(tid)
    assert new_balance == pytest.approx(before[5] - 50.0)
    assert after[6] == pytest.approx(before[6] + 50.0)
    assert after[7] == before[7] + 1
    assert db.table("history").n_rows >= 1


def test_payment_updates_warehouse_ytd(db):
    w_tid = db.table("warehouse").index_on("w_id").search(1)[0]
    ytd_before = db.table("warehouse").fetch(w_tid)[3]
    payment(db, 1, 1, 1, 25.0)
    assert db.table("warehouse").fetch(w_tid)[3] == pytest.approx(ytd_before + 25.0)


def test_order_status_returns_latest(db):
    new_order(db, 1, 4, 9, [(5, 2)])
    o2 = new_order(db, 1, 4, 9, [(6, 1), (7, 2)])
    balance, lines = order_status(db, 1, 4, 9)
    assert len(lines) == 2  # the second (latest) order has two lines
    assert isinstance(balance, float)


def test_order_status_no_orders(db):
    balance, lines = order_status(db, 2, 9, 19)
    assert lines == []


def test_run_mix_counts():
    db = Database("mix")
    populate_oltp(db, warehouses=1, customers_per_district=10, n_items=30)
    executed = run_mix(db, 60, warehouses=1, customers_per_district=10, n_items=30)
    assert sum(executed.values()) == 60
    assert executed["new_order"] > 0 and executed["payment"] > 0
    assert db.table("oorder").n_rows == executed["new_order"]


def test_hash_index_kind_works():
    db = Database("hashmix")
    populate_oltp(db, warehouses=1, customers_per_district=10, n_items=30)
    o_id = new_order(db, 1, 1, 2, [(4, 2)], index_kind="hash")
    assert o_id == 1
    payment(db, 1, 1, 2, 10.0, index_kind="hash")


def test_update_rejects_indexed_column_change(db):
    table = db.table("tpcc_customer")
    tid = table.index_on("c_key").search(customer_key(1, 1, 2))[0]
    row = table.fetch(tid)
    with pytest.raises(ValueError):
        table.update(tid, (row[0] + 1,) + row[1:])


def test_populate_validates_warehouses():
    with pytest.raises(ValueError):
        populate_oltp(Database("bad"), warehouses=0)
