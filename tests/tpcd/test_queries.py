"""Query-correctness tests: every TPC-D query runs on both database
variants, returns the same result under btree and hash access paths, and
selected queries are cross-checked against straightforward in-Python
reference computations over the generated data."""

import math

import pytest

from repro.tpcd.dates import date, year_of
from repro.tpcd.dbgen import generate_table
from repro.tpcd.queries import QUERIES, run_query
from repro.tpcd.workload import build_database

SCALE = 0.002


@pytest.fixture(scope="module")
def db():
    return build_database(SCALE)


@pytest.fixture(scope="module")
def raw():
    return {name: list(generate_table(name, SCALE)) for name in
            ("region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem")}


@pytest.mark.parametrize("qid", sorted(QUERIES))
def test_btree_and_hash_agree(db, qid):
    b = run_query(db, qid, "btree")
    h = run_query(db, qid, "hash")
    assert b == h


def test_q1_reference(db, raw):
    cutoff = date(1998, 12, 1) - 90
    groups = {}
    for li in raw["lineitem"]:
        if li[10] <= cutoff:
            g = groups.setdefault((li[8], li[9]), [0.0, 0])
            g[0] += li[4]  # quantity
            g[1] += 1
    rows = run_query(db, 1, "btree")
    assert len(rows) == len(groups)
    for row in rows:
        key = (row[0], row[1])
        assert row[2] == pytest.approx(groups[key][0])  # sum_qty
        assert row[9] == groups[key][1]  # count_order


def test_q3_reference(db, raw):
    cut = date(1995, 3, 15)
    building = {c[0] for c in raw["customer"] if c[6] == "BUILDING"}
    orders = {o[0]: o for o in raw["orders"] if o[1] in building and o[4] < cut}
    revenue = {}
    for li in raw["lineitem"]:
        if li[0] in orders and li[10] > cut:
            revenue[li[0]] = revenue.get(li[0], 0.0) + li[5] * (1 - li[6])
    expect = sorted(revenue.items(), key=lambda kv: (-kv[1], orders[kv[0]][4]))[:10]
    rows = run_query(db, 3, "btree")
    assert len(rows) == min(10, len(expect))
    for row, (okey, rev) in zip(rows, expect):
        assert row[0] == okey
        assert row[3] == pytest.approx(rev)


def test_q6_reference(db, raw):
    lo, hi = date(1994, 1, 1), date(1995, 1, 1)
    expect = sum(
        li[5] * li[6]
        for li in raw["lineitem"]
        if lo <= li[10] < hi and 0.05 <= li[6] <= 0.07 and li[4] < 24
    )
    rows = run_query(db, 6, "btree")
    assert rows[0][0] == pytest.approx(expect)


def test_q4_reference(db, raw):
    lo, hi = date(1993, 7, 1), date(1993, 10, 1)
    with_late = {li[0] for li in raw["lineitem"] if li[11] < li[12]}
    counts = {}
    for o in raw["orders"]:
        if lo <= o[4] < hi and o[0] in with_late:
            counts[o[5]] = counts.get(o[5], 0) + 1
    rows = run_query(db, 4, "btree")
    assert {r[0]: r[1] for r in rows} == counts


def test_q12_reference(db, raw):
    lo, hi = date(1994, 1, 1), date(1995, 1, 1)
    orders = {o[0]: o[5] for o in raw["orders"]}
    expect = {}
    for li in raw["lineitem"]:
        if (
            li[14] in ("MAIL", "SHIP")
            and li[11] < li[12]
            and li[10] < li[11]
            and lo <= li[12] < hi
        ):
            prio = orders[li[0]]
            high = prio in ("1-URGENT", "2-HIGH")
            cell = expect.setdefault(li[14], [0, 0])
            cell[0 if high else 1] += 1
    rows = run_query(db, 12, "btree")
    assert {r[0]: (r[1], r[2]) for r in rows} == {k: tuple(v) for k, v in expect.items()}


def test_q14_reference(db, raw):
    lo, hi = date(1995, 9, 1), date(1995, 10, 1)
    ptype = {p[0]: p[4] for p in raw["part"]}
    promo = total = 0.0
    for li in raw["lineitem"]:
        if lo <= li[10] < hi:
            rev = li[5] * (1 - li[6])
            total += rev
            if ptype[li[1]].startswith("PROMO"):
                promo += rev
    rows = run_query(db, 14, "btree")
    assert rows[0][0] == pytest.approx(100.0 * promo / total)


def test_q15_reference(db, raw):
    lo, hi = date(1996, 1, 1), date(1996, 4, 1)
    revenue = {}
    for li in raw["lineitem"]:
        if lo <= li[10] < hi:
            revenue[li[2]] = revenue.get(li[2], 0.0) + li[5] * (1 - li[6])
    best = max(revenue.values())
    winners = sorted(k for k, v in revenue.items() if v >= best)
    rows = run_query(db, 15, "btree")
    assert [r[0] for r in rows] == winners
    assert rows[0][4] == pytest.approx(best)


def test_q17_reference(db, raw):
    parts = {p[0] for p in raw["part"] if p[3] == "Brand#23" and p[6] == "MED BOX"}
    qty = {}
    for li in raw["lineitem"]:
        if li[1] in parts:
            qty.setdefault(li[1], []).append(li)
    expect = 0.0
    for pkey, lis in qty.items():
        avg = sum(li[4] for li in lis) / len(lis)
        expect += sum(li[5] for li in lis if li[4] < 0.2 * avg)
    rows = run_query(db, 17, "btree")
    assert rows[0][0] == pytest.approx(expect / 7.0)


def test_q7_years_within_range(db):
    for row in run_query(db, 7, "btree"):
        assert row[2] in (1995, 1996)
        assert {row[0], row[1]} == {"FRANCE", "GERMANY"}


def test_q11_threshold_respected(db, raw):
    rows = run_query(db, 11, "btree")
    values = [r[1] for r in rows]
    assert values == sorted(values, reverse=True)


def test_q16_counts_distinct_suppliers(db):
    rows = run_query(db, 16, "btree")
    for row in rows:
        assert row[3] >= 1
        assert row[0] != "Brand#45"
