import pytest

from repro.tpcd.dates import DAYS_PER_YEAR, date, year_of


def test_epoch():
    assert date(1992, 1, 1) == 0


def test_month_boundaries():
    assert date(1992, 2, 1) == 31
    assert date(1992, 12, 31) == 364
    assert date(1993, 1, 1) == 365


def test_year_of_is_exact():
    for y in range(1992, 1999):
        assert year_of(date(y, 1, 1)) == y
        assert year_of(date(y, 12, 31)) == y


def test_interval_arithmetic():
    # Q1's date '1998-12-01' - 90 days stays in 1998
    assert year_of(date(1998, 12, 1) - 90) == 1998


def test_validation():
    with pytest.raises(ValueError):
        date(1995, 13, 1)
    with pytest.raises(ValueError):
        date(1995, 2, 29)  # no leap years in the synthetic calendar
    with pytest.raises(ValueError):
        date(1995, 0, 1)


def test_days_per_year():
    assert date(1993, 6, 1) - date(1992, 6, 1) == DAYS_PER_YEAR
