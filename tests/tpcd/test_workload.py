import numpy as np
import pytest

from repro.tpcd import TEST_QUERIES, TRAINING_QUERIES, Workload, build_database, capture_trace
from repro.tpcd.schema import TPCD_TABLES


def test_workload_definitions_match_paper():
    assert TRAINING_QUERIES == (3, 4, 5, 6, 9)
    assert TEST_QUERIES == (2, 3, 4, 6, 11, 12, 13, 14, 15, 17)


def test_build_database_indexes_both_kinds():
    db = build_database(0.0005)
    for name, spec in TPCD_TABLES.items():
        table = db.table(name)
        for kind in ("btree", "hash"):
            for column in spec.unique_keys + spec.foreign_keys:
                assert (column, kind) in table.indexes, (name, column, kind)


def test_capture_trace_runs_per_query():
    db = build_database(0.0005)
    model = db.kernel_model()
    trace = capture_trace(db, model, (6, 14), ("btree",))
    assert sum(1 for _ in trace.segments()) == 2
    assert trace.n_events > 0


def test_capture_trace_both_kinds_doubles_runs():
    db = build_database(0.0005)
    model = db.kernel_model()
    trace = capture_trace(db, model, (6,), ("btree", "hash"))
    assert sum(1 for _ in trace.segments()) == 2


def test_workload_build_bundles_everything():
    w = Workload.build(0.0005, test_queries=(6, 14))
    assert w.program.n_blocks > 0
    assert w.training_trace.n_events > 0
    assert w.test_trace.n_events > 0
    assert w.program is w.model.program
