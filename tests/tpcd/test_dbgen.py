import numpy as np
import pytest

from repro.minidb import Database
from repro.tpcd.dbgen import NATIONS, REGIONS, SEGMENTS, generate_table, populate
from repro.tpcd.schema import TPCD_TABLES, table_cardinality

SCALE = 0.002


def rows_of(name, scale=SCALE, seed=7):
    return list(generate_table(name, scale, seed))


def test_fixed_tables():
    regions = rows_of("region")
    nations = rows_of("nation")
    assert len(regions) == 5
    assert len(nations) == 25
    assert [r[1] for r in regions] == list(REGIONS)
    # every nation's region key is valid
    assert all(0 <= n[2] < 5 for n in nations)


def test_scaled_cardinalities():
    for name in ("supplier", "customer", "part", "orders"):
        assert len(rows_of(name)) == TPCD_TABLES[name].rows_at(SCALE)
    # partsupp: 4 suppliers per part
    assert len(rows_of("partsupp")) == 4 * TPCD_TABLES["part"].rows_at(SCALE)


def test_lineitem_per_order():
    orders = rows_of("orders")
    lines = rows_of("lineitem")
    per_order = {}
    for li in lines:
        per_order.setdefault(li[0], []).append(li)
    assert set(per_order) == {o[0] for o in orders}
    counts = [len(v) for v in per_order.values()]
    assert all(1 <= c <= 7 for c in counts)
    # expected ~4 lines/order
    assert 2.5 < np.mean(counts) < 5.5


def test_shipdate_correlates_with_orderdate():
    odates = {o[0]: o[4] for o in rows_of("orders")}
    for li in rows_of("lineitem")[:500]:
        odate = odates[li[0]]
        assert odate < li[10] <= odate + 121  # l_shipdate
        assert li[12] > li[10]  # receipt after ship


def test_determinism_and_seed_sensitivity():
    a = rows_of("customer")
    b = rows_of("customer")
    c = rows_of("customer", seed=8)
    assert a == b
    assert a != c


def test_rows_validate_against_schema():
    for name, spec in TPCD_TABLES.items():
        from repro.minidb.tuples import Schema

        schema = Schema(spec.columns)
        for row in rows_of(name)[:50]:
            schema.validate_row(row)


def test_value_domains():
    custs = rows_of("customer")
    assert {c[6] for c in custs} <= set(SEGMENTS)
    parts = rows_of("part")
    assert all(1 <= p[5] <= 50 for p in parts)
    assert all(p[3].startswith("Brand#") for p in parts)
    lines = rows_of("lineitem")
    assert all(li[8] in "RAN" for li in lines[:200])
    assert all(0.0 <= li[6] <= 0.10 for li in lines[:200])


def test_foreign_keys_resolve():
    n_cust = TPCD_TABLES["customer"].rows_at(SCALE)
    n_supp = TPCD_TABLES["supplier"].rows_at(SCALE)
    n_part = TPCD_TABLES["part"].rows_at(SCALE)
    for o in rows_of("orders")[:200]:
        assert 1 <= o[1] <= n_cust
    for li in rows_of("lineitem")[:200]:
        assert 1 <= li[1] <= n_part
        assert 1 <= li[2] <= n_supp


def test_populate_creates_everything():
    db = Database("t")
    counts = populate(db, 0.001)
    assert set(counts) == set(TPCD_TABLES)
    assert counts["lineitem"] > counts["orders"]
    assert db.table("lineitem").n_rows == counts["lineitem"]


def test_table_cardinality_helper():
    assert table_cardinality("region", 1.0) == 5
    assert table_cardinality("orders", 0.01) == 15000
    assert table_cardinality("lineitem", 0.01) == 60000


def test_unknown_table():
    with pytest.raises(ValueError):
        list(generate_table("ghost", 1.0))
