"""Property-based checks on the data generator across scales and seeds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tpcd.dates import date
from repro.tpcd.dbgen import generate_table
from repro.tpcd.schema import TPCD_TABLES


@given(
    scale=st.sampled_from([0.0005, 0.001, 0.002]),
    seed=st.integers(min_value=0, max_value=5),
    table=st.sampled_from(["supplier", "customer", "part", "orders"]),
)
@settings(max_examples=20, deadline=None)
def test_scaled_tables_deterministic_and_keyed(scale, seed, table):
    rows_a = list(generate_table(table, scale, seed))
    rows_b = list(generate_table(table, scale, seed))
    assert rows_a == rows_b
    # primary keys are 1..n without gaps
    keys = [r[0] for r in rows_a]
    assert keys == list(range(1, len(keys) + 1))
    assert len(rows_a) == TPCD_TABLES[table].rows_at(scale)


@given(seed=st.integers(min_value=0, max_value=5))
@settings(max_examples=6, deadline=None)
def test_lineitem_dates_ordered(seed):
    for li in list(generate_table("lineitem", 0.0005, seed))[:300]:
        shipdate, commitdate, receiptdate = li[10], li[11], li[12]
        assert date(1992, 1, 1) <= shipdate
        assert receiptdate > shipdate
        assert commitdate >= date(1992, 1, 1)


@given(
    scale_small=st.just(0.0005),
    scale_large=st.just(0.001),
    seed=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=4, deadline=None)
def test_larger_scale_strictly_more_rows(scale_small, scale_large, seed):
    small = sum(1 for _ in generate_table("orders", scale_small, seed))
    large = sum(1 for _ in generate_table("orders", scale_large, seed))
    assert large > small
