"""Parallel suite engine and persistent-cache behavior.

The parallel path must be bit-identical to serial, and warm disk-cache
lookups must skip recomputation (and, for ``suite_for``, the workload
build itself).
"""

import dataclasses
import gc

import pytest

from repro.experiments import harness, suite
from repro.experiments.config import PRIMARY_ROWS
from repro.experiments.harness import get_workload, training_profile
from repro.experiments.suite import compute_suite, get_suite, suite_for
from repro.tpcd.workload import WorkloadSettings

SETTINGS = WorkloadSettings(scale=0.0005)
GRID = PRIMARY_ROWS[:2]


@pytest.fixture(scope="module")
def workload():
    return get_workload(SETTINGS)


def _flatten(s):
    out = {"n": s.n_instructions}
    for row, cells in s.cells.items():
        for name, m in cells.items():
            out[(row, name)] = dataclasses.astuple(m)
    out["assoc"] = s.assoc_miss
    out["victim"] = s.victim_miss
    out["tc"] = (s.tc_ideal, s.tc_hit_rate, tuple(sorted(s.tc_ipc.items())))
    out["tc_ops"] = tuple(sorted(s.tc_ops_ipc.items()))
    out["tc_ops_ideal"] = tuple(sorted(s.tc_ops_ideal.items()))
    return out


def test_parallel_is_bit_identical_to_serial(workload):
    # resume=False so the parallel run actually computes rather than
    # loading the serial run's task checkpoints
    serial = compute_suite(workload, GRID, jobs=1, resume=False)
    parallel = compute_suite(workload, GRID, jobs=3, resume=False)
    assert _flatten(serial) == _flatten(parallel)


def test_get_suite_warm_disk_hit_skips_recompute(workload, monkeypatch):
    first = get_suite(workload, GRID)
    key = suite._suite_key(SETTINGS, GRID, GRID)
    assert suite._SUITES.pop(key) is first
    monkeypatch.setattr(
        suite, "compute_suite", lambda *a, **k: pytest.fail("recomputed despite disk hit")
    )
    warm = get_suite(workload, GRID)
    assert _flatten(warm) == _flatten(first)


def test_suite_for_warm_hit_skips_workload_build(workload, monkeypatch):
    get_suite(workload, GRID)  # populate memory + disk
    key = suite._suite_key(SETTINGS, GRID, GRID)
    suite._SUITES.pop(key)
    monkeypatch.setattr(
        suite, "get_workload", lambda *a, **k: pytest.fail("built workload despite disk hit")
    )
    monkeypatch.setattr(
        suite, "compute_suite", lambda *a, **k: pytest.fail("recomputed despite disk hit")
    )
    warm = suite_for(SETTINGS, GRID)
    assert warm.cells[GRID[0]]["ops"].miss_rate == pytest.approx(
        get_suite(workload, GRID).cells[GRID[0]]["ops"].miss_rate
    )


def test_get_workload_warm_disk_hit_skips_build(monkeypatch):
    get_workload(SETTINGS)  # ensure built and persisted
    saved = harness._WORKLOADS.pop(SETTINGS)
    try:
        monkeypatch.setattr(
            WorkloadSettings, "build", lambda self: pytest.fail("rebuilt despite disk hit")
        )
        loaded = get_workload(SETTINGS)
        assert loaded.settings == SETTINGS
        assert loaded.test_trace.n_events == saved.test_trace.n_events
    finally:
        harness._WORKLOADS[SETTINGS] = saved


def test_profiles_keyed_by_settings_not_id(workload):
    assert training_profile(workload) is training_profile(workload)
    assert SETTINGS in harness._PROFILES


def test_adhoc_workload_profile_keyed_by_instance(workload):
    before = len(harness._PROFILES_ADHOC)
    adhoc = dataclasses.replace(workload, settings=None)
    profile = training_profile(adhoc)
    assert training_profile(adhoc) is profile
    assert adhoc in harness._PROFILES_ADHOC
    del adhoc
    gc.collect()
    # the weak key released the entry: no stale id-keyed aliasing possible
    assert len(harness._PROFILES_ADHOC) == before
