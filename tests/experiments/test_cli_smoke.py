"""CLI smoke tests: every ``repro.experiments.*`` entry point parses
``--help`` and completes a tiny in-process run.

The runs all share one workload (scale 0.0002, default seeds) through the
session-scoped artifact cache, so only the first test pays the build; the
tests are ordered cheapest-first within the file to make that explicit.
"""

import pytest

from repro import experiments
from repro.experiments import (
    ablations,
    figure2,
    figure3,
    headline,
    inlining,
    oltp,
    prediction,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments import __main__ as full_run

SCALE_ARGS = ["--scale", "0.0002"]

ALL_CLIS = [
    full_run,
    ablations,
    figure2,
    figure3,
    headline,
    inlining,
    oltp,
    prediction,
    table1,
    table2,
    table3,
    table4,
]


@pytest.mark.parametrize("module", ALL_CLIS, ids=lambda m: m.__name__.split(".")[-1])
def test_help_exits_zero(module, capsys):
    with pytest.raises(SystemExit) as exit_info:
        module.main(["--help"])
    assert exit_info.value.code == 0
    assert "usage" in capsys.readouterr().out.lower()


def test_figure3_cli(capsys):
    figure3.main([])
    assert "main trace" in capsys.readouterr().out
    figure3.main(["--exec-threshold", "300"])
    assert "discarded" in capsys.readouterr().out


def test_table1_cli(capsys):
    table1.main(SCALE_ARGS)
    assert "Table 1" in capsys.readouterr().out


def test_table2_cli(capsys):
    table2.main(SCALE_ARGS)
    assert "Table 2" in capsys.readouterr().out


def test_figure2_cli(capsys):
    figure2.main(SCALE_ARGS)
    assert "Figure 2" in capsys.readouterr().out


def test_prediction_cli(capsys):
    prediction.main(SCALE_ARGS)
    assert "accuracy" in capsys.readouterr().out


def test_inlining_cli(capsys):
    inlining.main(SCALE_ARGS + ["--max-clones", "4"])
    assert "nlining" in capsys.readouterr().out


def test_table3_cli_quick(capsys):
    table3.main(SCALE_ARGS + ["--quick"])
    assert "Table 3" in capsys.readouterr().out


def test_table4_cli_quick(capsys):
    table4.main(SCALE_ARGS + ["--quick"])
    assert "Table 4" in capsys.readouterr().out


def test_ablations_cli(capsys):
    ablations.main(SCALE_ARGS)
    assert "Ablation" in capsys.readouterr().out


def test_oltp_cli(capsys):
    oltp.main(["--dss-scale", "0.0002", "--warehouses", "1", "--transactions", "25"])
    assert "OLTP" in capsys.readouterr().out


def test_headline_cli(capsys):
    headline.main(SCALE_ARGS)
    assert "headline" in capsys.readouterr().out


def test_full_run_cli(capsys):
    full_run.main(SCALE_ARGS + ["--skip-extensions"])
    out = capsys.readouterr().out
    for marker in ("Table 1", "Table 2", "Table 3", "Table 4", "Figure 2", "Figure 3"):
        assert marker in out, f"full run output missing {marker}"


def test_package_main_is_the_full_run():
    assert experiments.__name__ == "repro.experiments"
    assert callable(full_run.main)
