"""Cross-run determinism: two fresh processes with the same seed produce
byte-identical trace stores and bit-identical suite numbers.

Same-process determinism is covered in ``tests/profiling``; this test
catches the cross-process failure modes those cannot — hash-seed or dict-
order dependence, accidental use of wall-clock or PID-derived state, and
nondeterministic store serialization.
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

# Builds the workload from scratch (the REPRO_CACHE_DIR is empty), hashes
# both stored traces, runs one suite row and dumps every number.
_SCRIPT = """
import hashlib, json
from dataclasses import asdict
from repro.experiments.harness import WorkloadSettings, get_workload
from repro.experiments.suite import get_suite

settings = WorkloadSettings(scale=0.0002)
workload = get_workload(settings)
for trace in (workload.training_trace, workload.test_trace):
    digest = hashlib.sha256(trace.path.read_bytes()).hexdigest()
    print(trace.path.name, digest)

suite = get_suite(workload, ((8, 2),))
row = {name: asdict(cell) for name, cell in suite.cells[(8, 2)].items()}
print(json.dumps(row, sort_keys=True))
print(json.dumps({
    "n_instructions": suite.n_instructions,
    "assoc_miss": suite.assoc_miss,
    "victim_miss": suite.victim_miss,
    "tc_ipc": suite.tc_ipc,
}, sort_keys=True, default=str))
"""


def _run_fresh(tmp_path: Path, tag: str) -> str:
    cache_dir = tmp_path / f"cache-{tag}"
    cache_dir.mkdir()
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    # different hash seeds per process: determinism must not lean on them
    env["PYTHONHASHSEED"] = {"a": "1", "b": "31337"}[tag]
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_two_fresh_processes_agree_byte_for_byte(tmp_path):
    a = _run_fresh(tmp_path, "a")
    b = _run_fresh(tmp_path, "b")
    assert a == b
    # sanity: the output actually contains the hashes and the suite row
    lines = a.strip().splitlines()
    assert len(lines) == 4
    assert all(len(line.split()[-1]) == 64 for line in lines[:2])  # sha256 hex
    assert '"ipc"' in lines[2]
