"""Fault-tolerant suite engine: checkpoint/resume, retry, timeout, manifest.

Each test points ``REPRO_CACHE_DIR`` at its own directory so checkpoint
state never leaks between tests (the default cache re-reads the env on
every access); workload and profile stay warm in the in-memory layers.

Failures are injected at the ``_unit_for`` seam — the engine builds each
task's fused streams through it, so a raising unit stands in for any
per-task failure while the rest of the group proceeds.
"""

import dataclasses
import io
import json
import os
import time

import pytest

from repro.cache import default_cache
from repro.experiments import suite as suite_mod
from repro.experiments.config import PRIMARY_ROWS
from repro.experiments.harness import get_workload
from repro.experiments.suite import (
    SuiteTaskError,
    SuiteTimeoutError,
    compute_suite,
)
from repro.simulators import sharded as sharded_mod
from repro.tpcd.workload import WorkloadSettings
from repro.util.progress import Progress

SETTINGS = WorkloadSettings(scale=0.0005)
GRID = PRIMARY_ROWS[:2]
FAIL_TASK = ("row", GRID[1])

REAL_UNIT = suite_mod._unit_for
REAL_FAMILY = sharded_mod._family_shard


@pytest.fixture(scope="module")
def workload():
    return get_workload(SETTINGS)


@pytest.fixture(autouse=True)
def _private_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield


def _flatten(s):
    out = {"n": s.n_instructions}
    for row, cells in s.cells.items():
        for name, m in cells.items():
            out[(row, name)] = dataclasses.astuple(m)
    out["assoc"] = s.assoc_miss
    out["victim"] = s.victim_miss
    out["tc"] = (s.tc_ideal, s.tc_hit_rate, tuple(sorted(s.tc_ipc.items())))
    out["tc_ops"] = tuple(sorted(s.tc_ops_ipc.items()))
    return out


def _checkpoint_files():
    root = default_cache().root
    return list(root.rglob("suite-task/*.pkl"))


def test_failing_task_names_task_and_preserves_checkpoints(workload, monkeypatch):
    def boom(wl, task, grid, cache_sizes, layout_memo=None):
        if task == FAIL_TASK:
            raise ValueError("injected deterministic failure")
        return REAL_UNIT(wl, task, grid, cache_sizes, layout_memo)

    monkeypatch.setattr(suite_mod, "_unit_for", boom)
    with pytest.raises(SuiteTaskError) as excinfo:
        compute_suite(workload, GRID, jobs=1)
    assert suite_mod._task_label(FAIL_TASK) in str(excinfo.value)
    assert excinfo.value.task == FAIL_TASK
    # the failed task is isolated to its unit: every other task of the
    # fused group completed and survived the crash
    n_tasks = len(suite_mod._suite_tasks(GRID, GRID))
    assert len(_checkpoint_files()) == n_tasks - 1


def test_resume_recomputes_only_missing_and_is_bit_identical(
    workload, tmp_path, monkeypatch
):
    def boom(wl, task, grid, cache_sizes, layout_memo=None):
        if task == FAIL_TASK:
            raise ValueError("injected deterministic failure")
        return REAL_UNIT(wl, task, grid, cache_sizes, layout_memo)

    monkeypatch.setattr(suite_mod, "_unit_for", boom)
    with pytest.raises(SuiteTaskError):
        compute_suite(workload, GRID, jobs=1)
    checkpointed = len(_checkpoint_files())
    assert 0 < checkpointed < len(suite_mod._suite_tasks(GRID, GRID))

    calls = []

    def counting(wl, task, grid, cache_sizes, layout_memo=None):
        calls.append(task)
        return REAL_UNIT(wl, task, grid, cache_sizes, layout_memo)

    monkeypatch.setattr(suite_mod, "_unit_for", counting)
    manifest = tmp_path / "resume.json"
    resumed = compute_suite(workload, GRID, jobs=1, manifest=manifest)
    resume_calls = list(calls)
    assert FAIL_TASK in resume_calls
    assert len(resume_calls) == len(suite_mod._suite_tasks(GRID, GRID)) - checkpointed

    fresh = compute_suite(workload, GRID, jobs=1, resume=False)
    assert _flatten(resumed) == _flatten(fresh)

    data = json.loads(manifest.read_text())
    assert data["status"] == "completed"
    assert data["settings"]["scale"] == SETTINGS.scale
    sources = [t["source"] for t in data["tasks"]]
    assert sources.count("checkpoint") == checkpointed
    assert sources.count("computed") == len(resume_calls)
    assert all(t["seconds"] >= 0 for t in data["tasks"])
    assert "cache" in data and data["cache"]["hits"] >= checkpointed


def test_parallel_failure_cancels_pending_and_resume_completes(workload, monkeypatch):
    def boom(wl, task, grid, cache_sizes, layout_memo=None):
        if task == FAIL_TASK:
            raise ValueError("injected parallel failure")
        return REAL_UNIT(wl, task, grid, cache_sizes, layout_memo)

    monkeypatch.setattr(suite_mod, "_unit_for", boom)
    with pytest.raises(SuiteTaskError) as excinfo:
        compute_suite(workload, GRID, jobs=2)
    assert suite_mod._task_label(FAIL_TASK) in str(excinfo.value)
    checkpointed = {p.name for p in _checkpoint_files()}

    monkeypatch.setattr(suite_mod, "_unit_for", REAL_UNIT)
    resumed = compute_suite(workload, GRID, jobs=2)
    fresh = compute_suite(workload, GRID, jobs=1, resume=False)
    assert _flatten(resumed) == _flatten(fresh)
    # checkpoints written before the failure were reused, not recomputed
    assert checkpointed <= {p.name for p in _checkpoint_files()}


@pytest.mark.parametrize("jobs", [1, 2])
def test_transient_failure_retries_then_succeeds(workload, tmp_path, monkeypatch, jobs):
    marker = tmp_path / "failed-once"  # cross-process: workers are forks

    def flaky(wl, task, grid, cache_sizes, layout_memo=None):
        if task == FAIL_TASK and not marker.exists():
            marker.write_text("x")
            raise OSError("injected transient failure")
        return REAL_UNIT(wl, task, grid, cache_sizes, layout_memo)

    monkeypatch.setattr(suite_mod, "_unit_for", flaky)
    manifest = tmp_path / "retry.json"
    result = compute_suite(workload, GRID, jobs=jobs, manifest=manifest)

    fresh = compute_suite(workload, GRID, jobs=1, resume=False)
    assert _flatten(result) == _flatten(fresh)
    data = json.loads(manifest.read_text())
    retries = [e for e in data["events"] if e["type"] == "retry"]
    assert len(retries) == 1
    assert retries[0]["task"] == suite_mod._task_label(FAIL_TASK)
    retried = next(t for t in data["tasks"] if t["label"] == suite_mod._task_label(FAIL_TASK))
    assert retried["attempts"] == 2


def test_deterministic_failure_is_not_retried(workload, tmp_path, monkeypatch):
    attempts = []

    def boom(wl, task, grid, cache_sizes, layout_memo=None):
        if task == FAIL_TASK:
            attempts.append(task)
            raise ValueError("deterministic: retrying would be futile")
        return REAL_UNIT(wl, task, grid, cache_sizes, layout_memo)

    monkeypatch.setattr(suite_mod, "_unit_for", boom)
    manifest = tmp_path / "fail.json"
    with pytest.raises(SuiteTaskError):
        compute_suite(workload, GRID, jobs=1, manifest=manifest)
    assert len(attempts) == 1
    data = json.loads(manifest.read_text())
    assert data["status"] == "failed"
    failed = [t for t in data["tasks"] if t["status"] == "failed"]
    assert len(failed) == 1 and "ValueError" in failed[0]["error"]


def test_hanging_parallel_task_raises_timeout_naming_it(workload, tmp_path, monkeypatch):
    hang_task = ("tc", "orig")

    def hanging(wl, task, grid, cache_sizes, layout_memo=None):
        if task == hang_task:
            time.sleep(8)  # bounded so the orphaned worker exits by session end
        return REAL_UNIT(wl, task, grid, cache_sizes, layout_memo)

    monkeypatch.setattr(suite_mod, "_unit_for", hanging)
    manifest = tmp_path / "stall.json"
    with pytest.raises(SuiteTimeoutError) as excinfo:
        compute_suite(workload, GRID, jobs=2, task_timeout=2.5, manifest=manifest)
    assert suite_mod._task_label(hang_task) in str(excinfo.value)
    data = json.loads(manifest.read_text())
    assert data["status"] == "failed"
    assert any(e["type"] == "stall" for e in data["events"])


def test_dead_worker_pool_degrades_to_serial(workload, tmp_path, monkeypatch):
    parent = os.getpid()
    kill_task = ("row", GRID[0])

    def killer(wl, task, grid, cache_sizes, layout_memo=None):
        if task == kill_task and os.getpid() != parent:
            os._exit(3)  # hard worker death: no exception crosses the pipe
        return REAL_UNIT(wl, task, grid, cache_sizes, layout_memo)

    monkeypatch.setattr(suite_mod, "_unit_for", killer)
    manifest = tmp_path / "pool.json"
    result = compute_suite(workload, GRID, jobs=2, manifest=manifest)

    monkeypatch.setattr(suite_mod, "_unit_for", REAL_UNIT)
    fresh = compute_suite(workload, GRID, jobs=1, resume=False)
    assert _flatten(result) == _flatten(fresh)
    data = json.loads(manifest.read_text())
    assert data["status"] == "completed"
    assert any(e["type"] == "pool-broken" for e in data["events"])


def test_no_resume_recomputes_everything(workload, monkeypatch):
    compute_suite(workload, GRID, jobs=1)  # populate checkpoints
    calls = []

    def counting(wl, task, grid, cache_sizes, layout_memo=None):
        calls.append(task)
        return REAL_UNIT(wl, task, grid, cache_sizes, layout_memo)

    monkeypatch.setattr(suite_mod, "_unit_for", counting)
    compute_suite(workload, GRID, jobs=1, resume=False)
    assert len(calls) == len(suite_mod._suite_tasks(GRID, GRID))


def test_empty_grid_is_an_empty_run(workload, tmp_path):
    manifest = tmp_path / "empty.json"
    result = compute_suite(workload, (), jobs=2, progress=True, manifest=manifest)
    assert result.n_instructions == 0
    assert result.cells == {}
    data = json.loads(manifest.read_text())
    assert data["status"] == "completed"
    assert data["n_tasks"] == 0 and data["tasks"] == []


# -- sharded execution: the shard job is the checkpoint/resume unit ------


def _shard_checkpoint_files():
    return list(default_cache().root.rglob("suite-shard/*.pkl"))


def test_sharded_suite_is_bit_identical_to_serial(workload, tmp_path):
    manifest = tmp_path / "sharded.json"
    sharded = compute_suite(workload, GRID, jobs=1, shards=4, manifest=manifest)
    fresh = compute_suite(workload, GRID, jobs=1, resume=False)
    assert _flatten(sharded) == _flatten(fresh)
    data = json.loads(manifest.read_text())
    assert data["status"] == "completed"
    plans = [e for e in data["events"] if e["type"] == "shard-plan"]
    assert len(plans) == 1
    shard_jobs = [e for e in data["events"] if e["type"] == "shard-job"]
    assert shard_jobs and all(e["source"] == "computed" for e in shard_jobs)
    assert len(_shard_checkpoint_files()) == len(shard_jobs)


def test_sharded_failure_resumes_recomputing_only_missing_shards(
    workload, tmp_path, monkeypatch
):
    def boom(trace, program, layouts, chunk_events, plan, specs, shard_idx):
        if shard_idx == plan.n_shards - 1:
            raise ValueError("injected mid-shard failure")
        return REAL_FAMILY(trace, program, layouts, chunk_events, plan, specs, shard_idx)

    monkeypatch.setattr(sharded_mod, "_family_shard", boom)
    with pytest.raises(SuiteTaskError) as excinfo:
        compute_suite(workload, GRID, jobs=1, shards=2)
    assert excinfo.value.task[0] == "shard"
    survived = len(_shard_checkpoint_files())
    assert survived > 0  # shard jobs finished before the crash are kept

    monkeypatch.setattr(sharded_mod, "_family_shard", REAL_FAMILY)
    manifest = tmp_path / "shard-resume.json"
    resumed = compute_suite(workload, GRID, jobs=1, shards=2, manifest=manifest)
    fresh = compute_suite(workload, GRID, jobs=1, resume=False)
    assert _flatten(resumed) == _flatten(fresh)
    data = json.loads(manifest.read_text())
    sources = [e["source"] for e in data["events"] if e["type"] == "shard-job"]
    assert sources.count("checkpoint") == survived
    assert sources.count("computed") == len(sources) - survived > 0


def test_sharded_transient_failure_retries_then_succeeds(
    workload, tmp_path, monkeypatch
):
    marker = tmp_path / "failed-once"  # cross-process: workers are forks

    def flaky(trace, program, layouts, chunk_events, plan, specs, shard_idx):
        if shard_idx == 0 and not marker.exists():
            marker.write_text("x")
            raise OSError("injected transient shard failure")
        return REAL_FAMILY(trace, program, layouts, chunk_events, plan, specs, shard_idx)

    monkeypatch.setattr(sharded_mod, "_family_shard", flaky)
    result = compute_suite(workload, GRID, jobs=1, shards=2, retries=2)
    assert marker.exists()

    monkeypatch.setattr(sharded_mod, "_family_shard", REAL_FAMILY)
    fresh = compute_suite(workload, GRID, jobs=1, resume=False)
    assert _flatten(result) == _flatten(fresh)


def test_sharded_dead_worker_pool_degrades_and_stays_identical(
    workload, tmp_path, monkeypatch
):
    parent = os.getpid()

    def killer(trace, program, layouts, chunk_events, plan, specs, shard_idx):
        if shard_idx == 0 and os.getpid() != parent:
            os._exit(3)  # hard worker death: no exception crosses the pipe
        return REAL_FAMILY(trace, program, layouts, chunk_events, plan, specs, shard_idx)

    monkeypatch.setattr(sharded_mod, "_family_shard", killer)
    manifest = tmp_path / "shard-pool.json"
    result = compute_suite(workload, GRID, jobs=2, shards=2, manifest=manifest)

    monkeypatch.setattr(sharded_mod, "_family_shard", REAL_FAMILY)
    fresh = compute_suite(workload, GRID, jobs=1, resume=False)
    assert _flatten(result) == _flatten(fresh)
    data = json.loads(manifest.read_text())
    assert data["status"] == "completed"
    assert any(e["type"] == "pool-broken" for e in data["events"])


# -- progress accounting under retries -----------------------------------


def test_retried_task_steps_progress_exactly_once(workload, tmp_path, monkeypatch):
    """A retried task must not be double-counted toward the total: the
    engine reports the retry via ``fail`` (which never advances the
    counter) and ``step``s only on eventual completion."""
    instances = []

    class Recording(Progress):
        def __init__(self, *args, **kwargs):
            kwargs["stream"] = io.StringIO()
            super().__init__(*args, **kwargs)
            instances.append(self)

    monkeypatch.setattr(suite_mod, "Progress", Recording)
    marker = tmp_path / "failed-once"

    def flaky(wl, task, grid, cache_sizes, layout_memo=None):
        if task == FAIL_TASK and not marker.exists():
            marker.write_text("x")
            raise OSError("injected transient failure")
        return REAL_UNIT(wl, task, grid, cache_sizes, layout_memo)

    monkeypatch.setattr(suite_mod, "_unit_for", flaky)
    compute_suite(workload, GRID, jobs=1, progress=True)
    (prog,) = instances
    n_tasks = len(suite_mod._suite_tasks(GRID, GRID))
    assert prog.total == n_tasks
    assert prog.count == n_tasks  # not n_tasks + 1: the retry never stepped
    assert prog.failures == 1
    # the visible stream agrees: no k/N line ever exceeds the total
    lines = prog.stream.getvalue().splitlines()
    counts = [
        int(line.split("] ")[-1].split("/")[0])
        for line in lines
        if f"/{n_tasks} " in line
    ]
    assert counts and max(counts) == n_tasks


def test_quick_run_checkpoints_seed_the_larger_grid(workload, monkeypatch):
    quick = GRID[:1]
    compute_suite(workload, quick, jobs=1)
    calls = []

    def counting(wl, task, grid, cache_sizes, layout_memo=None):
        calls.append(task)
        return REAL_UNIT(wl, task, grid, cache_sizes, layout_memo)

    monkeypatch.setattr(suite_mod, "_unit_for", counting)
    compute_suite(workload, GRID, jobs=1)
    # row/tc_ops checkpoints are grid-independent: the quick run's rows
    # are reused, only the new row and the per-cache-size bases recompute
    assert ("row", GRID[0]) not in calls
    assert ("tc_ops", GRID[0]) not in calls
    assert ("row", GRID[1]) in calls
