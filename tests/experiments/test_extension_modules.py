"""Smoke tests for the Section 8 extension experiment modules (tiny scale)."""

import pytest

from repro.experiments import inlining, oltp, prediction
from repro.experiments.harness import WorkloadSettings, get_workload
from repro.kernel import ColdCodeConfig
from repro.oltp.workload import OLTPWorkload

SCALE = 0.0005


@pytest.fixture(scope="module")
def workload():
    return get_workload(WorkloadSettings(scale=SCALE))


def test_prediction_module(workload):
    rows = prediction.compute(workload, max_events=200_000)
    names = [r[0] for r in rows]
    assert names == ["orig", "P&H", "Torr", "auto", "ops"]
    for _name, taken_pct, accuracy_pct in rows:
        assert 0.0 <= taken_pct <= 100.0
        assert 50.0 <= accuracy_pct <= 100.0
    assert "bimodal" in prediction.render(rows)


def test_inlining_module(workload):
    rows, n_clones = inlining.compute(workload, max_clones=6)
    assert len(rows) == 2
    base, cloned = rows
    assert n_clones <= 6
    assert cloned[1] >= base[1]  # static size cannot shrink
    assert "clones" in inlining.render((rows, n_clones))


def test_oltp_module():
    w = OLTPWorkload.build(
        dss_scale=SCALE,
        warehouses=1,
        n_transactions=40,
        cold=ColdCodeConfig(n_procedures=40),
    )
    rows = oltp.compute(w, cache_kb=16, cfa_kb=4)
    names = [r[0] for r in rows]
    assert names == ["orig", "dss-trained", "oltp-trained"]
    by = {r[0]: r for r in rows}
    assert by["oltp-trained"][2] >= by["orig"][2] * 0.9  # never much worse
    assert "OLTP" in oltp.render(rows)
