"""Smoke and contract tests for the experiment modules (tiny scale)."""

import pytest

from repro.experiments import figure2, figure3, headline, table1, table2, table3, table4
from repro.experiments.config import PRIMARY_ROWS
from repro.experiments.harness import WorkloadSettings, get_workload
from repro.experiments.suite import get_suite

SCALE = 0.0005
GRID = PRIMARY_ROWS[:2]  # (8,2) and (16,4): keep the suite quick


@pytest.fixture(scope="module")
def workload():
    return get_workload(WorkloadSettings(scale=SCALE))


@pytest.fixture(scope="module")
def suite(workload):
    return get_suite(workload, GRID)


def test_table1(workload):
    rows = table1.compute(workload)
    assert set(rows) == {"procedures", "basic blocks", "instructions"}
    for total, executed, pct in rows.values():
        assert 0 < executed < total
        assert pct == pytest.approx(100.0 * executed / total)
    assert "Table 1" in table1.render(rows)


def test_figure2(workload):
    data = figure2.compute(workload)
    fracs = [f for _n, f in data.curve_samples]
    assert fracs == sorted(fracs)  # cumulative curve is monotone
    assert 0 < data.blocks_for_90 <= data.blocks_for_99
    assert "Figure 2" in figure2.render(data)


def test_table2(workload):
    mix, determinism = table2.compute(workload)
    assert 0.0 < determinism <= 1.0
    assert "Table 2" in table2.render((mix, determinism))


def test_figure3_matches_paper():
    sequences, discarded = figure3.compute()
    assert sequences[0][0] == "A1" and sequences[0][-1] == "A8"
    assert "A5" in sequences[1]
    assert set(discarded) == {"A6", "B1", "C5"}
    assert "main trace" in figure3.render((sequences, discarded))


def test_suite_cells_complete(suite):
    for row in GRID:
        for name in ("orig", "P&H", "Torr", "auto", "ops"):
            cell = suite.cells[row][name]
            assert cell.miss_rate >= 0
            assert 0 < cell.ipc <= cell.ideal_ipc + 1e-9
    assert set(suite.assoc_miss) == {8, 16}
    assert suite.tc_hit_rate > 0


def test_table3_render(suite):
    text = table3.render(suite, GRID)
    assert "8/2" in text and "16/4" in text and "paper" in text


def test_table4_render(suite):
    text = table4.render(suite, GRID)
    assert "Ideal" in text and "TC+ops" in text


def test_headline(workload):
    rows = headline.compute(workload, GRID)
    assert "instructions between taken branches (orig)" in rows
    measured, paper = rows["instructions between taken branches (orig)"]
    assert measured > 1 and paper == 8.9
    assert "Section 8" in headline.render(rows)


def test_suite_cached(workload):
    a = get_suite(workload, GRID)
    b = get_suite(workload, GRID)
    assert a is b
