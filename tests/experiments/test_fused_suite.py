"""Fused suite engine vs the per-simulation reference path.

`_run_group` must produce, for every task on every layout x geometry
cell, exactly the payload `_task_payload` computes with one simulation
per task — float-for-float, since checkpoints from either path must be
interchangeable.
"""

import pytest

from repro.experiments import suite as suite_mod
from repro.experiments.config import PRIMARY_ROWS
from repro.experiments.harness import get_workload
from repro.tpcd.workload import WorkloadSettings

SETTINGS = WorkloadSettings(scale=0.0005)
GRID = PRIMARY_ROWS[:2]
CACHE_SIZES = sorted({c for c, _ in GRID})


@pytest.fixture(scope="module")
def workload():
    return get_workload(SETTINGS)


@pytest.fixture(scope="module")
def fused_payloads(workload):
    tasks = suite_mod._suite_tasks(GRID, GRID)
    payloads, errors = suite_mod._run_group(workload, tasks, GRID, CACHE_SIZES)
    assert not errors
    return payloads


@pytest.mark.parametrize(
    "task", suite_mod._suite_tasks(GRID, GRID), ids=suite_mod._task_label
)
def test_fused_payload_matches_reference(workload, fused_payloads, task):
    reference = suite_mod._task_payload(workload, task, GRID, CACHE_SIZES)
    assert fused_payloads[task] == reference


def test_unit_construction_failure_is_isolated(workload, monkeypatch):
    real = suite_mod._unit_for
    bad_task = ("row", GRID[1])

    def boom(wl, task, grid, cache_sizes, layout_memo=None):
        if task == bad_task:
            raise ValueError("injected unit failure")
        return real(wl, task, grid, cache_sizes, layout_memo)

    monkeypatch.setattr(suite_mod, "_unit_for", boom)
    tasks = suite_mod._suite_tasks(GRID, GRID)
    payloads, errors = suite_mod._run_group(workload, tasks, GRID, CACHE_SIZES)
    assert set(errors) == {bad_task}
    assert set(payloads) == set(tasks) - {bad_task}


def test_split_groups_partitions_in_order():
    tasks = list(range(7))
    groups = suite_mod._split_groups(tasks, 3)
    assert [t for g in groups for t in g] == tasks
    assert max(len(g) for g in groups) - min(len(g) for g in groups) <= 1
    assert suite_mod._split_groups(tasks, 100) == [[t] for t in tasks]
