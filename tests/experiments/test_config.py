"""Sanity checks on the transcribed paper constants and the harness."""

from repro.experiments.config import (
    CACHE_CFA_GRID,
    LAYOUT_COLUMNS,
    PAPER_TABLE1,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PRIMARY_ROWS,
)
from repro.experiments.harness import WorkloadSettings


def test_grid_matches_paper_rows():
    assert len(CACHE_CFA_GRID) == 13
    assert set(PRIMARY_ROWS) <= set(CACHE_CFA_GRID)
    for cache, cfa in CACHE_CFA_GRID:
        assert cache in (8, 16, 32, 64)
        assert 0 < cfa < cache


def test_paper_table3_covers_grid():
    assert set(PAPER_TABLE3) == set(CACHE_CFA_GRID)
    for row in PRIMARY_ROWS:
        for column in ("orig", "P&H", "2-way", "victim"):
            assert column in PAPER_TABLE3[row], (row, column)
    # miss rate decreases with cache size in the paper's data too
    origs = [PAPER_TABLE3[row]["orig"] for row in PRIMARY_ROWS]
    assert origs == sorted(origs, reverse=True)


def test_paper_table4_covers_grid_plus_ideal():
    assert set(PAPER_TABLE4) == set(CACHE_CFA_GRID) | {"Ideal"}
    assert PAPER_TABLE4["Ideal"]["ops"] == 10.7
    # paper headline: TC+ops reaches 12.1 at 64KB
    assert PAPER_TABLE4[(64, 16)]["TC+ops"] == 12.1


def test_paper_table1_percentages_consistent():
    for total, executed, pct in PAPER_TABLE1.values():
        assert abs(100.0 * executed / total - pct) < 0.1


def test_layout_columns_order():
    assert LAYOUT_COLUMNS == ("orig", "P&H", "Torr", "auto", "ops")


def test_workload_settings_hashable_cache_key():
    a = WorkloadSettings(scale=0.001)
    b = WorkloadSettings(scale=0.001)
    assert a == b and hash(a) == hash(b)
    assert WorkloadSettings(scale=0.002) != a
