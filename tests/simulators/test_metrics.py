import numpy as np
import pytest

from repro.cfg import BlockKind, Layout, ProgramBuilder
from repro.profiling import BlockTrace
from repro.simulators import (
    CacheConfig,
    fetch_bandwidth,
    ideal_fetch_bandwidth,
    instructions_between_taken_branches,
    miss_rate_percent,
    simulate_fetch,
)
from repro.simulators.fetch import FetchResult


@pytest.fixture
def result():
    b = ProgramBuilder()
    b.add_procedure("f", "m", sizes=[8, 8], kinds=[BlockKind.BRANCH, BlockKind.RETURN])
    p = b.build()
    layout = Layout.from_placements(p, {0: 0, 1: 4096}, name="apart")
    return simulate_fetch(BlockTrace([0, 1] * 100), p, layout)


def test_miss_rate_percent(result):
    config = CacheConfig(size_bytes=8 * 1024)
    rate = miss_rate_percent(result, config)
    # both lines stay cached after the first iteration: 4 cold misses
    assert rate == pytest.approx(100.0 * 4 / result.n_instructions)


def test_fetch_bandwidth_penalty(result):
    big = CacheConfig(size_bytes=64 * 1024)
    assert fetch_bandwidth(result, big) <= ideal_fetch_bandwidth(result)
    # a 1-set cache thrashes between the two lines: heavy penalty
    tiny = CacheConfig(size_bytes=32)
    assert fetch_bandwidth(result, tiny) < 0.5 * fetch_bandwidth(result, big)


def test_instructions_between_taken(result):
    # every 8-instruction block ends in a taken transfer
    assert instructions_between_taken_branches(result) == pytest.approx(8.0)


def test_empty_result_degenerates():
    empty = FetchResult(layout_name="x", n_instructions=0, n_fetches=0, n_taken=0, line_chunks=[])
    assert miss_rate_percent(empty, CacheConfig(size_bytes=1024)) == 0.0
    assert fetch_bandwidth(empty, CacheConfig(size_bytes=1024)) == 0.0
    assert ideal_fetch_bandwidth(empty) == 0.0
    assert instructions_between_taken_branches(empty) == float("inf")
