"""Equivalence properties for the vectorized simulator hot paths.

Each vectorized implementation has a scalar reference it must match
exactly: the lockstep orbit walk vs the plain ``p -> p + lengths[p]``
loop, and the batched/chunked cache models vs the stateful scalar models.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulators import CacheConfig, count_misses, simulate_victim_cache
from repro.simulators.fetch import (
    _ORBIT_SCALAR_CUTOFF_ROUNDS,
    _orbit_starts,
    _orbit_starts_scalar,
)


def _random_stream(rng, n):
    """Random (lengths, is_taken) satisfying the SEQ.3 orbit invariant:
    a fetch never extends past the next taken branch."""
    is_taken = rng.random(n) < 0.2
    idx = np.arange(n)
    cand = np.where(is_taken, idx, n - 1)
    next_taken = np.minimum.accumulate(cand[::-1])[::-1]
    limit = np.minimum(next_taken - idx + 1, 16)
    lengths = rng.integers(1, limit + 1)
    return lengths.astype(np.int64), is_taken


@given(st.integers(0, 2**32 - 1), st.integers(1, 400))
@settings(max_examples=60, deadline=None)
def test_orbit_matches_scalar_walk(seed, n):
    rng = np.random.default_rng(seed)
    lengths, is_taken = _random_stream(rng, n)
    vec = _orbit_starts(lengths, is_taken)
    ref = _orbit_starts_scalar(lengths)
    np.testing.assert_array_equal(vec, ref)


def test_orbit_scalar_cutoff_path():
    # one taken-branch-free segment much longer than the lockstep cutoff:
    # the stragglers must be finished by the scalar fallback, not dropped
    n = 50 * _ORBIT_SCALAR_CUTOFF_ROUNDS
    lengths = np.ones(n, dtype=np.int64)
    is_taken = np.zeros(n, dtype=bool)
    np.testing.assert_array_equal(_orbit_starts(lengths, is_taken), np.arange(n))


def test_orbit_edge_cases():
    empty = np.empty(0, dtype=np.int64)
    assert _orbit_starts(empty, np.empty(0, dtype=bool)).size == 0
    # stream ending on a taken branch leaves an empty trailing segment
    lengths = np.array([2, 1, 1], dtype=np.int64)
    is_taken = np.array([False, False, True])
    np.testing.assert_array_equal(
        _orbit_starts(lengths, is_taken), _orbit_starts_scalar(lengths)
    )


@given(
    st.lists(st.integers(0, 63), min_size=1, max_size=300),
    st.integers(2, 4),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_chunked_streams_match_whole_stream(lines, n_sets_log, seed):
    """Splitting the access stream into chunks must not change any count:
    the chunked models carry per-set state across chunk boundaries."""
    lines = np.asarray(lines, dtype=np.int64)
    n_sets = 1 << n_sets_log
    rng = np.random.default_rng(seed)
    cuts = np.sort(rng.integers(0, lines.size + 1, size=rng.integers(0, 6)))
    chunks = [c for c in np.split(lines, cuts)]
    configs = [
        CacheConfig(size_bytes=n_sets * 32),
        CacheConfig(size_bytes=2 * n_sets * 32, associativity=2),
        CacheConfig(size_bytes=n_sets * 32, victim_lines=4),
    ]
    for config in configs:
        assert count_misses(chunks, config) == count_misses(lines, config)


@given(st.lists(st.integers(0, 31), min_size=1, max_size=250), st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_batched_victim_matches_scalar_reference(lines, victim_lines):
    lines = np.asarray(lines, dtype=np.int64)
    config = CacheConfig(size_bytes=8 * 32, victim_lines=victim_lines)
    assert count_misses(lines, config) == simulate_victim_cache(lines, config)
