import numpy as np
import pytest

from repro.cfg import BlockKind, Layout, ProgramBuilder
from repro.profiling import BlockTrace
from repro.simulators import (
    CacheConfig,
    TraceCacheConfig,
    simulate_fetch,
    simulate_trace_cache,
)


def loop_program():
    """Two blocks, placed apart so the loop transition is a taken branch."""
    b = ProgramBuilder()
    b.add_procedure(
        "f", "executor", sizes=[4, 4], kinds=[BlockKind.BRANCH, BlockKind.BRANCH]
    )
    p = b.build()
    layout = Layout.from_placements(p, {0: 0, 1: 512}, name="apart")
    return p, layout


def test_repeated_trace_hits():
    p, layout = loop_program()
    trace = BlockTrace([0, 1] * 50)
    r = simulate_trace_cache(trace, p, layout)
    # first iteration misses fill the cache; later iterations hit
    assert r.n_hits > 0
    assert r.hit_rate > 0.5
    assert r.n_instructions == 400


def test_trace_cache_beats_sequential_on_taken_branches():
    p, layout = loop_program()
    trace = BlockTrace([0, 1] * 200)
    seq = simulate_fetch(trace, p, layout)
    tc = simulate_trace_cache(trace, p, layout)
    # SEQ.3 stops at each taken branch: 4 instructions per fetch. The trace
    # cache crosses them: 8+ per hit.
    assert tc.bandwidth(None) > seq.ideal_ipc


def test_outcome_mismatch_forces_miss():
    # block 0 alternates successor: 1 (taken to 512) vs 2 (sequential)
    b = ProgramBuilder()
    b.add_procedure(
        "f",
        "executor",
        sizes=[4, 4, 4],
        kinds=[BlockKind.BRANCH, BlockKind.BRANCH, BlockKind.BRANCH],
    )
    p = b.build()
    layout = Layout.from_placements(p, {0: 0, 1: 512, 2: 16}, name="alt")
    # alternating paths: the stored outcome mask keeps mismatching
    trace = BlockTrace([0, 1, 0, 2, 0, 1, 0, 2] * 20)
    r = simulate_trace_cache(trace, p, layout)
    assert r.hit_rate < 0.9  # alternation defeats a single direct-mapped entry


def test_miss_path_lines_feed_icache():
    p, layout = loop_program()
    trace = BlockTrace([0, 1] * 10)
    r = simulate_trace_cache(trace, p, layout)
    lines = np.concatenate(r.miss_line_chunks)
    assert lines.size == 2 * r.n_misses
    small = CacheConfig(size_bytes=1024)
    assert r.bandwidth(small) <= r.bandwidth(None)


def test_deterministic():
    p, layout = loop_program()
    trace = BlockTrace([0, 1] * 30)
    a = simulate_trace_cache(trace, p, layout)
    b = simulate_trace_cache(trace, p, layout)
    assert a.n_hits == b.n_hits and a.n_cycles_base == b.n_cycles_base


def test_chunking_preserves_counts():
    p, layout = loop_program()
    trace = BlockTrace([0, 1] * 500)
    whole = simulate_trace_cache(trace, p, layout, chunk_events=10**9)
    chunked = simulate_trace_cache(trace, p, layout, chunk_events=97)
    assert whole.n_instructions == chunked.n_instructions
    assert chunked.hit_rate == pytest.approx(whole.hit_rate, abs=0.05)


def test_config_defaults():
    c = TraceCacheConfig()
    assert c.n_entries == 256
    assert c.trace_instructions == 16
