import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulators import CacheConfig, count_misses, simulate_victim_cache


def reference_misses(lines, n_sets, assoc, victim_lines=0):
    """Straightforward stateful LRU model used as ground truth."""
    sets = [[] for _ in range(n_sets)]
    victim = []
    misses = 0
    for line in lines:
        s = line % n_sets
        if line in sets[s]:
            sets[s].remove(line)
            sets[s].append(line)
            continue
        if victim_lines and line in victim:
            victim.remove(line)
            evicted = sets[s].pop(0) if len(sets[s]) >= assoc else None
            sets[s].append(line)
            if evicted is not None:
                victim.append(evicted)
                while len(victim) > victim_lines:
                    victim.pop(0)
            continue
        misses += 1
        if len(sets[s]) >= assoc:
            evicted = sets[s].pop(0)
            if victim_lines:
                victim.append(evicted)
                while len(victim) > victim_lines:
                    victim.pop(0)
        sets[s].append(line)
    return misses


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=100)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1024, associativity=4)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1024, associativity=2, victim_lines=4)


def test_direct_mapped_basics():
    config = CacheConfig(size_bytes=4 * 32)  # 4 sets
    # lines 0 and 4 conflict (same set); 1 does not
    lines = np.array([0, 4, 0, 1, 1, 0])
    assert count_misses(lines, config) == reference_misses(lines, 4, 1) == 4


def test_two_way_absorbs_pairwise_conflict():
    dm = CacheConfig(size_bytes=4 * 32)
    two = CacheConfig(size_bytes=8 * 32, associativity=2)  # 4 sets, 2 ways
    lines = np.array([0, 4, 0, 4, 0, 4])
    assert count_misses(lines, dm) == 6
    assert count_misses(lines, two) == 2


def test_two_way_three_way_conflict_thrashes():
    two = CacheConfig(size_bytes=8 * 32, associativity=2)  # 4 sets
    lines = np.array([0, 4, 8, 0, 4, 8])
    assert count_misses(lines, two) == reference_misses(lines, 4, 2) == 6


def test_victim_cache_rescues_conflicts():
    no_victim = CacheConfig(size_bytes=4 * 32)
    with_victim = CacheConfig(size_bytes=4 * 32, victim_lines=16)
    lines = np.array([0, 4, 0, 4, 0, 4])
    assert count_misses(lines, no_victim) == 6
    assert count_misses(lines, with_victim) == 2


def test_empty_and_chunked_streams():
    config = CacheConfig(size_bytes=4 * 32)
    assert count_misses(np.empty(0, dtype=np.int64), config) == 0
    assert count_misses([], config) == 0
    chunked = [np.array([0, 4]), np.array([0])]
    whole = np.array([0, 4, 0])
    assert count_misses(chunked, config) == count_misses(whole, config)


@given(
    lines=st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=300),
    n_sets_log=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=120, deadline=None)
def test_direct_mapped_matches_reference(lines, n_sets_log):
    n_sets = 2**n_sets_log
    config = CacheConfig(size_bytes=n_sets * 32)
    arr = np.asarray(lines, dtype=np.int64)
    assert count_misses(arr, config) == reference_misses(lines, n_sets, 1)


@given(
    lines=st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=300),
    n_sets_log=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=120, deadline=None)
def test_two_way_lru_matches_reference(lines, n_sets_log):
    n_sets = 2**n_sets_log
    config = CacheConfig(size_bytes=n_sets * 2 * 32, associativity=2)
    arr = np.asarray(lines, dtype=np.int64)
    assert count_misses(arr, config) == reference_misses(lines, n_sets, 2)


@given(
    lines=st.lists(st.integers(min_value=0, max_value=23), min_size=1, max_size=200),
    victim=st.sampled_from([1, 2, 4, 16]),
)
@settings(max_examples=100, deadline=None)
def test_victim_cache_matches_reference(lines, victim):
    config = CacheConfig(size_bytes=4 * 32, victim_lines=victim)
    arr = np.asarray(lines, dtype=np.int64)
    assert simulate_victim_cache(arr, config) == reference_misses(lines, 4, 1, victim)


def test_victim_never_worse_than_plain():
    rng = np.random.default_rng(3)
    lines = rng.integers(0, 64, size=2000)
    plain = count_misses(lines, CacheConfig(size_bytes=8 * 32))
    rescued = count_misses(lines, CacheConfig(size_bytes=8 * 32, victim_lines=16))
    assert rescued <= plain
