import numpy as np
import pytest

from repro.cfg import BlockKind, Layout, ProgramBuilder
from repro.profiling import BlockTrace
from repro.simulators.branchpred import BimodalPredictor, evaluate_prediction


def test_predictor_validation():
    with pytest.raises(ValueError):
        BimodalPredictor(n_entries=100)  # not a power of two


def test_counter_saturation():
    p = BimodalPredictor(n_entries=4)
    addr = 0
    assert p.predict(addr) is False  # initialized weakly not-taken
    p.update(addr, True)
    assert p.predict(addr) is True
    for _ in range(5):
        p.update(addr, True)
    p.update(addr, False)
    assert p.predict(addr) is True  # hysteresis survives one not-taken


def test_biased_branch_learned():
    p = BimodalPredictor(n_entries=16)
    correct = 0
    for i in range(100):
        taken = i % 10 != 0  # 90% taken
        if p.predict(4) == taken:
            correct += 1
        p.update(4, taken)
    assert correct >= 85


def test_alternating_branch_defeats_bimodal():
    p = BimodalPredictor(n_entries=16)
    correct = 0
    for i in range(100):
        taken = bool(i % 2)
        if p.predict(4) == taken:
            correct += 1
        p.update(4, taken)
    assert correct <= 60


@pytest.fixture
def world():
    b = ProgramBuilder()
    b.add_procedure(
        "f",
        "m",
        sizes=[4, 4, 4],
        kinds=[BlockKind.BRANCH, BlockKind.BRANCH, BlockKind.RETURN],
    )
    return b.build()


def test_evaluate_sequential_layout_all_not_taken(world):
    layout = Layout.original(world)
    trace = BlockTrace([0, 1, 2] * 50)
    r = evaluate_prediction(trace, world, layout)
    # 0->1 and 1->2 are sequential: never taken, quickly learned
    assert r.taken_fraction == 0.0
    assert r.accuracy > 0.95


def test_evaluate_scattered_layout_all_taken(world):
    layout = Layout.from_placements(world, {0: 0, 1: 512, 2: 1024}, name="scatter")
    trace = BlockTrace([0, 1, 2] * 50)
    r = evaluate_prediction(trace, world, layout)
    assert r.taken_fraction == 1.0
    assert r.accuracy > 0.9  # always-taken is also easy


def test_separators_excluded(world):
    layout = Layout.original(world)
    trace = BlockTrace.concatenate([BlockTrace([0, 1]), BlockTrace([0, 1])])
    r = evaluate_prediction(trace, world, layout)
    assert r.n_branches == 2  # only the 0->1 transitions


def test_max_events_cap(world):
    layout = Layout.original(world)
    trace = BlockTrace([0, 1, 2] * 100)
    full = evaluate_prediction(trace, world, layout)
    capped = evaluate_prediction(trace, world, layout, max_events=30)
    assert capped.n_branches < full.n_branches


def test_empty_trace(world):
    r = evaluate_prediction(BlockTrace([]), world, Layout.original(world))
    assert r.n_branches == 0 and r.accuracy == 1.0
