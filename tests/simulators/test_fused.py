"""Fused multi-configuration driver vs the one-shot simulators.

One `run_fused` pass carrying many streams must be bit-identical to
running each fetch / trace-cache simulation (and each i-cache
configuration) on its own.
"""

import numpy as np
import pytest

from repro.experiments.config import KB
from repro.experiments.harness import get_workload, layouts_for
from repro.simulators import (
    CacheConfig,
    FetchStream,
    TraceCacheStream,
    count_misses,
    miss_counter,
    run_fused,
    simulate_fetch,
    simulate_trace_cache,
)
from repro.tpcd.workload import WorkloadSettings

SETTINGS = WorkloadSettings(scale=0.0005)
CACHE_KBS = (4, 8, 16)


@pytest.fixture(scope="module")
def workload():
    return get_workload(SETTINGS)


@pytest.fixture(scope="module")
def layouts(workload):
    return layouts_for(workload, 8, 4, names=("orig", "P&H"))


def test_fused_fetch_matches_one_shot_per_layout_and_config(workload, layouts):
    counters = {
        (name, kb): miss_counter(CacheConfig(size_bytes=kb * KB))
        for name in layouts
        for kb in CACHE_KBS
    }
    streams = {
        name: FetchStream(
            layout.name, consumers=[counters[(name, kb)] for kb in CACHE_KBS]
        )
        for name, layout in layouts.items()
    }
    run_fused(
        workload.test_trace,
        workload.program,
        [(layout, streams[name]) for name, layout in layouts.items()],
    )
    for name, layout in layouts.items():
        ref = simulate_fetch(workload.test_trace, workload.program, layout)
        stream = streams[name]
        assert stream.n_instructions == ref.n_instructions
        assert stream.n_fetches == ref.n_fetches
        assert stream.n_taken == ref.n_taken
        for kb in CACHE_KBS:
            expected = count_misses(ref.line_chunks, CacheConfig(size_bytes=kb * KB))
            assert counters[(name, kb)].misses == expected


def test_fused_trace_cache_matches_one_shot(workload, layouts):
    layout = layouts["orig"]
    counter = miss_counter(CacheConfig(size_bytes=8 * KB))
    tc_stream = TraceCacheStream(layout.name, consumers=[counter])
    # ride along with a fetch stream over the same layout object: the
    # shared expansion/lengths must not perturb either simulation
    fetch_stream = FetchStream(layout.name)
    run_fused(
        workload.test_trace,
        workload.program,
        [(layout, tc_stream), (layout, fetch_stream)],
    )
    ref = simulate_trace_cache(workload.test_trace, workload.program, layout)
    assert tc_stream.n_instructions == ref.n_instructions
    assert tc_stream.n_hits == ref.n_hits
    assert tc_stream.n_misses == ref.n_misses
    assert tc_stream.n_cycles_base == ref.n_cycles_base
    expected = count_misses(ref.miss_line_chunks, CacheConfig(size_bytes=8 * KB))
    assert counter.misses == expected
    fetch_ref = simulate_fetch(workload.test_trace, workload.program, layout)
    assert fetch_stream.n_fetches == fetch_ref.n_fetches


def test_fused_collects_lines_identically(workload, layouts):
    layout = layouts["P&H"]
    stream = FetchStream(layout.name, collect_lines=True)
    run_fused(workload.test_trace, workload.program, [(layout, stream)])
    ref = simulate_fetch(workload.test_trace, workload.program, layout)
    np.testing.assert_array_equal(
        np.concatenate(stream.line_chunks), np.concatenate(ref.line_chunks)
    )


def test_fused_empty_pairs_is_a_no_op(workload):
    run_fused(workload.test_trace, workload.program, [])
