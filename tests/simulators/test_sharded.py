"""Sharded chunk-parallel driver vs one fused pass.

Three layers of evidence that ``run_sharded`` is bit-identical to
``run_fused``:

* a hand-built **boundary corpus** where carried state demonstrably
  straddles a shard boundary — an i-cache set run, a victim-buffer
  resident, a trace-cache entry built before the boundary and hit after
  it. Each case also checks that naively summing independent cold
  per-shard runs gives the *wrong* answer, so the corpus genuinely
  exercises the reconciliation pass rather than passing vacuously;
* a Hypothesis **property**: random programs/layouts/traces and any shard
  count (including the degenerate 1 and more-shards-than-windows) agree
  with the fused pass on every counter and every piece of carried state;
* **fault-tolerance** at shard granularity: checkpoint/resume recomputes
  only missing shard jobs, transient failures retry, a dead worker pool
  degrades to in-process execution — all without perturbing results.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.blocks import BlockKind
from repro.cfg.layout import Layout
from repro.cfg.program import ProgramBuilder
from repro.profiling.trace import BlockTrace
from repro.simulators import (
    CacheConfig,
    FetchStream,
    ShardError,
    ShardPlan,
    TraceCacheConfig,
    TraceCacheStream,
    miss_counter,
    plan_shards,
    run_fused,
    run_sharded,
)
from repro.simulators import sharded as sharded_mod
from repro.validate.generators import random_case

# -- helpers -------------------------------------------------------------


def _program(n_blocks=8, size=8, kind=BlockKind.BRANCH):
    builder = ProgramBuilder()
    builder.add_procedure(
        "p", "corpus", [size] * n_blocks, [int(kind)] * n_blocks
    )
    return builder.build()


def _snapshot(pairs):
    """Every observable: counters and carried state of each stream."""
    out = []
    for _, stream in pairs:
        entry = {"counters": [c.state_dict() for c in stream.consumers]}
        if isinstance(stream, FetchStream):
            entry["sig"] = (stream.n_instructions, stream.n_fetches, stream.n_taken)
            if stream.line_chunks is not None:
                entry["lines"] = (
                    np.concatenate(stream.line_chunks)
                    if stream.line_chunks
                    else np.empty(0, dtype=np.int64)
                )
        else:
            entry["sig"] = (
                stream.n_instructions, stream.n_hits, stream.n_misses, stream.n_taken
            )
            entry["state"] = stream.state_dict()
            if stream.miss_line_chunks is not None:
                entry["lines"] = (
                    np.concatenate(stream.miss_line_chunks)
                    if stream.miss_line_chunks
                    else np.empty(0, dtype=np.int64)
                )
        out.append(entry)
    return out


def _eq(a, b):
    if type(a) is not type(b):
        return False
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(_eq(a[k], b[k]) for k in a)
    if isinstance(a, np.ndarray):
        return a.shape == b.shape and bool((a == b).all())
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(_eq(x, y) for x, y in zip(a, b))
    return a == b


def _run_both(trace, program, make_pairs, *, chunk_events, shards, jobs=1, **kwargs):
    fused = make_pairs()
    run_fused(trace, program, fused, chunk_events=chunk_events)
    shard = make_pairs()
    report = run_sharded(
        trace, program, shard,
        chunk_events=chunk_events, shards=shards, jobs=jobs, **kwargs,
    )
    return _snapshot(fused), _snapshot(shard), shard, report


def _naive_cold_sum(trace, program, make_pairs, *, chunk_events, bounds):
    """The WRONG stitch: independent cold runs per shard, counters summed.

    Used to prove a corpus case really carries state across the boundary
    (the naive answer must differ from the fused one).
    """
    totals = None
    for start, stop in zip(bounds, bounds[1:]):
        pairs = make_pairs()
        run_fused(
            trace, program, pairs,
            chunk_events=chunk_events, start_event=start, stop_event=stop,
        )
        per = [
            [c.misses for c in stream.consumers]
            + ([stream.n_hits] if isinstance(stream, TraceCacheStream) else [])
            for _, stream in pairs
        ]
        if totals is None:
            totals = per
        else:
            totals = [
                [a + b for a, b in zip(ta, pa)] for ta, pa in zip(totals, per)
            ]
    return totals


# -- boundary regression corpus ------------------------------------------
#
# Blocks are 8 instructions = 32 bytes = exactly one 32-byte line under
# the original layout, so block i lives on line i. chunk_events=4 with 8
# events puts the shard boundary exactly between events 3 and 4.

CHUNK = 4
BOUNDS = (0, 4, 8)


def test_icache_set_run_straddles_boundary():
    """A direct-mapped/2-way set touched on both sides of the boundary:
    the post-boundary re-access must hit (stitch correction), and a
    conflicting access must still miss."""
    program = _program()
    layout = Layout.original(program)
    # block 0 warm across the boundary; block 4 conflicts with it (4 sets)
    trace = BlockTrace(np.asarray([0, 1, 2, 3, 0, 4, 0, 1], dtype=np.int32))

    def make_pairs():
        dm = miss_counter(CacheConfig(size_bytes=128, line_bytes=32))
        lru = miss_counter(CacheConfig(size_bytes=256, line_bytes=32, associativity=2))
        return [(layout, FetchStream(layout.name, consumers=[dm, lru]))]

    ref, got, _, _ = _run_both(
        trace, program, make_pairs, chunk_events=CHUNK, shards=2
    )
    assert _eq(ref, got)
    naive = _naive_cold_sum(
        trace, program, make_pairs, chunk_events=CHUNK, bounds=BOUNDS
    )
    fused_misses = [c["misses"] for c in ref[0]["counters"]]
    assert naive[0] != fused_misses, "corpus never carried i-cache state across the boundary"


def test_victim_buffer_resident_straddles_boundary():
    """A line evicted to the victim buffer before the boundary is
    re-fetched after it: the relay chain must carry the buffer."""
    program = _program()
    layout = Layout.original(program)
    # one-set primary: every line conflicts; the second lap re-finds its
    # lines in the victim buffer across the shard boundary
    trace = BlockTrace(np.asarray([0, 1, 2, 3, 0, 1, 2, 3], dtype=np.int32))

    def make_pairs():
        victim = miss_counter(CacheConfig(size_bytes=32, line_bytes=32, victim_lines=8))
        return [(layout, FetchStream(layout.name, consumers=[victim]))]

    ref, got, _, _ = _run_both(
        trace, program, make_pairs, chunk_events=CHUNK, shards=2
    )
    assert _eq(ref, got)
    naive = _naive_cold_sum(
        trace, program, make_pairs, chunk_events=CHUNK, bounds=BOUNDS
    )
    assert naive[0] != [c["misses"] for c in ref[0]["counters"]], (
        "corpus never carried the victim buffer across the boundary"
    )


def test_trace_cache_entry_built_before_boundary_hits_after():
    """Trace-cache entries installed in shard 0 (including the one under
    construction when the window ends) must be visible to shard 1."""
    program = _program()
    layout = Layout.original(program)
    trace = BlockTrace(np.asarray([5, 6, 5, 6, 5, 6, 5, 6], dtype=np.int32))

    def make_pairs():
        dm = miss_counter(CacheConfig(size_bytes=128, line_bytes=32))
        return [
            (
                layout,
                TraceCacheStream(
                    layout.name, TraceCacheConfig(n_entries=16), consumers=[dm]
                ),
            )
        ]

    ref, got, _, _ = _run_both(
        trace, program, make_pairs, chunk_events=CHUNK, shards=2
    )
    assert _eq(ref, got)
    assert ref[0]["sig"][1] > 0, "corpus produced no trace-cache hits at all"
    naive = _naive_cold_sum(
        trace, program, make_pairs, chunk_events=CHUNK, bounds=BOUNDS
    )
    fused_hits = ref[0]["sig"][1]
    assert naive[0][-1] != fused_hits, (
        "corpus never carried trace-cache entries across the boundary"
    )


def test_fetch_group_at_boundary_truncates_identically():
    """A straight-line fall-through run crossing the boundary: the SEQ.3
    fetch orbit truncates at the window edge the same way in both paths,
    and the per-shard fetch counters sum exactly."""
    program = _program(kind=BlockKind.FALL_THROUGH)
    layout = Layout.original(program)
    trace = BlockTrace(np.arange(8, dtype=np.int32))

    def make_pairs():
        dm = miss_counter(CacheConfig(size_bytes=128, line_bytes=32))
        return [
            (layout, FetchStream(layout.name, consumers=[dm], collect_lines=True))
        ]

    ref, got, _, _ = _run_both(
        trace, program, make_pairs, chunk_events=CHUNK, shards=2
    )
    assert _eq(ref, got)


# -- property: any partition, any case, equal to fused -------------------


@settings(max_examples=40)
@given(seed=st.integers(0, 5_000), shards=st.integers(1, 8))
def test_sharded_equals_fused_for_any_partition(seed, shards):
    case = random_case(seed)
    line_bytes = case.cache_configs[0].line_bytes

    def make_pairs():
        pairs = [
            (
                case.layout,
                FetchStream(
                    case.layout.name,
                    line_bytes=line_bytes,
                    consumers=[miss_counter(c) for c in case.cache_configs],
                    collect_lines=True,
                ),
            ),
            (
                case.layout,
                TraceCacheStream(
                    case.layout.name,
                    case.tc_config,
                    line_bytes=line_bytes,
                    consumers=[miss_counter(c) for c in case.cache_configs],
                    collect_lines=True,
                ),
            ),
        ]
        return pairs

    ref, got, _, report = _run_both(
        case.trace, case.program, make_pairs,
        chunk_events=case.chunk_events, shards=shards,
    )
    assert _eq(ref, got)
    # and invariant to the partition itself, not only equal to fused:
    # a second, different shard count must produce the same snapshot
    other = max(1, (shards % 4) + 1)
    if other != shards:
        _, got2, _, _ = _run_both(
            case.trace, case.program, make_pairs,
            chunk_events=case.chunk_events, shards=other,
        )
        assert _eq(got, got2)
    n_windows = max(1, -(-len(case.trace) // case.chunk_events))
    assert report.plan.n_shards == min(max(1, shards), n_windows)


def test_sharded_parallel_workers_match_serial():
    case = random_case(2)

    def make_pairs():
        return [
            (
                case.layout,
                FetchStream(
                    case.layout.name,
                    line_bytes=case.cache_configs[0].line_bytes,
                    consumers=[miss_counter(c) for c in case.cache_configs],
                ),
            )
        ]

    ref, got, _, _ = _run_both(
        case.trace, case.program, make_pairs,
        chunk_events=case.chunk_events, shards=4, jobs=2,
    )
    assert _eq(ref, got)


# -- plan and input validation -------------------------------------------


def test_plan_shards_window_aligned_cover():
    plan = plan_shards(103, 10, 4)
    assert plan.bounds[0] == 0 and plan.bounds[-1] == 103
    assert all(b % 10 == 0 for b in plan.bounds[1:-1])
    assert plan.n_shards == 4
    spans = [plan.span(i) for i in range(plan.n_shards)]
    assert all(a < b for a, b in spans)
    assert [a for a, _ in spans[1:]] == [b for _, b in spans[:-1]]


def test_plan_shards_clamps_to_window_count():
    assert plan_shards(25, 10, 99).n_shards == 3  # only 3 windows exist
    assert plan_shards(0, 10, 4).bounds == (0, 0)
    with pytest.raises(ValueError):
        plan_shards(10, 0, 1)
    with pytest.raises(ValueError):
        plan_shards(10, 5, 0)


def test_mismatched_plan_is_rejected():
    case = random_case(3)
    plan = plan_shards(len(case.trace) + 1, case.chunk_events, 2)
    with pytest.raises(ValueError, match="plan does not match"):
        run_sharded(
            case.trace, case.program, [], chunk_events=case.chunk_events, shards=plan
        )
    assert isinstance(plan, ShardPlan)


def test_unknown_stream_type_is_rejected():
    case = random_case(4)

    class Alien:
        line_bytes = 32

    with pytest.raises(TypeError, match="cannot shard"):
        run_sharded(case.trace, case.program, [(case.layout, Alien())], shards=2)


# -- fault tolerance at shard granularity --------------------------------


class DictCheckpoint:
    def __init__(self):
        self.data = {}
        self.loads = 0

    def load(self, key):
        self.loads += 1
        return self.data.get(key)

    def store(self, key, payload):
        self.data[key] = payload


def _case_pairs(case):
    line_bytes = case.cache_configs[0].line_bytes
    return [
        (
            case.layout,
            FetchStream(
                case.layout.name,
                line_bytes=line_bytes,
                consumers=[miss_counter(c) for c in case.cache_configs],
            ),
        ),
        (
            case.layout,
            TraceCacheStream(
                case.layout.name,
                case.tc_config,
                line_bytes=line_bytes,
                consumers=[miss_counter(c) for c in case.cache_configs],
            ),
        ),
    ]


# seed 2 gives a 514-event trace; chunk 64 -> 9 windows, so 4 real shards
RESUME_SEED = 2
RESUME_CHUNK = 64


def test_checkpoint_resume_recomputes_only_missing_jobs():
    case = random_case(RESUME_SEED)
    ckpt = DictCheckpoint()
    pairs = _case_pairs(case)
    first = run_sharded(
        case.trace, case.program, pairs,
        chunk_events=RESUME_CHUNK, shards=4, checkpoint=ckpt,
    )
    assert first.plan.n_shards == 4
    assert sorted(ckpt.data) == sorted(first.computed)
    reference = _snapshot(pairs)

    # warm resume: nothing recomputes, results identical
    pairs2 = _case_pairs(case)
    second = run_sharded(
        case.trace, case.program, pairs2,
        chunk_events=RESUME_CHUNK, shards=4, checkpoint=ckpt,
    )
    assert second.computed == []
    assert sorted(second.checkpointed) == sorted(first.computed)
    assert _eq(reference, _snapshot(pairs2))

    # punch two holes — a family shard and a mid-chain relay step: only
    # those exact jobs recompute (later relay steps are reused, their
    # inputs being deterministic)
    dropped = [("family", 2)]
    relay_keys = sorted(k for k in ckpt.data if k[0] == "relay" and k[2] == 1)
    dropped.append(relay_keys[0])
    for key in dropped:
        del ckpt.data[key]
    pairs3 = _case_pairs(case)
    third = run_sharded(
        case.trace, case.program, pairs3,
        chunk_events=RESUME_CHUNK, shards=4, checkpoint=ckpt,
    )
    assert sorted(third.computed) == sorted(dropped)
    assert _eq(reference, _snapshot(pairs3))


def test_permanent_failure_names_job_and_preserves_checkpoints(monkeypatch):
    case = random_case(RESUME_SEED)
    real = sharded_mod._family_shard

    def boom(trace, program, layouts, chunk_events, plan, specs, shard_idx):
        if shard_idx == 2:
            raise ValueError("injected deterministic failure")
        return real(trace, program, layouts, chunk_events, plan, specs, shard_idx)

    monkeypatch.setattr(sharded_mod, "_family_shard", boom)
    ckpt = DictCheckpoint()
    with pytest.raises(ShardError) as excinfo:
        run_sharded(
            case.trace, case.program, _case_pairs(case),
            chunk_events=RESUME_CHUNK, shards=4, checkpoint=ckpt,
        )
    assert excinfo.value.key == ("family", 2)
    assert ("family", 0) in ckpt.data and ("family", 1) in ckpt.data

    # resume after the bug is fixed: the crashed job and the jobs that
    # never ran recompute; everything checkpointed is reused
    monkeypatch.setattr(sharded_mod, "_family_shard", real)
    pairs = _case_pairs(case)
    report = run_sharded(
        case.trace, case.program, pairs,
        chunk_events=RESUME_CHUNK, shards=4, checkpoint=ckpt,
    )
    assert ("family", 2) in report.computed
    assert ("family", 0) in report.checkpointed
    fused = _case_pairs(case)
    run_fused(case.trace, case.program, fused, chunk_events=RESUME_CHUNK)
    assert _eq(_snapshot(fused), _snapshot(pairs))


def test_transient_failure_retries_then_succeeds(monkeypatch):
    case = random_case(RESUME_SEED)
    real = sharded_mod._relay_shard
    failed = []

    def flaky(trace, program, layouts, chunk_events, plan, spec, shard_idx, state):
        if not failed:
            failed.append(shard_idx)
            raise OSError("injected transient failure")
        return real(trace, program, layouts, chunk_events, plan, spec, shard_idx, state)

    monkeypatch.setattr(sharded_mod, "_relay_shard", flaky)
    pairs = _case_pairs(case)
    run_sharded(
        case.trace, case.program, pairs,
        chunk_events=RESUME_CHUNK, shards=4, retries=2,
    )
    assert failed, "injection never fired"
    fused = _case_pairs(case)
    run_fused(case.trace, case.program, fused, chunk_events=RESUME_CHUNK)
    assert _eq(_snapshot(fused), _snapshot(pairs))


def test_transient_failure_without_retries_raises(monkeypatch):
    case = random_case(RESUME_SEED)

    def always(trace, program, layouts, chunk_events, plan, specs, shard_idx):
        raise OSError("injected transient failure")

    monkeypatch.setattr(sharded_mod, "_family_shard", always)
    with pytest.raises(ShardError):
        run_sharded(
            case.trace, case.program, _case_pairs(case),
            chunk_events=RESUME_CHUNK, shards=4, retries=0,
        )


def test_dead_worker_pool_degrades_to_in_process(monkeypatch):
    import os

    case = random_case(RESUME_SEED)
    parent = os.getpid()
    real = sharded_mod._family_shard

    def killer(trace, program, layouts, chunk_events, plan, specs, shard_idx):
        if shard_idx == 1 and os.getpid() != parent:
            os._exit(3)  # hard worker death: no exception crosses the pipe
        return real(trace, program, layouts, chunk_events, plan, specs, shard_idx)

    monkeypatch.setattr(sharded_mod, "_family_shard", killer)
    pairs = _case_pairs(case)
    report = run_sharded(
        case.trace, case.program, pairs,
        chunk_events=RESUME_CHUNK, shards=4, jobs=2,
    )
    assert report.degraded
    fused = _case_pairs(case)
    run_fused(case.trace, case.program, fused, chunk_events=RESUME_CHUNK)
    assert _eq(_snapshot(fused), _snapshot(pairs))


def test_on_job_reports_every_job_once():
    case = random_case(RESUME_SEED)
    seen = []
    report = run_sharded(
        case.trace, case.program, _case_pairs(case),
        chunk_events=RESUME_CHUNK, shards=3,
        on_job=lambda key, source: seen.append((key, source)),
    )
    assert sorted(k for k, _ in seen) == sorted(report.computed)
    assert {s for _, s in seen} == {"computed"}
    assert report.n_jobs == len(seen)
