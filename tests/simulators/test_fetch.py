import numpy as np
import pytest

from repro.cfg import BlockKind, Layout, ProgramBuilder
from repro.profiling import BlockTrace
from repro.simulators import simulate_fetch
from repro.simulators.fetch import instruction_chunks


def straight_program(sizes, kinds):
    b = ProgramBuilder()
    b.add_procedure("f", "executor", sizes=sizes, kinds=kinds)
    return b.build()


def test_single_block_one_fetch():
    p = straight_program([8], [BlockKind.RETURN])
    layout = Layout.original(p)
    r = simulate_fetch(BlockTrace([0]), p, layout)
    # 8 instructions, line-aligned: one 16-wide fetch would cover them, but
    # the return is a taken branch ending the (only) fetch
    assert r.n_instructions == 8
    assert r.n_fetches == 1
    assert r.n_taken == 1


def test_sequential_blocks_fetch_together():
    # two fall-through blocks of 4 = 8 sequential instructions -> 1 fetch
    p = straight_program([4, 4], [BlockKind.FALL_THROUGH, BlockKind.RETURN])
    layout = Layout.original(p)
    r = simulate_fetch(BlockTrace([0, 1]), p, layout)
    assert r.n_fetches == 1
    assert r.n_taken == 1  # only the final return


def test_taken_branch_splits_fetches():
    # block 1 placed away from block 0 -> the transition is taken
    p = straight_program([4, 4], [BlockKind.BRANCH, BlockKind.RETURN])
    layout = Layout.from_placements(p, {0: 0, 1: 256}, name="gap")
    r = simulate_fetch(BlockTrace([0, 1]), p, layout)
    assert r.n_fetches == 2
    assert r.n_taken == 2


def test_fall_through_moved_away_counts_as_taken():
    p = straight_program([4, 4], [BlockKind.FALL_THROUGH, BlockKind.RETURN])
    layout = Layout.from_placements(p, {0: 0, 1: 256}, name="gap")
    r = simulate_fetch(BlockTrace([0, 1]), p, layout)
    # the layout broke the fall-through: an implicit jump is taken
    assert r.n_taken == 2
    assert r.n_fetches == 2


def test_width_limit():
    # 20 sequential instructions, no branches until the end: the 16-wide
    # unit needs 2 fetches
    p = straight_program([20], [BlockKind.RETURN])
    layout = Layout.original(p)
    r = simulate_fetch(BlockTrace([0]), p, layout)
    assert r.n_fetches == 2


def test_three_branch_limit():
    # four not-taken branch blocks of 2 instructions, all sequential:
    # the fourth branch cannot enter the same fetch
    kinds = [BlockKind.BRANCH] * 4 + [BlockKind.RETURN]
    p = straight_program([2, 2, 2, 2, 4], kinds)
    layout = Layout.original(p)
    r = simulate_fetch(BlockTrace([0, 1, 2, 3, 4]), p, layout)
    # fetch 1: blocks 0,1,2 (3 branches); fetch 2: block 3 + return
    assert r.n_fetches == 2


def test_line_pair_limit():
    # start mid-line: a fetch from offset 4 instructions into a line can
    # supply at most 12 instructions (2 lines of 8, minus the 4 skipped)
    p = straight_program([4, 14], [BlockKind.BRANCH, BlockKind.RETURN])
    layout = Layout.from_placements(p, {0: 256, 1: 16}, name="midline")
    # trace: block 1 alone, starting at byte 16 = instruction 4 of line 0
    r = simulate_fetch(BlockTrace([1]), p, layout)
    # 14 instructions from a mid-line start: 12 then 2
    assert r.n_fetches == 2


def test_line_accesses_two_per_fetch():
    p = straight_program([8], [BlockKind.RETURN])
    layout = Layout.original(p)
    r = simulate_fetch(BlockTrace([0]), p, layout)
    lines = np.concatenate(r.line_chunks)
    np.testing.assert_array_equal(lines, [0, 1])


def test_separator_breaks_sequence():
    p = straight_program([4, 4], [BlockKind.FALL_THROUGH, BlockKind.RETURN])
    layout = Layout.original(p)
    trace = BlockTrace.concatenate([BlockTrace([0]), BlockTrace([1])])
    r = simulate_fetch(trace, p, layout)
    # without the separator this would be one fetch
    assert r.n_fetches == 2
    assert r.n_taken == 2


def test_chunking_preserves_results():
    rng = np.random.default_rng(0)
    sizes = rng.integers(1, 9, size=64).tolist()
    kinds = [BlockKind.BRANCH if rng.random() < 0.5 else BlockKind.FALL_THROUGH for _ in range(63)]
    kinds.append(BlockKind.RETURN)
    p = straight_program(sizes, kinds)
    layout = Layout.original(p)
    events = rng.integers(0, 64, size=5000).astype(np.int32)
    trace = BlockTrace(events)
    whole = simulate_fetch(trace, p, layout, chunk_events=10**9)
    chunked = simulate_fetch(trace, p, layout, chunk_events=333)
    assert whole.n_instructions == chunked.n_instructions
    assert whole.n_taken == chunked.n_taken
    # chunk boundaries may split at most one fetch each
    assert abs(whole.n_fetches - chunked.n_fetches) <= 5000 // 333 + 1
    assert whole.ideal_ipc == pytest.approx(chunked.ideal_ipc, rel=0.01)


def test_instruction_chunks_addresses():
    p = straight_program([2, 3], [BlockKind.FALL_THROUGH, BlockKind.RETURN])
    layout = Layout.original(p)
    chunks = list(instruction_chunks(BlockTrace([0, 1]), p, layout))
    assert len(chunks) == 1
    np.testing.assert_array_equal(chunks[0].addr, [0, 4, 8, 12, 16])
    np.testing.assert_array_equal(chunks[0].is_taken, [0, 0, 0, 0, 1])


def test_ideal_ipc_and_run_length():
    p = straight_program([8, 8], [BlockKind.FALL_THROUGH, BlockKind.RETURN])
    layout = Layout.original(p)
    r = simulate_fetch(BlockTrace([0, 1]), p, layout)
    assert r.ideal_ipc == pytest.approx(16.0)
    assert r.instructions_between_taken == pytest.approx(16.0)
