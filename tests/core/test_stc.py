import numpy as np
import pytest

from repro.cfg import BlockKind, ProgramBuilder, WeightedCFG
from repro.core import CacheGeometry, STCParams, stc_layout
from repro.core.stc import _fit_first_pass
from repro.core.seeds import auto_seeds


def build_world(n_procs=12, blocks_per_proc=6, hot_procs=4, reps=100):
    """Procedures with linear bodies; the first ``hot_procs`` run often."""
    b = ProgramBuilder()
    for p in range(n_procs):
        kinds = [BlockKind.BRANCH] * (blocks_per_proc - 1) + [BlockKind.RETURN]
        b.add_procedure(f"p{p:02d}", "executor", sizes=[4] * blocks_per_proc, kinds=kinds, is_operation=p == 0)
    program = b.build()
    cfg = WeightedCFG(program.n_blocks)
    counts = np.zeros(program.n_blocks, dtype=np.int64)
    for p in range(hot_procs):
        weight = reps * (hot_procs - p)
        blocks = program.procedures[p].blocks
        counts[list(blocks)] = weight
        for a, c in zip(blocks[:-1], blocks[1:]):
            cfg.add_transition(a, c, weight)
        # chain procedures: p returns into p+1's entry
        if p + 1 < hot_procs:
            cfg.add_transition(blocks[-1], program.procedures[p + 1].entry, weight)
    cfg.block_count = counts
    return program, cfg


def test_layout_places_all_blocks():
    program, cfg = build_world()
    geometry = CacheGeometry(cache_bytes=256, cfa_bytes=64)
    layout = stc_layout(program, cfg, geometry)
    layout.validate(program)
    assert layout.name == "auto"


def test_hot_blocks_land_low():
    program, cfg = build_world()
    geometry = CacheGeometry(cache_bytes=512, cfa_bytes=128)
    layout = stc_layout(program, cfg, geometry)
    hot = [b for b in range(program.n_blocks) if cfg.block_count[b] > 0]
    cold = [b for b in range(program.n_blocks) if cfg.block_count[b] == 0]
    assert np.median(layout.address[hot]) < np.median(layout.address[cold])


def test_hottest_sequence_in_cfa():
    program, cfg = build_world()
    geometry = CacheGeometry(cache_bytes=512, cfa_bytes=128)
    layout = stc_layout(program, cfg, geometry)
    # the hottest procedure's body should sit inside the CFA window
    hottest = program.procedures[0].blocks
    assert all(layout.address[b] < 128 for b in hottest)


def test_cfa_window_respected_by_hot_code():
    program, cfg = build_world(n_procs=30, hot_procs=10)
    cache, cfa = 256, 64
    layout = stc_layout(program, cfg, CacheGeometry(cache_bytes=cache, cfa_bytes=cfa))
    for b in range(program.n_blocks):
        if cfg.block_count[b] > 0:
            addr = int(layout.address[b])
            if addr >= cache:
                assert addr % cache >= cfa or cfg.block_count[b] < max(cfg.block_count) // 100


def test_sequentiality_improves_over_original():
    program, cfg = build_world()
    geometry = CacheGeometry(cache_bytes=512, cfa_bytes=128)
    layout = stc_layout(program, cfg, geometry)
    # the hot chain p0 -> p1 -> p2 -> p3 should be laid out sequentially
    sequential = 0
    for p in range(3):
        tail = program.procedures[p].blocks[-1]
        head = program.procedures[p + 1].entry
        sequential += layout.is_sequential(tail, head, program)
    assert sequential >= 2


def test_fit_first_pass_respects_budget():
    program, cfg = build_world()
    seeds = auto_seeds(program, cfg)
    geometry = CacheGeometry(cache_bytes=512, cfa_bytes=64)
    seqs, visited = _fit_first_pass(program, cfg, seeds, geometry, STCParams())
    total = sum(int(program.block_size[b]) * 4 for s in seqs for b in s)
    assert total <= 64
    assert visited == {b for s in seqs for b in s}


def test_fit_first_pass_zero_cfa():
    program, cfg = build_world()
    seeds = auto_seeds(program, cfg)
    geometry = CacheGeometry(cache_bytes=512, cfa_bytes=0)
    seqs, visited = _fit_first_pass(program, cfg, seeds, geometry, STCParams())
    assert seqs == [] and visited == set()


def test_manual_cfa_threshold_override():
    program, cfg = build_world()
    seeds = auto_seeds(program, cfg)
    geometry = CacheGeometry(cache_bytes=512, cfa_bytes=64)
    params = STCParams(cfa_exec_threshold=1)
    seqs, _ = _fit_first_pass(program, cfg, seeds, geometry, params)
    # threshold 1 admits everything executed; pass-1 may exceed the budget
    total = sum(int(program.block_size[b]) * 4 for s in seqs for b in s)
    assert total > 64


def test_ops_mode_uses_op_seeds():
    program, cfg = build_world()
    geometry = CacheGeometry(cache_bytes=512, cfa_bytes=128)
    layout = stc_layout(program, cfg, geometry, STCParams(seed_mode="ops"))
    layout.validate(program)
    assert layout.name == "ops"


def test_invalid_seed_mode():
    with pytest.raises(ValueError):
        STCParams(seed_mode="banana")
