import numpy as np
import pytest

from repro.cfg import BlockKind, ProgramBuilder, WeightedCFG
from repro.core import auto_seeds, ops_seeds


@pytest.fixture
def program():
    b = ProgramBuilder()
    b.add_procedure("scan", "executor", sizes=[2, 2], kinds=[BlockKind.CALL, BlockKind.RETURN], is_operation=True)
    b.add_procedure("helper", "access", sizes=[2], kinds=[BlockKind.RETURN])
    b.add_procedure("sort", "executor", sizes=[2, 2], kinds=[BlockKind.CALL, BlockKind.RETURN], is_operation=True)
    b.add_procedure("cold_fn", "parser", sizes=[2], kinds=[BlockKind.RETURN], cold=True)
    return b.build()


def make_cfg(program, counts):
    cfg = WeightedCFG(program.n_blocks)
    cfg.block_count = np.asarray(counts, dtype=np.int64)
    return cfg


def test_auto_orders_by_popularity(program):
    # entries: scan=0, helper=2, sort=3, cold=5
    cfg = make_cfg(program, [10, 10, 500, 90, 90, 0])
    assert auto_seeds(program, cfg) == [2, 3, 0]


def test_auto_excludes_unexecuted(program):
    cfg = make_cfg(program, [5, 0, 0, 0, 0, 0])
    assert auto_seeds(program, cfg) == [0]


def test_ops_only_operations(program):
    cfg = make_cfg(program, [10, 10, 500, 90, 90, 3])
    assert ops_seeds(program, cfg) == [3, 0]


def test_ops_excludes_unexecuted_ops(program):
    cfg = make_cfg(program, [0, 0, 9, 9, 9, 0])
    assert ops_seeds(program, cfg) == [3]


def test_tie_broken_by_block_id(program):
    cfg = make_cfg(program, [7, 0, 0, 7, 0, 0])
    assert auto_seeds(program, cfg) == [0, 3]
