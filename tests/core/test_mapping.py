import numpy as np
import pytest

from repro.cfg import BlockKind, Layout, ProgramBuilder
from repro.core import CacheGeometry, map_sequences


def make_program(n_blocks=20, block_instrs=8):
    """One procedure, uniform blocks of block_instrs instructions (32 B)."""
    b = ProgramBuilder()
    kinds = [BlockKind.BRANCH] * (n_blocks - 1) + [BlockKind.RETURN]
    b.add_procedure("f", "executor", sizes=[block_instrs] * n_blocks, kinds=kinds)
    return b.build()


def test_geometry_validation():
    with pytest.raises(ValueError):
        CacheGeometry(cache_bytes=100, cfa_bytes=10)  # not line multiple
    with pytest.raises(ValueError):
        CacheGeometry(cache_bytes=1024, cfa_bytes=1024)
    CacheGeometry(cache_bytes=1024, cfa_bytes=0)


def test_cfa_holds_whole_sequences():
    program = make_program()
    geo = CacheGeometry(cache_bytes=256, cfa_bytes=96)  # CFA = 3 blocks
    # seq0 (2 blocks, 64B) fits; seq1 (2 blocks) does not fit after it (32B left)
    layout = map_sequences(program, [[0, 1], [2, 3]], geo, name="t")
    assert layout.address[0] == 0 and layout.address[1] == 32
    # second sequence starts at the CFA boundary, not inside it
    assert layout.address[2] == 96 and layout.address[3] == 128


def test_smaller_later_sequence_can_enter_cfa():
    program = make_program()
    geo = CacheGeometry(cache_bytes=256, cfa_bytes=96)
    layout = map_sequences(program, [[0, 1], [2, 3], [4]], geo, name="t")
    # [4] (32B) fits in the CFA leftover after [0,1]
    assert layout.address[4] == 64


def test_cfa_window_reserved_in_later_logical_caches():
    program = make_program(n_blocks=30)
    geo = CacheGeometry(cache_bytes=256, cfa_bytes=64)
    sequences = [[i] for i in range(12)]  # 12 hot blocks of 32B
    layout = map_sequences(program, sequences, geo, name="t")
    hot = set(range(12))
    for block in hot:
        addr = int(layout.address[block])
        offset = addr % 256
        if addr >= 256:  # in a later logical cache: must avoid the window
            assert offset >= 64, f"hot block {block} at {addr} invades the CFA window"


def test_cold_code_fills_reserved_gaps():
    program = make_program(n_blocks=30)
    geo = CacheGeometry(cache_bytes=256, cfa_bytes=64)
    layout = map_sequences(program, [[i] for i in range(12)], geo, name="t")
    cold = [b for b in range(12, 30)]
    gap_used = any(
        int(layout.address[b]) >= 256 and int(layout.address[b]) % 256 < 64 for b in cold
    )
    assert gap_used, "cold blocks should fill the reserved windows"


def test_block_granularity_cfa():
    program = make_program()
    geo = CacheGeometry(cache_bytes=256, cfa_bytes=64)
    layout = map_sequences(
        program, [[0, 1, 2, 3]], geo, name="torr", cfa_blocks=[2, 0]
    )
    # pinned blocks at the front, pulled out of the sequence
    assert layout.address[2] == 0
    assert layout.address[0] == 32
    # rest of the sequence lives outside the CFA
    assert layout.address[1] >= 64 and layout.address[3] >= 64


def test_no_cfa_is_plain_packing():
    program = make_program()
    geo = CacheGeometry(cache_bytes=256, cfa_bytes=0)
    layout = map_sequences(program, [[3, 1], [0]], geo, name="t")
    assert layout.address[3] == 0
    assert layout.address[1] == 32
    assert layout.address[0] == 64


def test_all_blocks_placed_and_disjoint():
    program = make_program(n_blocks=25)
    geo = CacheGeometry(cache_bytes=128, cfa_bytes=32)
    layout = map_sequences(program, [[0, 5, 7], [9, 2]], geo, name="t")
    layout.validate(program)  # overlaps raise
    assert (layout.address >= 0).all()


def test_block_larger_than_free_area_terminates():
    """Regression: a block bigger than (cache - CFA) used to bump past the
    reserved window forever; it must be placed straddling instead."""
    b = ProgramBuilder()
    b.add_procedure(
        "f", "m", sizes=[24, 24, 4], kinds=[BlockKind.BRANCH, BlockKind.BRANCH, BlockKind.RETURN]
    )
    program = b.build()
    geo = CacheGeometry(cache_bytes=128, cfa_bytes=96)  # free area 32B < 96B blocks
    layout = map_sequences(program, [[0], [1]], geo, name="t")
    layout.validate(program)
    assert (layout.address >= 0).all()


def test_sequence_longer_than_free_area_is_broken_not_lost():
    program = make_program(n_blocks=12, block_instrs=8)
    geo = CacheGeometry(cache_bytes=128, cfa_bytes=64)  # free area = 64B = 2 blocks
    long_seq = [[0, 1, 2, 3, 4, 5]]  # 192B > 64B free area
    layout = map_sequences(program, long_seq, geo, name="t")
    layout.validate(program)
    for b in range(6):
        offset = int(layout.address[b]) % 128
        if int(layout.address[b]) >= 128:
            assert offset >= 64
