"""Property-based tests on the CFA mapping invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import BlockKind, ProgramBuilder
from repro.core import CacheGeometry, map_sequences


def make_program(sizes):
    b = ProgramBuilder()
    kinds = [BlockKind.BRANCH] * (len(sizes) - 1) + [BlockKind.RETURN]
    b.add_procedure("f", "executor", sizes=sizes, kinds=kinds)
    return b.build()


@st.composite
def mapping_case(draw):
    n = draw(st.integers(min_value=3, max_value=40))
    sizes = draw(st.lists(st.integers(min_value=1, max_value=24), min_size=n, max_size=n))
    n_lines = draw(st.sampled_from([4, 8, 16]))
    cache = n_lines * 32
    cfa = draw(st.integers(min_value=0, max_value=n_lines - 1)) * 32
    # sequences: a random disjoint partition of a prefix of the blocks
    ids = list(range(n))
    draw(st.randoms(use_true_random=False)).shuffle(ids)
    k = draw(st.integers(min_value=0, max_value=n))
    chosen = ids[:k]
    sequences = []
    i = 0
    while i < len(chosen):
        step = draw(st.integers(min_value=1, max_value=4))
        sequences.append(chosen[i : i + step])
        i += step
    return sizes, cache, cfa, sequences


@given(mapping_case())
@settings(max_examples=120, deadline=None)
def test_mapping_invariants(case):
    sizes, cache, cfa, sequences = case
    program = make_program(sizes)
    geometry = CacheGeometry(cache_bytes=cache, cfa_bytes=cfa)
    layout = map_sequences(program, sequences, geometry, name="t")

    # 1. every block placed exactly once, no overlaps
    layout.validate(program)
    assert (layout.address >= 0).all()

    # 2. sequence blocks that landed outside the CFA never invade the
    #    reserved window of later logical caches
    seq_blocks = [b for seq in sequences for b in seq]
    in_cfa = {b for b in seq_blocks if layout.address[b] + 1 <= cfa and layout.address[b] < cfa}
    for b in seq_blocks:
        addr = int(layout.address[b])
        size = int(program.block_size[b]) * 4
        if addr >= cache and cfa and size <= cache - cfa:
            # fully inside some later logical cache: must avoid the window
            start_off = addr % cache
            assert start_off >= cfa or addr < cache

    # 3. total occupancy is at least the program size (gaps allowed)
    assert layout.extent_bytes(program) >= program.image_bytes


@given(mapping_case())
@settings(max_examples=60, deadline=None)
def test_cfa_budget_never_exceeded(case):
    sizes, cache, cfa, sequences = case
    program = make_program(sizes)
    geometry = CacheGeometry(cache_bytes=cache, cfa_bytes=cfa)
    layout = map_sequences(program, sequences, geometry, name="t")
    seq_blocks = {b for seq in sequences for b in seq}
    used = sum(
        int(program.block_size[b]) * 4
        for b in seq_blocks
        if int(layout.address[b]) < cfa
    )
    assert used <= cfa
