"""The paper's Figure 3 worked example, as a unit test.

Graph (names -> ids): A1..A8 = 0..7, B1 = 8, C1..C5 = 9..13. With
ExecThresh 4 (scaled x20 = 80 here) and BranchThresh 0.4 the paper builds
the main sequence A1..A8 (inlining the called C1..C4), a secondary sequence
[A5], and discards B1 and C5 (branch threshold) and A6 (exec threshold).
"""

import pytest

from repro.cfg import WeightedCFG
from repro.core import TraceParams, build_sequences

A1, A2, A3, A4, A5, A6, A7, A8, B1, C1, C2, C3, C4, C5 = range(14)

EDGES = [
    (A1, A2, 200),
    (A2, A3, 180),
    (A2, B1, 20),
    (A3, A4, 110),
    (A3, A5, 90),
    (A4, C1, 200),  # subroutine call
    (C1, C2, 600),
    (C2, C3, 594),
    (C2, C5, 6),
    (C3, C4, 400),
    (C4, A7, 280),  # subroutine return
    (C4, C1, 120),
    (A5, A6, 48),
    (A5, A7, 72),
    (A6, A7, 48),
    (A7, A8, 200),
    (B1, A8, 20),
]

COUNTS = [200, 200, 200, 200, 120, 48, 152, 200, 20, 600, 600, 400, 400, 6]


@pytest.fixture
def graph():
    import numpy as np

    return WeightedCFG.from_edges(14, EDGES, block_count=np.array(COUNTS))


def test_main_and_secondary_sequences(graph):
    sequences = build_sequences(graph, [A1], TraceParams(exec_threshold=80, branch_threshold=0.4))
    assert sequences[0] == [A1, A2, A3, A4, C1, C2, C3, C4, A7, A8]
    assert sequences[1] == [A5]
    assert len(sequences) == 2


def test_discarded_blocks_stay_unplaced(graph):
    sequences = build_sequences(graph, [A1], TraceParams(exec_threshold=80, branch_threshold=0.4))
    placed = {b for seq in sequences for b in seq}
    assert B1 not in placed  # branch threshold (probability 0.1)
    assert C5 not in placed  # branch threshold (probability 0.01)
    assert A6 not in placed  # exec threshold (weight 48 < 80)


def test_lower_branch_threshold_admits_b1(graph):
    sequences = build_sequences(graph, [A1], TraceParams(exec_threshold=10, branch_threshold=0.05))
    placed = {b for seq in sequences for b in seq}
    assert B1 in placed


def test_lower_exec_threshold_admits_a6(graph):
    sequences = build_sequences(graph, [A1], TraceParams(exec_threshold=20, branch_threshold=0.4))
    placed = {b for seq in sequences for b in seq}
    assert A6 in placed


def test_visited_state_shared_across_seeds(graph):
    visited: set[int] = set()
    first = build_sequences(graph, [A1], TraceParams(80, 0.4), visited)
    second = build_sequences(graph, [A1, A5], TraceParams(80, 0.4), visited)
    assert first and not second  # everything reachable was already placed


def test_seed_below_exec_threshold_skipped(graph):
    assert build_sequences(graph, [A6], TraceParams(exec_threshold=80, branch_threshold=0.4)) == []


def test_params_validation():
    with pytest.raises(ValueError):
        TraceParams(exec_threshold=-1)
    with pytest.raises(ValueError):
        TraceParams(branch_threshold=1.5)
