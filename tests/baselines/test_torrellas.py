import numpy as np
import pytest

from repro.baselines import torrellas_layout
from repro.cfg import BlockKind, ProgramBuilder, WeightedCFG
from repro.core import CacheGeometry


@pytest.fixture
def world():
    b = ProgramBuilder()
    kinds = [BlockKind.BRANCH] * 7 + [BlockKind.RETURN]
    b.add_procedure("f", "executor", sizes=[8] * 8, kinds=kinds)  # 32B blocks
    program = b.build()
    cfg = WeightedCFG(program.n_blocks)
    # chain 0..7, with block 3 by far the hottest (an inner-loop head)
    for a, c in zip(range(7), range(1, 8)):
        cfg.add_transition(a, c, 50)
    cfg.add_transition(3, 3, 500)
    cfg.block_count = np.array([50, 50, 50, 550, 50, 50, 50, 50], dtype=np.int64)
    return program, cfg


def test_hottest_blocks_pinned_in_cfa(world):
    program, cfg = world
    geometry = CacheGeometry(cache_bytes=128, cfa_bytes=32)  # CFA = 1 block
    layout = torrellas_layout(program, cfg, geometry, exec_threshold=1)
    # block 3 (hottest) occupies the CFA
    assert layout.address[3] == 0
    # its sequence neighbours were NOT moved with it
    assert layout.address[2] >= 32 and layout.address[4] >= 32


def test_pulled_blocks_keep_sequence_order(world):
    program, cfg = world
    geometry = CacheGeometry(cache_bytes=256, cfa_bytes=96)  # CFA = 3 blocks
    layout = torrellas_layout(program, cfg, geometry, exec_threshold=1)
    # three hottest blocks (3, then ties resolved by id: 0, 1) pinned;
    # within the CFA they appear in sequence order, not popularity order
    in_cfa = [b for b in range(8) if layout.address[b] < 96]
    assert 3 in in_cfa and len(in_cfa) == 3
    ordered = sorted(in_cfa, key=lambda b: layout.address[b])
    positions = {b: i for i, b in enumerate([0, 1, 2, 3, 4, 5, 6, 7])}
    assert [positions[b] for b in ordered] == sorted(positions[b] for b in ordered)


def test_layout_complete_and_valid(world):
    program, cfg = world
    layout = torrellas_layout(program, cfg, CacheGeometry(cache_bytes=128, cfa_bytes=64))
    layout.validate(program)
    assert layout.name == "Torr"


def test_zero_cfa_degenerates_to_sequences(world):
    program, cfg = world
    layout = torrellas_layout(program, cfg, CacheGeometry(cache_bytes=128, cfa_bytes=0), exec_threshold=1)
    layout.validate(program)
    # the chain stays together
    assert layout.address[0] < layout.address[7]
