import numpy as np
import pytest

from repro.baselines import original_layout, pettis_hansen_layout
from repro.cfg import BlockKind, ProgramBuilder, WeightedCFG


@pytest.fixture
def world():
    b = ProgramBuilder()
    # f: entry(0) branch -> hot(1) or cold(2); hot calls g; 3 returns
    b.add_procedure(
        "f",
        "executor",
        sizes=[2, 2, 2, 2],
        kinds=[BlockKind.BRANCH, BlockKind.CALL, BlockKind.FALL_THROUGH, BlockKind.RETURN],
    )
    b.add_procedure("g", "access", sizes=[2, 2], kinds=[BlockKind.FALL_THROUGH, BlockKind.RETURN])
    b.add_procedure("h", "access", sizes=[2], kinds=[BlockKind.RETURN])
    program = b.build()
    cfg = WeightedCFG(program.n_blocks)
    # f executes 0 -> 1 (hot), 1 calls g (4,5), g returns to 3
    cfg.add_transition(0, 1, 100)
    cfg.add_transition(1, 4, 100)
    cfg.add_transition(4, 5, 100)
    cfg.add_transition(5, 3, 100)
    cfg.block_count = np.array([100, 100, 0, 100, 100, 100, 0], dtype=np.int64)
    return program, cfg


def test_all_blocks_placed(world):
    program, cfg = world
    layout = pettis_hansen_layout(program, cfg)
    layout.validate(program)
    assert layout.name == "P&H"
    assert layout.extent_bytes(program) == program.image_bytes  # contiguous


def test_fluff_sinks_to_procedure_bottom(world):
    program, cfg = world
    layout = pettis_hansen_layout(program, cfg)
    # block 2 never executes: must come after f's executed blocks
    assert layout.address[2] > max(layout.address[b] for b in (0, 1, 3))


def test_hot_chain_stays_adjacent(world):
    program, cfg = world
    layout = pettis_hansen_layout(program, cfg)
    # 0 -> 1 is f's hottest internal edge: adjacent in the layout
    assert layout.is_sequential(0, 1, program)


def test_caller_callee_proximity(world):
    program, cfg = world
    layout = pettis_hansen_layout(program, cfg)
    # g (called 100x by f) must be closer to f than h (never called)
    f_pos = layout.address[0]
    g_pos = layout.address[4]
    h_pos = layout.address[6]
    assert abs(g_pos - f_pos) < abs(h_pos - f_pos)


def test_entry_chain_leads_procedure(world):
    program, cfg = world
    layout = pettis_hansen_layout(program, cfg)
    f_blocks = program.procedures[0].blocks
    assert layout.address[0] == min(layout.address[b] for b in f_blocks)


def test_unexecuted_program_equals_original_order():
    b = ProgramBuilder()
    b.add_procedure("a", "m", sizes=[2, 2], kinds=[BlockKind.FALL_THROUGH, BlockKind.RETURN])
    b.add_procedure("b", "m", sizes=[2], kinds=[BlockKind.RETURN])
    program = b.build()
    cfg = WeightedCFG(program.n_blocks)
    layout = pettis_hansen_layout(program, cfg)
    layout.validate(program)
    # with no profile, block order within procedures is preserved
    assert layout.address[0] < layout.address[1]
