from repro.util import format_table


def test_basic_table():
    out = format_table(["a", "bb"], [[1, 2.5], [10, None]])
    lines = out.splitlines()
    assert lines[0].split() == ["a", "bb"]
    assert "2.50" in lines[2]
    assert lines[3].split() == ["10", "-"]


def test_title_and_alignment():
    out = format_table(["col"], [[123456]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    # header right-justified to the widest cell
    assert lines[1].endswith("col")
    assert lines[3].endswith("123456")


def test_floatfmt():
    out = format_table(["x"], [[1.23456]], floatfmt=".4f")
    assert "1.2346" in out


def test_empty_rows():
    out = format_table(["x"], [])
    assert len(out.splitlines()) == 2
