import io

from repro.util.progress import Progress


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def test_disabled_is_silent_but_counts():
    out = io.StringIO()
    prog = Progress("suite", total=3, stream=out)
    prog.step("a")
    prog.step("b")
    prog.done()
    assert prog.count == 2
    assert out.getvalue() == ""


def test_enabled_reports_rate_and_eta():
    out = io.StringIO()
    clock = FakeClock()
    prog = Progress("suite", total=4, enabled=True, stream=out, clock=clock)
    clock.t = 2.0
    prog.step("fetch simulation: orig")
    line = out.getvalue().strip()
    assert "[suite]" in line
    assert "1/4" in line
    assert "0.50/s" in line  # 1 step in 2 s
    assert "ETA 6s" in line  # 3 remaining at 0.5/s
    assert line.endswith("fetch simulation: orig")


def test_last_step_has_no_eta_and_done_reports_elapsed():
    out = io.StringIO()
    clock = FakeClock()
    prog = Progress("x", total=1, enabled=True, stream=out, clock=clock)
    clock.t = 1.0
    prog.step()
    assert "ETA" not in out.getvalue()
    clock.t = 2.5
    prog.done()
    assert "1 steps in 2.5s" in out.getvalue()


def test_no_total_just_counts():
    out = io.StringIO()
    prog = Progress("x", enabled=True, stream=out, clock=FakeClock())
    prog.step("msg")
    first_line = out.getvalue().splitlines()[0]
    assert "1 (" in first_line
    assert "/s" in first_line


def test_zero_total_is_a_total_not_unknown():
    out = io.StringIO()
    clock = FakeClock()
    prog = Progress("x", total=0, enabled=True, stream=out, clock=clock)
    clock.t = 1.0
    prog.step("unexpected extra unit")
    line = out.getvalue().splitlines()[0]
    assert "1/0" in line  # renders against the declared total, not bare "1 ("
    assert "ETA" not in line
    prog.done()
    assert "1 steps" in out.getvalue()


def test_fail_reports_without_ending_the_stream():
    out = io.StringIO()
    clock = FakeClock()
    prog = Progress("suite", total=2, enabled=True, stream=out, clock=clock)
    prog.step("a")
    prog.fail("task b: OSError('fork')")
    prog.step("b retried")
    prog.done()
    lines = out.getvalue().splitlines()
    assert any("FAIL task b" in line for line in lines)
    assert prog.count == 2 and prog.failures == 1
    assert "2 steps" in lines[-1] and "1 failed" in lines[-1]


def test_retried_unit_is_not_double_counted_toward_total():
    """A unit that fails, retries, and then completes advances the counter
    exactly once: ``fail`` reports without stepping, so the final count
    matches the declared total and no report line overshoots it."""
    out = io.StringIO()
    clock = FakeClock()
    prog = Progress("suite", total=2, enabled=True, stream=out, clock=clock)
    clock.t = 1.0
    prog.step("a")
    prog.fail("task b: OSError('flaky') (attempt 1, retrying)")
    prog.fail("task b: OSError('flaky') (attempt 2, retrying)")
    clock.t = 2.0
    prog.step("b (third attempt)")
    prog.done()
    assert prog.count == 2 and prog.failures == 2
    body = out.getvalue()
    assert "2/2" in body
    assert "3/2" not in body and "4/2" not in body
    assert "2 steps" in body.splitlines()[-1]


def test_fail_is_silent_when_disabled():
    out = io.StringIO()
    prog = Progress("x", total=1, stream=out)
    prog.fail("boom")
    assert prog.failures == 1
    assert out.getvalue() == ""
