import pytest

from repro.util.ascii_chart import ascii_curve


def test_basic_curve_renders():
    points = [(0, 0.0), (50, 80.0), (100, 95.0)]
    out = ascii_curve(points, width=40, height=8)
    lines = out.splitlines()
    assert any("*" in line for line in lines)
    assert "95.0" in out and "0.0" in out


def test_monotone_curve_stars_rise_left_to_right():
    points = [(0, 0.0), (100, 100.0)]
    out = ascii_curve(points, width=20, height=10, y_label="y")
    rows = [line for line in out.splitlines() if "|" in line]
    first_star_row = next(i for i, line in enumerate(rows) if "*" in line.split("|")[1][:3])
    last_star_row = next(i for i, line in enumerate(rows) if "*" in line.split("|")[1][-3:])
    assert last_star_row < first_star_row or first_star_row == last_star_row + 9


def test_validation():
    with pytest.raises(ValueError):
        ascii_curve([(0, 1.0)])
    with pytest.raises(ValueError):
        ascii_curve([(0, 1.0), (0, 2.0)])
    with pytest.raises(ValueError):
        ascii_curve([(0, 1.0), (5, 1.0)])


def test_labels_included():
    out = ascii_curve([(0, 0.0), (10, 10.0)], x_label="blocks", y_label="refs")
    assert "refs" in out and "blocks" in out
