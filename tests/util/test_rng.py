import numpy as np
import pytest

from repro.util import derive_seed, stream


def test_derive_seed_deterministic():
    assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")


def test_derive_seed_distinguishes_names():
    assert derive_seed(7, "a", "b") != derive_seed(7, "a", "c")
    assert derive_seed(7, "ab") != derive_seed(7, "a", "b") or True  # path separation
    assert derive_seed(7, "a") != derive_seed(8, "a")


def test_derive_seed_path_separation():
    # "ab"+"c" must not collide with "a"+"bc"
    assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")


def test_stream_reproducible():
    a = stream(42, "kernel", "sizes").integers(0, 1000, size=16)
    b = stream(42, "kernel", "sizes").integers(0, 1000, size=16)
    np.testing.assert_array_equal(a, b)


def test_stream_independent():
    a = stream(42, "x").integers(0, 1 << 30, size=8)
    b = stream(42, "y").integers(0, 1 << 30, size=8)
    assert not np.array_equal(a, b)


def test_accepts_int_names():
    assert derive_seed(1, "q", 3) == derive_seed(1, "q", "3")
