"""Property tests pinning the production simulators to the oracles.

Hypothesis draws the *parameters* (case seed, simulation window) and the
seeded generators in :mod:`repro.validate.generators` build the actual
program/layout/trace — so shrinking works at the parameter level while
the inputs stay as adversarial as the CLI harness's.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.cfg.blocks import BlockKind
from repro.cfg.layout import Layout
from repro.cfg.program import ProgramBuilder
from repro.profiling.trace import SEPARATOR, BlockTrace
from repro.simulators.fetch import simulate_fetch
from repro.simulators.icache import CacheConfig, count_misses, simulate_victim_cache
from repro.simulators.tracecache import TraceCacheConfig, simulate_trace_cache
from repro.validate.generators import random_case
from repro.validate.oracles import (
    oracle_direct_mapped,
    oracle_fetch,
    oracle_trace_cache,
    oracle_two_way_lru,
    oracle_victim,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
# Window sizes down to 1 event: the most boundary-straddling shape possible.
windows = st.sampled_from([1, 2, 3, 7, 64, 1_000_000])


@given(seed=seeds, chunk_events=windows)
def test_fetch_matches_oracle(seed, chunk_events):
    case = random_case(seed)
    line_bytes = case.cache_configs[0].line_bytes
    ora = oracle_fetch(
        case.trace, case.program, case.layout,
        line_bytes=line_bytes, chunk_events=chunk_events,
    )
    prod = simulate_fetch(
        case.trace, case.program, case.layout,
        line_bytes=line_bytes, chunk_events=chunk_events,
    )
    assert prod.n_instructions == ora.n_instructions
    assert prod.n_fetches == ora.n_fetches
    assert prod.n_taken == ora.n_taken
    lines = np.concatenate(prod.line_chunks).tolist() if prod.line_chunks else []
    assert lines == ora.lines


@given(seed=seeds, chunk_events=windows)
def test_trace_cache_matches_oracle(seed, chunk_events):
    case = random_case(seed)
    line_bytes = case.cache_configs[0].line_bytes
    ora = oracle_trace_cache(
        case.trace, case.program, case.layout, case.tc_config,
        line_bytes=line_bytes, chunk_events=chunk_events,
    )
    prod = simulate_trace_cache(
        case.trace, case.program, case.layout, case.tc_config,
        line_bytes=line_bytes, chunk_events=chunk_events,
    )
    assert (prod.n_hits, prod.n_misses) == (ora.n_hits, ora.n_misses)
    assert prod.n_instructions == ora.n_instructions
    miss_lines = (
        np.concatenate(prod.miss_line_chunks).tolist() if prod.miss_line_chunks else []
    )
    assert miss_lines == ora.miss_lines


@given(seed=seeds)
def test_icache_counters_match_oracle(seed):
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, 200, size=int(rng.integers(0, 500))).tolist()
    line_bytes = 32
    direct = CacheConfig(size_bytes=8 * line_bytes, line_bytes=line_bytes)
    two_way = CacheConfig(size_bytes=16 * line_bytes, line_bytes=line_bytes, associativity=2)
    victim = CacheConfig(size_bytes=8 * line_bytes, line_bytes=line_bytes, victim_lines=4)
    chunks = [np.asarray(lines, dtype=np.int64)] if lines else []
    assert count_misses(chunks, direct) == oracle_direct_mapped(lines, direct)
    assert count_misses(chunks, two_way) == oracle_two_way_lru(lines, two_way)
    expected_victim = oracle_victim(lines, victim)
    assert count_misses(chunks, victim) == expected_victim
    assert simulate_victim_cache(np.asarray(lines, dtype=np.int64), victim) == expected_victim


def _straight_line_program(n_blocks, block_size=4):
    builder = ProgramBuilder()
    builder.add_procedure(
        "p", "gen", [block_size] * n_blocks, [int(BlockKind.FALL_THROUGH)] * n_blocks
    )
    return builder.build()


def test_window_of_one_restarts_every_fetch():
    """chunk_events=1 puts every event in its own window: no fall-through
    merging is possible, so a 4-instruction block is one fetch each."""
    program = _straight_line_program(3)
    layout = Layout.original(program)
    trace = BlockTrace(np.asarray([0, 1, 2], dtype=np.int32))
    split = oracle_fetch(trace, program, layout, chunk_events=1)
    whole = oracle_fetch(trace, program, layout, chunk_events=1_000_000)
    assert split.n_instructions == whole.n_instructions == 12
    # Whole-trace: the 12 sequential instructions need a single SEQ.3 probe
    # fewer than the boundary-truncated run (fetch width 16 > 12).
    assert whole.n_fetches < split.n_fetches == 3
    prod = simulate_fetch(trace, program, layout, chunk_events=1)
    assert (prod.n_fetches, prod.n_instructions) == (split.n_fetches, 12)


def test_separator_only_window_is_skipped():
    """A window that is all separators must vanish without perturbing the
    sequential-transition detection around it."""
    program = _straight_line_program(4)
    layout = Layout.original(program)
    events = [0, 1, SEPARATOR, SEPARATOR, 2, 3]
    trace = BlockTrace(np.asarray(events, dtype=np.int32))
    for chunk_events in (2, 3, 6, 1_000_000):
        ora = oracle_fetch(trace, program, layout, chunk_events=chunk_events)
        prod = simulate_fetch(trace, program, layout, chunk_events=chunk_events)
        assert prod.n_instructions == ora.n_instructions == 16
        assert prod.n_fetches == ora.n_fetches
        assert prod.n_taken == ora.n_taken


def test_trace_cache_entries_survive_window_boundaries():
    """A loop that fits one entry must keep hitting even when every window
    holds a single event — the cache is hardware, not a per-chunk object."""
    program = _straight_line_program(1, block_size=4)
    layout = Layout.original(program)
    trace = BlockTrace(np.zeros(50, dtype=np.int32))
    config = TraceCacheConfig(n_entries=4, trace_instructions=16, branch_limit=3)
    split = oracle_trace_cache(trace, program, layout, config, chunk_events=1)
    prod = simulate_trace_cache(trace, program, layout, config, chunk_events=1)
    assert (prod.n_hits, prod.n_misses) == (split.n_hits, split.n_misses)
    assert split.n_hits > 0  # the repeated block hits after its first fill


def test_victim_swap_keeps_hot_pair_resident():
    """Jouppi's swap: two conflicting lines ping-pong between the primary
    and a 1-line victim buffer, so only the 2 cold misses remain."""
    config = CacheConfig(size_bytes=4 * 32, line_bytes=32, victim_lines=1)
    lines = [0, 4, 0, 4, 0, 4, 0, 4]  # same set in a 4-set cache
    assert oracle_victim(lines, config) == 2
    no_victim = CacheConfig(size_bytes=4 * 32, line_bytes=32)
    assert oracle_direct_mapped(lines, no_victim) == 8
