"""Hypothesis drivers for the metamorphic laws.

Each law already runs inside ``python -m repro.validate``; here Hypothesis
owns the seed and the simulation window so the laws are also exercised
(and shrunk) under pytest, including windows small enough that every
fetch and fill window truncates at a chunk boundary.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.validate.laws import (
    LAW_CHUNK_EVENTS,
    law_cfa_conflict_free,
    law_cold_permutation,
    law_concat_vs_chunked,
    law_fused_group_split,
    law_shard_split,
    run_laws,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
# 1 and 2 are harsher than the CLI's LAW_CHUNK_EVENTS: every window holds
# at most a couple of events, so *every* transition crosses a boundary.
windows = st.sampled_from([1, 2, 7, 64, 1_000_000])


def test_cli_windows_include_boundary_and_single_chunk():
    assert min(LAW_CHUNK_EVENTS) <= 8  # boundary-heavy window
    assert max(LAW_CHUNK_EVENTS) >= 100_000  # single-chunk fast path


@given(seed=seeds, chunk_events=windows)
def test_law_concat_vs_chunked(seed, chunk_events, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("law1")
    rng = np.random.default_rng(seed)
    assert law_concat_vs_chunked(rng, tmp, chunk_events) == []


@given(seed=seeds, chunk_events=windows)
def test_law_cold_permutation(seed, chunk_events):
    rng = np.random.default_rng(seed)
    assert law_cold_permutation(rng, chunk_events) == []


@given(seed=seeds, chunk_events=windows)
def test_law_cfa_conflict_free(seed, chunk_events):
    rng = np.random.default_rng(seed)
    assert law_cfa_conflict_free(rng, chunk_events) == []


@given(seed=seeds, chunk_events=windows)
def test_law_fused_group_split(seed, chunk_events):
    rng = np.random.default_rng(seed)
    assert law_fused_group_split(rng, chunk_events) == []


@given(seed=seeds, chunk_events=windows)
def test_law_shard_split(seed, chunk_events):
    rng = np.random.default_rng(seed)
    assert law_shard_split(rng, chunk_events) == []


@pytest.mark.parametrize("seed", [0, 7])
def test_run_laws_clean(seed):
    n_cases, violations = run_laws(seed, rounds=3)
    assert n_cases == 3 * 5 * len(LAW_CHUNK_EVENTS)  # 5 laws per round/window
    assert violations == []
