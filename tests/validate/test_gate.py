"""The paper-shape gate: every EXPERIMENTS.md claim holds on the gate
workload, the report schema is stable, and the gate actually fails when a
claim is broken."""

import json

import pytest

from repro.experiments import figure3
from repro.validate.gate import (
    FIGURE3_DISCARDED,
    FIGURE3_MAIN,
    GATE_GRID,
    GATE_SCALE,
    check_figure3,
    check_paper_shape,
    run_validation,
)


def test_figure3_claims_exact():
    claims = check_figure3()
    assert [c.claim_id for c in claims] == [
        "figure3.main_trace",
        "figure3.secondary",
        "figure3.discarded",
    ]
    assert all(c.passed for c in claims), [c.detail for c in claims if not c.passed]
    # The gate pins the paper's worked example verbatim.
    assert FIGURE3_MAIN == ["A1", "A2", "A3", "A4", "C1", "C2", "C3", "C4", "A7", "A8"]
    assert FIGURE3_DISCARDED == {"A6", "B1", "C5"}


def test_figure3_gate_detects_regression(monkeypatch):
    monkeypatch.setattr(
        figure3, "compute", lambda *a, **k: ([["A1", "A2"]], ["A6", "B1", "C5"])
    )
    claims = check_figure3()
    assert not claims[0].passed  # main trace wrong
    assert claims[2].passed  # discarded still right


@pytest.fixture(scope="module")
def paper_shape():
    return check_paper_shape(GATE_SCALE, GATE_GRID)


def test_paper_shape_all_claims_pass(paper_shape):
    claims, meta = paper_shape
    failed = [(c.claim_id, c.detail) for c in claims if not c.passed]
    assert failed == []
    assert meta["scale"] == GATE_SCALE
    assert meta["n_instructions"] > 0


def test_paper_shape_covers_every_table_and_figure(paper_shape):
    claims, _meta = paper_shape
    ids = {c.claim_id for c in claims}
    for row in GATE_GRID:
        assert f"table3.stc_beats_orig[{row[0]},{row[1]}]" in ids
        assert f"table4.stc_beats_orig[{row[0]},{row[1]}]" in ids
        assert f"table4.combined_beats_parts[{row[0]},{row[1]}]" in ids
    largest = max(GATE_GRID)
    assert f"table4.combined_best[{largest[0]},{largest[1]}]" in ids
    prefixes = {claim_id.split(".")[0] for claim_id in ids}
    assert prefixes == {"figure3", "table1", "table2", "figure2", "table3", "table4"}


def test_run_validation_report_schema():
    report = run_validation(seed=0, cases=5, law_rounds=1, paper_shape=False)
    assert report["schema_version"] == 1
    assert report["seed"] == 0
    assert report["differential"]["cases"] == 5
    assert report["laws"]["cases"] == 1 * 5 * 2  # 5 laws x 2 window settings
    assert "paper_shape" not in report
    assert report["passed"] is True
    json.dumps(report)  # the report must serialize as-is
