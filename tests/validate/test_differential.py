"""The differential harness: clean runs find nothing, injected bugs are
caught.

The injected-bug tests are the harness's own test suite: they monkeypatch
a production constant or helper and assert the diff reports a divergence,
proving the harness actually observes the counter it claims to check.
"""

import pytest

import repro.simulators.fetch as fetch_mod
from repro.validate.differential import (
    diff_fetch_case,
    diff_trace_cache_case,
    run_differential,
)
from repro.validate.generators import random_case

# Seeds whose generated traces are non-trivial (several hundred events);
# used by the injected-bug tests so a patched simulator must diverge.
_BUSY_SEEDS = [3, 5, 11, 17, 23]


def test_clean_slice_has_no_divergences():
    n_cases, divergences = run_differential(seed=0, n_cases=30)
    assert n_cases == 30
    assert divergences == []


def test_divergence_report_is_json_serializable():
    import json

    n_cases, divergences = run_differential(seed=1, n_cases=5)
    assert n_cases == 5
    json.dumps([d.to_json() for d in divergences])


def _total_events(seed):
    return len(random_case(seed).trace)


def test_injected_fetch_width_bug_is_caught(monkeypatch):
    """Shrinking the production fetch width must show up as a fetch-count
    (and usually line-stream) divergence on busy cases."""
    monkeypatch.setattr(fetch_mod, "FETCH_WIDTH", 8)
    found = []
    for seed in _BUSY_SEEDS:
        case = random_case(seed)
        found.extend(diff_fetch_case(case))
    assert found, "harness failed to notice FETCH_WIDTH=8"
    counters = {d.counter for d in found}
    assert any("n_fetches" in c or "lines" in c for c in counters)


def test_injected_orbit_bug_is_caught(monkeypatch):
    """Dropping the last fetch of every chunk must be seen by both the
    one-shot and the fused fetch paths."""
    real = fetch_mod._orbit_starts

    def lopsided(lengths, is_taken):
        starts = real(lengths, is_taken)
        return starts[:-1] if len(starts) else starts

    monkeypatch.setattr(fetch_mod, "_orbit_starts", lopsided)
    found = []
    for seed in _BUSY_SEEDS:
        if _total_events(seed) == 0:
            continue
        found.extend(diff_fetch_case(random_case(seed)))
    assert found, "harness failed to notice a dropped fetch"


def test_injected_branch_limit_bug_is_caught(monkeypatch):
    """The trace-cache diff shares SEQ.3's branch limit; lowering it
    changes fill lengths and therefore hits/misses."""
    monkeypatch.setattr(fetch_mod, "BRANCH_LIMIT", 1)
    found = []
    for seed in _BUSY_SEEDS:
        case = random_case(seed)
        found.extend(diff_fetch_case(case))
        found.extend(diff_trace_cache_case(case))
    assert found, "harness failed to notice BRANCH_LIMIT=1"


@pytest.mark.parametrize("seed", [0, 42])
def test_case_seeds_reproduce(seed):
    """A reported divergence must be reproducible from its seed alone."""
    a = random_case(seed)
    b = random_case(seed)
    assert a.describe() == b.describe()
    assert (a.trace.events == b.trace.events).all()
    assert (a.layout.address == b.layout.address).all()
