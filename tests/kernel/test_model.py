import numpy as np
import pytest

from repro.cfg import BlockKind
from repro.kernel import ColdCodeConfig, KernelModel, Registry
from repro.kernel.model import COLD_ONLY_MODULES, MODULE_LINK_ORDER


def small_registry():
    reg = Registry()

    @reg.routine("executor", sites=1, decides=1, op=True)
    def op_a():
        pass

    @reg.routine("access", sites=0, decides=2)
    def leaf_b():
        pass

    return reg


def test_empty_registry_rejected():
    with pytest.raises(ValueError):
        KernelModel(Registry(), cold=ColdCodeConfig(n_procedures=1))


def test_program_contains_hot_and_cold():
    model = KernelModel(small_registry(), seed=1, richness=1.0, cold=ColdCodeConfig(n_procedures=30))
    program = model.program
    assert program.n_procedures == 32
    hot = [p for p in program.procedures if not p.cold]
    assert {p.name.split(".")[-1] for p in hot} == {"op_a", "leaf_b"}
    cold = [p for p in program.procedures if p.cold]
    assert len(cold) == 30


def test_cold_modules_distribution():
    model = KernelModel(small_registry(), seed=1, richness=1.0, cold=ColdCodeConfig(n_procedures=200))
    cold_mods = {p.module for p in model.program.procedures if p.cold}
    # both cold-only and hot modules receive cold procedures
    assert cold_mods & set(COLD_ONLY_MODULES)
    assert cold_mods - set(COLD_ONLY_MODULES)
    for module in cold_mods:
        assert module in MODULE_LINK_ORDER


def test_link_order_groups_modules():
    model = KernelModel(small_registry(), seed=1, richness=1.0, cold=ColdCodeConfig(n_procedures=50))
    modules = [p.module for p in model.program.procedures]
    order = [MODULE_LINK_ORDER.index(m) for m in modules]
    assert order == sorted(order)


def test_deterministic_given_seed():
    a = KernelModel(small_registry(), seed=9, richness=1.5, cold=ColdCodeConfig(n_procedures=20))
    b = KernelModel(small_registry(), seed=9, richness=1.5, cold=ColdCodeConfig(n_procedures=20))
    np.testing.assert_array_equal(a.program.block_size, b.program.block_size)
    np.testing.assert_array_equal(a.program.block_kind, b.program.block_kind)
    c = KernelModel(small_registry(), seed=10, richness=1.5, cold=ColdCodeConfig(n_procedures=20))
    assert a.program.n_blocks != c.program.n_blocks or not np.array_equal(
        a.program.block_size, c.program.block_size
    )


def test_entry_of_is_procedure_entry():
    model = KernelModel(small_registry(), seed=1, richness=1.0, cold=ColdCodeConfig(n_procedures=5))
    program = model.program
    for proc in program.procedures:
        if not proc.cold:
            assert model.entry_of(proc.name) == proc.entry


def test_static_kind_mix_sane():
    model = KernelModel(small_registry(), seed=2, richness=10.0, cold=ColdCodeConfig(n_procedures=100))
    kinds = model.program.block_kind
    n = kinds.shape[0]
    branch_share = (kinds == BlockKind.BRANCH).sum() / n
    ret_share = (kinds == BlockKind.RETURN).sum() / n
    assert 0.2 < branch_share < 0.7
    assert ret_share > 0.005


def test_ops_flag_propagates():
    model = KernelModel(small_registry(), seed=1, richness=1.0, cold=ColdCodeConfig(n_procedures=5))
    ops = [p for p in model.program.procedures if p.is_operation]
    assert len(ops) == 1 and ops[0].name.endswith("op_a")
