import numpy as np
import pytest

from repro.cfg import BlockKind
from repro.kernel import (
    ColdCodeConfig,
    InlinePlan,
    KernelModel,
    Registry,
    clone_name,
    plan_inlining,
)
from repro.profiling import profile_trace


@pytest.fixture
def world():
    """Two callers sharing one hot helper."""
    reg = Registry()

    @reg.routine("executor", sites=1, decides=0, op=True)
    def caller_a(n):
        for _ in range(n):
            shared()

    @reg.routine("executor", sites=1, decides=0, op=True)
    def caller_b(n):
        for _ in range(n):
            shared()

    @reg.routine("access", sites=0, decides=1)
    def shared():
        from repro.kernel import decide

        decide(True)

    return reg, caller_a, caller_b


def names_of(reg):
    return {s.name.split(".")[-1]: s.name for s in reg.specs()}


def run_traced(model, caller_a, caller_b, n=20):
    tracer = model.tracer()
    with tracer:
        caller_a(n)
        caller_b(n)
    return tracer.take_trace()


def test_plan_picks_shared_callee(world):
    reg, caller_a, caller_b = world
    model = KernelModel(reg, seed=4, richness=1.0, cold=ColdCodeConfig(n_procedures=4))
    trace = run_traced(model, caller_a, caller_b)
    cfg = profile_trace(trace, model.program.n_blocks)
    plan = plan_inlining(model.program, cfg, min_call_fraction=0.01)
    callees = {callee for callee, _caller in plan.pairs}
    assert any("shared" in c for c in callees)
    assert plan.n_clones >= 2  # one clone per caller


def test_clone_route_table(world):
    reg, *_ = world
    ns = names_of(reg)
    plan = InlinePlan(((ns["shared"], ns["caller_a"]),))
    route = plan.route_table()
    assert route[(ns["caller_a"], ns["shared"])] == clone_name(ns["shared"], ns["caller_a"])


def test_cloned_model_routes_calls(world):
    reg, caller_a, caller_b = world
    ns = names_of(reg)
    clones = ((ns["shared"], ns["caller_a"]),)
    model = KernelModel(reg, seed=4, richness=1.0, cold=ColdCodeConfig(n_procedures=4), clones=clones)
    cname = clone_name(ns["shared"], ns["caller_a"])
    assert cname in model.routine_tables()
    trace = run_traced(model, caller_a, caller_b, n=5)
    blocks = set(trace.block_ids().tolist())
    clone_entry = model.entry_of(cname)
    base_entry = model.entry_of(ns["shared"])
    # caller_a's calls hit the clone; caller_b's still hit the base copy
    assert clone_entry in blocks
    assert base_entry in blocks


def test_clone_only_model_isolates_callers(world):
    reg, caller_a, caller_b = world
    ns = names_of(reg)
    clones = ((ns["shared"], ns["caller_a"]), (ns["shared"], ns["caller_b"]))
    model = KernelModel(reg, seed=4, richness=1.0, cold=ColdCodeConfig(n_procedures=4), clones=clones)
    trace = run_traced(model, caller_a, caller_b, n=5)
    blocks = set(trace.block_ids().tolist())
    assert model.entry_of(ns["shared"]) not in blocks  # fully replicated


def test_clone_grows_static_image(world):
    reg, *_ = world
    ns = names_of(reg)
    base = KernelModel(reg, seed=4, richness=1.0, cold=ColdCodeConfig(n_procedures=4))
    grown = KernelModel(
        reg, seed=4, richness=1.0, cold=ColdCodeConfig(n_procedures=4),
        clones=((ns["shared"], ns["caller_a"]),),
    )
    assert grown.program.n_instructions > base.program.n_instructions
    assert grown.program.n_procedures == base.program.n_procedures + 1


def test_clone_adjacent_to_caller(world):
    reg, *_ = world
    ns = names_of(reg)
    model = KernelModel(
        reg, seed=4, richness=1.0, cold=ColdCodeConfig(n_procedures=4),
        clones=((ns["shared"], ns["caller_a"]),),
    )
    procs = list(model.program.procedures)
    idx = {p.name: i for i, p in enumerate(procs)}
    assert idx[clone_name(ns["shared"], ns["caller_a"])] == idx[ns["caller_a"]] + 1


def test_clone_unknown_routine_rejected(world):
    reg, *_ = world
    with pytest.raises(ValueError):
        KernelModel(reg, seed=4, richness=1.0, cold=ColdCodeConfig(n_procedures=4), clones=(("ghost", "ghost2"),))


def test_empty_plan_when_no_calls():
    reg = Registry()

    @reg.routine("access", sites=0, decides=1)
    def lonely():
        pass

    model = KernelModel(reg, seed=4, richness=1.0, cold=ColdCodeConfig(n_procedures=2))
    tracer = model.tracer()
    with tracer:
        lonely()
    cfg = profile_trace(tracer.take_trace(), model.program.n_blocks)
    assert plan_inlining(model.program, cfg).n_clones == 0
