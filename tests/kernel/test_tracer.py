import numpy as np
import pytest

from repro.cfg import BlockKind
from repro.kernel import ColdCodeConfig, ContractError, KernelModel, Registry
from repro.kernel.body import Category


@pytest.fixture
def world():
    """A tiny instrumented 'engine': parent calls child per item, child decides."""
    reg = Registry()
    calls = {}

    @reg.routine("executor", sites=1, decides=0, op=True)
    def parent(items):
        return [child(x) for x in items]

    @reg.routine("access", sites=0, decides=1)
    def child(x):
        from repro.kernel import decide

        return decide(x > 0)

    model = KernelModel(reg, seed=5, richness=1.0, cold=ColdCodeConfig(n_procedures=4))
    return reg, model, parent, child


def kinds_of(model, trace):
    return model.program.block_kind[trace.block_ids()]


def test_untraced_call_passthrough(world):
    _, _, parent, _ = world
    assert parent([1, -1]) == [True, False]


def test_trace_structure(world):
    _, model, parent, _ = world
    tracer = model.tracer()
    with tracer:
        parent([1, -1, 2])
    trace = tracer.take_trace()
    assert trace.n_events > 0
    kinds = kinds_of(model, trace)
    # one CALL per child invocation, balanced with RETURNs (child + parent returns)
    assert (kinds == BlockKind.CALL).sum() == 3
    assert (kinds == BlockKind.RETURN).sum() == 4
    # first event is the parent's entry block
    assert trace.block_ids()[0] == model.entry_of("world.<locals>.parent")


def test_trace_is_deterministic_given_data(world):
    _, model, parent, _ = world
    t1 = model.tracer()
    with t1:
        parent([1, -1])
    a = t1.take_trace()
    t2 = model.tracer()
    with t2:
        parent([1, -1])
    b = t2.take_trace()
    np.testing.assert_array_equal(a.events, b.events)


def test_decide_outcome_changes_path(world):
    _, model, parent, _ = world
    t1 = model.tracer()
    with t1:
        parent([1])
    t2 = model.tracer()
    with t2:
        parent([-1])
    assert not np.array_equal(t1.take_trace().events, t2.take_trace().events)


def test_end_run_inserts_separator(world):
    _, model, parent, _ = world
    tracer = model.tracer()
    with tracer:
        parent([1])
        tracer.end_run()
        parent([2])
    trace = tracer.take_trace()
    assert (trace.events == -1).sum() == 1


def test_all_emitted_blocks_are_warm_categories(world):
    """COLD blocks must never appear in a trace."""
    _, model, parent, _ = world
    tracer = model.tracer()
    with tracer:
        parent([3, -3, 5, 0])
    trace = tracer.take_trace()
    cats = set()
    for name, (cat, hot, alt, base, fanout) in model.routine_tables().items():
        for gid in trace.block_ids():
            local = gid - base
            if 0 <= local < len(cat):
                cats.add(Category(cat[local]))
    assert Category.COLD not in cats


def test_nested_tracers_rejected(world):
    _, model, parent, _ = world
    with model.tracer():
        with pytest.raises(RuntimeError):
            with model.tracer():
                pass


def test_contract_error_call_without_sites():
    reg = Registry()

    @reg.routine("executor", sites=0)
    def bad_parent():
        return leaf()

    @reg.routine("access", sites=0)
    def leaf():
        return 1

    model = KernelModel(reg, seed=1, richness=1.0, cold=ColdCodeConfig(n_procedures=2))
    with pytest.raises(ContractError, match="call made|sites=0"):
        with model.tracer():
            bad_parent()


def test_contract_error_decide_without_diamonds():
    reg = Registry()

    @reg.routine("executor", sites=0, decides=0)
    def no_dyn():
        from repro.kernel import decide

        decide(True)

    model = KernelModel(reg, seed=1, richness=1.0, cold=ColdCodeConfig(n_procedures=2))
    with pytest.raises(ContractError):
        with model.tracer():
            no_dyn()


def test_decide_outside_routine_ignored(world):
    _, model, _, _ = world
    from repro.kernel import decide

    with model.tracer() as tracer:
        assert decide(True) is True
        assert tracer.n_events == 0


def test_scope_instrumentation():
    reg = Registry()
    scope = reg.scope("btree_search[pk]", "access", sites=0, decides=1)

    @reg.routine("executor", sites=1, op=True)
    def run():
        with scope:
            from repro.kernel import decide

            decide(True)

    model = KernelModel(reg, seed=2, richness=1.0, cold=ColdCodeConfig(n_procedures=2))
    tracer = model.tracer()
    with tracer:
        run()
    trace = tracer.take_trace()
    assert model.entry_of("btree_search[pk]") in set(trace.block_ids().tolist())


def test_scope_reentrant():
    reg = Registry()
    scope = reg.scope("recurse", "access", sites=1, decides=0)

    @reg.routine("executor", sites=1, op=True)
    def run(n):
        def go(k):
            with scope:
                if k:
                    go(k - 1)

        go(n)

    model = KernelModel(reg, seed=3, richness=1.0, cold=ColdCodeConfig(n_procedures=2))
    tracer = model.tracer()
    with tracer:
        run(3)
    trace = tracer.take_trace()
    kinds = model.program.block_kind[trace.block_ids()]
    assert (kinds == BlockKind.RETURN).sum() == 5  # 4 scope exits + run's return
