import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import BlockKind
from repro.kernel import Category, RoutineSpec, generate_body
from repro.util import stream


def body_for(sites, decides, seed=1, richness=1.0):
    spec = RoutineSpec(name=f"r_{sites}_{decides}", module="executor", sites=sites, decides=decides)
    return generate_body(spec, stream(seed, "t", spec.name), richness=richness)


@given(
    sites=st.integers(min_value=0, max_value=4),
    decides=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=200),
    richness=st.sampled_from([0.5, 1.0, 2.5, 4.0]),
)
@settings(max_examples=150, deadline=None)
def test_generated_bodies_always_validate(sites, decides, seed, richness):
    body = body_for(sites, decides, seed=seed, richness=richness)
    # validate() raises on malformed bodies; also check invariants directly.
    assert body.n_blocks >= 2
    assert body.n_of(Category.CALL) == (0 if sites == 0 else sites)
    assert body.n_of(Category.DYN) == decides
    assert body.n_of(Category.RETURN) >= 1
    assert all(s >= 1 for s in body.size)


@given(
    sites=st.integers(min_value=0, max_value=3),
    decides=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=100, deadline=None)
def test_hot_walk_reaches_return(sites, decides, seed):
    """Following default edges (exit intent) from entry must hit a return."""
    body = body_for(sites, decides, seed=seed)
    cur = body.entry
    for _ in range(4 * body.n_blocks + 8):
        cat = Category(body.cat[cur])
        if cat == Category.RETURN:
            break
        if cat in (Category.JUNCTION, Category.GUARD):
            cur = body.alt[cur]
        else:
            cur = body.hot[cur]
    else:
        pytest.fail("exit walk did not terminate")


@given(
    sites=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=60, deadline=None)
def test_call_walk_reaches_every_site(sites, seed):
    """Repeatedly advancing with call intent must cycle through all call sites."""
    body = body_for(sites, 2, seed=seed)
    cur = body.entry
    seen_calls = []
    for _ in range(3 * sites):
        for _ in range(4 * body.n_blocks + 8):
            cur = body.hot[cur]
            if Category(body.cat[cur]) == Category.CALL:
                seen_calls.append(cur)
                cur = body.hot[cur]  # resume at the return target
                break
        else:
            pytest.fail("call walk did not reach a call block")
    assert len(set(seen_calls)) == sites


def test_deterministic_generation():
    a = body_for(2, 3, seed=7)
    b = body_for(2, 3, seed=7)
    assert a.cat == b.cat and a.hot == b.hot and a.alt == b.alt and a.size == b.size


def test_richness_grows_bodies():
    small = [body_for(2, 2, seed=s, richness=1.0).n_blocks for s in range(30)]
    big = [body_for(2, 2, seed=s, richness=3.0).n_blocks for s in range(30)]
    assert np.mean(big) > np.mean(small)


def test_kinds_consistent_with_structure():
    body = body_for(2, 2, seed=3)
    for b in range(body.n_blocks):
        cat = Category(body.cat[b])
        kind = BlockKind(body.kind[b])
        if cat == Category.CALL:
            assert kind == BlockKind.CALL
        elif cat == Category.RETURN:
            assert kind == BlockKind.RETURN
        elif cat in (Category.DYN, Category.FIXED, Category.JUNCTION, Category.GUARD):
            assert kind == BlockKind.BRANCH
        elif kind == BlockKind.FALL_THROUGH:
            assert body.hot[b] == b + 1


def test_local_succ_edges_within_body():
    body = body_for(3, 3, seed=11)
    succ = body.local_succ()
    for src, dsts in succ.items():
        assert 0 <= src < body.n_blocks
        for d in dsts:
            assert 0 <= d < body.n_blocks


def test_cold_blocks_present_with_fixed_diamonds():
    # across many seeds, fixed diamonds (and their cold chains) must appear
    total_cold = sum(body_for(2, 2, seed=s, richness=2.5).n_of(Category.COLD) for s in range(20))
    assert total_cold > 0


def test_invalid_richness_rejected():
    spec = RoutineSpec(name="x", module="m")
    with pytest.raises(ValueError):
        generate_body(spec, stream(1, "x"), richness=0.0)


def test_mean_block_size_near_paper():
    sizes = []
    for s in range(60):
        body = body_for(2, 2, seed=s, richness=2.5)
        sizes.extend(body.size)
    mean = float(np.mean(sizes))
    assert 3.0 < mean < 7.0  # paper: ~4.7 instructions per block
