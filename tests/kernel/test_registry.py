import pytest

from repro.kernel import Registry, RoutineSpec, decide, default_registry


def test_spec_validation():
    with pytest.raises(ValueError):
        RoutineSpec(name="x", module="m", sites=-1)
    with pytest.raises(ValueError):
        RoutineSpec(name="x", module="m", decides=-2)


def test_duplicate_name_rejected():
    reg = Registry()
    reg.add(RoutineSpec(name="a", module="m"))
    with pytest.raises(ValueError):
        reg.add(RoutineSpec(name="a", module="m"))


def test_specs_sorted_by_name():
    reg = Registry()
    for name in ("zeta", "alpha", "mid"):
        reg.add(RoutineSpec(name=name, module="m"))
    assert [s.name for s in reg.specs()] == ["alpha", "mid", "zeta"]


def test_decorator_registers_and_passes_through():
    reg = Registry()

    @reg.routine("executor", sites=0, name="myfn")
    def myfn(x):
        return x * 2

    assert "myfn" in reg
    assert myfn(21) == 42
    assert myfn.__kernel_spec__.module == "executor"
    assert myfn.__name__ == "myfn"


def test_clone_is_independent():
    reg = Registry()
    reg.add(RoutineSpec(name="a", module="m"))
    copy = reg.clone()
    copy.add(RoutineSpec(name="b", module="m"))
    assert "b" in copy and "b" not in reg
    assert "a" in copy


def test_scope_registers():
    reg = Registry()
    scope = reg.scope("x[1]", "access", sites=0, decides=1)
    assert "x[1]" in reg
    with scope:  # no tracer active: must be a no-op
        pass


def test_decide_without_tracer_is_passthrough():
    assert decide(1) is True
    assert decide("") is False
    assert decide(None) is False


def test_default_registry_contains_minidb_routines():
    import repro.minidb  # noqa: F401 - triggers registration

    reg = default_registry()
    assert "ExecSeqScan" in reg
    assert "ExecQual" in reg
    assert "ReadBuffer" in reg
    assert "smgr_read" in reg
    ops = [s for s in reg.specs() if s.op]
    names = {s.name for s in ops}
    # the paper's executor operations (Section 2.1)
    for op in ("ExecSeqScan", "ExecIndexScan", "ExecNestLoop", "ExecHashJoin",
               "ExecMergeJoin", "ExecSort", "ExecAgg", "ExecGroup"):
        assert op in names, op
