"""Property-based fuzzing of the trace walker over random call DAGs.

Generates random instrumented programs (routines calling each other along
a random DAG, with random decide() calls), executes them traced, and
checks the structural invariants every trace must satisfy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import BlockKind
from repro.kernel import ColdCodeConfig, KernelModel, Registry, decide


def build_random_world(structure, decide_bits):
    """structure: list over routines of (n_children_edges, decides); edges
    go from lower to higher index (a DAG), so calls always terminate."""
    reg = Registry()
    n = len(structure)
    funcs = [None] * n
    bits = iter(decide_bits)

    def make(idx, children, n_decides):
        def body():
            for _ in range(n_decides):
                decide(next(bits, True))
            for child in children:
                funcs[child]()
            if n_decides:
                decide(next(bits, False))

        body.__name__ = f"r{idx}"
        body.__qualname__ = f"r{idx}"
        return body

    for idx in reversed(range(n)):
        n_edges, n_decides = structure[idx]
        children = [c for c in range(idx + 1, min(idx + 1 + n_edges, n))]
        body = make(idx, children, n_decides)
        sites = max(1, len(children)) if children else 0
        wrapped = reg.routine("executor", sites=sites, decides=max(1, n_decides) if n_decides else 0, op=idx == 0)(body)
        funcs[idx] = wrapped
    return reg, funcs


@given(
    structure=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3)),
        min_size=1,
        max_size=8,
    ),
    decide_bits=st.lists(st.booleans(), max_size=64),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=60, deadline=None)
def test_random_call_dags_trace_cleanly(structure, decide_bits, seed):
    reg, funcs = build_random_world(structure, decide_bits)
    model = KernelModel(reg, seed=seed, richness=1.0, cold=ColdCodeConfig(n_procedures=2))
    tracer = model.tracer()
    with tracer:
        funcs[0]()
    trace = tracer.take_trace()
    assert trace.n_events > 0

    program = model.program
    ids = trace.block_ids()
    kinds = program.block_kind[ids]

    # every emitted block belongs to a hot procedure
    procs = program.block_proc[ids]
    assert not any(program.procedures[p].cold for p in np.unique(procs))

    # call/return balance: every instrumented entry produces one return;
    # returns exceed calls exactly by the number of top-level invocations (1)
    n_calls = int((kinds == BlockKind.CALL).sum())
    n_returns = int((kinds == BlockKind.RETURN).sum())
    assert n_returns == n_calls + 1

    # the trace starts at the root's entry block
    assert ids[0] == model.entry_of(funcs[0].__kernel_spec__.name)

    # determinism: same inputs, same trace
    tracer2 = model.tracer()
    reg2, funcs2 = build_random_world(structure, decide_bits)
    model2 = KernelModel(reg2, seed=seed, richness=1.0, cold=ColdCodeConfig(n_procedures=2))
    tracer2 = model2.tracer()
    with tracer2:
        funcs2[0]()
    np.testing.assert_array_equal(trace.events, tracer2.take_trace().events)


@given(
    n_calls=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=30, deadline=None)
def test_repeated_calls_cycle_ring_consistently(n_calls, seed):
    reg = Registry()

    @reg.routine("executor", sites=2, decides=1, op=True)
    def parent(n):
        for i in range(n):
            decide(i % 2 == 0)
            child()

    @reg.routine("access", sites=0, decides=0)
    def child():
        return None

    model = KernelModel(reg, seed=seed, richness=1.0, cold=ColdCodeConfig(n_procedures=2))
    tracer = model.tracer()
    with tracer:
        parent(n_calls)
    trace = tracer.take_trace()
    kinds = model.program.block_kind[trace.block_ids()]
    assert int((kinds == BlockKind.CALL).sum()) == n_calls
    assert int((kinds == BlockKind.RETURN).sum()) == n_calls + 1
