"""CLI smoke for ``python -m repro.serve``: --help and the hermetic
``--port 0 --once`` self-terminating mode (bind, self-check, exit)."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run(args: list[str], timeout: float = 120.0) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep * bool(env.get("PYTHONPATH")) + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.serve", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


def test_help_exits_zero():
    proc = _run(["--help"])
    assert proc.returncode == 0
    assert "usage" in proc.stdout.lower()
    for flag in ("--port", "--queue-limit", "--workers", "--once"):
        assert flag in proc.stdout


def test_once_mode_self_terminates(tmp_path):
    proc = _run(["--port", "0", "--once", "--spool", str(tmp_path / "spool")])
    assert proc.returncode == 0, proc.stderr
    assert "repro.serve listening on http://127.0.0.1:" in proc.stdout
    assert "self-check ok" in proc.stdout


def test_bad_flag_exits_nonzero():
    proc = _run(["--not-a-flag"])
    assert proc.returncode != 0
    assert "usage" in proc.stderr.lower()
