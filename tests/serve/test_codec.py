"""Job-spec validation and deterministic result serialization."""

import pytest

from repro.experiments.config import CACHE_CFA_GRID
from repro.experiments.suite import CellMetrics, SuiteResults
from repro.serve.codec import (
    JobSpec,
    SpecError,
    canonical_json,
    result_digest,
    serialize_suite,
)


def test_defaults_match_batch_cli():
    spec = JobSpec.from_dict({})
    assert spec.scale == 0.0005
    assert spec.seed == 7
    assert spec.kernel_seed == 2029
    assert spec.grid == CACHE_CFA_GRID
    assert spec.tc_rows is None
    assert spec.trace_id is None


def test_grid_normalizes_to_tuples():
    spec = JobSpec.from_dict({"grid": [[8, 2], [16, 4]], "tc_rows": [[8, 2]]})
    assert spec.grid == ((8, 2), (16, 4))
    assert spec.tc_rows == ((8, 2),)


def test_equal_specs_share_a_digest():
    a = JobSpec.from_dict({"scale": 0.0005, "grid": [[8, 2]]})
    b = JobSpec.from_dict({"grid": [[8, 2]], "scale": 0.0005})
    assert a.digest() == b.digest()
    c = JobSpec.from_dict({"grid": [[8, 2]], "scale": 0.001})
    assert a.digest() != c.digest()


@pytest.mark.parametrize(
    "payload",
    [
        [],  # not an object
        {"scal": 0.1},  # typo key
        {"scale": "big"},
        {"scale": 0.0},
        {"scale": 2.0},
        {"scale": True},
        {"seed": 1.5},
        {"seed": True},
        {"grid": []},
        {"grid": [[8]]},
        {"grid": [[8, 0]]},
        {"grid": [[8, -2]]},
        {"grid": [[8, 2.5]]},
        {"grid": "8/2"},
        {"grid": [[8, 2]] * 65},  # over MAX_GRID_ROWS
        {"tc_rows": [[8, "2"]]},
        {"trace_id": "xyz"},
        {"trace_id": "ABC123"},
        {"trace_id": 42},
    ],
    ids=repr,
)
def test_bad_specs_rejected(payload):
    with pytest.raises(SpecError):
        JobSpec.from_dict(payload)


def test_as_dict_round_trips():
    spec = JobSpec.from_dict({"scale": 0.0005, "grid": [[8, 2]], "trace_id": "a" * 40})
    assert JobSpec.from_dict(spec.as_dict()) == spec


def _tiny_suite() -> SuiteResults:
    suite = SuiteResults(n_instructions=100)
    cell = CellMetrics(miss_rate=1.5, ipc=5.0, ideal_ipc=8.0, run_length=12.0)
    suite.cells[(8, 2)] = {"orig": cell, "ops": cell}
    suite.assoc_miss[8] = 1.1
    suite.victim_miss[8] = 0.9
    suite.tc_ipc[8] = 6.0
    suite.tc_ideal = 9.0
    suite.tc_hit_rate = 0.8
    suite.tc_ops_ipc[(8, 2)] = 7.0
    suite.tc_ops_ideal[(8, 2)] = 9.5
    return suite


def test_serialization_is_deterministic_and_keyed_by_geometry():
    doc_a = serialize_suite(_tiny_suite())
    doc_b = serialize_suite(_tiny_suite())
    assert canonical_json(doc_a) == canonical_json(doc_b)
    assert result_digest(doc_a) == result_digest(doc_b)
    assert doc_a["cells"]["8/2"]["ops"]["miss_rate"] == 1.5
    assert doc_a["assoc_miss"]["8"] == 1.1
    assert doc_a["tc_ops_ipc"]["8/2"] == 7.0


def test_digest_sensitive_to_values():
    suite = _tiny_suite()
    base = result_digest(serialize_suite(suite))
    suite.tc_ideal += 1e-9
    assert result_digest(serialize_suite(suite)) != base
