"""Endpoint tests against an in-process server through the client library.

Fast protocol tests inject a stub ``execute_fn`` (no workloads built);
the round-trip/dedupe/upload-equivalence tests run real tiny jobs at
scale 0.0002 and share the session artifact cache with the CLI smoke
tests, so the workload build is paid at most once per session.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.experiments.suite import suite_for
from repro.serve.client import Backpressure, ServeClient, ServeError
from repro.serve.codec import JobSpec, canonical_json, serialize_suite
from repro.serve.server import ServeApp

TINY = {"scale": 0.0002, "grid": [[8, 2]]}


def run(coro):
    return asyncio.run(coro)


async def _started(tmp_path, **kwargs) -> tuple[ServeApp, ServeClient]:
    app = ServeApp(spool=tmp_path / "spool", **kwargs)
    await app.start()
    return app, ServeClient("127.0.0.1", app.port, tenant="test")


# -- protocol behaviour (stubbed execution) ------------------------------


def _slow_execute(release: threading.Event):
    def execute(spec: JobSpec, manifest) -> dict:
        if not release.wait(timeout=30):
            raise TimeoutError("test never released the executor")
        return {"digest": spec.digest()}

    return execute


def test_health_metrics_and_unknown_routes(tmp_path):
    async def scenario():
        app, client = await _started(tmp_path)
        try:
            assert (await client.health())["status"] == "ok"
            metrics = await client.metrics()
            assert metrics["queue"] == {"depth": 0, "limit": 16}
            assert metrics["jobs"]["submitted"] == 0
            with pytest.raises(ServeError) as err:
                await client.request_json("GET", "/v1/nope")
            assert err.value.status == 404
            with pytest.raises(ServeError) as err:
                await client.request_json("PUT", "/v1/jobs", {})
            assert err.value.status == 405
            with pytest.raises(ServeError) as err:
                await client.get_job("job-999999")
            assert err.value.status == 404
        finally:
            await app.stop()

    run(scenario())


def test_bad_specs_answer_400(tmp_path):
    async def scenario():
        app, client = await _started(tmp_path)
        try:
            for payload in ({"scal": 0.1}, {"grid": []}, {"scale": -1}):
                with pytest.raises(ServeError) as err:
                    await client.submit_job(payload)
                assert err.value.status == 400
            # non-JSON body
            with pytest.raises(ServeError) as err:
                await client.request_json(
                    "POST", "/v1/jobs", raw_body=b"{nope", content_type="application/json"
                )
            assert err.value.status == 400
            # a job referencing a never-uploaded trace
            with pytest.raises(ServeError) as err:
                await client.submit_job({"trace_id": "f" * 40})
            assert err.value.status == 404
        finally:
            await app.stop()

    run(scenario())


def test_saturated_queue_answers_429_then_recovers(tmp_path):
    release = threading.Event()

    async def scenario():
        app, client = await _started(
            tmp_path, queue_limit=1, workers=1, execute_fn=_slow_execute(release)
        )
        try:
            first = await client.submit_job({"scale": 0.0002, "seed": 1, "grid": [[8, 2]]})
            for _ in range(100):  # wait for the worker to pull it off the queue
                if (await client.get_job(first["id"]))["state"] == "running":
                    break
                await asyncio.sleep(0.01)
            queued = await client.submit_job({"scale": 0.0002, "seed": 2, "grid": [[8, 2]]})
            with pytest.raises(Backpressure) as err:
                await client.submit_job({"scale": 0.0002, "seed": 3, "grid": [[8, 2]]})
            assert err.value.status == 429
            assert err.value.retry_after >= 0
            assert (await client.metrics())["jobs"]["rejected"] == 1
            release.set()
            done = await client.wait_job(queued["id"], timeout=30)
            assert done["state"] == "completed"
            # capacity is back: a new submission is accepted
            again = await client.submit_job({"scale": 0.0002, "seed": 4, "grid": [[8, 2]]})
            assert (await client.wait_job(again["id"], timeout=30))["state"] == "completed"
        finally:
            release.set()
            await app.stop()

    run(scenario())


def test_identical_inflight_submissions_share_one_execution(tmp_path):
    release = threading.Event()
    calls = []

    def counting_execute(spec, manifest):
        calls.append(spec.digest())
        if not release.wait(timeout=30):
            raise TimeoutError("never released")
        return {"digest": spec.digest()}

    async def scenario():
        app, client = await _started(
            tmp_path, queue_limit=4, workers=1, execute_fn=counting_execute
        )
        try:
            spec = {"scale": 0.0002, "seed": 5, "grid": [[8, 2]]}
            jobs = [await client.submit_job(spec) for _ in range(3)]
            release.set()
            records = [await client.wait_job(j["id"], timeout=30) for j in jobs]
            assert all(r["state"] == "completed" for r in records)
            assert len(calls) == 1, "identical specs must share one execution"
            assert {r["source"] for r in records} == {"computed", "inflight"}
            exec_id = records[0]["exec_id"]
            assert all(r["exec_id"] == exec_id for r in records)
            assert (await client.metrics())["dedupe"]["inflight"] == 2
        finally:
            release.set()
            await app.stop()

    run(scenario())


def test_failed_execution_reported_not_fatal(tmp_path):
    def exploding(spec, manifest):
        raise RuntimeError("boom")

    async def scenario():
        app, client = await _started(tmp_path, execute_fn=exploding)
        try:
            job = await client.submit_job({"scale": 0.0002, "seed": 6, "grid": [[8, 2]]})
            done = await client.wait_job(job["id"], timeout=30)
            assert done["state"] == "failed"
            assert "boom" in done["error"]
            assert (await client.health())["status"] == "ok", "server survived the failure"
        finally:
            await app.stop()

    run(scenario())


def test_malformed_upload_rejected_without_partial_store(tmp_path):
    async def scenario():
        app, client = await _started(tmp_path)
        try:
            with pytest.raises(ServeError) as err:
                await client.upload_trace(b"this is not an RTRC trace" * 100)
            assert err.value.status == 400
            assert "RTRC" in str(err.value) or "trace" in str(err.value)
            leftovers = list((app.spool / "traces").iterdir())
            assert leftovers == [], f"partial upload left behind: {leftovers}"
            # empty body: 411 (length required to be non-zero)
            with pytest.raises(ServeError) as err:
                await client.request_json(
                    "POST", "/v1/traces", raw_body=b"", content_type="application/octet-stream"
                )
            assert err.value.status == 411
            assert (await client.metrics())["traces"]["rejected"] == 2
        finally:
            await app.stop()

    run(scenario())


def test_oversized_upload_answers_413(tmp_path):
    async def scenario():
        app, client = await _started(tmp_path, max_upload_bytes=64)
        try:
            with pytest.raises(ServeError) as err:
                await client.upload_trace(b"z" * 1024)
            assert err.value.status == 413
            assert list((app.spool / "traces").iterdir()) == []
        finally:
            await app.stop()

    run(scenario())


def test_shutdown_endpoint_releases_waiters(tmp_path):
    async def scenario():
        app, client = await _started(tmp_path)
        try:
            waiter = asyncio.create_task(app.wait_shutdown())
            await asyncio.sleep(0)
            assert not waiter.done()
            assert (await client.shutdown())["status"] == "shutting down"
            await asyncio.wait_for(waiter, timeout=5)
        finally:
            await app.stop()

    run(scenario())


# -- real jobs (tiny workload, shared session cache) ---------------------


def test_round_trip_dedupe_and_batch_identity(tmp_path):
    async def scenario():
        app, client = await _started(tmp_path, workers=2)
        try:
            job = await client.submit_job(TINY)
            assert job["state"] in ("queued", "running")
            done = await client.wait_job(job["id"], timeout=300)
            assert done["state"] == "completed", done.get("error")
            doc = done["result"]
            assert doc["n_instructions"] > 0
            assert set(doc["cells"]["8/2"]) == {"P&H", "Torr", "auto", "ops", "orig"}

            # a second tenant submitting the identical spec hits the cache
            other = ServeClient("127.0.0.1", app.port, tenant="tenant-2")
            again = await other.submit_job(TINY)
            done2 = await other.wait_job(again["id"], timeout=30)
            assert done2["source"] in ("cache", "inflight")
            assert done2["result_digest"] == done["result_digest"]
            assert (await client.metrics())["dedupe"]["total"] >= 1

            # byte-identical to the batch engine's answer for the same job
            spec = JobSpec.from_dict(TINY)
            suite = suite_for(spec.settings, spec.grid, tc_rows=spec.tc_rows)
            assert canonical_json(serialize_suite(suite)) == canonical_json(doc)

            # manifests exist for both the executed and the deduped job
            manifests = list((app.spool / "manifests").glob("*.json"))
            assert len(manifests) >= 2
        finally:
            await app.stop()

    run(scenario())


def test_uploaded_trace_job_matches_settings_job(tmp_path):
    """Uploading the workload's own Test trace and running it as a
    trace job must reproduce the settings-job result exactly."""

    async def scenario():
        app, client = await _started(tmp_path, workers=1)
        try:
            settings_job = await client.submit_job(TINY)
            base = await client.wait_job(settings_job["id"], timeout=300)
            assert base["state"] == "completed", base.get("error")

            from repro.experiments.harness import get_workload

            spec = JobSpec.from_dict(TINY)
            workload = get_workload(spec.settings)
            trace_bytes = workload.test_trace.path.read_bytes()

            meta = await client.upload_trace(trace_bytes)
            assert meta["n_events"] > 0 and not meta["deduped"]
            assert (await client.trace_info(meta["trace_id"]))["trace_id"] == meta["trace_id"]
            # identical re-upload dedupes on content address
            again = await client.upload_trace(trace_bytes)
            assert again["deduped"] and again["trace_id"] == meta["trace_id"]

            trace_job = await client.submit_job({**TINY, "trace_id": meta["trace_id"]})
            done = await client.wait_job(trace_job["id"], timeout=300)
            assert done["state"] == "completed", done.get("error")
            assert canonical_json(done["result"]) == canonical_json(base["result"])

            # and the trace-job result is now cached for other tenants
            rerun = await client.submit_job({**TINY, "trace_id": meta["trace_id"]})
            rerun_done = await client.wait_job(rerun["id"], timeout=30)
            assert rerun_done["source"] == "cache"
        finally:
            await app.stop()

    run(scenario())


def test_client_list_jobs_and_tenant_tagging(tmp_path):
    def instant(spec, manifest):
        return {"digest": spec.digest()}

    async def scenario():
        app, client = await _started(tmp_path, execute_fn=instant)
        try:
            job = await client.submit_job({"scale": 0.0002, "seed": 9, "grid": [[8, 2]]})
            await client.wait_job(job["id"], timeout=30)
            jobs = await client.list_jobs()
            assert [j["id"] for j in jobs] == [job["id"]]
            assert jobs[0]["tenant"] == "test"
            assert "result" not in jobs[0], "list view must not inline results"
        finally:
            await app.stop()

    run(scenario())
