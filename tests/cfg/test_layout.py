import numpy as np
import pytest

from repro.cfg import BlockKind, Layout, ProgramBuilder


@pytest.fixture
def program():
    b = ProgramBuilder()
    b.add_procedure("f", "m", sizes=[2, 3], kinds=[BlockKind.FALL_THROUGH, BlockKind.RETURN])
    b.add_procedure("g", "m", sizes=[4], kinds=[BlockKind.RETURN])
    return b.build()


def test_original_layout_addresses(program):
    lay = Layout.original(program)
    np.testing.assert_array_equal(lay.address, [0, 8, 20])
    assert lay.extent_bytes(program) == (2 + 3 + 4) * 4


def test_from_order_permutes(program):
    lay = Layout.from_order(program, [2, 0, 1], name="perm")
    assert lay.address[2] == 0
    assert lay.address[0] == 16
    assert lay.address[1] == 24
    np.testing.assert_array_equal(lay.order(), [2, 0, 1])


def test_from_order_rejects_non_permutation(program):
    with pytest.raises(ValueError):
        Layout.from_order(program, [0, 0, 1], name="bad")
    with pytest.raises(ValueError):
        Layout.from_order(program, [0, 1], name="bad")


def test_is_sequential(program):
    lay = Layout.original(program)
    assert lay.is_sequential(0, 1, program)
    assert not lay.is_sequential(1, 2, program) or lay.address[2] == lay.address[1] + 12
    # block 1 ends at 8+12=20, block 2 starts at 20: actually sequential
    assert lay.is_sequential(1, 2, program)


def test_placements_with_gap(program):
    lay = Layout.from_placements(program, {0: 0, 1: 100, 2: 200}, name="gappy")
    assert lay.extent_bytes(program) == 216


def test_placements_overlap_rejected(program):
    with pytest.raises(ValueError):
        Layout.from_placements(program, {0: 0, 1: 4, 2: 100}, name="overlap")


def test_placements_missing_rejected(program):
    with pytest.raises(ValueError):
        Layout.from_placements(program, {0: 0, 1: 8}, name="missing")


def test_start_offset(program):
    lay = Layout.from_order(program, [0, 1, 2], name="ofs", start=64)
    assert int(lay.address.min()) == 64


def test_save_load_roundtrip(program, tmp_path):
    lay = Layout.from_order(program, [2, 0, 1], name="perm")
    path = tmp_path / "layout.npz"
    lay.save(path)
    loaded = Layout.load(path, program)
    assert loaded.name == "perm"
    np.testing.assert_array_equal(loaded.address, lay.address)


def test_load_validates_against_program(program, tmp_path):
    other = Layout(name="bad", address=np.array([0, 0], dtype=np.int64))
    path = tmp_path / "bad.npz"
    other.save(path)
    with pytest.raises(ValueError):
        Layout.load(path, program)
