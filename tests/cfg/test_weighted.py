import numpy as np
import pytest

from repro.cfg import BlockKind, ProgramBuilder, WeightedCFG


def test_from_edges_and_queries():
    cfg = WeightedCFG.from_edges(5, [(0, 1, 10), (0, 2, 5), (1, 3, 15)])
    assert cfg.n_edges == 3
    assert cfg.successors(0) == [(1, 10), (2, 5)]
    assert cfg.out_weight(0) == 15
    assert cfg.probability(0, 1) == pytest.approx(10 / 15)
    assert cfg.hottest_successor(0) == (1, 10)
    assert cfg.hottest_successor(4) is None


def test_block_count_inferred():
    cfg = WeightedCFG.from_edges(4, [(0, 1, 3), (1, 2, 3)])
    # node counts: out-weight, sinks fall back to in-weight
    assert cfg.block_count[0] == 3
    assert cfg.block_count[2] == 3


def test_add_transition_accumulates():
    cfg = WeightedCFG(3)
    cfg.add_transition(0, 1, 2)
    cfg.add_transition(0, 1, 3)
    assert cfg.edge_count(0, 1) == 5
    assert cfg.predecessors(1) == [(0, 5)]


def test_nonpositive_count_rejected():
    cfg = WeightedCFG(2)
    with pytest.raises(ValueError):
        cfg.add_transition(0, 1, 0)


def test_executed_blocks():
    cfg = WeightedCFG.from_edges(6, [(0, 1, 1)], block_count=np.array([1, 1, 0, 0, 2, 0]))
    np.testing.assert_array_equal(cfg.executed_blocks(), [0, 1, 4])


def test_tie_break_by_block_id():
    cfg = WeightedCFG.from_edges(4, [(0, 3, 5), (0, 1, 5)])
    assert cfg.hottest_successor(0) == (1, 5)


def test_edges_iterator_sorted():
    cfg = WeightedCFG.from_edges(4, [(2, 0, 1), (0, 2, 2), (0, 1, 3)])
    assert list(cfg.edges()) == [(0, 1, 3), (0, 2, 2), (2, 0, 1)]


def test_procedure_call_graph():
    b = ProgramBuilder()
    b.add_procedure("f", "m", sizes=[1, 1], kinds=[BlockKind.CALL, BlockKind.RETURN])
    b.add_procedure("g", "m", sizes=[1], kinds=[BlockKind.RETURN])
    program = b.build()
    # f's call block (0) calls g entry (2); g's return (2) goes back to f (1)
    cfg = WeightedCFG.from_edges(3, [(0, 2, 7), (2, 1, 7)])
    assert cfg.procedure_call_graph(program) == {(0, 1): 7}
