import numpy as np
import pytest

from repro.cfg import BlockKind, Program, ProgramBuilder


def build_two_proc_program():
    b = ProgramBuilder()
    b.add_procedure(
        "main",
        "executor",
        sizes=[4, 2, 6],
        kinds=[BlockKind.FALL_THROUGH, BlockKind.CALL, BlockKind.RETURN],
        is_operation=True,
        local_succ={0: [1], 1: [2]},
    )
    b.add_procedure(
        "helper",
        "access",
        sizes=[3, 5],
        kinds=[BlockKind.BRANCH, BlockKind.RETURN],
        local_succ={0: [1]},
    )
    return b.build()


def test_builder_assigns_contiguous_ids():
    p = build_two_proc_program()
    assert p.procedures[0].blocks == (0, 1, 2)
    assert p.procedures[1].blocks == (3, 4)
    assert p.procedures[1].entry == 3


def test_counts():
    p = build_two_proc_program()
    assert p.n_blocks == 5
    assert p.n_procedures == 2
    assert p.n_instructions == 4 + 2 + 6 + 3 + 5
    assert p.image_bytes == p.n_instructions * 4


def test_block_proc_mapping():
    p = build_two_proc_program()
    np.testing.assert_array_equal(p.block_proc, [0, 0, 0, 1, 1])
    assert p.procedure_of(4).name == "helper"


def test_static_succ_rebased():
    p = build_two_proc_program()
    assert p.static_succ[3] == (4,)


def test_entry_blocks():
    p = build_two_proc_program()
    np.testing.assert_array_equal(p.entry_blocks(), [0, 3])


def test_membership_and_size():
    p = build_two_proc_program()
    proc = p.procedures[0]
    assert 2 in proc and 3 not in proc
    assert proc.size_instructions(p.block_size) == 12


def test_empty_procedure_rejected():
    b = ProgramBuilder()
    with pytest.raises(ValueError):
        b.add_procedure("x", "m", sizes=[], kinds=[])


def test_mismatched_sizes_kinds_rejected():
    b = ProgramBuilder()
    with pytest.raises(ValueError):
        b.add_procedure("x", "m", sizes=[1, 2], kinds=[BlockKind.RETURN])


def test_validate_rejects_zero_size_block():
    p = build_two_proc_program()
    bad = Program(
        block_size=np.array([0, 1, 1, 1, 1], dtype=np.int32),
        block_kind=p.block_kind,
        block_proc=p.block_proc,
        procedures=p.procedures,
        static_succ={},
    )
    with pytest.raises(ValueError):
        bad.validate()
