"""Edge cases across the executor operators."""

import pytest

from repro.minidb import Column, ColumnType, Database
from repro.minidb.executor import (
    AggSpec,
    Aggregate,
    GroupAggregate,
    HashJoin,
    Limit,
    Material,
    MergeJoin,
    NestLoopJoin,
    Project,
    Rename,
    SeqScan,
    Sort,
    SortKey,
    col,
    const,
)

I, F, S = ColumnType.INT, ColumnType.FLOAT, ColumnType.STR


@pytest.fixture
def empty_db():
    db = Database("empty")
    db.create_table("t", [Column("x", I), Column("y", F)])
    db.create_table("u", [Column("a", I), Column("b", S)])
    return db


def test_scan_empty_table(empty_db):
    assert empty_db.run(SeqScan(empty_db.table("t"))) == []


def test_aggregate_over_empty(empty_db):
    rows = empty_db.run(
        Aggregate(
            SeqScan(empty_db.table("t")),
            [AggSpec("count", None, "n"), AggSpec("sum", col("x"), "s"), AggSpec("avg", col("y"), "m")],
        )
    )
    assert rows == [(0, 0, 0.0)]


def test_group_aggregate_over_empty(empty_db):
    plan = GroupAggregate(
        Sort(SeqScan(empty_db.table("t")), [SortKey(col("x"))]),
        [(col("x"), "x")],
        [AggSpec("count", None, "n")],
    )
    assert empty_db.run(plan) == []


def test_joins_with_empty_sides(empty_db):
    db = empty_db
    db.load("t", [(1, 1.0), (2, 2.0)])
    hj = HashJoin(SeqScan(db.table("t")), SeqScan(db.table("u")), col("x"), col("a"))
    assert db.run(hj) == []
    mj = MergeJoin(
        Sort(SeqScan(db.table("t")), [SortKey(col("x"))]),
        Sort(SeqScan(db.table("u")), [SortKey(col("a"))]),
        col("x"),
        col("a"),
    )
    assert db.run(mj) == []
    nl = NestLoopJoin(SeqScan(db.table("t")), Material(SeqScan(db.table("u"))))
    assert db.run(nl) == []


def test_sort_empty_and_single(empty_db):
    db = empty_db
    assert db.run(Sort(SeqScan(db.table("t")), [SortKey(col("x"))])) == []
    db.load("t", [(5, 0.5)])
    assert db.run(Sort(SeqScan(db.table("t")), [SortKey(col("x"))])) == [(5, 0.5)]


def test_sort_requires_key(empty_db):
    with pytest.raises(ValueError):
        Sort(SeqScan(empty_db.table("t")), [])


def test_aggspec_validation():
    with pytest.raises(ValueError):
        AggSpec("median", col("x"), "m")
    with pytest.raises(ValueError):
        AggSpec("sum", None, "s")


def test_project_requires_exprs(empty_db):
    with pytest.raises(ValueError):
        Project(SeqScan(empty_db.table("t")), [])


def test_group_requires_keys(empty_db):
    with pytest.raises(ValueError):
        GroupAggregate(SeqScan(empty_db.table("t")), [], [AggSpec("count", None, "n")])


def test_limit_validation(empty_db):
    with pytest.raises(ValueError):
        Limit(SeqScan(empty_db.table("t")), -1)


def test_material_replays_without_reexecution(empty_db):
    db = empty_db
    db.load("u", [(1, "a"), (2, "b")])
    inner = Material(SeqScan(db.table("u")))
    inner.open()
    first = []
    while (r := inner.next()) is not None:
        first.append(r)
    reads_before = db.storage.reads
    inner.rescan()
    second = []
    while (r := inner.next()) is not None:
        second.append(r)
    assert first == second
    assert db.storage.reads == reads_before  # no heap re-read


def test_min_max_on_strings(empty_db):
    db = empty_db
    db.load("u", [(1, "pear"), (2, "apple"), (3, "fig")])
    rows = db.run(
        Aggregate(
            SeqScan(db.table("u")),
            [AggSpec("min", col("b"), "lo"), AggSpec("max", col("b"), "hi")],
        )
    )
    assert rows == [("apple", "pear")]


def test_group_aggregate_computed_group_key(empty_db):
    db = empty_db
    db.load("t", [(i, float(i)) for i in range(10)])
    plan = GroupAggregate(
        Sort(SeqScan(db.table("t")), [SortKey(col("x") // 5)]),
        [(col("x") // 5, "bucket")],
        [AggSpec("count", None, "n")],
    )
    assert db.run(plan) == [(0, 5), (1, 5)]


def test_rename_passthrough_rescan(empty_db):
    db = empty_db
    db.load("u", [(1, "a")])
    node = Rename(Material(SeqScan(db.table("u"))), {"a": "aa"})
    node.open()
    assert node.next() == (1, "a")
    node.rescan()
    assert node.next() == (1, "a")
