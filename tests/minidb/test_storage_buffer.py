import pytest

from repro.minidb.buffer import BufferManager
from repro.minidb.storage import Page, StorageManager


def test_page_capacity():
    page = Page(capacity=2)
    assert page.add(("a",)) == 0
    assert page.add(("b",)) == 1
    assert page.full
    with pytest.raises(ValueError):
        page.add(("c",))


def test_storage_files_are_independent():
    s = StorageManager(page_capacity=4)
    f1, f2 = s.create_file(), s.create_file()
    s.extend(f1)
    assert s.n_pages(f1) == 1
    assert s.n_pages(f2) == 0


def test_storage_read_counts():
    s = StorageManager(page_capacity=4)
    f = s.create_file()
    s.extend(f)
    s.read_page(f, 0)
    s.read_page(f, 0)
    assert s.reads == 2


def test_buffer_hit_and_miss():
    s = StorageManager(page_capacity=4)
    f = s.create_file()
    for _ in range(3):
        s.extend(f)
    b = BufferManager(s, capacity=2)
    b.get_page(f, 0)
    b.get_page(f, 0)
    assert b.hits == 1 and b.misses == 1
    assert b.hit_rate == pytest.approx(0.5)


def test_buffer_lru_eviction():
    s = StorageManager(page_capacity=4)
    f = s.create_file()
    for _ in range(3):
        s.extend(f)
    b = BufferManager(s, capacity=2)
    b.get_page(f, 0)
    b.get_page(f, 1)
    b.get_page(f, 0)  # touch 0: now 1 is LRU
    b.get_page(f, 2)  # evicts 1
    b.get_page(f, 0)  # still cached
    assert b.misses == 3
    b.get_page(f, 1)  # was evicted
    assert b.misses == 4


def test_buffer_capacity_validation():
    s = StorageManager()
    with pytest.raises(ValueError):
        BufferManager(s, capacity=0)


def test_buffer_invalidate():
    s = StorageManager(page_capacity=4)
    f = s.create_file()
    s.extend(f)
    b = BufferManager(s, capacity=4)
    b.get_page(f, 0)
    b.invalidate(f)
    b.get_page(f, 0)
    assert b.misses == 2
