import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Registry
from repro.minidb.hashindex import HashIndex


def make_index(unique=False):
    return HashIndex("h", Registry(), unique=unique)


def test_search_missing():
    assert make_index().search("nope") == []


def test_insert_search_roundtrip():
    idx = make_index()
    for i in range(500):
        idx.insert(i, (0, i))
    assert idx.search(123) == [(0, 123)]
    assert idx.n_entries == 500


def test_growth_keeps_entries():
    idx = make_index()
    for i in range(1000):  # forces several _grow() doublings
        idx.insert(i, (0, i))
    assert idx._n_buckets > 64
    for i in (0, 500, 999):
        assert idx.search(i) == [(0, i)]


def test_duplicates_and_unique():
    idx = make_index()
    idx.insert("k", (0, 1))
    idx.insert("k", (0, 2))
    assert sorted(idx.search("k")) == [(0, 1), (0, 2)]
    uniq = make_index(unique=True)
    uniq.insert("k", (0, 1))
    with pytest.raises(ValueError):
        uniq.insert("k", (0, 2))


@given(keys=st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_matches_dict_reference(keys):
    idx = make_index()
    reference: dict[int, list] = {}
    for pos, key in enumerate(keys):
        idx.insert(key, (0, pos))
        reference.setdefault(key, []).append((0, pos))
    for key in set(keys):
        assert idx.search(key) == reference[key]
    assert idx.search(999) == []
