import pytest

from repro.minidb.executor import (
    AggSpec,
    Aggregate,
    Filter,
    GroupAggregate,
    HashJoin,
    IndexScan,
    Limit,
    Material,
    MergeJoin,
    NestLoopJoin,
    Project,
    Rename,
    SeqScan,
    Sort,
    SortKey,
    and_,
    col,
    const,
    contains,
    not_,
    or_,
)


def run(db, plan):
    return db.run(plan)


def test_seqscan_all(db):
    assert len(run(db, SeqScan(db.table("items")))) == 100


def test_seqscan_qual(db):
    rows = run(db, SeqScan(db.table("items"), qual=col("price") < 10.0))
    assert len(rows) == 8
    assert all(r[2] < 10.0 for r in rows)


def test_indexscan_eq_btree_and_hash(db):
    for kind in ("btree", "hash"):
        rows = run(db, IndexScan(db.table("items"), "id", index_kind=kind, eq=7))
        assert rows == [(7, 2, 8.75, "item7")]


def test_indexscan_range(db):
    rows = run(db, IndexScan(db.table("items"), "id", lo=10, hi=13))
    assert [r[0] for r in rows] == [10, 11, 12, 13]


def test_indexscan_range_on_hash_rejected(db):
    with pytest.raises(ValueError):
        IndexScan(db.table("items"), "id", index_kind="hash", lo=1, hi=2)


def test_project_expressions(db):
    plan = Project(
        IndexScan(db.table("items"), "id", eq=4),
        [(col("id") * 2, "double"), (col("price") + 1.0, "p1")],
    )
    assert run(db, plan) == [(8, 6.0)]


def test_nestloop_index_join(db):
    items = SeqScan(db.table("items"), qual=col("id") < 10)
    cat_idx = items.schema.index_of("cat")
    inner = IndexScan(db.table("cats"), "cat_id")
    plan = NestLoopJoin(items, inner, bind=lambda row: {"eq": row[cat_idx]})
    rows = run(db, plan)
    assert len(rows) == 10
    assert all(r[1] == r[4] for r in rows)  # cat == cat_id


def test_nestloop_material_inner(db):
    items = SeqScan(db.table("items"), qual=col("id") < 5)
    inner = Material(SeqScan(db.table("cats")))
    plan = NestLoopJoin(items, inner, qual=col("cat") == col("cat_id"))
    rows = run(db, plan)
    assert len(rows) == 5


def test_hashjoin_matches_nestloop(db):
    items = SeqScan(db.table("items"), qual=col("id") < 20)
    plan = HashJoin(items, SeqScan(db.table("cats")), col("cat"), col("cat_id"))
    rows = run(db, plan)
    assert len(rows) == 20
    assert all(r[1] == r[4] for r in rows)


def test_mergejoin(db):
    left = Sort(SeqScan(db.table("items"), qual=col("id") < 20), [SortKey(col("cat"))])
    right = Sort(SeqScan(db.table("cats")), [SortKey(col("cat_id"))])
    plan = MergeJoin(left, right, col("cat"), col("cat_id"))
    rows = run(db, plan)
    assert len(rows) == 20
    assert all(r[1] == r[4] for r in rows)


def test_mergejoin_many_to_many(db):
    left = Sort(
        SeqScan(db.table("items"), qual=and_(col("cat") == 1, col("id") < 30)),
        [SortKey(col("cat"))],
    )
    right = Rename(
        Sort(
            SeqScan(db.table("items"), qual=and_(col("cat") == 1, col("id") < 30)),
            [SortKey(col("cat"))],
        ),
        {"id": "rid", "cat": "rcat", "price": "rprice", "name": "rname"},
    )
    rows = run(db, MergeJoin(left, right, col("cat"), col("rcat")))
    # 6 items of cat 1 below id 30, joined all-with-all on equal cat
    assert len(rows) == 36


def test_sort_multi_key(db):
    plan = Sort(
        SeqScan(db.table("items"), qual=col("id") < 10),
        [SortKey(col("cat")), SortKey(col("id"), descending=True)],
    )
    rows = run(db, plan)
    assert [r[1] for r in rows] == sorted(r[1] for r in rows)
    # within cat 0: ids descending
    cat0 = [r[0] for r in rows if r[1] == 0]
    assert cat0 == sorted(cat0, reverse=True)


def test_aggregate(db):
    plan = Aggregate(
        SeqScan(db.table("items")),
        [
            AggSpec("count", None, "n"),
            AggSpec("sum", col("id"), "s"),
            AggSpec("min", col("price"), "lo"),
            AggSpec("max", col("price"), "hi"),
            AggSpec("avg", col("id"), "mean"),
        ],
    )
    rows = run(db, plan)
    assert rows == [(100, 4950, 0.0, 99 * 1.25, 49.5)]


def test_group_aggregate(db):
    child = Sort(SeqScan(db.table("items")), [SortKey(col("cat"))])
    plan = GroupAggregate(
        child,
        [(col("cat"), "cat")],
        [AggSpec("count", None, "n"), AggSpec("sum", col("id"), "s")],
    )
    rows = run(db, plan)
    assert len(rows) == 5
    assert all(r[1] == 20 for r in rows)
    assert sum(r[2] for r in rows) == 4950


def test_limit(db):
    assert len(run(db, Limit(SeqScan(db.table("items")), 7))) == 7
    assert run(db, Limit(SeqScan(db.table("items")), 0)) == []


def test_filter_node(db):
    plan = Filter(SeqScan(db.table("items")), or_(col("id") == 3, col("id") == 96))
    assert [r[0] for r in run(db, plan)] == [3, 96]


def test_rename(db):
    plan = Rename(SeqScan(db.table("cats")), {"cat_id": "cid"})
    assert plan.schema.names() == ("cid", "cat_name")
    assert len(run(db, plan)) == 5


def test_rename_unknown_column(db):
    with pytest.raises(ValueError):
        Rename(SeqScan(db.table("cats")), {"ghost": "x"})


def test_string_expressions(db):
    plan = SeqScan(db.table("items"), qual=contains(col("name"), "em9"))
    rows = run(db, plan)
    # item9, item90..item99
    assert len(rows) == 11


def test_explain_tree(db):
    plan = Limit(Project(SeqScan(db.table("items")), [(col("id"), "id")]), 1)
    text = plan.explain()
    assert "Limit" in text and "Project" in text and "SeqScan" in text
