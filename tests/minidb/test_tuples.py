import pytest

from repro.minidb.tuples import Column, ColumnType, Schema

I, F, S, D = ColumnType.INT, ColumnType.FLOAT, ColumnType.STR, ColumnType.DATE


def make_schema():
    return Schema([Column("a", I), Column("b", F), Column("s", S), Column("d", D)])


def test_index_of_and_contains():
    schema = make_schema()
    assert schema.index_of("b") == 1
    assert "s" in schema and "ghost" not in schema
    with pytest.raises(KeyError):
        schema.index_of("ghost")


def test_duplicate_names_rejected():
    with pytest.raises(ValueError):
        Schema([Column("x", I), Column("x", F)])


def test_concat_and_project():
    a = Schema([Column("a", I)])
    b = Schema([Column("b", F)])
    joined = a.concat(b)
    assert joined.names() == ("a", "b")
    assert joined.project(["b"]).names() == ("b",)
    with pytest.raises(ValueError):
        a.concat(a)  # duplicate names


def test_validate_row_types():
    schema = make_schema()
    schema.validate_row((1, 2.0, "x", 100))
    with pytest.raises(TypeError):
        schema.validate_row((1.5, 2.0, "x", 100))  # float in INT column
    with pytest.raises(TypeError):
        schema.validate_row((1, 2, "x", 100))  # int in FLOAT column
    with pytest.raises(ValueError):
        schema.validate_row((1, 2.0, "x"))  # arity


def test_bool_rejected_as_int():
    schema = Schema([Column("flag", I)])
    with pytest.raises(TypeError):
        schema.validate_row((True,))


def test_date_is_int_day():
    schema = Schema([Column("d", D)])
    schema.validate_row((730,))
    with pytest.raises(TypeError):
        schema.validate_row(("1995-01-01",))
