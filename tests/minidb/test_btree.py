import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Registry
from repro.minidb.btree import BTreeIndex


def make_index(unique=False, order=4):
    return BTreeIndex("t", Registry(), unique=unique, order=order)


def test_search_empty():
    idx = make_index()
    assert idx.search(5) == []


def test_insert_and_search():
    idx = make_index()
    for i in range(100):
        idx.insert(i, (0, i))
    assert idx.search(42) == [(0, 42)]
    assert idx.search(1000) == []
    assert idx.n_entries == 100


def test_duplicates_accumulate():
    idx = make_index()
    idx.insert(7, (0, 1))
    idx.insert(7, (0, 2))
    assert sorted(idx.search(7)) == [(0, 1), (0, 2)]


def test_unique_rejects_duplicate():
    idx = make_index(unique=True)
    idx.insert(7, (0, 1))
    with pytest.raises(ValueError):
        idx.insert(7, (0, 2))


def test_range_scan_bounds():
    idx = make_index()
    for i in range(50):
        idx.insert(i, (0, i))
    assert [t[1] for t in idx.range_scan(10, 13)] == [10, 11, 12, 13]
    assert [t[1] for t in idx.range_scan(10, 13, lo_strict=True)] == [11, 12, 13]
    assert [t[1] for t in idx.range_scan(10, 13, hi_strict=True)] == [10, 11, 12]
    assert [t[1] for t in idx.range_scan(None, 2)] == [0, 1, 2]
    assert [t[1] for t in idx.range_scan(47, None)] == [47, 48, 49]


def test_range_scan_missing_bounds_land_correctly():
    idx = make_index()
    for i in range(0, 100, 10):
        idx.insert(i, (0, i))
    assert [t[1] for t in idx.range_scan(15, 35)] == [20, 30]


def test_splits_keep_depth_balanced():
    idx = make_index(order=4)
    for i in range(500):
        idx.insert(i, (0, i))
    idx.check_invariants()
    assert idx.depth() >= 3


def test_string_keys():
    idx = make_index()
    for word in ["pear", "apple", "fig", "banana"]:
        idx.insert(word, (0, word))
    assert [t[1] for t in idx.range_scan("b", "f")] == ["banana"]


@given(
    keys=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=400),
    order=st.sampled_from([4, 8, 64]),
)
@settings(max_examples=60, deadline=None)
def test_btree_matches_sorted_reference(keys, order):
    idx = BTreeIndex("h", Registry(), order=order)
    for pos, key in enumerate(keys):
        idx.insert(key, (0, pos))
    idx.check_invariants()
    # every key findable, full scan sorted
    scan = [k for k in (key for key in sorted(set(keys)))]
    found = []
    node_keys = []
    for key in sorted(set(keys)):
        tids = idx.search(key)
        assert sorted(t[1] for t in tids) == sorted(p for p, k in enumerate(keys) if k == key)
    full = list(idx.range_scan(None, None))
    assert len(full) == len(keys)


@given(
    keys=st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=200),
    lo=st.integers(min_value=0, max_value=200),
    hi=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=60, deadline=None)
def test_range_scan_matches_filter(keys, lo, hi):
    if lo > hi:
        lo, hi = hi, lo
    idx = BTreeIndex("r", Registry(), order=4)
    for pos, key in enumerate(keys):
        idx.insert(key, (0, pos))
    got = sorted(t[1] for t in idx.range_scan(lo, hi))
    expect = sorted(p for p, k in enumerate(keys) if lo <= k <= hi)
    assert got == expect


def test_pickle_round_trip_is_iterative():
    # the leaf chain is a linked list as long as the index; default
    # (recursive) pickling would overflow the stack on a large index
    import pickle
    import sys

    idx = BTreeIndex("p", Registry(), order=4)
    n = 20_000
    for k in range(n):
        idx.insert(k, (k // 64, k % 64))
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(200)  # far below the ~7k leaves in the chain
    try:
        clone = pickle.loads(pickle.dumps(idx, protocol=pickle.HIGHEST_PROTOCOL))
    finally:
        sys.setrecursionlimit(limit)
    clone.check_invariants()
    assert clone.n_entries == idx.n_entries
    assert clone.depth() == idx.depth()
    assert clone.search(12_345) == idx.search(12_345)
    assert list(clone.range_scan(17, 42)) == list(idx.range_scan(17, 42))
