import numpy as np
import pytest

from repro.kernel import ColdCodeConfig
from repro.minidb import Column, ColumnType, Database
from repro.minidb.executor import IndexScan, SeqScan, col


def test_run_returns_all_rows(db):
    rows = db.run(SeqScan(db.table("cats")))
    assert len(rows) == 5


def test_registries_isolated_between_databases():
    a = Database("a")
    b = Database("b")
    a.create_table("t", [Column("x", ColumnType.INT)]).create_index("x", "btree")
    # same table/index names in another database must not collide
    b.create_table("t", [Column("x", ColumnType.INT)]).create_index("x", "btree")
    assert "_bt_search[t_x_btree]" in a.registry
    assert "_bt_search[t_x_btree]" in b.registry


def test_kernel_model_includes_index_routines(db):
    model = db.kernel_model(seed=3, richness=1.0, cold=ColdCodeConfig(n_procedures=5))
    names = set(model.routine_tables())
    assert "_bt_search[items_id_btree]" in names
    assert "_hash_search[items_id_hash]" in names
    assert "heap_getnext[items]" in names
    assert "ExecSeqScan" in names


def test_traced_query_produces_events(db):
    model = db.kernel_model(seed=3, richness=1.0, cold=ColdCodeConfig(n_procedures=5))
    tracer = model.tracer()
    with tracer:
        rows = db.run(IndexScan(db.table("items"), "id", lo=0, hi=20))
    assert len(rows) == 21
    trace = tracer.take_trace()
    assert trace.n_events > 100
    # ops entry (ExecIndexScan) appears in the trace
    assert model.entry_of("ExecIndexScan") in set(trace.block_ids().tolist())


def test_trace_differs_between_index_kinds(db):
    model = db.kernel_model(seed=3, richness=1.0, cold=ColdCodeConfig(n_procedures=5))
    traces = {}
    for kind in ("btree", "hash"):
        tracer = model.tracer()
        with tracer:
            db.run(IndexScan(db.table("items"), "id", index_kind=kind, eq=5))
        traces[kind] = tracer.take_trace()
    assert not np.array_equal(traces["btree"].events, traces["hash"].events)


def test_untraced_execution_identical_results(db):
    model = db.kernel_model(seed=3, richness=1.0, cold=ColdCodeConfig(n_procedures=5))
    plan = SeqScan(db.table("items"), qual=col("price") > 100.0)
    untraced = db.run(plan)
    tracer = model.tracer()
    with tracer:
        traced = db.run(SeqScan(db.table("items"), qual=col("price") > 100.0))
    assert untraced == traced
