import pytest

from repro.minidb import Column, ColumnType, Database


def test_heap_scan_returns_all(db):
    rows = list(db.table("items").heap_scan())
    assert len(rows) == 100
    assert rows[0] == (0, 0, 0.0, "item0")


def test_fetch_by_tid(db):
    table = db.table("items")
    tid = table.index_on("id").search(42)[0]
    assert table.fetch(tid)[0] == 42


def test_index_maintained_on_insert(db):
    table = db.table("items")
    table.insert((1000, 3, 5.0, "new"))
    assert len(table.index_on("id").search(1000)) == 1
    assert len(table.index_on("id", "hash").search(1000)) == 1


def test_backfill_existing_rows(db):
    table = db.table("items")
    table.create_index("price", "btree")
    hits = table.index_on("price").search(1.25)
    assert len(hits) == 1


def test_duplicate_index_rejected(db):
    with pytest.raises(ValueError):
        db.table("items").create_index("id", "btree")


def test_unknown_index_kind(db):
    with pytest.raises(ValueError):
        db.table("items").create_index("name", "rtree")


def test_index_on_missing(db):
    with pytest.raises(KeyError):
        db.table("items").index_on("name")


def test_schema_validation_on_insert(db):
    with pytest.raises(TypeError):
        db.table("items").insert(("x", 0, 1.0, "bad"))
    with pytest.raises(ValueError):
        db.table("items").insert((1, 2))


def test_duplicate_table_rejected(db):
    with pytest.raises(ValueError):
        db.create_table("items", [Column("x", ColumnType.INT)])


def test_missing_table(db):
    with pytest.raises(KeyError):
        db.table("ghost")


def test_rows_span_pages(db):
    # page_capacity=8, 100 rows -> 13 pages
    assert db.storage.n_pages(db.table("items").fid) == 13
