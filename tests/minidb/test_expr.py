import pytest

from repro.minidb.executor.expr import (
    and_,
    between,
    col,
    const,
    contains,
    not_,
    or_,
    startswith,
)
from repro.minidb.tuples import Column, ColumnType, Schema

SCHEMA = Schema(
    [
        Column("a", ColumnType.INT),
        Column("b", ColumnType.FLOAT),
        Column("s", ColumnType.STR),
        Column("d", ColumnType.DATE),
    ]
)
ROW = (10, 2.5, "hello world", 365)


def ev(expr):
    return expr.compile(SCHEMA)(ROW)


def test_column_and_const():
    assert ev(col("a")) == 10
    assert ev(const(7)) == 7


def test_comparisons():
    assert ev(col("a") < 11) is True
    assert ev(col("a") <= 10) is True
    assert ev(col("a") > 10) is False
    assert ev(col("a") >= 11) is False
    assert ev(col("a") == 10) is True
    assert ev(col("a") != 10) is False


def test_arithmetic():
    assert ev(col("a") + 5) == 15
    assert ev(col("a") - 1) == 9
    assert ev(col("a") * col("b")) == 25.0
    assert ev(col("a") / 4) == 2.5
    assert ev(col("d") // 100) == 3
    assert ev(1.0 - col("b")) == -1.5
    assert ev(2 * col("a")) == 20
    assert ev(100 + col("a")) == 110


def test_bool_ops():
    assert ev(and_(col("a") == 10, col("b") > 2.0)) is True
    assert ev(and_(col("a") == 10, col("b") > 3.0)) is False
    assert ev(or_(col("a") == 99, col("b") > 2.0)) is True
    assert ev(not_(col("a") == 10)) is False


def test_between():
    assert ev(between(col("b"), 2.0, 3.0)) is True
    assert ev(between(col("b"), 2.6, 3.0)) is False


def test_string_matching():
    assert ev(contains(col("s"), "lo wo")) is True
    assert ev(contains(col("s"), "xyz")) is False
    assert ev(startswith(col("s"), "hell")) is True
    assert ev(startswith(col("s"), "world")) is False


def test_comparison_as_int_multiplier():
    # used by Q8/Q12/Q14: bool * value sums conditionals
    assert ev((col("a") == 10) * col("b")) == 2.5
    assert ev((col("a") == 11) * col("b")) == 0.0


def test_column_types():
    from repro.minidb.tuples import ColumnType as T

    assert col("b").column_type(SCHEMA) == T.FLOAT
    assert (col("a") + col("a")).column_type(SCHEMA) == T.INT
    assert (col("a") * col("b")).column_type(SCHEMA) == T.FLOAT
    assert (col("a") / 2).column_type(SCHEMA) == T.FLOAT
    assert (col("a") == 1).column_type(SCHEMA) == T.INT
    assert const("x").column_type(SCHEMA) == T.STR


def test_unknown_column_fails_at_compile():
    with pytest.raises(KeyError):
        col("ghost").compile(SCHEMA)


def test_empty_boolop_rejected():
    with pytest.raises(ValueError):
        and_()


def test_repr_roundtrippable_text():
    text = repr(and_(col("a") < 5, contains(col("s"), "x")))
    assert "a" in text and "contains" in text
