import pytest

from repro.minidb import Column, ColumnType, Database

I, F, S = ColumnType.INT, ColumnType.FLOAT, ColumnType.STR


@pytest.fixture
def db():
    """A small two-table database with both index kinds on the keys."""
    db = Database("test", page_capacity=8, buffer_pages=16)
    db.create_table(
        "items",
        [Column("id", I), Column("cat", I), Column("price", F), Column("name", S)],
    )
    db.create_table("cats", [Column("cat_id", I), Column("cat_name", S)])
    items = db.table("items")
    cats = db.table("cats")
    for kind in ("btree", "hash"):
        items.create_index("id", kind, unique=True)
        items.create_index("cat", kind)
        cats.create_index("cat_id", kind, unique=True)
    db.load("cats", [(c, f"cat{c}") for c in range(5)])
    db.load(
        "items",
        [(i, i % 5, float(i) * 1.25, f"item{i}") for i in range(100)],
    )
    return db
