import numpy as np
import pytest

from repro.profiling import SEPARATOR, BlockTrace


def test_basic_properties():
    t = BlockTrace([0, 1, 2, 1])
    assert len(t) == 4
    assert t.n_events == 4
    np.testing.assert_array_equal(t.block_ids(), [0, 1, 2, 1])


def test_concatenate_inserts_separators():
    t = BlockTrace.concatenate([BlockTrace([0, 1]), BlockTrace([2])])
    np.testing.assert_array_equal(t.events, [0, 1, SEPARATOR, 2])
    assert t.n_events == 3


def test_concatenate_empty():
    t = BlockTrace.concatenate([])
    assert len(t) == 0 and t.n_events == 0


def test_segments_roundtrip():
    t = BlockTrace.concatenate([BlockTrace([0, 1]), BlockTrace([2, 3])])
    segs = [list(s) for s in t.segments()]
    assert segs == [[0, 1], [2, 3]]


def test_n_instructions():
    sizes = np.array([10, 20, 30], dtype=np.int32)
    t = BlockTrace.concatenate([BlockTrace([0, 2]), BlockTrace([1])])
    assert t.n_instructions(sizes) == 60


def test_instruction_positions_skip_separator():
    sizes = np.array([5, 7], dtype=np.int32)
    t = BlockTrace.concatenate([BlockTrace([0, 1]), BlockTrace([0])])
    np.testing.assert_array_equal(t.instruction_positions(sizes), [0, 5, 12])


def test_rejects_bad_ids():
    with pytest.raises(ValueError):
        BlockTrace([0, -2])


def test_immutable():
    t = BlockTrace([0, 1])
    with pytest.raises(ValueError):
        t.events[0] = 5
