"""On-disk trace format: round-trip identity, corruption detection.

The store must be a bit-faithful twin of the in-memory event stream —
same events, same windows, same separator placement — and every way a
file can be damaged (truncation, flipped bytes, foreign/vintage headers)
must surface as a clean :class:`TraceFormatError`, never a crash or a
silently wrong trace.
"""

import pickle
import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiling import (
    TRACE_FORMAT_VERSION,
    BlockTrace,
    TraceFormatError,
    TraceStore,
    TraceWriter,
    write_trace,
)
from repro.profiling.trace import SEPARATOR
from repro.profiling.tracestore import _HEADER, _MAGIC


def _events(draw_ids, n):
    return np.asarray(draw_ids, dtype=np.int32)[:n]


event_arrays = st.lists(
    st.one_of(st.integers(0, 5000), st.just(SEPARATOR)), min_size=0, max_size=400
).map(lambda xs: np.asarray(xs, dtype=np.int32))


@given(event_arrays, st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_round_trip_identity(tmp_path_factory, events, chunk_events):
    path = tmp_path_factory.mktemp("trace") / "t.trace"
    store = write_trace(BlockTrace(events), path, chunk_events)
    np.testing.assert_array_equal(store.materialize().events, events)
    assert len(store) == events.shape[0]
    assert store.n_events == int(np.count_nonzero(events != SEPARATOR))
    store.verify(deep=True)


@given(event_arrays, st.integers(1, 64), st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_windowed_reads_match_blocktrace(tmp_path_factory, events, stored, window):
    path = tmp_path_factory.mktemp("trace") / "t.trace"
    store = write_trace(BlockTrace(events), path, stored)
    got = list(store.iter_events(window))
    want = list(BlockTrace(events).iter_events(window))
    assert len(got) == len(want)
    for (g_win, g_next), (w_win, w_next) in zip(got, want):
        np.testing.assert_array_equal(g_win, w_win)
        assert g_next == w_next


def test_writer_run_protocol_matches_concatenate(tmp_path):
    runs = [
        np.asarray(r, dtype=np.int32)
        for r in ([1, 2, 3], [], [4], [5, 6], [], [], [7])
    ]
    with TraceWriter(tmp_path / "runs.trace", chunk_events=4) as writer:
        for run in runs:
            writer.append_events(run)
            writer.end_run()
    store = TraceStore(tmp_path / "runs.trace")
    expected = BlockTrace.concatenate([BlockTrace(r) for r in runs if r.size])
    np.testing.assert_array_equal(store.materialize().events, expected.events)


def test_mid_run_appends_do_not_split_the_run(tmp_path):
    writer = TraceWriter(tmp_path / "t.trace", chunk_events=3)
    writer.append_events(np.asarray([1, 2], dtype=np.int32))
    writer.append_events(np.asarray([3, 4], dtype=np.int32))  # same run
    writer.end_run()
    writer.append_events(np.asarray([5], dtype=np.int32))
    store = writer.close()
    np.testing.assert_array_equal(
        store.materialize().events,
        np.asarray([1, 2, 3, 4, SEPARATOR, 5], dtype=np.int32),
    )


def test_empty_trace(tmp_path):
    store = write_trace(BlockTrace(np.empty(0, dtype=np.int32)), tmp_path / "e.trace")
    assert len(store) == 0
    assert list(store.iter_events(16)) == []
    assert store.materialize().events.size == 0


def test_delta_overflow_falls_back_to_raw(tmp_path):
    # a separator followed by a huge block id jumps by 2**31: too wide
    # for an int32 delta, so the chunk must store raw
    hi = np.iinfo(np.int32).max
    events = np.asarray([0, SEPARATOR, hi, SEPARATOR, hi], dtype=np.int32)
    store = write_trace(BlockTrace(events), tmp_path / "wide.trace")
    np.testing.assert_array_equal(store.materialize().events, events)
    store.verify(deep=True)


def test_truncated_file_is_a_clean_error(tmp_path):
    path = tmp_path / "t.trace"
    events = np.arange(5000, dtype=np.int32)
    write_trace(BlockTrace(events), path, chunk_events=512)
    data = path.read_bytes()
    for cut in (0, 3, _HEADER.size, len(data) // 2, len(data) - 2):
        path.write_bytes(data[:cut])
        with pytest.raises(TraceFormatError):
            TraceStore(path).verify(deep=True)


def test_corrupt_chunk_byte_is_a_clean_error(tmp_path):
    path = tmp_path / "t.trace"
    write_trace(BlockTrace(np.arange(5000, dtype=np.int32)), path, chunk_events=512)
    data = bytearray(path.read_bytes())
    data[_HEADER.size + 7] ^= 0xFF  # inside the first compressed chunk
    path.write_bytes(bytes(data))
    store = TraceStore(path)
    store.verify()  # shallow check reads only header + directory
    with pytest.raises(TraceFormatError, match="CRC"):
        store.verify(deep=True)


# -- crafted corruption corpus --------------------------------------------
#
# Each case damages exactly one structure and re-seals every checksum
# *around* it, so the error must come from the check that guards that
# structure — not from a coarser one tripping first.


def _written(tmp_path, n=5000, chunk_events=512):
    path = tmp_path / "t.trace"
    write_trace(BlockTrace(np.arange(n, dtype=np.int32)), path, chunk_events)
    return path


def test_zero_length_store_is_rejected(tmp_path):
    path = tmp_path / "empty.trace"
    path.write_bytes(b"")
    with pytest.raises(TraceFormatError, match="truncated header"):
        TraceStore(path).verify()


def test_directory_truncated_mid_record(tmp_path):
    path = _written(tmp_path)
    data = path.read_bytes()
    dir_offset = _HEADER.unpack_from(data)[6]
    path.write_bytes(data[: dir_offset + 3])  # cut inside the chunk count
    with pytest.raises(TraceFormatError, match="truncated directory"):
        TraceStore(path).verify()


def test_flipped_version_byte_breaks_header_crc(tmp_path):
    # unlike test_version_mismatch_is_rejected (which re-seals the CRC),
    # a *silently* flipped version byte must already fail the header CRC
    path = _written(tmp_path)
    data = bytearray(path.read_bytes())
    data[len(_MAGIC)] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.raises(TraceFormatError, match="header CRC"):
        TraceStore(path).verify()


def test_bad_recorded_chunk_crc_fails_deep_verify(tmp_path):
    # corrupt the *recorded* CRC of chunk 0 (the payload stays intact) and
    # re-seal the directory CRC: shallow verify passes, deep verify must
    # notice the payload no longer matches its record
    path = _written(tmp_path)
    data = bytearray(path.read_bytes())
    dir_offset = _HEADER.unpack_from(data)[6]
    count_size = struct.calcsize("<I")
    record_size = struct.calcsize("<QIIII")
    # record 0's crc32 field sits after offset (Q) + comp_size (I) + n_events (I)
    crc_field = dir_offset + count_size + struct.calcsize("<QII")
    struct.pack_into("<I", data, crc_field, 0xDEADBEEF)
    (n_chunks,) = struct.unpack_from("<I", data, dir_offset)
    body_end = dir_offset + count_size + n_chunks * record_size
    struct.pack_into("<I", data, body_end, zlib.crc32(bytes(data[dir_offset:body_end])))
    path.write_bytes(bytes(data))
    store = TraceStore(path)
    store.verify()  # header + directory are self-consistent
    with pytest.raises(TraceFormatError, match="chunk CRC"):
        store.verify(deep=True)


def test_foreign_file_is_rejected(tmp_path):
    path = tmp_path / "not-a-trace.bin"
    path.write_bytes(b"PK\x03\x04" + b"\0" * 64)
    with pytest.raises(TraceFormatError, match="not a trace file"):
        TraceStore(path).verify()


def test_version_mismatch_is_rejected(tmp_path):
    path = tmp_path / "t.trace"
    write_trace(BlockTrace(np.arange(100, dtype=np.int32)), path)
    data = bytearray(path.read_bytes())
    # stamp a future version and re-seal the header CRC so the version
    # check itself (not the CRC) is what rejects the file
    head = bytearray(data[: _HEADER.size])
    struct.pack_into("<H", head, len(_MAGIC), TRACE_FORMAT_VERSION + 1)
    struct.pack_into("<I", head, _HEADER.size - 4, zlib.crc32(bytes(head[:-4])))
    data[: _HEADER.size] = head
    path.write_bytes(bytes(data))
    with pytest.raises(TraceFormatError, match="version"):
        TraceStore(path).verify()


def test_missing_file_is_a_clean_error(tmp_path):
    with pytest.raises(TraceFormatError, match="unreadable"):
        TraceStore(tmp_path / "absent.trace").verify()


def test_pickle_round_trip_reopens_by_path(tmp_path):
    path = tmp_path / "t.trace"
    events = np.arange(300, dtype=np.int32)
    store = write_trace(BlockTrace(events), path, chunk_events=64)
    clone = pickle.loads(pickle.dumps(store))
    assert clone.path == store.path
    np.testing.assert_array_equal(clone.materialize().events, events)


def test_abort_leaves_no_file(tmp_path):
    path = tmp_path / "t.trace"
    with pytest.raises(RuntimeError, match="boom"):
        with TraceWriter(path) as writer:
            writer.append_events(np.arange(10, dtype=np.int32))
            raise RuntimeError("boom")
    assert not path.exists()
    assert not path.with_name(path.name + ".tmp").exists()


def test_stats_report_compression(tmp_path):
    # block ids emitted back to back are close: deltas compress hard
    events = np.cumsum(np.ones(20_000, dtype=np.int32)) % 900
    store = write_trace(BlockTrace(events.astype(np.int32)), tmp_path / "t.trace", 4096)
    stats = store.stats()
    assert stats["n_events"] == 20_000
    assert stats["n_chunks"] == 5
    assert stats["raw_bytes"] == 80_000
    assert stats["bytes"] < stats["raw_bytes"]
    assert stats["compression_ratio"] > 1.0
