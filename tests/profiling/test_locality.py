import numpy as np
import pytest

from repro.profiling import (
    BlockTrace,
    blocks_for_coverage,
    cumulative_reference_curve,
    fraction_reexecuted_within,
    hottest_blocks_for_coverage,
    reuse_distances,
)


def test_curve_monotone_and_normalized():
    counts = np.array([50, 30, 15, 5, 0])
    curve = cumulative_reference_curve(counts)
    assert curve.shape == (4,)  # zero-count block excluded
    assert np.all(np.diff(curve) >= 0)
    assert curve[-1] == pytest.approx(1.0)
    assert curve[0] == pytest.approx(0.5)


def test_blocks_for_coverage():
    counts = np.array([50, 30, 15, 5])
    assert blocks_for_coverage(counts, 0.5) == 1
    assert blocks_for_coverage(counts, 0.8) == 2
    assert blocks_for_coverage(counts, 1.0) == 4


def test_blocks_for_coverage_validates():
    with pytest.raises(ValueError):
        blocks_for_coverage(np.array([1]), 0.0)
    with pytest.raises(ValueError):
        blocks_for_coverage(np.array([1]), 1.5)


def test_hottest_blocks():
    counts = np.array([5, 50, 30])
    np.testing.assert_array_equal(hottest_blocks_for_coverage(counts, 0.9), [1, 2])


def test_reuse_distances():
    sizes = np.array([10, 1], dtype=np.int32)
    # positions: 0:0, 1:10, 0:11, 1:21
    t = BlockTrace([0, 1, 0, 1])
    d = reuse_distances(t, sizes)
    assert sorted(d.tolist()) == [11, 11]


def test_reuse_distances_subset():
    sizes = np.array([10, 1], dtype=np.int32)
    t = BlockTrace([0, 1, 0, 1])
    d = reuse_distances(t, sizes, subset=np.array([0]))
    assert d.tolist() == [11]


def test_fraction_reexecuted_within():
    d = np.array([50, 150, 300])
    assert fraction_reexecuted_within(d, 100) == pytest.approx(1 / 3)
    assert fraction_reexecuted_within(d, 1000) == 1.0
    assert fraction_reexecuted_within(np.empty(0, dtype=np.int64), 100) == 0.0


def test_empty_curve():
    assert cumulative_reference_curve(np.zeros(3, dtype=int)).size == 0
    assert blocks_for_coverage(np.zeros(3, dtype=int), 0.5) == 0
