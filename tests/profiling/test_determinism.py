import numpy as np
import pytest

from repro.cfg import BlockKind, ProgramBuilder, WeightedCFG
from repro.profiling import BlockTrace, kind_mix, profile_trace, transition_determinism


@pytest.fixture
def program():
    b = ProgramBuilder()
    # f: fall-through -> branch -> call ; then return
    b.add_procedure(
        "f",
        "m",
        sizes=[2, 2, 2, 2],
        kinds=[BlockKind.FALL_THROUGH, BlockKind.BRANCH, BlockKind.CALL, BlockKind.RETURN],
    )
    b.add_procedure("g", "m", sizes=[2], kinds=[BlockKind.RETURN])
    return b.build()


def make_profile(program, runs):
    trace = BlockTrace.concatenate([BlockTrace(r) for r in runs])
    return profile_trace(trace, program.n_blocks)


def test_kind_mix_static_and_dynamic(program):
    # fixed branch: block 1 always goes to 2
    cfg = make_profile(program, [[0, 1, 2, 4, 3]] * 4)
    mix = kind_mix(program, cfg)
    assert mix.static[BlockKind.FALL_THROUGH] == pytest.approx(1 / 5)
    assert mix.dynamic[BlockKind.RETURN] == pytest.approx(2 / 5)
    assert mix.predictable[BlockKind.BRANCH] == 1.0
    assert mix.overall_predictable == pytest.approx(1.0)


def test_variable_branch_detected(program):
    # branch block 1 alternates between 2 and 3
    runs = [[0, 1, 2, 4, 3], [0, 1, 3]] * 3
    cfg = make_profile(program, runs)
    mix = kind_mix(program, cfg, fixed_threshold=0.95)
    assert mix.predictable[BlockKind.BRANCH] == 0.0
    assert 0.0 < mix.overall_predictable < 1.0


def test_threshold_changes_classification(program):
    # 9:1 split is fixed at threshold 0.9 but not at 0.95
    runs = [[0, 1, 2, 4, 3]] * 9 + [[0, 1, 3]]
    cfg = make_profile(program, runs)
    assert kind_mix(program, cfg, fixed_threshold=0.9).predictable[BlockKind.BRANCH] == 1.0
    assert kind_mix(program, cfg, fixed_threshold=0.95).predictable[BlockKind.BRANCH] == 0.0


def test_executed_only_restricts_static(program):
    cfg = make_profile(program, [[0, 1, 3]])  # blocks 2 and 4 never run
    mix = kind_mix(program, cfg, executed_only=True)
    assert mix.static[BlockKind.CALL] == 0.0
    mix_all = kind_mix(program, cfg, executed_only=False)
    assert mix_all.static[BlockKind.CALL] == pytest.approx(1 / 5)


def test_transition_determinism(program):
    runs = [[0, 1, 2, 4, 3], [0, 1, 3]]
    cfg = make_profile(program, runs)
    # block 0: always ->1 (2 transitions fixed); block 1: 50/50 (2 not fixed);
    # block 2 ->4 (1 fixed); block 4 ->3 (1 fixed). total 6, fixed 4.
    assert transition_determinism(cfg) == pytest.approx(4 / 6)
