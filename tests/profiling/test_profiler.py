import numpy as np
import pytest

from repro.profiling import BlockTrace, profile_trace


def test_counts_and_edges():
    t = BlockTrace([0, 1, 0, 1, 2])
    cfg = profile_trace(t, 3)
    np.testing.assert_array_equal(cfg.block_count, [2, 2, 1])
    assert cfg.edge_count(0, 1) == 2
    assert cfg.edge_count(1, 0) == 1
    assert cfg.edge_count(1, 2) == 1


def test_no_edge_across_separator():
    t = BlockTrace.concatenate([BlockTrace([0, 1]), BlockTrace([2, 0])])
    cfg = profile_trace(t, 3)
    assert cfg.edge_count(1, 2) == 0
    assert cfg.edge_count(0, 1) == 1
    assert cfg.edge_count(2, 0) == 1
    np.testing.assert_array_equal(cfg.block_count, [2, 1, 1])


def test_empty_trace():
    cfg = profile_trace(BlockTrace([]), 4)
    assert cfg.n_edges == 0
    assert cfg.block_count.sum() == 0


def test_single_event():
    cfg = profile_trace(BlockTrace([3]), 4)
    assert cfg.block_count[3] == 1
    assert cfg.n_edges == 0


def test_out_of_range_block_rejected():
    with pytest.raises(ValueError):
        profile_trace(BlockTrace([0, 7]), 3)


def test_self_loop_recorded():
    cfg = profile_trace(BlockTrace([1, 1, 1]), 2)
    assert cfg.edge_count(1, 1) == 2
