"""Size-capped cache: LRU-by-mtime eviction on store.

A long-running server must not grow the artifact store without bound:
with ``max_bytes`` set (constructor or ``$REPRO_CACHE_MAX_BYTES``),
every store sweeps oldest-first until the tree fits, counting
``CacheStats.evictions``. Loads refresh an entry's mtime, so recently
served artifacts survive the sweep.
"""

from __future__ import annotations

import os

from repro.cache import ArtifactCache

PAYLOAD = b"x" * 4096  # pickles to a bit over 4 KiB per entry


def _age(cache: ArtifactCache, kind: str, key, seconds_ago: float) -> None:
    path = cache.path_for(kind, key)
    past = path.stat().st_mtime - seconds_ago
    os.utime(path, (past, past))


def test_uncapped_cache_never_evicts(tmp_path):
    cache = ArtifactCache(tmp_path)
    for i in range(10):
        cache.store("suite", ("k", i), PAYLOAD)
    assert cache.stats.evictions == 0
    assert all(cache.load("suite", ("k", i)) == PAYLOAD for i in range(10))


def test_cap_evicts_oldest_first(tmp_path):
    cache = ArtifactCache(tmp_path, max_bytes=3 * 5000)
    for i in range(3):
        cache.store("suite", ("k", i), PAYLOAD)
        _age(cache, "suite", ("k", i), seconds_ago=100 - i)
    assert cache.stats.evictions == 0
    cache.store("suite", ("k", 3), PAYLOAD)  # pushes the tree over the cap
    assert cache.stats.evictions >= 1
    assert cache.load("suite", ("k", 0)) is None, "oldest entry should go first"
    assert cache.load("suite", ("k", 3)) == PAYLOAD, "just-written entry is protected"


def test_load_refreshes_recency(tmp_path):
    cache = ArtifactCache(tmp_path, max_bytes=3 * 5000)
    for i in range(3):
        cache.store("suite", ("k", i), PAYLOAD)
        _age(cache, "suite", ("k", i), seconds_ago=100 - i)
    assert cache.load("suite", ("k", 0)) == PAYLOAD  # now the most recent
    cache.store("suite", ("k", 3), PAYLOAD)
    assert cache.load("suite", ("k", 0)) == PAYLOAD, "recently-read entry survived"
    assert cache.load("suite", ("k", 1)) is None, "stale entry evicted instead"


def test_oversized_single_artifact_still_lands(tmp_path):
    cache = ArtifactCache(tmp_path, max_bytes=1000)
    cache.store("suite", ("k", "small"), b"y" * 100)
    cache.store("suite", ("k", "big"), PAYLOAD)
    assert cache.load("suite", ("k", "big")) == PAYLOAD
    assert cache.load("suite", ("k", "small")) is None
    assert cache.stats.evictions == 1


def test_env_cap_honoured(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", str(2 * 5000))
    cache = ArtifactCache(tmp_path)
    assert cache.max_bytes == 2 * 5000
    for i in range(4):
        cache.store("suite", ("k", i), PAYLOAD)
        _age(cache, "suite", ("k", i), seconds_ago=100 - i)
    assert cache.stats.evictions >= 1
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "not-a-number")
    assert cache.max_bytes is None
    monkeypatch.delenv("REPRO_CACHE_MAX_BYTES")
    assert cache.max_bytes is None


def test_evictions_reported_in_stats_dict(tmp_path):
    cache = ArtifactCache(tmp_path, max_bytes=1000)
    before = cache.stats.snapshot()
    cache.store("suite", ("k", 0), PAYLOAD)
    cache.store("suite", ("k", 1), PAYLOAD)
    delta = cache.stats.delta(before)
    assert "evictions" in delta and delta["evictions"] >= 1
