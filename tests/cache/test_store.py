import os
import time
from dataclasses import dataclass

import pytest

from repro.cache import (
    ARTIFACT_VERSIONS,
    ArtifactCache,
    cache_enabled,
    default_cache,
    stable_digest,
)
from repro.cache import store as store_mod


@dataclass(frozen=True)
class Key:
    scale: float = 0.005
    seed: int = 7


def test_roundtrip_hit(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = Key()
    assert cache.load("suite", key) is None
    assert not cache.has("suite", key)
    cache.store("suite", key, {"answer": 42})
    assert cache.has("suite", key)
    assert cache.load("suite", key) == {"answer": 42}


def test_digest_sensitivity():
    base = stable_digest(Key())
    assert base == stable_digest(Key())  # deterministic
    assert stable_digest(Key(scale=0.01)) != base
    assert stable_digest(Key(seed=8)) != base
    assert stable_digest((1, 2)) != stable_digest((1, "2"))


def test_unkeyable_object_rejected():
    with pytest.raises(TypeError):
        stable_digest(object())


def test_kind_and_version_salts_address_separately(tmp_path, monkeypatch):
    cache = ArtifactCache(tmp_path)
    key = Key()
    cache.store("suite", key, "suite-value")
    # a different kind with the same key is a different address
    assert cache.load("profile", key) is None
    # bumping the per-kind version invalidates that kind only
    monkeypatch.setitem(ARTIFACT_VERSIONS, "suite", ARTIFACT_VERSIONS["suite"] + 1)
    assert cache.load("suite", key) is None
    monkeypatch.undo()
    assert cache.load("suite", key) == "suite-value"


def test_corrupt_entry_is_a_miss_and_is_removed(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = Key()
    path = cache.store("suite", key, "ok")
    path.write_bytes(b"not a pickle")
    assert cache.load("suite", key) is None
    assert not path.exists()
    assert cache.stats.corrupt_dropped == 1


def test_truncated_entry_is_a_miss_and_is_removed(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = Key()
    path = cache.store("suite", key, list(range(1000)))
    path.write_bytes(path.read_bytes()[:10])  # killed mid-write long ago
    assert cache.load("suite", key) is None
    assert not path.exists()
    assert cache.stats.corrupt_dropped == 1


def test_transient_load_error_does_not_destroy_the_entry(tmp_path, monkeypatch):
    cache = ArtifactCache(tmp_path)
    key = Key()
    path = cache.store("suite", key, {"answer": 42})

    def raising_load(fh):
        raise ImportError("source tree mid-edit")

    monkeypatch.setattr(store_mod.pickle, "load", raising_load)
    assert cache.load("suite", key) is None  # a miss...
    assert path.exists()  # ...but the valid entry survives
    assert cache.stats.errors == 1
    monkeypatch.undo()
    assert cache.load("suite", key) == {"answer": 42}


def test_stats_count_hits_misses_and_stores(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.load("suite", "absent")
    cache.store("suite", "k", "v")
    cache.load("suite", "k")
    cache.load("suite", "k")
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1
    assert cache.stats.hits == 2
    delta = cache.stats.delta(cache.stats.snapshot())
    assert all(v == 0 for v in delta.values())


def test_store_sweeps_stale_tmp_files_but_spares_fresh_ones(tmp_path):
    cache = ArtifactCache(tmp_path)
    first = cache.store("suite", "a", 1)
    stale = first.parent / "dead-writer.tmp"
    stale.write_bytes(b"partial")
    old = time.time() - 2 * store_mod.TMP_MAX_AGE_SECONDS
    os.utime(stale, (old, old))
    fresh = first.parent / "inflight-writer.tmp"
    fresh.write_bytes(b"partial")

    cache.store("suite", "b", 2)
    assert not stale.exists()  # orphan reclaimed
    assert fresh.exists()  # possibly another process mid-store: spared
    assert cache.stats.tmp_swept == 1


def test_clear_reclaims_tmp_files_regardless_of_age(tmp_path):
    cache = ArtifactCache(tmp_path)
    path = cache.store("suite", "a", 1)
    fresh = path.parent / "fresh-orphan.tmp"
    fresh.write_bytes(b"partial")
    assert cache.clear("suite") == 2  # the entry and the orphan
    assert not fresh.exists()


def test_disable_env(tmp_path, monkeypatch):
    cache = ArtifactCache(tmp_path)
    cache.store("suite", "k", "v")
    monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
    assert not cache_enabled()
    assert cache.load("suite", "k") is None
    assert cache.store("suite", "k2", "v2") is None
    monkeypatch.delenv("REPRO_CACHE_DISABLE")
    assert cache.load("suite", "k") == "v"


def test_default_cache_follows_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
    cache = default_cache()
    assert cache.root == tmp_path / "alt"
    cache.store("profile", "k", [1, 2, 3])
    assert (tmp_path / "alt").exists()
    assert cache.load("profile", "k") == [1, 2, 3]


def test_clear(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store("suite", "a", 1)
    cache.store("suite", "b", 2)
    cache.store("profile", "a", 3)
    assert cache.clear("suite") == 2
    assert cache.load("suite", "a") is None
    assert cache.load("profile", "a") == 3
    assert cache.clear() == 1
