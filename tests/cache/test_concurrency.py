"""Multi-process hardening: concurrent stores on one key must be
last-writer-wins with no torn reads.

The store path is mkstemp + ``os.replace`` — each writer owns a unique
temp file and the rename is atomic, so a reader racing two hammering
writers must only ever observe a complete payload one of them wrote
(never a blend, never a truncation). This is the property the
multi-tenant server leans on.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.cache import ArtifactCache

KEY = ("stress", "shared-key")
N_ITER = 60
#: Payloads big enough that a torn read would decode wrong or fail.
PAYLOAD_BLOCK = list(range(5000))


def _payload(writer_id: int, iteration: int) -> dict:
    return {"writer": writer_id, "iteration": iteration, "block": PAYLOAD_BLOCK}


def _hammer(root: str, writer_id: int, n_iter: int) -> None:
    cache = ArtifactCache(root)
    for i in range(n_iter):
        cache.store("suite", KEY, _payload(writer_id, i))


@pytest.fixture
def fork_ctx():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("requires the fork start method")
    return multiprocessing.get_context("fork")


def test_two_processes_hammering_one_key_never_tear(tmp_path, fork_ctx):
    cache = ArtifactCache(tmp_path)
    cache.store("suite", KEY, _payload(0, 0))  # ensure the first read hits
    writers = [
        fork_ctx.Process(target=_hammer, args=(str(tmp_path), wid, N_ITER))
        for wid in (1, 2)
    ]
    for p in writers:
        p.start()
    observed = 0
    try:
        while any(p.is_alive() for p in writers):
            value = cache.load("suite", KEY)
            if value is None:
                continue  # raced an eviction-free miss window: impossible here
            assert set(value) == {"writer", "iteration", "block"}
            assert value["writer"] in (0, 1, 2)
            assert value["block"] == PAYLOAD_BLOCK, "torn read: payload corrupted"
            observed += 1
    finally:
        for p in writers:
            p.join(timeout=60)
    assert all(p.exitcode == 0 for p in writers)
    assert observed > 0, "reader never overlapped the writers"
    # No read ever saw a truncated/corrupt entry.
    assert cache.stats.corrupt_dropped == 0
    assert cache.stats.errors == 0
    # The surviving entry is the complete last write of some writer.
    final = cache.load("suite", KEY)
    assert final["iteration"] == N_ITER - 1
    assert final["block"] == PAYLOAD_BLOCK


def test_interrupted_writer_leaves_only_tmp_debris(tmp_path):
    """A writer killed mid-store must never damage the visible entry."""
    cache = ArtifactCache(tmp_path)
    cache.store("suite", KEY, _payload(7, 1))
    path = cache.path_for("suite", KEY)
    # Simulate a killed writer: a half-written temp sibling left behind.
    debris = path.parent / "half-write.tmp"
    debris.write_bytes(pickle.dumps(_payload(8, 2))[:10])
    value = cache.load("suite", KEY)
    assert value == _payload(7, 1)
    assert cache.stats.corrupt_dropped == 0
