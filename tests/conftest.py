"""Test-wide fixtures: isolate the persistent artifact cache.

Every test session gets a private ``REPRO_CACHE_DIR`` so tests neither
read a developer's warm cache (hermeticity) nor pollute it.
"""

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_artifact_cache(tmp_path_factory):
    root = tmp_path_factory.mktemp("repro-cache")
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_CACHE_DIR", str(root))
    yield root
    mp.undo()
