"""Test-wide fixtures: isolate the persistent artifact cache, and shared
Hypothesis profiles.

Every test session gets a private ``REPRO_CACHE_DIR`` so tests neither
read a developer's warm cache (hermeticity) nor pollute it.

Hypothesis profiles (select with ``HYPOTHESIS_PROFILE=<name>``):

* ``ci`` — derandomized and deadline-free, so property tests can neither
  flake on slow shared runners nor go red on a seed the change under
  review never touched; CI selects this one.
* ``dev`` (default) — deadline-free with a modest example budget for
  quick local iteration.
* ``thorough`` — a large randomized example budget for hunting; run as
  ``HYPOTHESIS_PROFILE=thorough pytest tests/validate``.
"""

import os

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None, max_examples=50)
settings.register_profile(
    "thorough",
    deadline=None,
    max_examples=500,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(autouse=True, scope="session")
def _isolated_artifact_cache(tmp_path_factory):
    root = tmp_path_factory.mktemp("repro-cache")
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_CACHE_DIR", str(root))
    yield root
    mp.undo()
