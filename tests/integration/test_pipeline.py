"""End-to-end pipeline tests at a very small scale factor.

These exercise the full paper methodology: build database -> trace queries
-> profile -> five layouts -> fetch/cache/trace-cache simulation, and check
the cross-cutting invariants that hold regardless of scale.
"""

import numpy as np
import pytest

from repro.experiments.harness import WorkloadSettings, get_workload, layouts_for, training_profile
from repro.simulators import (
    CacheConfig,
    count_misses,
    simulate_fetch,
    simulate_trace_cache,
)

SCALE = 0.0005


@pytest.fixture(scope="module")
def workload():
    return get_workload(WorkloadSettings(scale=SCALE))


@pytest.fixture(scope="module")
def layouts(workload):
    return layouts_for(workload, 8, 2)


@pytest.fixture(scope="module")
def fetch_results(workload, layouts):
    return {
        name: simulate_fetch(workload.test_trace, workload.program, layout)
        for name, layout in layouts.items()
    }


def test_all_layouts_complete(workload, layouts):
    for layout in layouts.values():
        layout.validate(workload.program)


def test_instruction_count_is_layout_invariant(workload, fetch_results):
    counts = {r.n_instructions for r in fetch_results.values()}
    assert len(counts) == 1
    assert counts.pop() == workload.test_trace.n_instructions(workload.program.block_size)


def test_trace_events_only_hot_blocks(workload):
    """Traces never reference cold procedures."""
    program = workload.program
    cold_procs = {p.pid for p in program.procedures if p.cold}
    ids = workload.test_trace.block_ids()
    touched = set(np.unique(program.block_proc[ids]).tolist())
    assert not (touched & cold_procs)


def test_training_and_test_share_hot_code(workload):
    train = set(np.unique(workload.training_trace.block_ids()).tolist())
    test = set(np.unique(workload.test_trace.block_ids()).tolist())
    overlap = len(train & test) / len(test)
    assert overlap > 0.5  # the profile is representative


def test_reordered_layouts_reduce_taken_branches(workload, fetch_results):
    for name in ("auto", "ops"):
        assert fetch_results[name].n_taken < fetch_results["orig"].n_taken


def test_reordered_layouts_reduce_misses(workload, fetch_results):
    config = CacheConfig(size_bytes=8 * 1024)
    orig = count_misses(fetch_results["orig"].line_chunks, config)
    for name in ("P&H", "Torr", "auto"):
        assert count_misses(fetch_results[name].line_chunks, config) < orig


def test_bigger_cache_never_increases_dm_misses(fetch_results):
    # direct-mapped caches can show Belady anomalies in general, but with
    # doubling (nested) set mappings misses must not increase
    for result in fetch_results.values():
        previous = None
        for kb in (8, 16, 32, 64):
            misses = count_misses(result.line_chunks, CacheConfig(size_bytes=kb * 1024))
            if previous is not None:
                assert misses <= previous
            previous = misses


def test_trace_cache_combination(workload, layouts):
    tc_orig = simulate_trace_cache(workload.test_trace, workload.program, layouts["orig"])
    tc_ops = simulate_trace_cache(workload.test_trace, workload.program, layouts["ops"])
    assert 0.0 < tc_orig.hit_rate < 1.0
    config = CacheConfig(size_bytes=64 * 1024)
    assert tc_ops.bandwidth(config) > 0
    # hits + misses = fetch attempts = base cycles
    assert tc_orig.n_hits + tc_orig.n_misses == tc_orig.n_cycles_base


def test_determinism_end_to_end():
    a = WorkloadSettings(scale=SCALE).build()
    b = WorkloadSettings(scale=SCALE).build()
    np.testing.assert_array_equal(a.training_trace.events, b.training_trace.events)
    np.testing.assert_array_equal(b.test_trace.events, b.test_trace.events)
    assert a.program.n_blocks == b.program.n_blocks


def test_profile_covers_most_dynamic_instructions(workload):
    cfg = training_profile(workload)
    assert int(cfg.block_count.sum()) == workload.training_trace.n_events
