"""Buffer manager: an LRU page cache between access methods and storage.

"The Buffer Manager is responsible for managing the blocks stored in memory
similarly to the way the OS Virtual Memory Manager does" (paper, Section
2.1). Buffer probes are the hottest data-dependent branch in a DBMS kernel:
the hit/miss decision steers the instrumented routine's dynamic branch, and
a miss calls down into the storage manager.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.kernel import decide, kernel_routine
from repro.minidb.storage import Page, StorageManager

__all__ = ["BufferManager", "DEFAULT_BUFFER_PAGES"]

DEFAULT_BUFFER_PAGES = 256


class BufferManager:
    """Fixed-capacity LRU cache of ``(file id, page number) -> Page``."""

    def __init__(self, storage: StorageManager, capacity: int = DEFAULT_BUFFER_PAGES) -> None:
        if capacity < 1:
            raise ValueError("buffer capacity must be >= 1")
        self.storage = storage
        self.capacity = capacity
        self._cache: OrderedDict[tuple[int, int], Page] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @kernel_routine("buffer", sites=1, decides=2, name="ReadBuffer")
    def get_page(self, fid: int, pageno: int) -> Page:
        """Return the page, touching LRU state; misses read through storage."""
        key = (fid, pageno)
        cache = self._cache
        if decide(key in cache):
            self.hits += 1
            cache.move_to_end(key)
            return cache[key]
        self.misses += 1
        page = self.storage.read_page(fid, pageno)
        # eviction check is a second data-dependent branch
        if decide(len(cache) >= self.capacity):
            cache.popitem(last=False)
        cache[key] = page
        return page

    def invalidate(self, fid: int) -> None:
        """Drop all cached pages of a file (used when a file is rewritten)."""
        for key in [k for k in self._cache if k[0] == fid]:
            del self._cache[key]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
