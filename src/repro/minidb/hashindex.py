"""Hash index access method.

Bucketed chaining hash table from key to tuple ids. As with the B-tree,
each index instance registers its own instrumented lookup/insert routines.
Hash indexes support only equality lookups — the TPC-D "Hash database"
variant of the paper uses them for all key attributes (Section 3).
"""

from __future__ import annotations

from repro.kernel import decide
from repro.kernel.registry import Registry

__all__ = ["HashIndex"]

TID = tuple

#: Initial bucket count (grows by doubling at load factor 4, modeling the
#: real kernel's split behaviour coarsely).
_INITIAL_BUCKETS = 64


class HashIndex:
    """Chained-bucket hash index supporting duplicates."""

    def __init__(self, name: str, registry: Registry, *, unique: bool = False) -> None:
        self.name = name
        self.unique = unique
        self.n_entries = 0
        self._n_buckets = _INITIAL_BUCKETS
        self._buckets: list[list[tuple[object, list[TID]]]] = [[] for _ in range(self._n_buckets)]
        self._lookup = registry.scope(f"_hash_search[{name}]", "access", sites=0, decides=2)
        self._insert = registry.scope(f"_hash_insert[{name}]", "access", sites=0, decides=2)

    def _bucket_of(self, key) -> list:
        return self._buckets[hash(key) % self._n_buckets]

    def search(self, key) -> list[TID]:
        """All tuple ids with exactly this key ([] if absent)."""
        with self._lookup:
            bucket = self._bucket_of(key)
            for stored, tids in bucket:
                if decide(stored == key):
                    return list(tids)
                # chain walk continues: each probe is a data decision
            decide(False)
            return []

    def insert(self, key, tid: TID) -> None:
        with self._insert:
            bucket = self._bucket_of(key)
            for stored, tids in bucket:
                if decide(stored == key):
                    if self.unique:
                        raise ValueError(f"duplicate key {key!r} in unique index {self.name!r}")
                    tids.append(tid)
                    self.n_entries += 1
                    return
            bucket.append((key, [tid]))
            self.n_entries += 1
            if decide(self.n_entries > 4 * self._n_buckets):
                self._grow()

    def _grow(self) -> None:
        entries = [(k, tids) for bucket in self._buckets for k, tids in bucket]
        self._n_buckets *= 2
        self._buckets = [[] for _ in range(self._n_buckets)]
        for key, tids in entries:
            self._buckets[hash(key) % self._n_buckets].append((key, tids))

    @property
    def max_chain(self) -> int:
        return max((len(b) for b in self._buckets), default=0)
