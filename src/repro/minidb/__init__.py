"""minidb — a working relational engine standing in for PostgreSQL 6.3.2.

The paper's substrate is a compiled database kernel executing TPC-D queries;
minidb reproduces its *structure* (Figure 1): a Volcano-style pipelined
executor on top of access methods (heap scans, B-tree and hash indexes), a
buffer manager, and a storage manager. Every kernel routine is instrumented
through :mod:`repro.kernel`, so executing a query plan produces the dynamic
basic-block trace the paper obtains by binary instrumentation.

Public entry point: :class:`~repro.minidb.engine.Database`.
"""

from repro.minidb.tuples import Column, Schema, ColumnType
from repro.minidb.engine import Database
from repro.minidb.catalog import Table

__all__ = ["Column", "Schema", "ColumnType", "Database", "Table"]
