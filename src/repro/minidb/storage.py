"""Storage manager: files of fixed-capacity pages (Figure 1, bottom layer).

The storage manager knows nothing about tuples' meaning: it hands out page
objects by ``(file id, page number)``. Reads are instrumented — in the real
kernel this layer is where I/O system calls and file-offset arithmetic live.
"""

from __future__ import annotations

from repro.kernel import kernel_routine

__all__ = ["Page", "StorageManager", "DEFAULT_PAGE_CAPACITY"]

#: Tuples per page. With ~128-byte TPC-D tuples this models an 8 KB page.
DEFAULT_PAGE_CAPACITY = 64


class Page:
    """A slotted page: a bounded list of rows."""

    __slots__ = ("rows", "capacity")

    def __init__(self, capacity: int) -> None:
        self.rows: list[tuple] = []
        self.capacity = capacity

    @property
    def full(self) -> bool:
        return len(self.rows) >= self.capacity

    def add(self, row: tuple) -> int:
        if self.full:
            raise ValueError("page full")
        self.rows.append(row)
        return len(self.rows) - 1


class StorageManager:
    """Owns all files; the buffer manager is its only client."""

    def __init__(self, page_capacity: int = DEFAULT_PAGE_CAPACITY) -> None:
        self._files: dict[int, list[Page]] = {}
        self._next_fid = 0
        self.page_capacity = page_capacity
        self.reads = 0

    def create_file(self) -> int:
        fid = self._next_fid
        self._next_fid += 1
        self._files[fid] = []
        return fid

    def n_pages(self, fid: int) -> int:
        return len(self._files[fid])

    def extend(self, fid: int) -> int:
        """Append an empty page; returns its page number."""
        pages = self._files[fid]
        pages.append(Page(self.page_capacity))
        return len(pages) - 1

    @kernel_routine("storage", sites=0, decides=1, name="smgr_read")
    def read_page(self, fid: int, pageno: int) -> Page:
        """Fetch a page (models the seek+read path of the real storage layer)."""
        from repro.kernel import decide

        pages = self._files[fid]
        # data-dependent path: reading the current tail page vs an inner page
        decide(pageno == len(pages) - 1)
        self.reads += 1
        return pages[pageno]

    def write_page(self, fid: int, pageno: int, page: Page) -> None:
        """No-op for in-memory files (kept for interface completeness)."""
        self._files[fid][pageno] = page
