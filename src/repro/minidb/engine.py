"""The Database facade: catalog + buffer + storage + plan execution.

A :class:`Database` owns a private registry clone, so each instance's
per-index specialized routines are isolated; :meth:`kernel_model` builds the
static image for *this* database, and :meth:`run` executes a plan tree to
completion (queries always run to completion in the paper's methodology).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.kernel import kernel_routine
from repro.kernel.model import ColdCodeConfig, KernelModel
from repro.kernel.registry import Registry, default_registry
from repro.minidb.buffer import DEFAULT_BUFFER_PAGES, BufferManager
from repro.minidb.catalog import Table
from repro.minidb.executor.node import PlanNode
from repro.minidb.storage import DEFAULT_PAGE_CAPACITY, StorageManager
from repro.minidb.tuples import Column, Schema

__all__ = ["Database"]


class Database:
    """An in-process minidb instance (one paper 'backend')."""

    def __init__(
        self,
        name: str = "db",
        *,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        registry: Registry | None = None,
    ) -> None:
        self.name = name
        self.registry = (registry if registry is not None else default_registry()).clone()
        self.storage = StorageManager(page_capacity)
        self.buffer = BufferManager(self.storage, buffer_pages)
        self.tables: dict[str, Table] = {}

    # -- catalog -------------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[Column]) -> Table:
        if name in self.tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, Schema(columns), self.buffer, self.registry)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"no table {name!r}; have {sorted(self.tables)}") from None

    def load(self, name: str, rows: Iterable[tuple]) -> int:
        """Bulk-insert rows (untraced; the paper profiles queries only)."""
        table = self.table(name)
        n = 0
        for row in rows:
            table.insert(row)
            n += 1
        return n

    # -- kernel model ----------------------------------------------------------

    def kernel_model(
        self,
        *,
        seed: int = 2029,
        richness: float = 10.0,
        cold: ColdCodeConfig | None = None,
        clones: tuple[tuple[str, str], ...] = (),
    ) -> KernelModel:
        """Build the static image for this database's routine set.

        Call after all tables and indexes exist (index creation registers
        per-index specialized routines, like a compiled kernel's cloned
        access paths). ``clones`` forwards profile-guided function-cloning
        pairs to the model (see :mod:`repro.kernel.inline`).
        """
        return KernelModel(self.registry, seed=seed, richness=richness, cold=cold, clones=clones)

    # -- execution -------------------------------------------------------------

    def run(self, plan: PlanNode) -> list[tuple]:
        """Execute a plan tree to completion and return all result rows."""
        plan.open()
        out: list[tuple] = []
        _executor_run(plan, out)
        plan.close()
        return out


@kernel_routine("executor", sites=2, decides=1, name="ExecutorRun")
def _executor_run(plan: PlanNode, out: list[tuple]) -> None:
    """The executor's demand loop: pull rows from the plan root until done."""
    from repro.kernel import decide

    while True:
        row = plan.next()
        if not decide(row is not None):
            return
        out.append(row)
