"""Plan-node protocol and shared per-tuple kernel routines.

``next()`` returns one output row or ``None`` at end of stream. The
``rescan`` method restarts a node — with new parameter bindings for the
inner side of a nested-loop join (the paper's plans use index nested loops,
which rebind the index key per outer row).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.kernel import decide, kernel_routine
from repro.minidb.tuples import Schema

__all__ = ["PlanNode", "exec_qual", "exec_project"]


class PlanNode:
    """Base class: subclasses set ``schema`` and ``children`` at init."""

    schema: Schema
    children: tuple["PlanNode", ...] = ()

    def open(self) -> None:
        """Prepare for execution (compile expressions, reset state)."""
        for child in self.children:
            child.open()

    def next(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def close(self) -> None:
        for child in self.children:
            child.close()

    def rescan(self, **params) -> None:
        """Restart the stream; parameterizable nodes accept new bindings."""
        raise NotImplementedError(f"{type(self).__name__} does not support rescan")

    def run(self) -> list[tuple]:
        """Drain the node (convenience for tests; queries go through Database.run)."""
        self.open()
        out = []
        while (row := self.next()) is not None:
            out.append(row)
        self.close()
        return out

    def explain(self, indent: int = 0) -> str:
        """Nested textual plan, vaguely like EXPLAIN output."""
        line = "  " * indent + type(self).__name__
        return "\n".join([line] + [c.explain(indent + 1) for c in self.children])


@kernel_routine("executor", sites=0, decides=1, name="ExecQual")
def exec_qual(pred: Callable[[tuple], object], row: tuple) -> bool:
    """Evaluate a compiled qualification against one row.

    The paper's workload characterization singles out the Qualify operation
    as a dominant, data-dependent kernel path — each evaluation is a dynamic
    branch steered by the actual data.
    """
    return decide(pred(row))


@kernel_routine("executor", sites=0, decides=0, name="ExecProject")
def exec_project(fns: list[Callable[[tuple], object]], row: tuple) -> tuple:
    """Compute a projection's output tuple."""
    return tuple(fn(row) for fn in fns)
