"""Projection, filter, limit, materialization and rename nodes."""

from __future__ import annotations

from repro.kernel import decide, kernel_routine
from repro.minidb.executor.expr import Expr
from repro.minidb.executor.node import PlanNode, exec_project, exec_qual
from repro.minidb.tuples import Column, Schema

__all__ = ["Project", "Filter", "Limit", "Material", "Rename"]


class Project(PlanNode):
    """Compute output expressions (PostgreSQL's Result/targetlist step)."""

    def __init__(self, child: PlanNode, exprs: list[tuple[Expr, str]]) -> None:
        if not exprs:
            raise ValueError("Project needs at least one expression")
        self.child = child
        self.exprs = exprs
        self.children = (child,)
        self.schema = Schema([Column(label, e.column_type(child.schema)) for e, label in exprs])

    def open(self) -> None:
        super().open()
        self._fns = [e.compile(self.child.schema) for e, _ in self.exprs]

    def rescan(self, **params) -> None:
        self.child.rescan(**params)

    @kernel_routine("executor", sites=2, decides=0, name="ExecResult", op=True)
    def next(self):
        row = self.child.next()
        if row is None:
            return None
        return exec_project(self._fns, row)


class Filter(PlanNode):
    """Standalone qualification (e.g. HAVING over aggregate output)."""

    def __init__(self, child: PlanNode, qual: Expr) -> None:
        self.child = child
        self.qual = qual
        self.children = (child,)
        self.schema = child.schema

    def open(self) -> None:
        super().open()
        self._qual_fn = self.qual.compile(self.schema)

    def rescan(self, **params) -> None:
        self.child.rescan(**params)

    @kernel_routine("executor", sites=2, decides=0, name="ExecFilter")
    def next(self):
        qual_fn = self._qual_fn
        while (row := self.child.next()) is not None:
            if exec_qual(qual_fn, row):
                return row
        return None


class Limit(PlanNode):
    """Stop after ``n`` rows."""

    def __init__(self, child: PlanNode, n: int) -> None:
        if n < 0:
            raise ValueError("limit must be >= 0")
        self.child = child
        self.n = n
        self.children = (child,)
        self.schema = child.schema

    def open(self) -> None:
        super().open()
        self._emitted = 0

    def rescan(self, **params) -> None:
        self._emitted = 0
        self.child.rescan(**params)

    @kernel_routine("executor", sites=2, decides=1, name="ExecLimit")
    def next(self):
        if not decide(self._emitted < self.n):
            return None
        row = self.child.next()
        if row is None:
            return None
        self._emitted += 1
        return row


class Material(PlanNode):
    """Materialize the child once; rescans replay without re-executing it.

    This is what makes a non-parameterized nested-loop inner affordable —
    exactly PostgreSQL's Material node.
    """

    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.children = (child,)
        self.schema = child.schema

    def open(self) -> None:
        super().open()
        self._rows: list[tuple] | None = None
        self._pos = 0

    def rescan(self) -> None:
        self._pos = 0

    @kernel_routine("executor", sites=2, decides=1, name="ExecMaterial")
    def next(self):
        if self._rows is None:
            rows = []
            while (row := self.child.next()) is not None:
                rows.append(row)
            self._rows = rows
        if decide(self._pos < len(self._rows)):
            row = self._rows[self._pos]
            self._pos += 1
            return row
        return None


class Rename(PlanNode):
    """Rename output columns (a compile-time alias; rows pass through).

    Needed when the same table appears twice in a plan (Q7/Q8 join nation
    twice) so the concatenated join schema keeps unique names. Not an
    instrumented routine: renaming has no runtime code in a real kernel.
    """

    def __init__(self, child: PlanNode, mapping: dict[str, str]) -> None:
        unknown = set(mapping) - set(child.schema.names())
        if unknown:
            raise ValueError(f"cannot rename unknown columns {sorted(unknown)}")
        self.child = child
        self.children = (child,)
        self.schema = Schema(
            [Column(mapping.get(c.name, c.name), c.type) for c in child.schema.columns]
        )

    def rescan(self, **params) -> None:
        self.child.rescan(**params)

    def next(self):
        return self.child.next()
