"""Join operations: nested loop (with parameterized inner), hash and merge.

All three produce ``outer_row + inner_row`` concatenations (TPC-D column
names are globally unique, so the concatenated schema is well-formed).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.kernel import decide, kernel_routine
from repro.minidb.executor.expr import Expr
from repro.minidb.executor.node import PlanNode, exec_qual

__all__ = ["NestLoopJoin", "HashJoin", "MergeJoin"]


class NestLoopJoin(PlanNode):
    """Nested-loop join; ``bind`` parameterizes the inner per outer row.

    With ``bind=lambda row: {"eq": row[k]}`` and an :class:`IndexScan`
    inner, this is an index nested-loop join — the shape PostgreSQL picks
    for TPC-D's foreign-key joins when indexes exist.
    """

    def __init__(
        self,
        outer: PlanNode,
        inner: PlanNode,
        *,
        bind: Callable[[tuple], dict] | None = None,
        qual: Expr | None = None,
    ) -> None:
        self.outer = outer
        self.inner = inner
        self.bind = bind
        self.qual = qual
        self.children = (outer, inner)
        self.schema = outer.schema.concat(inner.schema)
        self._outer_row = None
        self._qual_fn = None

    def open(self) -> None:
        self.outer.open()
        # the inner is opened per outer row via rescan; open once to let it
        # compile its expressions
        self.inner.open()
        self._qual_fn = self.qual.compile(self.schema) if self.qual is not None else None
        self._outer_row = None

    @kernel_routine("executor", sites=3, decides=1, name="ExecNestLoop", op=True)
    def next(self):
        qual_fn = self._qual_fn
        while True:
            if self._outer_row is None:
                outer_row = self.outer.next()
                if outer_row is None:
                    return None
                self._outer_row = outer_row
                self.inner.rescan(**(self.bind(outer_row) if self.bind else {}))
            inner_row = self.inner.next()
            if not decide(inner_row is not None):
                self._outer_row = None
                continue
            row = self._outer_row + inner_row
            if qual_fn is None or exec_qual(qual_fn, row):
                return row


class HashJoin(PlanNode):
    """Build a hash table on the inner input, probe with the outer."""

    def __init__(
        self,
        outer: PlanNode,
        inner: PlanNode,
        outer_key: Expr,
        inner_key: Expr,
        *,
        qual: Expr | None = None,
    ) -> None:
        self.outer = outer
        self.inner = inner
        self.outer_key = outer_key
        self.inner_key = inner_key
        self.qual = qual
        self.children = (outer, inner)
        self.schema = outer.schema.concat(inner.schema)
        self._table: dict | None = None
        self._pending: list[tuple] = []
        self._qual_fn = None
        self._outer_key_fn = None

    def open(self) -> None:
        super().open()
        self._outer_key_fn = self.outer_key.compile(self.outer.schema)
        self._inner_key_fn = self.inner_key.compile(self.inner.schema)
        self._qual_fn = self.qual.compile(self.schema) if self.qual is not None else None
        self._table = None
        self._pending = []

    @kernel_routine("executor", sites=3, decides=2, name="ExecHashJoin", op=True)
    def next(self):
        if self._table is None:
            self._build()
        qual_fn = self._qual_fn
        while True:
            if self._pending:
                return self._pending.pop()
            outer_row = self.outer.next()
            if outer_row is None:
                return None
            matches = self._table.get(self._outer_key_fn(outer_row))
            if decide(matches is not None):
                joined = (outer_row + m for m in matches)
                if qual_fn is None:
                    self._pending = list(joined)
                else:
                    self._pending = [r for r in joined if exec_qual(qual_fn, r)]
                # reverse-pop preserves inner order for deterministic output
                self._pending.reverse()

    def _build(self) -> None:
        table: dict = {}
        key_fn = self._inner_key_fn
        while (row := self.inner.next()) is not None:
            _hash_put(table, key_fn(row), row)
        self._table = table


@kernel_routine("executor", sites=0, decides=1, name="ExecHashTableInsert")
def _hash_put(table: dict, key, row: tuple) -> None:
    """Insert a build row (each bucket-collision check is a data branch)."""
    bucket = table.get(key)
    if decide(bucket is None):
        table[key] = [row]
    else:
        bucket.append(row)


class MergeJoin(PlanNode):
    """Merge join over inputs already sorted on the join keys (ascending)."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_key: Expr,
        right_key: Expr,
        *,
        qual: Expr | None = None,
    ) -> None:
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.qual = qual
        self.children = (left, right)
        self.schema = left.schema.concat(right.schema)

    def open(self) -> None:
        super().open()
        self._left_key_fn = self.left_key.compile(self.left.schema)
        self._right_key_fn = self.right_key.compile(self.right.schema)
        self._qual_fn = self.qual.compile(self.schema) if self.qual is not None else None
        self._pending: list[tuple] = []
        self._group_key = None
        self._group: list[tuple] = []
        self._right_row = self.right.next()  # one-row lookahead

    @kernel_routine("executor", sites=3, decides=2, name="ExecMergeJoin", op=True)
    def next(self):
        qual_fn = self._qual_fn
        while True:
            if self._pending:
                return self._pending.pop()
            left_row = self.left.next()
            if left_row is None:
                return None
            key = self._left_key_fn(left_row)
            self._advance_group(key)
            if decide(self._group_key == key):
                joined = (left_row + r for r in self._group)
                if qual_fn is None:
                    self._pending = list(joined)
                else:
                    self._pending = [r for r in joined if exec_qual(qual_fn, r)]
                self._pending.reverse()

    def _advance_group(self, key) -> None:
        """Advance the buffered right-side group until its key is >= ``key``.

        Keeping the whole equal-key group buffered handles many-to-many
        joins: consecutive equal left keys re-match the same group.
        """
        while self._group_key is None or self._group_key < key:
            if self._right_row is None:
                # right side exhausted with no group at/above key
                self._group_key = None
                self._group = []
                return
            group_key = self._right_key_fn(self._right_row)
            group = [self._right_row]
            while True:
                row = self.right.next()
                if row is None:
                    self._right_row = None
                    break
                if decide(self._right_key_fn(row) == group_key):
                    group.append(row)
                else:
                    self._right_row = row
                    break
            self._group_key = group_key
            self._group = group
