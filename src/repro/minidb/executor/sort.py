"""Sort operation.

Sort is a pipeline breaker: it materializes its whole input before emitting
the first row (paper Section 4: Sort/Aggregate/Group "need all their
children's results to be executed, which stops the normal pipelined
execution"). Each input row goes through an instrumented ``tuplesort``
insertion whose data-dependent branch is the classic run-detection
comparison of replacement selection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel import decide, kernel_routine
from repro.minidb.executor.expr import Expr
from repro.minidb.executor.node import PlanNode

__all__ = ["SortKey", "Sort"]


@dataclass(frozen=True)
class SortKey:
    expr: Expr
    descending: bool = False


class Sort(PlanNode):
    """Sort the child's output on one or more keys (stable, multi-key)."""

    def __init__(self, child: PlanNode, keys: list[SortKey]) -> None:
        if not keys:
            raise ValueError("Sort needs at least one key")
        self.child = child
        self.keys = keys
        self.children = (child,)
        self.schema = child.schema

    def open(self) -> None:
        super().open()
        self._key_fns = [(k.expr.compile(self.schema), k.descending) for k in self.keys]
        self._rows: list[tuple] | None = None
        self._pos = 0

    def rescan(self) -> None:
        """Replay the already-sorted result (no re-sort needed)."""
        self._pos = 0

    @kernel_routine("executor", sites=2, decides=1, name="ExecSort", op=True)
    def next(self):
        if self._rows is None:
            self._materialize_and_sort()
        if decide(self._pos < len(self._rows)):
            row = self._rows[self._pos]
            self._pos += 1
            return row
        return None

    def _materialize_and_sort(self) -> None:
        rows: list[tuple] = []
        first_fn = self._key_fns[0][0]
        prev_key = None
        while (row := self.child.next()) is not None:
            prev_key = _tuplesort_put(rows, row, first_fn, prev_key)
        # stable multi-pass sort: least-significant key first
        for fn, descending in reversed(self._key_fns):
            rows.sort(key=fn, reverse=descending)
        self._rows = rows
        self._pos = 0


@kernel_routine("utility", sites=0, decides=1, name="tuplesort_puttuple")
def _tuplesort_put(rows: list[tuple], row: tuple, key_fn, prev_key):
    """Insert one row into the sort workspace.

    The branch models run detection in replacement selection: does this row
    extend the current run or start a new one?
    """
    key = key_fn(row)
    decide(prev_key is None or key >= prev_key)
    rows.append(row)
    return key
