"""Aggregation: plain aggregates and sorted-input group aggregation.

Both are pipeline breakers on their input side. ``GroupAggregate`` expects
its input sorted on the group keys (plans place a Sort beneath it), which
is how PostgreSQL 6.x executed GROUP BY (Sort + Group + Agg nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel import decide, kernel_routine
from repro.minidb.executor.expr import Expr
from repro.minidb.executor.node import PlanNode
from repro.minidb.tuples import Column, ColumnType, Schema

__all__ = ["AggSpec", "Aggregate", "GroupAggregate"]


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: ``func`` in {count, sum, avg, min, max}; ``expr`` may be
    None only for ``count`` (COUNT(*))."""

    func: str
    expr: Expr | None
    label: str

    def __post_init__(self) -> None:
        if self.func not in ("count", "sum", "avg", "min", "max"):
            raise ValueError(f"unknown aggregate {self.func!r}")
        if self.expr is None and self.func != "count":
            raise ValueError(f"{self.func} requires an expression")

    def output_type(self, schema: Schema) -> ColumnType:
        if self.func == "count":
            return ColumnType.INT
        if self.func == "avg":
            return ColumnType.FLOAT
        return self.expr.column_type(schema)


class _AggState:
    """Accumulator for one group: one slot per AggSpec."""

    __slots__ = ("count", "sums", "mins", "maxs", "n")

    def __init__(self, n: int) -> None:
        self.count = 0
        self.sums = [0.0] * n
        self.mins = [None] * n
        self.maxs = [None] * n
        self.n = n


@kernel_routine("executor", sites=0, decides=1, name="advance_aggregates")
def _advance(state: _AggState, fns: list, row: tuple) -> None:
    """Fold one row into the accumulator (instrumented per tuple)."""
    state.count += 1
    for i, fn in enumerate(fns):
        if fn is None:
            continue
        v = fn(row)
        state.sums[i] += v if not isinstance(v, str) else 0
        if decide(state.mins[i] is None or v < state.mins[i]):
            state.mins[i] = v
        if state.maxs[i] is None or v > state.maxs[i]:
            state.maxs[i] = v


def _finalize(state: _AggState, specs: list[AggSpec], int_result: list[bool]) -> tuple:
    out = []
    for i, spec in enumerate(specs):
        if spec.func == "count":
            out.append(state.count)
        elif spec.func == "sum":
            out.append(int(state.sums[i]) if int_result[i] else state.sums[i])
        elif spec.func == "avg":
            out.append(state.sums[i] / state.count if state.count else 0.0)
        elif spec.func == "min":
            out.append(state.mins[i])
        else:
            out.append(state.maxs[i])
    return tuple(out)


class Aggregate(PlanNode):
    """Whole-input aggregation producing exactly one row."""

    def __init__(self, child: PlanNode, aggs: list[AggSpec]) -> None:
        if not aggs:
            raise ValueError("Aggregate needs at least one AggSpec")
        self.child = child
        self.aggs = aggs
        self.children = (child,)
        self.schema = Schema([Column(a.label, a.output_type(child.schema)) for a in aggs])

    def open(self) -> None:
        super().open()
        self._fns = [a.expr.compile(self.child.schema) if a.expr is not None else None for a in self.aggs]
        self._int_result = [
            a.expr is not None and a.expr.column_type(self.child.schema) in (ColumnType.INT, ColumnType.DATE)
            for a in self.aggs
        ]
        self._done = False

    @kernel_routine("executor", sites=2, decides=1, name="ExecAgg", op=True)
    def next(self):
        if decide(self._done):
            return None
        state = _AggState(len(self.aggs))
        while (row := self.child.next()) is not None:
            _advance(state, self._fns, row)
        self._done = True
        return _finalize(state, self.aggs, self._int_result)


class GroupAggregate(PlanNode):
    """Group-by aggregation over input sorted on the group keys.

    Output rows are ``group key values + aggregate values``; the output
    schema names group columns with the given labels.
    """

    def __init__(
        self,
        child: PlanNode,
        group_exprs: list[tuple[Expr, str]],
        aggs: list[AggSpec],
    ) -> None:
        if not group_exprs:
            raise ValueError("GroupAggregate needs at least one group expression")
        self.child = child
        self.group_exprs = group_exprs
        self.aggs = aggs
        self.children = (child,)
        group_cols = [Column(label, expr.column_type(child.schema)) for expr, label in group_exprs]
        agg_cols = [Column(a.label, a.output_type(child.schema)) for a in aggs]
        self.schema = Schema(group_cols + agg_cols)

    def open(self) -> None:
        super().open()
        self._group_fns = [e.compile(self.child.schema) for e, _ in self.group_exprs]
        self._agg_fns = [a.expr.compile(self.child.schema) if a.expr is not None else None for a in self.aggs]
        self._int_result = [
            a.expr is not None and a.expr.column_type(self.child.schema) in (ColumnType.INT, ColumnType.DATE)
            for a in self.aggs
        ]
        self._lookahead = None
        self._started = False
        self._exhausted = False

    @kernel_routine("executor", sites=2, decides=2, name="ExecGroup", op=True)
    def next(self):
        if self._exhausted:
            return None
        if not self._started:
            self._lookahead = self.child.next()
            self._started = True
        row = self._lookahead
        if row is None:
            self._exhausted = True
            return None
        group_key = tuple(fn(row) for fn in self._group_fns)
        state = _AggState(len(self.aggs))
        while row is not None:
            key = tuple(fn(row) for fn in self._group_fns)
            if not decide(key == group_key):
                break
            _advance(state, self._agg_fns, row)
            row = self.child.next()
        self._lookahead = row
        return group_key + _finalize(state, self.aggs, self._int_result)
