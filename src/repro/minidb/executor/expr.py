"""Scalar expressions over rows, compiled to plain Python closures.

Plans are built programmatically (the paper notes parsing/optimization time
is negligible next to execution, Section 2, so minidb has no SQL parser).
Expressions support comparison/arithmetic operator overloading::

    qual = and_(col("l_shipdate") >= const(d0), col("l_discount") < 0.07)
    fn = qual.compile(schema)        # row -> bool

``compile`` resolves column names to tuple indexes once, so per-row
evaluation is a closure call — important because quals run per tuple in the
hot loop.
"""

from __future__ import annotations

import operator
from collections.abc import Callable

from repro.minidb.tuples import ColumnType, Schema

__all__ = ["Expr", "col", "const", "and_", "or_", "not_", "between", "contains", "startswith"]

RowFn = Callable[[tuple], object]


class Expr:
    """Base expression; subclasses implement ``compile`` and ``column_type``."""

    def compile(self, schema: Schema) -> RowFn:
        raise NotImplementedError

    def column_type(self, schema: Schema) -> ColumnType:
        raise NotImplementedError

    # -- operator sugar (autowrap plain Python values as Const) -----------

    def __lt__(self, other):
        return Comparison(operator.lt, "<", self, _wrap(other))

    def __le__(self, other):
        return Comparison(operator.le, "<=", self, _wrap(other))

    def __gt__(self, other):
        return Comparison(operator.gt, ">", self, _wrap(other))

    def __ge__(self, other):
        return Comparison(operator.ge, ">=", self, _wrap(other))

    def __eq__(self, other):  # type: ignore[override]
        return Comparison(operator.eq, "==", self, _wrap(other))

    def __ne__(self, other):  # type: ignore[override]
        return Comparison(operator.ne, "!=", self, _wrap(other))

    __hash__ = None  # type: ignore[assignment]  # == builds a Comparison

    def __add__(self, other):
        return Arithmetic(operator.add, "+", self, _wrap(other))

    def __radd__(self, other):
        return Arithmetic(operator.add, "+", _wrap(other), self)

    def __sub__(self, other):
        return Arithmetic(operator.sub, "-", self, _wrap(other))

    def __rsub__(self, other):
        return Arithmetic(operator.sub, "-", _wrap(other), self)

    def __mul__(self, other):
        return Arithmetic(operator.mul, "*", self, _wrap(other))

    def __rmul__(self, other):
        return Arithmetic(operator.mul, "*", _wrap(other), self)

    def __truediv__(self, other):
        return Arithmetic(operator.truediv, "/", self, _wrap(other))

    def __floordiv__(self, other):
        return Arithmetic(operator.floordiv, "//", self, _wrap(other))


def _wrap(value) -> "Expr":
    return value if isinstance(value, Expr) else Const(value)


class ColumnRef(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def compile(self, schema: Schema) -> RowFn:
        idx = schema.index_of(self.name)
        return operator.itemgetter(idx)

    def column_type(self, schema: Schema) -> ColumnType:
        return schema.columns[schema.index_of(self.name)].type

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def compile(self, schema: Schema) -> RowFn:
        value = self.value
        return lambda row: value

    def column_type(self, schema: Schema) -> ColumnType:
        if isinstance(self.value, bool) or isinstance(self.value, int):
            return ColumnType.INT
        if isinstance(self.value, float):
            return ColumnType.FLOAT
        return ColumnType.STR

    def __repr__(self) -> str:
        return f"const({self.value!r})"


class Comparison(Expr):
    __slots__ = ("op", "symbol", "left", "right")

    def __init__(self, op, symbol: str, left: Expr, right: Expr) -> None:
        self.op = op
        self.symbol = symbol
        self.left = left
        self.right = right

    def compile(self, schema: Schema) -> RowFn:
        op, lf, rf = self.op, self.left.compile(schema), self.right.compile(schema)
        return lambda row: op(lf(row), rf(row))

    def column_type(self, schema: Schema) -> ColumnType:
        return ColumnType.INT

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class Arithmetic(Comparison):
    """Same compiled shape as Comparison; differs only in result type."""

    def column_type(self, schema: Schema) -> ColumnType:
        if self.op is operator.truediv:
            return ColumnType.FLOAT
        types = (self.left.column_type(schema), self.right.column_type(schema))
        return ColumnType.FLOAT if ColumnType.FLOAT in types else ColumnType.INT


class BoolOp(Expr):
    __slots__ = ("combine", "symbol", "terms")

    def __init__(self, combine, symbol: str, terms: tuple[Expr, ...]) -> None:
        if not terms:
            raise ValueError(f"{symbol} needs at least one term")
        self.combine = combine
        self.symbol = symbol
        self.terms = terms

    def compile(self, schema: Schema) -> RowFn:
        fns = [t.compile(schema) for t in self.terms]
        combine = self.combine
        return lambda row: combine(fn(row) for fn in fns)

    def column_type(self, schema: Schema) -> ColumnType:
        return ColumnType.INT

    def __repr__(self) -> str:
        return f"{self.symbol}({', '.join(map(repr, self.terms))})"


class Not(Expr):
    __slots__ = ("term",)

    def __init__(self, term: Expr) -> None:
        self.term = term

    def compile(self, schema: Schema) -> RowFn:
        fn = self.term.compile(schema)
        return lambda row: not fn(row)

    def column_type(self, schema: Schema) -> ColumnType:
        return ColumnType.INT

    def __repr__(self) -> str:
        return f"not_({self.term!r})"


class StringMatch(Expr):
    """LIKE-style matching: substring or prefix (TPC-D's only LIKE shapes)."""

    __slots__ = ("term", "pattern", "mode")

    def __init__(self, term: Expr, pattern: str, mode: str) -> None:
        if mode not in ("contains", "startswith"):
            raise ValueError(f"unknown match mode {mode!r}")
        self.term = term
        self.pattern = pattern
        self.mode = mode

    def compile(self, schema: Schema) -> RowFn:
        fn = self.term.compile(schema)
        pattern = self.pattern
        if self.mode == "contains":
            return lambda row: pattern in fn(row)
        return lambda row: fn(row).startswith(pattern)

    def column_type(self, schema: Schema) -> ColumnType:
        return ColumnType.INT

    def __repr__(self) -> str:
        return f"{self.mode}({self.term!r}, {self.pattern!r})"


# -- public constructors ----------------------------------------------------


def col(name: str) -> ColumnRef:
    """Reference a column by name (resolved at compile time)."""
    return ColumnRef(name)


def const(value) -> Const:
    """A literal value."""
    return Const(value)


def and_(*terms: Expr) -> Expr:
    """Conjunction (all terms true)."""
    return BoolOp(all, "and_", terms)


def or_(*terms: Expr) -> Expr:
    """Disjunction (any term true)."""
    return BoolOp(any, "or_", terms)


def not_(term: Expr) -> Expr:
    return Not(term)


def between(term: Expr, lo, hi) -> Expr:
    """Inclusive range check, as in SQL BETWEEN."""
    return and_(term >= _wrap(lo), term <= _wrap(hi))


def contains(term: Expr, substring: str) -> Expr:
    """SQL ``LIKE '%substring%'``."""
    return StringMatch(term, substring, "contains")


def startswith(term: Expr, prefix: str) -> Expr:
    """SQL ``LIKE 'prefix%'``."""
    return StringMatch(term, prefix, "startswith")
