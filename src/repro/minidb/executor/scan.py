"""Scan operations: sequential heap scan and (B-tree or hash) index scan."""

from __future__ import annotations

from repro.kernel import kernel_routine
from repro.minidb.btree import BTreeIndex
from repro.minidb.catalog import Table
from repro.minidb.executor.expr import Expr
from repro.minidb.executor.node import PlanNode, exec_qual
from repro.minidb.hashindex import HashIndex

__all__ = ["SeqScan", "IndexScan"]


class SeqScan(PlanNode):
    """Full heap scan with an optional qualification."""

    def __init__(self, table: Table, qual: Expr | None = None) -> None:
        self.table = table
        self.qual = qual
        self.schema = table.schema
        self._iter = None
        self._qual_fn = None

    def open(self) -> None:
        self._qual_fn = self.qual.compile(self.schema) if self.qual is not None else None
        self._iter = self.table.heap_scan()

    def rescan(self) -> None:
        self._iter = self.table.heap_scan()

    @kernel_routine("executor", sites=2, decides=0, name="ExecSeqScan", op=True)
    def next(self):
        qual_fn = self._qual_fn
        for row in self._iter:
            if qual_fn is None or exec_qual(qual_fn, row):
                return row
        return None

    def close(self) -> None:
        self._iter = None


class IndexScan(PlanNode):
    """Index lookup/range scan with heap fetch and optional qualification.

    Key forms:

    * ``eq=value`` — exact-match lookup (works on B-tree and hash indexes);
    * ``lo=... / hi=...`` (with ``lo_strict``/``hi_strict``) — B-tree range.

    The inner side of an index nested-loop join rebinds the key per outer
    row via ``rescan(eq=...)`` / ``rescan(lo=..., hi=...)``.
    """

    def __init__(
        self,
        table: Table,
        column: str,
        *,
        index_kind: str = "btree",
        eq=None,
        lo=None,
        hi=None,
        lo_strict: bool = False,
        hi_strict: bool = False,
        qual: Expr | None = None,
    ) -> None:
        self.table = table
        self.column = column
        self.index = table.index_on(column, index_kind)
        if isinstance(self.index, HashIndex) and eq is None and (lo is not None or hi is not None):
            raise ValueError(f"hash index on {column!r} supports only eq lookups")
        self.keys = {"eq": eq, "lo": lo, "hi": hi, "lo_strict": lo_strict, "hi_strict": hi_strict}
        self.qual = qual
        self.schema = table.schema
        self._iter = None
        self._qual_fn = None

    def open(self) -> None:
        self._qual_fn = self.qual.compile(self.schema) if self.qual is not None else None
        self._start()

    def rescan(self, **keys) -> None:
        if keys:
            unknown = set(keys) - set(self.keys)
            if unknown:
                raise ValueError(f"unknown index scan bindings {sorted(unknown)}")
            self.keys.update(keys)
        self._start()

    def _start(self) -> None:
        eq = self.keys["eq"]
        if eq is not None:
            self._iter = iter(self.index.search(eq))
        elif isinstance(self.index, BTreeIndex):
            self._iter = self.index.range_scan(
                self.keys["lo"],
                self.keys["hi"],
                lo_strict=self.keys["lo_strict"],
                hi_strict=self.keys["hi_strict"],
            )
        else:
            # a hash inner of a nested loop is opened unbound; the join
            # binds the key via rescan(eq=...) before pulling rows
            self._iter = None

    @kernel_routine("executor", sites=2, decides=0, name="ExecIndexScan", op=True)
    def next(self):
        if self._iter is None:
            raise RuntimeError(
                f"hash index scan on {self.table.name}.{self.column} was never bound (rescan(eq=...))"
            )
        qual_fn = self._qual_fn
        for tid in self._iter:
            row = self.table.fetch(tid)
            if qual_fn is None or exec_qual(qual_fn, row):
                return row
        return None

    def close(self) -> None:
        self._iter = None
