"""Volcano-style pipelined executor (Figure 1's Executor module).

Plan nodes implement ``open() / next() / close()``; ``next`` returns one
result row (or ``None`` at end of stream), so "each operation passes the
result tuples to the parent operation in the execution plan as soon as they
are generated" (paper, Section 2.2) — except Sort, Aggregate and Group,
which must consume their whole input first, exactly the pipeline-breaking
behaviour the paper's Training-set selection calls out.

Each operation's ``next`` entry point is an instrumented kernel routine
(``ExecSeqScan``, ``ExecNestLoop``, ...) marked ``op=True``: these are the
seeds of the paper's knowledge-based *ops* layout.
"""

from repro.minidb.executor.expr import (
    Expr,
    col,
    const,
    and_,
    or_,
    not_,
    between,
    contains,
    startswith,
)
from repro.minidb.executor.node import PlanNode
from repro.minidb.executor.scan import SeqScan, IndexScan
from repro.minidb.executor.join import NestLoopJoin, HashJoin, MergeJoin
from repro.minidb.executor.sort import Sort, SortKey
from repro.minidb.executor.agg import Aggregate, GroupAggregate, AggSpec
from repro.minidb.executor.misc import Project, Filter, Limit, Material, Rename

__all__ = [
    "Expr",
    "col",
    "const",
    "and_",
    "or_",
    "not_",
    "between",
    "contains",
    "startswith",
    "PlanNode",
    "SeqScan",
    "IndexScan",
    "NestLoopJoin",
    "HashJoin",
    "MergeJoin",
    "Sort",
    "SortKey",
    "Aggregate",
    "GroupAggregate",
    "AggSpec",
    "Project",
    "Filter",
    "Limit",
    "Material",
    "Rename",
]
