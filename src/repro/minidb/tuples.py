"""Tuple and schema primitives.

Rows are plain Python tuples; a :class:`Schema` names and types the fields.
TPC-D column names are globally unique (``l_``/``o_``/``c_`` prefixes), so
join output schemas are simple concatenations, as in the benchmark's own
documentation.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["ColumnType", "Column", "Schema"]


class ColumnType(enum.Enum):
    INT = "int"
    FLOAT = "float"
    STR = "str"
    DATE = "date"  # stored as integer day number


_PY_TYPES = {
    ColumnType.INT: int,
    ColumnType.FLOAT: float,
    ColumnType.STR: str,
    ColumnType.DATE: int,
}


@dataclass(frozen=True)
class Column:
    name: str
    type: ColumnType

    def accepts(self, value: object) -> bool:
        return isinstance(value, _PY_TYPES[self.type]) and not (
            self.type in (ColumnType.INT, ColumnType.DATE) and isinstance(value, bool)
        )


class Schema:
    """Ordered, uniquely named columns with O(1) name lookup."""

    __slots__ = ("columns", "_index")

    def __init__(self, columns: Sequence[Column]) -> None:
        self.columns = tuple(columns)
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        if len(self._index) != len(self.columns):
            raise ValueError("duplicate column names in schema")

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no column {name!r}; have {[c.name for c in self.columns]}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self.columns)

    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def concat(self, other: "Schema") -> "Schema":
        """Join output schema (column names must stay unique)."""
        return Schema(self.columns + other.columns)

    def project(self, names: Sequence[str]) -> "Schema":
        return Schema(tuple(self.columns[self.index_of(n)] for n in names))

    def validate_row(self, row: tuple) -> None:
        if len(row) != len(self.columns):
            raise ValueError(f"row arity {len(row)} != schema arity {len(self.columns)}")
        for value, column in zip(row, self.columns):
            if not column.accepts(value):
                raise TypeError(f"column {column.name!r} ({column.type.value}) rejects {value!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema({', '.join(f'{c.name}:{c.type.value}' for c in self.columns)})"
