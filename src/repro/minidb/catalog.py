"""Tables and the catalog: heap files plus their indexes.

A :class:`Table` owns a heap file (pages of tuples, reached through the
buffer manager) and any number of named indexes. Tuple ids are
``(page number, slot)`` pairs, so index lookups resolve through the buffer
manager exactly like the real kernel's ``heap_fetch``.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.kernel import decide
from repro.kernel.registry import Registry
from repro.minidb.btree import BTreeIndex
from repro.minidb.buffer import BufferManager
from repro.minidb.hashindex import HashIndex
from repro.minidb.tuples import Schema

__all__ = ["Table", "TID"]

TID = tuple


class Table:
    """A heap table with optional B-tree/hash indexes."""

    def __init__(self, name: str, schema: Schema, buffer: BufferManager, registry: Registry) -> None:
        self.name = name
        self.schema = schema
        self.buffer = buffer
        self.registry = registry
        self.fid = buffer.storage.create_file()
        self.n_rows = 0
        # keyed by (column, kind): the paper's Btree and Hash database
        # variants share one binary, so one Database may carry both kinds
        self.indexes: dict[tuple[str, str], BTreeIndex | HashIndex] = {}
        self._getnext = registry.scope(f"heap_getnext[{name}]", "access", sites=1, decides=1)
        self._fetch = registry.scope(f"heap_fetch[{name}]", "access", sites=1, decides=1)
        self._update = registry.scope(f"heap_update[{name}]", "access", sites=1, decides=1)
        # attribute extraction is per-table specialized code in real kernels
        self._deform = registry.scope(f"heap_deform[{name}]", "access", sites=0, decides=2)

    # -- data loading (not traced: the paper profiles query execution only) --

    def insert(self, row: tuple) -> TID:
        """Append a row to the heap and maintain all indexes."""
        self.schema.validate_row(row)
        storage = self.buffer.storage
        n_pages = storage.n_pages(self.fid)
        if n_pages == 0:
            pageno = storage.extend(self.fid)
        else:
            pageno = n_pages - 1
            if storage.read_page(self.fid, pageno).full:
                pageno = storage.extend(self.fid)
        slot = storage.read_page(self.fid, pageno).add(row)
        tid = (pageno, slot)
        self.n_rows += 1
        for (column, _kind), index in self.indexes.items():
            index.insert(row[self.schema.index_of(column)], tid)
        return tid

    def create_index(self, column: str, kind: str = "btree", *, unique: bool = False) -> None:
        """Index an existing column; backfills from current heap contents."""
        if (column, kind) in self.indexes:
            raise ValueError(f"column {column!r} already has a {kind} index on {self.name!r}")
        name = f"{self.name}_{column}_{kind}"
        if kind == "btree":
            index: BTreeIndex | HashIndex = BTreeIndex(name, self.registry, unique=unique)
        elif kind == "hash":
            index = HashIndex(name, self.registry, unique=unique)
        else:
            raise ValueError(f"unknown index kind {kind!r}")
        col_idx = self.schema.index_of(column)
        storage = self.buffer.storage
        for pageno in range(storage.n_pages(self.fid)):
            page = storage.read_page(self.fid, pageno)
            for slot, row in enumerate(page.rows):
                index.insert(row[col_idx], (pageno, slot))
        self.indexes[(column, kind)] = index

    # -- access methods (traced) --------------------------------------------

    def heap_scan(self) -> Iterator[tuple]:
        """Yield every row in heap order, one instrumented call per page."""
        storage = self.buffer.storage
        n_pages = storage.n_pages(self.fid)
        for pageno in range(n_pages):
            with self._getnext:
                page = self.buffer.get_page(self.fid, pageno)
                decide(pageno + 1 < n_pages)  # more pages to come?
                rows = page.rows
                with self._deform:
                    decide(page.full)  # short tail page vs full page
            yield from rows

    def fetch(self, tid: TID) -> tuple:
        """Fetch one row by tuple id, through the buffer manager."""
        with self._fetch:
            pageno, slot = tid
            page = self.buffer.get_page(self.fid, pageno)
            decide(slot < len(page.rows) - 1)  # slot position within page
            row = page.rows[slot]
            with self._deform:
                decide(page.full)
            return row

    def update(self, tid: TID, new_row: tuple) -> None:
        """Replace a row in place (OLTP write path, traced).

        Indexed columns must keep their values: like PostgreSQL's HOT
        updates, in-place replacement is only legal when no index entry
        would change (the OLTP transactions only touch balances/counters).
        """
        self.schema.validate_row(new_row)
        with self._update:
            pageno, slot = tid
            page = self.buffer.get_page(self.fid, pageno)
            old_row = page.rows[slot]
            for (column, _kind), _index in self.indexes.items():
                idx = self.schema.index_of(column)
                if old_row[idx] != new_row[idx]:
                    raise ValueError(
                        f"update would change indexed column {column!r} on {self.name!r}"
                    )
            decide(slot < len(page.rows) - 1)
            page.rows[slot] = new_row

    def fetch_many(self, tids: list[TID]) -> Iterator[tuple]:
        for tid in tids:
            yield self.fetch(tid)

    def index_on(self, column: str, kind: str = "btree") -> BTreeIndex | HashIndex:
        try:
            return self.indexes[(column, kind)]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no {kind} index on {column!r}") from None
