"""B-tree index access method.

A textbook B+-tree: internal nodes route by separator keys, leaves hold
``(key, [tuple ids])`` and are chained for range scans. Each index instance
registers its *own* instrumented descent/scan routines (via registry
scopes), modeling the per-index specialized code paths a compiled kernel
has — this is part of how the reproduction reaches a realistic executed
procedure count (see DESIGN.md).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Iterator

from repro.kernel import decide
from repro.kernel.registry import Registry

__all__ = ["BTreeIndex", "DEFAULT_ORDER"]

DEFAULT_ORDER = 64

#: Tuple id: (page number, slot) within the table's heap file.
TID = tuple


class _Node:
    __slots__ = ("leaf", "keys", "children", "values", "next")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.keys: list = []
        self.children: list[_Node] = []  # internal nodes only
        self.values: list[list[TID]] = []  # leaf nodes only
        self.next: _Node | None = None  # leaf chain


class BTreeIndex:
    """B+-tree from keys to lists of heap tuple ids (supports duplicates)."""

    def __init__(
        self,
        name: str,
        registry: Registry,
        *,
        unique: bool = False,
        order: int = DEFAULT_ORDER,
    ) -> None:
        if order < 4:
            raise ValueError("order must be >= 4")
        self.name = name
        self.unique = unique
        self.order = order
        self._root = _Node(leaf=True)
        self.n_entries = 0
        self._descend = registry.scope(f"_bt_search[{name}]", "access", sites=1, decides=2)
        self._binsrch = registry.scope(f"_bt_binsrch[{name}]", "access", sites=0, decides=2)
        self._leafscan = registry.scope(f"_bt_scan[{name}]", "access", sites=0, decides=1)
        self._insert = registry.scope(f"_bt_insert[{name}]", "access", sites=0, decides=2)

    # -- search ------------------------------------------------------------

    def _descend_to_leaf(self, key) -> _Node:
        node = self._root
        while not node.leaf:
            # per-level routing through the specialized node binary search
            with self._binsrch:
                i = bisect_right(node.keys, key)
                decide(i < len(node.keys))  # which way the descent went
            node = node.children[i]
        return node

    def search(self, key) -> list[TID]:
        """All tuple ids with exactly this key ([] if absent)."""
        with self._descend:
            leaf = self._descend_to_leaf(key)
            i = bisect_left(leaf.keys, key)
            if decide(i < len(leaf.keys) and leaf.keys[i] == key):
                return list(leaf.values[i])
            return []

    def range_scan(self, lo=None, hi=None, *, lo_strict: bool = False, hi_strict: bool = False) -> Iterator[TID]:
        """Tuple ids with ``lo (<|<=) key (<|<=) hi``, in key order.

        ``None`` bounds are open. Emits one instrumented leaf-scan per leaf
        visited (per-page granularity, like the real kernel's ``_bt_next``).
        """
        with self._descend:
            if lo is None:
                node = self._leftmost_leaf()
                i = 0
            else:
                node = self._descend_to_leaf(lo)
                i = bisect_right(node.keys, lo) if lo_strict else bisect_left(node.keys, lo)
        while node is not None:
            # collect matches per leaf inside the instrumented scope and only
            # yield after it closes: suspending a generator inside a traced
            # scope would interleave walker frames incorrectly.
            done = False
            matched: list[TID] = []
            with self._leafscan:
                keys = node.keys
                n = len(keys)
                while i < n:
                    key = keys[i]
                    if hi is not None and not decide(key < hi if hi_strict else key <= hi):
                        done = True
                        break
                    matched.extend(node.values[i])
                    i += 1
            yield from matched
            if done:
                return
            node = node.next
            i = 0

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.leaf:
            node = node.children[0]
        return node

    # -- insertion -----------------------------------------------------------

    def insert(self, key, tid: TID) -> None:
        """Insert one entry; splits propagate up as needed."""
        with self._insert:
            split = self._insert_into(self._root, key, tid)
            if decide(split is not None):
                sep, right = split
                new_root = _Node(leaf=False)
                new_root.keys = [sep]
                new_root.children = [self._root, right]
                self._root = new_root

    def _insert_into(self, node: _Node, key, tid: TID):
        if node.leaf:
            i = bisect_left(node.keys, key)
            if decide(i < len(node.keys) and node.keys[i] == key):
                if self.unique:
                    raise ValueError(f"duplicate key {key!r} in unique index {self.name!r}")
                node.values[i].append(tid)
            else:
                node.keys.insert(i, key)
                node.values.insert(i, [tid])
            self.n_entries += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        i = bisect_right(node.keys, key)
        split = self._insert_into(node.children[i], key, tid)
        if split is not None:
            sep, right = split
            node.keys.insert(i, sep)
            node.children.insert(i + 1, right)
            if len(node.keys) > self.order:
                return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # -- pickling ------------------------------------------------------------
    # The tree is linked (children + the leaf chain), so default pickling
    # recurses once per node and overflows the interpreter stack on large
    # indexes. Serialize the node graph as a flat list with index links
    # instead; depth stays constant regardless of index size.

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        nodes: list[_Node] = []
        at: dict[int, int] = {}
        stack = [self._root]
        while stack:
            node = stack.pop()
            if id(node) in at:
                continue
            at[id(node)] = len(nodes)
            nodes.append(node)
            stack.extend(node.children)
        state["_root"] = [
            (
                n.leaf,
                n.keys,
                [at[id(c)] for c in n.children],
                n.values,
                at[id(n.next)] if n.next is not None else -1,
            )
            for n in nodes
        ]
        return state

    def __setstate__(self, state: dict) -> None:
        packed = state["_root"]
        nodes = [_Node(leaf) for (leaf, _, _, _, _) in packed]
        for node, (_, keys, children, values, nxt) in zip(nodes, packed):
            node.keys = keys
            node.values = values
            node.children = [nodes[i] for i in children]
            node.next = nodes[nxt] if nxt >= 0 else None
        state["_root"] = nodes[0]
        self.__dict__.update(state)

    # -- invariants (used by tests) -----------------------------------------

    def depth(self) -> int:
        d = 1
        node = self._root
        while not node.leaf:
            node = node.children[0]
            d += 1
        return d

    def check_invariants(self) -> None:
        """Verify key ordering and leaf-chain consistency; raises on violation."""
        prev_key = None
        node = self._leftmost_leaf()
        count = 0
        while node is not None:
            for i, key in enumerate(node.keys):
                if prev_key is not None and key < prev_key:
                    raise AssertionError("leaf keys out of order")
                prev_key = key
                count += len(node.values[i])
            node = node.next
        if count != self.n_entries:
            raise AssertionError(f"entry count mismatch: chain {count} != {self.n_entries}")
