"""Wire formats for the optimization service.

Two concerns live here, both deliberately boring:

* :class:`JobSpec` — the validated, canonicalized body of a
  ``POST /v1/jobs`` request. Validation is strict (unknown keys are
  errors) so a tenant's typo surfaces as a 400 instead of a silently
  default-valued job, and canonicalization (sorted tuples, floats kept
  exact) makes equal work produce equal cache digests across tenants.
* :func:`serialize_suite` — a deterministic JSON document for
  :class:`~repro.experiments.suite.SuiteResults`. The same function
  serializes a batch-CLI suite and a served job result, so "the service
  returns byte-identical results to the batch pipeline" is checkable by
  comparing digests (:func:`result_digest`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
from dataclasses import dataclass, field

from repro.cache import stable_digest
from repro.experiments.config import CACHE_CFA_GRID
from repro.experiments.suite import CellMetrics, SuiteResults
from repro.tpcd.workload import WorkloadSettings

__all__ = [
    "JobSpec",
    "SpecError",
    "canonical_json",
    "result_digest",
    "serialize_suite",
]

#: Upper bound on geometry rows per job; a grid is quadratic work.
MAX_GRID_ROWS = 64

_TRACE_ID_RE = re.compile(r"^[0-9a-f]{40}$")


class SpecError(ValueError):
    """A job request failed validation (the server answers 400)."""


def _require_int(payload: dict, key: str, default: int) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{key!r} must be an integer, got {value!r}")
    return value


def _parse_rows(payload: dict, key: str) -> tuple[tuple[int, int], ...] | None:
    rows = payload.get(key)
    if rows is None:
        return None
    if not isinstance(rows, (list, tuple)) or not rows:
        raise SpecError(f"{key!r} must be a non-empty list of [cache_kb, cfa_kb] pairs")
    if len(rows) > MAX_GRID_ROWS:
        raise SpecError(f"{key!r} has {len(rows)} rows; the limit is {MAX_GRID_ROWS}")
    out = []
    for row in rows:
        if (
            not isinstance(row, (list, tuple))
            or len(row) != 2
            or any(isinstance(v, bool) or not isinstance(v, int) or v <= 0 for v in row)
        ):
            raise SpecError(f"{key!r} rows must be pairs of positive integers, got {row!r}")
        out.append((row[0], row[1]))
    return tuple(out)


@dataclass(frozen=True)
class JobSpec:
    """One tenant's layout-optimization request, canonicalized.

    Without ``trace_id`` the job evaluates the workload generated from
    ``(scale, seed, kernel_seed)`` — exactly what the batch
    ``repro.experiments`` CLIs compute, sharing their artifact-cache
    entries. With ``trace_id`` the Test-set trace is replaced by the
    uploaded stored trace of that id (the static image and Training
    profile still come from the settings).
    """

    scale: float = 0.0005
    seed: int = 7
    kernel_seed: int = 2029
    grid: tuple[tuple[int, int], ...] = CACHE_CFA_GRID
    tc_rows: tuple[tuple[int, int], ...] | None = None
    trace_id: str | None = None
    #: Shard count for the engine's trace-parallel path. Execution policy,
    #: not workload identity: results are bit-identical for any value, so
    #: :meth:`digest` ignores it and jobs differing only in ``shards``
    #: dedupe onto one execution.
    shards: int | None = None

    _KEYS = ("scale", "seed", "kernel_seed", "grid", "tc_rows", "trace_id", "shards")

    @classmethod
    def from_dict(cls, payload: object) -> "JobSpec":
        if not isinstance(payload, dict):
            raise SpecError("job spec must be a JSON object")
        unknown = sorted(set(payload) - set(cls._KEYS))
        if unknown:
            raise SpecError(f"unknown job spec keys: {', '.join(unknown)}")
        scale = payload.get("scale", 0.0005)
        if isinstance(scale, bool) or not isinstance(scale, (int, float)):
            raise SpecError(f"'scale' must be a number, got {scale!r}")
        scale = float(scale)
        if not 0.0 < scale <= 1.0:
            raise SpecError(f"'scale' must be in (0, 1], got {scale}")
        grid = _parse_rows(payload, "grid")
        trace_id = payload.get("trace_id")
        if trace_id is not None and (
            not isinstance(trace_id, str) or not _TRACE_ID_RE.fullmatch(trace_id)
        ):
            raise SpecError(f"'trace_id' must be a 40-hex-digit id, got {trace_id!r}")
        shards = payload.get("shards")
        if shards is not None:
            if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
                raise SpecError(f"'shards' must be a positive integer, got {shards!r}")
        return cls(
            scale=scale,
            seed=_require_int(payload, "seed", 7),
            kernel_seed=_require_int(payload, "kernel_seed", 2029),
            grid=grid if grid is not None else CACHE_CFA_GRID,
            tc_rows=_parse_rows(payload, "tc_rows"),
            trace_id=trace_id,
            shards=shards,
        )

    @property
    def settings(self) -> WorkloadSettings:
        return WorkloadSettings(scale=self.scale, seed=self.seed, kernel_seed=self.kernel_seed)

    def digest(self) -> str:
        """Content address of this spec — the cross-tenant dedupe key.

        ``shards`` is normalized away first: it selects *how* the engine
        computes, never *what*, so equal work dedupes regardless of it.
        """
        return stable_digest(dataclasses.replace(self, shards=None))

    def as_dict(self) -> dict:
        return {
            "scale": self.scale,
            "seed": self.seed,
            "kernel_seed": self.kernel_seed,
            "grid": [list(row) for row in self.grid],
            "tc_rows": None if self.tc_rows is None else [list(r) for r in self.tc_rows],
            "trace_id": self.trace_id,
            "shards": self.shards,
        }


# -- result serialization ------------------------------------------------


def _row_key(row: tuple[int, int]) -> str:
    return f"{row[0]}/{row[1]}"


def _cell_doc(cell: CellMetrics) -> dict:
    return {
        "miss_rate": cell.miss_rate,
        "ipc": cell.ipc,
        "ideal_ipc": cell.ideal_ipc,
        "run_length": cell.run_length,
    }


def serialize_suite(suite: SuiteResults) -> dict:
    """A JSON-safe document for one suite result, deterministically keyed.

    Geometry keys become ``"<cache_kb>/<cfa_kb>"`` strings; all maps are
    emitted in sorted order so two independent serializations of equal
    results are byte-identical under :func:`canonical_json`.
    """
    return {
        "n_instructions": suite.n_instructions,
        "cells": {
            _row_key(row): {name: _cell_doc(cell) for name, cell in sorted(cells.items())}
            for row, cells in sorted(suite.cells.items())
        },
        "assoc_miss": {str(kb): v for kb, v in sorted(suite.assoc_miss.items())},
        "victim_miss": {str(kb): v for kb, v in sorted(suite.victim_miss.items())},
        "tc_ipc": {str(kb): v for kb, v in sorted(suite.tc_ipc.items())},
        "tc_ideal": suite.tc_ideal,
        "tc_hit_rate": suite.tc_hit_rate,
        "tc_ops_ipc": {_row_key(r): v for r, v in sorted(suite.tc_ops_ipc.items())},
        "tc_ops_ideal": {_row_key(r): v for r, v in sorted(suite.tc_ops_ideal.items())},
    }


def canonical_json(doc: dict) -> str:
    """The one serialization used for digests and byte-identity checks."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def result_digest(doc: dict) -> str:
    """Hex SHA-256 of the canonical serialization of a result document."""
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()
