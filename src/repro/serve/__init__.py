"""Layout-as-a-service: the paper's pipeline as a long-running server.

``repro.serve`` turns the batch profile → layout → simulate pipeline
inside-out: an asyncio HTTP/JSON service (stdlib only) that accepts RTRC
trace uploads straight into the chunked tracestore, queues layout
optimization jobs (STC / P&H / Torrellas over a configurable geometry
grid) on the existing fault-tolerant suite engine, dedupes identical work
across tenants through the content-addressed artifact cache, and serves
layout quality metrics (miss rate, fetch bandwidth) with explicit 429
backpressure when saturated.

Run the server::

    python -m repro.serve --port 8753

Talk to it::

    from repro.serve.client import ServeClient
    client = ServeClient("127.0.0.1", 8753)
    job = await client.submit_job({"scale": 0.0005, "grid": [[8, 2]]})
    done = await client.wait_job(job["id"])

See ``examples/load_test.py`` for a multi-tenant driver and
EXPERIMENTS.md for the HTTP API reference.
"""

from repro.serve.codec import JobSpec, SpecError, result_digest, serialize_suite
from repro.serve.jobs import Job, JobManager, QueueFullError
from repro.serve.server import ServeApp

__all__ = [
    "Job",
    "JobManager",
    "JobSpec",
    "QueueFullError",
    "ServeApp",
    "SpecError",
    "result_digest",
    "serialize_suite",
]
