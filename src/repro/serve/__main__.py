"""``python -m repro.serve`` — run the layout-optimization service.

Examples::

    python -m repro.serve --port 8753 --workers 2 --queue-limit 16
    python -m repro.serve --port 0 --once     # bind, self-check, exit

``--once`` starts the server on the requested port, performs an
in-process health + metrics round-trip through the client library, and
exits — a hermetic startup self-test for smoke suites. A running server
shuts down gracefully on ``POST /v1/shutdown`` or SIGINT.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib

from repro.serve.client import ServeClient
from repro.serve.server import MAX_UPLOAD_BYTES, ServeApp


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Async multi-tenant layout-optimization service over the suite engine.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=8753, help="listen port; 0 picks an ephemeral port"
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="max queued jobs before submissions get 429 (default 16)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="concurrent job executions (default 2)"
    )
    parser.add_argument(
        "--engine-jobs",
        type=int,
        default=1,
        help="suite-engine worker processes per job (default 1: in-thread)",
    )
    parser.add_argument(
        "--engine-shards",
        type=int,
        default=None,
        help="default shard count for the engine's trace-parallel path "
        "(jobs may override per spec; default: off)",
    )
    parser.add_argument(
        "--retries", type=int, default=2, help="per-task transient-failure retries (default 2)"
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="suite-engine stall bound per job (default: none)",
    )
    parser.add_argument(
        "--spool",
        default=None,
        metavar="DIR",
        help="directory for uploaded traces and per-job manifests "
        "(default: a fresh temporary directory)",
    )
    parser.add_argument(
        "--max-upload-mb",
        type=int,
        default=MAX_UPLOAD_BYTES // (1024 * 1024),
        help="largest accepted trace upload in MiB (default 512)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="start, run an in-process health/metrics self-check, and exit",
    )
    return parser


async def amain(args: argparse.Namespace) -> int:
    app = ServeApp(
        spool=args.spool,
        queue_limit=args.queue_limit,
        workers=args.workers,
        engine_jobs=args.engine_jobs,
        engine_shards=args.engine_shards,
        retries=args.retries,
        task_timeout=args.task_timeout,
        max_upload_bytes=args.max_upload_mb * 1024 * 1024,
    )
    await app.start(args.host, args.port)
    print(f"repro.serve listening on http://{args.host}:{app.port}", flush=True)
    print(f"repro.serve spool: {app.spool}", flush=True)
    try:
        if args.once:
            client = ServeClient(args.host, app.port, timeout=30.0)
            health = await client.health()
            metrics = await client.metrics()
            ok = health.get("status") == "ok" and "queue" in metrics
            print(
                "self-check {}: healthz + metrics round-trip on port {}".format(
                    "ok" if ok else "FAILED", app.port
                ),
                flush=True,
            )
            return 0 if ok else 1
        await app.wait_shutdown()
        print("repro.serve: shutdown requested", flush=True)
        return 0
    finally:
        await app.stop()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    with contextlib.suppress(KeyboardInterrupt):
        return asyncio.run(amain(args))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
