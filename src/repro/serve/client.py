"""Async client for the optimization service.

One connection per request (mirroring the server's ``Connection:
close``), stdlib only. Typical tenant flow::

    client = ServeClient("127.0.0.1", 8753, tenant="tenant-3")
    trace = await client.upload_trace(Path("test.trace"))
    job = await client.submit_job({"scale": 0.0005, "trace_id": trace["trace_id"]})
    done = await client.wait_job(job["id"])
    print(done["result"]["cells"]["8/2"]["ops"]["miss_rate"])

Errors are typed: a 429 raises :class:`Backpressure` (with
``retry_after``), every other non-2xx raises :class:`ServeError` carrying
the status and decoded body. :meth:`submit_job_retry` wraps submission in
the polite backoff loop tenants are expected to run under saturation.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

from repro.serve.http import read_response

__all__ = ["Backpressure", "ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: object) -> None:
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"server answered {status}: {detail}")
        self.status = status
        self.payload = payload


class Backpressure(ServeError):
    """The service answered 429: back off and resubmit."""

    def __init__(self, status: int, payload: object, retry_after: float) -> None:
        super().__init__(status, payload)
        self.retry_after = retry_after


class ServeClient:
    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8753,
        *,
        tenant: str | None = None,
        timeout: float = 120.0,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout

    # -- transport -------------------------------------------------------

    async def _request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        content_type: str = "application/json",
    ) -> tuple[int, dict[str, str], bytes]:
        async def exchange() -> tuple[int, dict[str, str], bytes]:
            reader, writer = await asyncio.open_connection(self.host, self.port)
            try:
                head = [
                    f"{method} {path} HTTP/1.1",
                    f"Host: {self.host}:{self.port}",
                    "Connection: close",
                ]
                if self.tenant:
                    head.append(f"X-Tenant: {self.tenant}")
                if body or method in ("POST", "PUT"):
                    head.append(f"Content-Type: {content_type}")
                    head.append(f"Content-Length: {len(body)}")
                writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
                await writer.drain()
                return await read_response(reader)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except Exception:
                    pass

        return await asyncio.wait_for(exchange(), timeout=self.timeout)

    async def request_json(
        self,
        method: str,
        path: str,
        obj: object | None = None,
        *,
        raw_body: bytes | None = None,
        content_type: str = "application/json",
    ) -> dict:
        body = raw_body if raw_body is not None else (
            json.dumps(obj).encode() if obj is not None else b""
        )
        status, headers, payload = await self._request(method, path, body, content_type)
        try:
            doc = json.loads(payload) if payload else {}
        except ValueError:
            doc = {"error": payload[:200].decode("latin-1", "replace")}
        if status == 429:
            raise Backpressure(status, doc, float(headers.get("retry-after", "1") or 1))
        if status >= 400:
            raise ServeError(status, doc)
        return doc

    # -- endpoints -------------------------------------------------------

    async def health(self) -> dict:
        return await self.request_json("GET", "/healthz")

    async def metrics(self) -> dict:
        return await self.request_json("GET", "/v1/metrics")

    async def upload_trace(self, trace: bytes | Path | str) -> dict:
        """Upload RTRC bytes (or a stored-trace file) to ``/v1/traces``."""
        data = trace if isinstance(trace, bytes) else Path(trace).read_bytes()
        return await self.request_json(
            "POST", "/v1/traces", raw_body=data, content_type="application/octet-stream"
        )

    async def trace_info(self, trace_id: str) -> dict:
        return await self.request_json("GET", f"/v1/traces/{trace_id}")

    async def submit_job(self, spec: dict) -> dict:
        """Submit once; raises :class:`Backpressure` on a full queue."""
        return await self.request_json("POST", "/v1/jobs", spec)

    async def submit_job_retry(
        self, spec: dict, *, max_attempts: int = 50, on_reject=None
    ) -> dict:
        """Submit with polite backoff: honours ``Retry-After`` on each 429."""
        for attempt in range(1, max_attempts + 1):
            try:
                return await self.submit_job(spec)
            except Backpressure as exc:
                if on_reject is not None:
                    on_reject(exc)
                if attempt == max_attempts:
                    raise
                await asyncio.sleep(exc.retry_after)
        raise AssertionError("unreachable")

    async def get_job(self, job_id: str) -> dict:
        return await self.request_json("GET", f"/v1/jobs/{job_id}")

    async def list_jobs(self) -> list[dict]:
        return (await self.request_json("GET", "/v1/jobs"))["jobs"]

    async def wait_job(self, job_id: str, *, poll: float = 0.05, timeout: float = 600.0) -> dict:
        """Poll until the job completes or fails; returns the full record."""
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            job = await self.get_job(job_id)
            if job["state"] in ("completed", "failed"):
                return job
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError(f"job {job_id} still {job['state']} after {timeout}s")
            await asyncio.sleep(poll)

    async def shutdown(self) -> dict:
        return await self.request_json("POST", "/v1/shutdown")
