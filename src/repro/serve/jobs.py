"""Async job manager: tenant requests onto the fault-tolerant suite engine.

The manager is the adapter between the HTTP front end and the batch
engine (:mod:`repro.experiments.suite`). Its contract:

* **Bounded intake.** Submissions land on an :class:`asyncio.Queue` of
  fixed capacity; a full queue raises :class:`QueueFullError`, which the
  server answers with 429 — saturation is explicit backpressure, never
  an unbounded backlog.
* **Cross-tenant dedupe.** Every spec has a content digest. A submission
  whose result already sits in the artifact cache completes immediately
  (``source="cache"``); one identical to a queued/running job attaches to
  that execution (``source="inflight"``) and completes when it does.
  Settings-only jobs probe the *same* artifact address the batch CLIs
  use (:func:`~repro.experiments.suite.suite_cache_key`), so a prior
  ``python -m repro.experiments`` run warms the service and vice versa.
* **Engine semantics preserved.** Executed jobs run
  :func:`~repro.experiments.suite.suite_for` /
  :func:`~repro.experiments.suite.compute_suite` in a worker thread with
  checkpoint/resume, bounded retries and task timeouts intact, and every
  job — executed or deduped — writes a JSON manifest under the spool
  directory recording what happened.

All manager state is touched only from the event-loop thread; worker
threads receive a spec and return a document, nothing else.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable

from repro.cache import default_cache
from repro.experiments.runlog import RunLog
from repro.experiments.suite import compute_suite, suite_cache_key, suite_for
from repro.profiling.tracestore import TraceStore
from repro.serve.codec import JobSpec, result_digest, serialize_suite
from repro.tpcd.workload import Workload

__all__ = [
    "Job",
    "JobManager",
    "QueueFullError",
    "UnknownTraceError",
    "percentile",
]


class QueueFullError(RuntimeError):
    """The job queue is at capacity (the server answers 429)."""

    def __init__(self, depth: int, limit: int) -> None:
        super().__init__(f"job queue full ({depth}/{limit})")
        self.depth = depth
        self.limit = limit


class UnknownTraceError(KeyError):
    """A job referenced a ``trace_id`` that was never uploaded."""

    def __init__(self, trace_id: str) -> None:
        super().__init__(trace_id)
        self.trace_id = trace_id


def percentile(values: list[float], p: float) -> float:
    """Nearest-rank percentile of an unsorted sample (0 for empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * p // 100))  # ceil without math
    return ordered[int(rank) - 1]


@dataclass
class Job:
    """One tenant submission, from intake to served result."""

    id: str
    spec: JobSpec
    tenant: str | None = None
    state: str = "queued"  # queued | running | completed | failed
    source: str | None = None  # computed | cache | inflight
    exec_id: str | None = None  #: the job that ran the shared execution
    error: str | None = None
    submitted_at: str = ""
    t_submit: float = 0.0
    t_start: float | None = None
    t_done: float | None = None
    result: dict | None = None
    digest: str | None = None
    manifest: str | None = None

    @property
    def seconds(self) -> float | None:
        """Submit-to-done wall clock, once finished."""
        if self.t_done is None:
            return None
        return self.t_done - self.t_submit

    def public(self, *, include_result: bool = True) -> dict:
        doc = {
            "id": self.id,
            "state": self.state,
            "source": self.source,
            "exec_id": self.exec_id,
            "tenant": self.tenant,
            "spec": self.spec.as_dict(),
            "spec_digest": self.spec.digest(),
            "submitted_at": self.submitted_at,
            "seconds": self.seconds,
            "error": self.error,
            "result_digest": self.digest,
            "manifest": self.manifest,
        }
        if include_result and self.result is not None:
            doc["result"] = self.result
        return doc


class JobManager:
    """Bounded queue + worker pool + dedupe index over the suite engine."""

    def __init__(
        self,
        spool: Path | str,
        *,
        queue_limit: int = 16,
        workers: int = 2,
        engine_jobs: int = 1,
        engine_shards: int | None = None,
        retries: int = 2,
        task_timeout: float | None = None,
        trace_path_for: Callable[[str], Path | None] | None = None,
        cache=None,
        execute_fn: Callable[[JobSpec, Path], dict] | None = None,
    ) -> None:
        self.spool = Path(spool)
        self.manifest_dir = self.spool / "manifests"
        self.queue_limit = queue_limit
        self.workers = workers
        self.engine_jobs = engine_jobs
        self.engine_shards = engine_shards
        self.retries = retries
        self.task_timeout = task_timeout
        self._trace_path_for = trace_path_for or (lambda trace_id: None)
        self._cache = cache if cache is not None else default_cache()
        self._execute_fn = execute_fn or self._execute
        self._queue: asyncio.Queue[Job] = asyncio.Queue(maxsize=max(1, queue_limit))
        self._ids = itertools.count(1)
        self.jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}  # spec digest -> executing job
        self._attached: dict[str, list[Job]] = {}  # exec job id -> riders
        self.counters = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "rejected": 0,
            "dedupe_cache": 0,
            "dedupe_inflight": 0,
        }
        self._exec_seconds: list[float] = []
        self._worker_tasks: list[asyncio.Task] = []

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self.manifest_dir.mkdir(parents=True, exist_ok=True)
        if not self._worker_tasks:
            self._worker_tasks = [
                asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
                for i in range(max(1, self.workers))
            ]

    async def close(self) -> None:
        for task in self._worker_tasks:
            task.cancel()
        for task in self._worker_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._worker_tasks = []

    async def drain(self, poll: float = 0.05) -> None:
        """Wait until no job is queued or running (for --once/test runs)."""
        while any(job.state in ("queued", "running") for job in self.jobs.values()):
            await asyncio.sleep(poll)

    # -- intake ----------------------------------------------------------

    def submit(self, spec: JobSpec, tenant: str | None = None) -> Job:
        """Admit one spec: dedupe against cache and in-flight work, else
        enqueue. Raises :class:`QueueFullError` on a saturated queue and
        :class:`UnknownTraceError` for a dangling ``trace_id``."""
        if spec.trace_id is not None and self._trace_path_for(spec.trace_id) is None:
            raise UnknownTraceError(spec.trace_id)
        key = spec.digest()
        job = Job(
            id=f"job-{next(self._ids):06d}",
            spec=spec,
            tenant=tenant,
            submitted_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            t_submit=time.perf_counter(),
        )

        cached_doc = self._load_cached(spec)
        if cached_doc is not None:
            self.jobs[job.id] = job
            self.counters["submitted"] += 1
            self.counters["dedupe_cache"] += 1
            self._complete(job, cached_doc, source="cache")
            self._write_dedupe_manifest(job)
            return job

        exec_job = self._inflight.get(key)
        if exec_job is not None:
            job.source = "inflight"
            job.exec_id = exec_job.id
            job.state = exec_job.state  # queued or running, mirrors the execution
            self.jobs[job.id] = job
            self.counters["submitted"] += 1
            self.counters["dedupe_inflight"] += 1
            self._attached.setdefault(exec_job.id, []).append(job)
            return job

        if self._queue.full():
            self.counters["rejected"] += 1
            raise QueueFullError(self._queue.qsize(), self.queue_limit)
        job.source = "computed"
        job.exec_id = job.id
        job.manifest = str(self.manifest_dir / f"{job.id}.json")
        self.jobs[job.id] = job
        self.counters["submitted"] += 1
        self._inflight[key] = job
        self._queue.put_nowait(job)
        return job

    def _load_cached(self, spec: JobSpec) -> dict | None:
        if spec.trace_id is not None:
            return self._cache.load("serve-result", self._trace_job_key(spec))
        suite = self._cache.load("suite", suite_cache_key(spec.settings, spec.grid, spec.tc_rows))
        if suite is None:
            return None
        try:
            return serialize_suite(suite)
        except Exception:
            return None  # foreign/stale artifact shape: recompute

    @staticmethod
    def _trace_job_key(spec: JobSpec) -> tuple:
        return (spec.settings, spec.grid, spec.tc_rows, spec.trace_id)

    # -- completion ------------------------------------------------------

    def _complete(self, job: Job, doc: dict, *, source: str) -> None:
        job.result = doc
        job.digest = result_digest(doc)
        job.source = source
        if job.exec_id is None:
            job.exec_id = job.id
        job.state = "completed"
        job.t_done = time.perf_counter()
        if job.t_start is None:
            job.t_start = job.t_done
        self.counters["completed"] += 1

    def _fail(self, job: Job, error: str) -> None:
        job.state = "failed"
        job.error = error
        job.t_done = time.perf_counter()
        self.counters["failed"] += 1

    def _write_dedupe_manifest(self, job: Job) -> None:
        """Deduped jobs still get a manifest naming their provenance."""
        path = self.manifest_dir / f"{job.id}.json"
        try:
            runlog = RunLog("serve-job", settings=job.spec.settings, n_tasks=0)
            runlog.event(
                "dedupe", source=job.source, spec_digest=job.spec.digest(), exec_id=job.exec_id
            )
            runlog.finish(status="cached")
            runlog.write(path)
            job.manifest = str(path)
        except OSError:
            pass  # manifests are observability, never job-fatal

    # -- execution -------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            job.state = "running"
            job.t_start = time.perf_counter()
            for rider in self._attached.get(job.id, ()):
                rider.state = "running"
            try:
                doc = await asyncio.to_thread(self._execute_fn, job.spec, Path(job.manifest))
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                self._fail(job, repr(exc))
                for rider in self._attached.pop(job.id, []):
                    self._fail(rider, repr(exc))
            else:
                self._complete(job, doc, source="computed")
                self._exec_seconds.append(job.t_done - job.t_start)
                for rider in self._attached.pop(job.id, []):
                    rider.exec_id = job.id
                    self._complete(rider, doc, source="inflight")
                    self._write_dedupe_manifest(rider)
            finally:
                self._inflight.pop(job.spec.digest(), None)
                self._queue.task_done()

    def _execute(self, spec: JobSpec, manifest: Path) -> dict:
        """Run one spec on the batch engine (called in a worker thread)."""
        # per-job shard override beats the service-wide default; either
        # way the result (and its digest) is bit-identical to unsharded
        shards = spec.shards if spec.shards is not None else self.engine_shards
        if spec.trace_id is None:
            suite = suite_for(
                spec.settings,
                spec.grid,
                tc_rows=spec.tc_rows,
                jobs=self.engine_jobs,
                shards=shards,
                retries=self.retries,
                task_timeout=self.task_timeout,
                manifest=manifest,
            )
            return serialize_suite(suite)
        # Uploaded-trace job: the settings provide the static image and
        # Training profile; the uploaded stored trace replaces the Test
        # set. The derived workload is ad hoc (settings=None), so engine
        # checkpointing is off; completed results are cached whole under
        # the serve-result kind instead.
        from repro.experiments.harness import get_workload

        trace_path = self._trace_path_for(spec.trace_id)
        if trace_path is None:
            raise UnknownTraceError(spec.trace_id)
        base = get_workload(spec.settings)
        derived = Workload(
            db=base.db,
            model=base.model,
            training_trace=base.training_trace,
            test_trace=TraceStore(trace_path),
        )
        suite = compute_suite(
            derived,
            spec.grid,
            tc_rows=spec.tc_rows,
            jobs=self.engine_jobs,
            shards=shards,
            retries=self.retries,
            task_timeout=self.task_timeout,
            manifest=manifest,
        )
        doc = serialize_suite(suite)
        self._cache.store("serve-result", self._trace_job_key(spec), doc)
        return doc

    # -- observability ---------------------------------------------------

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def metrics(self) -> dict:
        live_queued = sum(1 for j in self.jobs.values() if j.state == "queued")
        live_running = sum(1 for j in self.jobs.values() if j.state == "running")
        return {
            "queue": {"depth": self._queue.qsize(), "limit": self.queue_limit},
            "workers": self.workers,
            "engine_jobs": self.engine_jobs,
            "engine_shards": self.engine_shards,
            "jobs": {
                **self.counters,
                "queued": live_queued,
                "running": live_running,
            },
            "dedupe": {
                "cache": self.counters["dedupe_cache"],
                "inflight": self.counters["dedupe_inflight"],
                "total": self.counters["dedupe_cache"] + self.counters["dedupe_inflight"],
            },
            "exec_seconds": {
                "count": len(self._exec_seconds),
                "p50": percentile(self._exec_seconds, 50),
                "p90": percentile(self._exec_seconds, 90),
                "p99": percentile(self._exec_seconds, 99),
                "max": max(self._exec_seconds, default=0.0),
            },
            "cache": self._cache.stats.as_dict(),
        }
