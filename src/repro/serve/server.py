"""The asyncio HTTP front end: routes, uploads, backpressure.

Endpoints (all JSON unless noted):

========  =====================  ==========================================
method    path                   behaviour
========  =====================  ==========================================
GET       /healthz               liveness probe
GET       /v1/metrics            queue depth, job/dedupe counters, cache
                                 stats, execution latency percentiles
POST      /v1/traces             RTRC trace upload (raw body, streamed to
                                 disk); 200 with ``trace_id``, 400 for a
                                 malformed trace — nothing partial stored
GET       /v1/traces/<id>        stored-trace metadata
POST      /v1/jobs               submit a job spec; 202 with the job
                                 record, 429 + ``Retry-After`` when the
                                 queue is full, 400 for a bad spec,
                                 404 for an unknown ``trace_id``
GET       /v1/jobs               job summaries (no result payloads)
GET       /v1/jobs/<id>          full job record, result inlined when done
POST      /v1/shutdown           request graceful shutdown
========  =====================  ==========================================

The optional ``X-Tenant`` request header tags jobs for observability.
Uploads are hashed while streaming and verified chunk-by-chunk (CRC) via
:meth:`TraceStore.verify` before the temp file is renamed into place, so
a malformed upload can never leave a partial stored trace.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import tempfile
import time
import uuid
from pathlib import Path

from repro.cache import default_cache
from repro.profiling.tracestore import TraceFormatError, TraceStore
from repro.serve.codec import JobSpec, SpecError
from repro.serve.http import HttpError, Request, read_request, response_bytes
from repro.serve.jobs import JobManager, QueueFullError, UnknownTraceError

__all__ = ["ServeApp", "TraceRegistry"]

#: Default cap on one trace upload.
MAX_UPLOAD_BYTES = 512 * 1024 * 1024
_UPLOAD_CHUNK = 1 << 20


class TraceRegistry:
    """Content-addressed stored-trace uploads under the spool directory.

    Uploads stream to a ``*.tmp`` sibling while being SHA-256 hashed,
    are structurally verified (header, directory, per-chunk CRC), and
    only then renamed to ``<digest>.trace`` — the same atomic-write
    discipline as the tracestore writer itself. Re-uploads of identical
    bytes dedupe on the digest.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = {"uploads": 0, "dedupe": 0, "rejected": 0, "bytes": 0}

    def path_for(self, trace_id: str) -> Path:
        return self.root / f"{trace_id}.trace"

    def path_if_exists(self, trace_id: str) -> Path | None:
        path = self.path_for(trace_id)
        return path if path.exists() else None

    def info(self, trace_id: str) -> dict | None:
        path = self.path_if_exists(trace_id)
        if path is None:
            return None
        stats = TraceStore(path).stats()
        return {
            "trace_id": trace_id,
            "bytes": stats["bytes"],
            "n_events": stats["n_events"],
            "n_chunks": stats["n_chunks"],
            "compression_ratio": stats["compression_ratio"],
        }

    async def ingest(self, request: Request, *, limit: int = MAX_UPLOAD_BYTES) -> dict:
        """Stream one upload body into the registry; raises
        :class:`HttpError` (400/411/413) without storing anything."""
        length = request.content_length
        if length <= 0:
            self.stats["rejected"] += 1
            raise HttpError(411, "trace upload requires a non-empty body")
        if length > limit:
            self.stats["rejected"] += 1
            raise HttpError(413, f"trace upload of {length} bytes exceeds {limit}")
        tmp = self.root / f"upload-{uuid.uuid4().hex}.tmp"
        digest = hashlib.sha256()
        remaining = length
        try:
            with open(tmp, "wb") as fh:
                while remaining:
                    chunk = await request.reader.read(min(_UPLOAD_CHUNK, remaining))
                    if not chunk:
                        raise HttpError(400, "truncated trace upload")
                    digest.update(chunk)
                    fh.write(chunk)
                    remaining -= len(chunk)
            try:
                await asyncio.to_thread(TraceStore(tmp).verify, True)
            except TraceFormatError as exc:
                raise HttpError(400, f"not a valid RTRC trace: {exc}") from exc
            trace_id = digest.hexdigest()[:40]
            final = self.path_for(trace_id)
            deduped = final.exists()
            if deduped:
                self.stats["dedupe"] += 1
                tmp.unlink(missing_ok=True)
            else:
                os.replace(tmp, final)
                self.stats["uploads"] += 1
                self.stats["bytes"] += length
            return {"deduped": deduped, **self.info(trace_id)}
        except BaseException:
            tmp.unlink(missing_ok=True)
            self.stats["rejected"] += 1
            raise


class ServeApp:
    """Wires the HTTP routes onto a :class:`JobManager` and registry."""

    def __init__(
        self,
        *,
        spool: Path | str | None = None,
        queue_limit: int = 16,
        workers: int = 2,
        engine_jobs: int = 1,
        engine_shards: int | None = None,
        retries: int = 2,
        task_timeout: float | None = None,
        max_upload_bytes: int = MAX_UPLOAD_BYTES,
        cache=None,
        execute_fn=None,
    ) -> None:
        self.spool = Path(spool) if spool is not None else Path(
            tempfile.mkdtemp(prefix="repro-serve-")
        )
        self.spool.mkdir(parents=True, exist_ok=True)
        self.max_upload_bytes = max_upload_bytes
        self._cache = cache if cache is not None else default_cache()
        self.traces = TraceRegistry(self.spool / "traces")
        self.manager = JobManager(
            self.spool,
            queue_limit=queue_limit,
            workers=workers,
            engine_jobs=engine_jobs,
            engine_shards=engine_shards,
            retries=retries,
            task_timeout=task_timeout,
            trace_path_for=self.traces.path_if_exists,
            cache=self._cache,
            execute_fn=execute_fn,
        )
        self._shutdown = asyncio.Event()
        self._server: asyncio.base_events.Server | None = None
        self._t0 = time.monotonic()
        self.request_count = 0

    # -- lifecycle -------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.base_events.Server:
        """Bind and start serving; returns the listening server."""
        await self.manager.start()
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        return self._server

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def wait_shutdown(self) -> None:
        await self._shutdown.wait()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.close()

    # -- connection handling ---------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                self.request_count += 1
                status, body, extra = await self._route(request)
            except HttpError as exc:
                status, body, extra = exc.status, {"error": exc.message}, None
            except SpecError as exc:
                status, body, extra = 400, {"error": str(exc)}, None
            except UnknownTraceError as exc:
                status, body, extra = 404, {"error": f"unknown trace_id {exc.trace_id!r}"}, None
            except QueueFullError as exc:
                status = 429
                body = {
                    "error": str(exc),
                    "queue": {"depth": exc.depth, "limit": exc.limit},
                }
                extra = {"Retry-After": "1"}
            except Exception as exc:  # never let a handler kill the server
                status, body, extra = 500, {"error": f"internal error: {exc!r}"}, None
            writer.write(response_bytes(status, body, extra_headers=extra))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, BrokenPipeError):
            pass  # peer went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    # -- routing ---------------------------------------------------------

    async def _route(self, request: Request) -> tuple[int, dict, dict | None]:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok", "uptime_seconds": time.monotonic() - self._t0}, None
        if path == "/v1/metrics" and method == "GET":
            return 200, self.metrics(), None
        if path == "/v1/traces" and method == "POST":
            meta = await self.traces.ingest(request, limit=self.max_upload_bytes)
            return 200, meta, None
        if path.startswith("/v1/traces/") and method == "GET":
            trace_id = path.rsplit("/", 1)[1]
            info = self.traces.info(trace_id)
            if info is None:
                raise HttpError(404, f"unknown trace_id {trace_id!r}")
            return 200, info, None
        if path == "/v1/jobs" and method == "POST":
            spec = JobSpec.from_dict(await request.json())
            job = self.manager.submit(spec, tenant=request.headers.get("x-tenant"))
            return 202, job.public(include_result=False), None
        if path == "/v1/jobs" and method == "GET":
            return 200, {
                "jobs": [
                    job.public(include_result=False)
                    for _, job in sorted(self.manager.jobs.items())
                ]
            }, None
        if path.startswith("/v1/jobs/") and method == "GET":
            job_id = path.rsplit("/", 1)[1]
            job = self.manager.jobs.get(job_id)
            if job is None:
                raise HttpError(404, f"unknown job {job_id!r}")
            return 200, job.public(), None
        if path == "/v1/shutdown" and method == "POST":
            await request.body()  # consume any (empty) body politely
            self._shutdown.set()
            return 200, {"status": "shutting down"}, None
        known = {"/healthz", "/v1/metrics", "/v1/traces", "/v1/jobs", "/v1/shutdown"}
        if path in known or path.startswith(("/v1/traces/", "/v1/jobs/")):
            raise HttpError(405, f"{method} not allowed on {path}")
        raise HttpError(404, f"no route for {path}")

    # -- observability ---------------------------------------------------

    def metrics(self) -> dict:
        doc = self.manager.metrics()
        doc["uptime_seconds"] = time.monotonic() - self._t0
        doc["requests"] = self.request_count
        doc["traces"] = dict(self.traces.stats)
        return doc
