"""Minimal HTTP/1.1 on asyncio streams — just enough for the service.

Stdlib-only by design (the container bakes no web framework): request
parsing for the server side, response parsing for the client side, and a
shared response writer. Deliberate restrictions, enforced rather than
half-supported:

* bodies require ``Content-Length`` (no chunked transfer encoding);
* one request per connection (``Connection: close`` both ways) — the
  load-test workload is many short independent exchanges, and
  per-request connections keep failure isolation trivial;
* hard caps on request-line/header sizes and on buffered body bytes
  (streaming consumers read the body off the reader themselves).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "read_response",
    "response_bytes",
]

MAX_LINE_BYTES = 8192
MAX_HEADERS = 100
#: Cap on fully-buffered bodies (JSON endpoints); uploads stream instead.
MAX_JSON_BODY_BYTES = 8 * 1024 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Maps straight to an error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed request; the body stays on ``reader`` until consumed."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]  # keys lower-cased
    reader: object  # asyncio.StreamReader
    content_length: int = 0
    _consumed: bool = field(default=False, repr=False)

    async def body(self, limit: int = MAX_JSON_BODY_BYTES) -> bytes:
        """The full body (``Content-Length`` bytes), bounded by ``limit``."""
        if self._consumed:
            raise RuntimeError("request body already consumed")
        self._consumed = True
        if self.content_length == 0:
            return b""
        if self.content_length > limit:
            raise HttpError(413, f"body of {self.content_length} bytes exceeds {limit}")
        try:
            return await self.reader.readexactly(self.content_length)
        except Exception as exc:
            raise HttpError(400, f"truncated request body: {exc!r}") from exc

    async def json(self, limit: int = MAX_JSON_BODY_BYTES) -> object:
        raw = await self.body(limit)
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc


async def _read_line(reader, what: str) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except Exception as exc:
        raise HttpError(400, f"malformed {what}: {exc!r}") from exc
    if len(line) > MAX_LINE_BYTES:
        raise HttpError(413, f"{what} exceeds {MAX_LINE_BYTES} bytes")
    return line[:-2]


async def _read_headers(reader) -> dict[str, str]:
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        line = await _read_line(reader, "header line")
        if not line:
            return headers
        name, sep, value = line.partition(b":")
        if not sep:
            raise HttpError(400, f"malformed header line {line[:80]!r}")
        headers[name.decode("latin-1").strip().lower()] = value.decode("latin-1").strip()
    raise HttpError(413, f"more than {MAX_HEADERS} headers")


async def read_request(reader) -> Request | None:
    """Parse one request head; ``None`` for a connection closed unused."""
    try:
        line = await reader.readuntil(b"\r\n")
    except Exception:
        return None  # EOF before a request: the peer just went away
    if len(line) > MAX_LINE_BYTES:
        raise HttpError(413, "request line too long")
    parts = line[:-2].decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {line[:80]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers = await _read_headers(reader)
    raw_length = headers.get("content-length", "0")
    try:
        content_length = int(raw_length)
        if content_length < 0:
            raise ValueError
    except ValueError:
        raise HttpError(400, f"bad Content-Length {raw_length!r}") from None
    if method in ("POST", "PUT") and "content-length" not in headers:
        raise HttpError(411, "Content-Length required")
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(411, "chunked transfer encoding is not supported")
    return Request(
        method=method.upper(),
        path=split.path or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        reader=reader,
        content_length=content_length,
    )


def response_bytes(
    status: int,
    body: bytes | dict,
    *,
    content_type: str | None = None,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize a full response (dict bodies become JSON)."""
    if isinstance(body, dict):
        payload = (json.dumps(body, sort_keys=True) + "\n").encode()
        content_type = content_type or "application/json"
    else:
        payload = body
        content_type = content_type or "application/octet-stream"
    head = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload


async def read_response(reader) -> tuple[int, dict[str, str], bytes]:
    """Client side: parse one response (status, headers, full body)."""
    line = await _read_line(reader, "status line")
    parts = line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HttpError(500, f"malformed status line {line[:80]!r}")
    status = int(parts[1])
    headers = await _read_headers(reader)
    length = int(headers.get("content-length", "0") or "0")
    body = await reader.readexactly(length) if length else b""
    return status, headers, body
