"""Bimodal branch prediction (an extension beyond the paper's methodology).

The paper evaluates with *perfect* branch prediction to isolate the layout
effect (Section 7.1), while naming prediction accuracy as one of the three
factors limiting fetch (Section 1). This module adds the missing factor: a
classic bimodal predictor (2-bit saturating counters indexed by branch
address) evaluated over the same traces. Because a code layout changes
which transitions are *taken*, it changes what the predictor must learn —
the STC's mostly-not-taken branches are easier, so the layout helps
prediction too. ``python -m repro.experiments.prediction`` quantifies it.

The predictor is inherently sequential state, so evaluation is a Python
loop over dynamic branches — use reduced-scale traces for this analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cfg.blocks import BlockKind, INSTR_BYTES
from repro.cfg.layout import Layout
from repro.cfg.program import Program
from repro.profiling.trace import SEPARATOR, BlockTrace

__all__ = ["BimodalPredictor", "PredictionResult", "evaluate_prediction"]


class BimodalPredictor:
    """2-bit saturating counters indexed by (branch byte address / 4)."""

    __slots__ = ("counters", "mask")

    def __init__(self, n_entries: int = 2048) -> None:
        if n_entries < 1 or n_entries & (n_entries - 1):
            raise ValueError("n_entries must be a power of two")
        self.counters = np.full(n_entries, 1, dtype=np.int8)  # weakly not-taken
        self.mask = n_entries - 1

    def predict(self, addr: int) -> bool:
        return bool(self.counters[(addr >> 2) & self.mask] >= 2)

    def update(self, addr: int, taken: bool) -> None:
        i = (addr >> 2) & self.mask
        c = self.counters[i]
        if taken:
            if c < 3:
                self.counters[i] = c + 1
        elif c > 0:
            self.counters[i] = c - 1


@dataclass
class PredictionResult:
    layout_name: str
    n_branches: int
    n_mispredicted: int
    n_taken: int

    @property
    def accuracy(self) -> float:
        return 1.0 - self.n_mispredicted / self.n_branches if self.n_branches else 1.0

    @property
    def taken_fraction(self) -> float:
        return self.n_taken / self.n_branches if self.n_branches else 0.0


def evaluate_prediction(
    trace: BlockTrace,
    program: Program,
    layout: Layout,
    *,
    n_entries: int = 2048,
    max_events: int | None = None,
) -> PredictionResult:
    """Run the bimodal predictor over every dynamic branch of the trace.

    The direction of a dynamic branch under a layout is "taken" iff the
    next block is not laid out sequentially (same rule the fetch unit
    uses). ``max_events`` caps the work for quick analyses.
    """
    events = trace.events
    if max_events is not None:
        events = events[:max_events]
    valid = events != SEPARATOR
    ids = events[valid].astype(np.int64)
    if ids.size < 2:
        return PredictionResult(layout.name, 0, 0, 0)
    kinds = program.block_kind
    sizes = program.block_size.astype(np.int64)
    addr = layout.address

    src = ids[:-1]
    dst = ids[1:]
    # transitions across separators are excluded (gap in valid positions)
    pos = np.flatnonzero(valid)
    adjacent = (pos[1:] - pos[:-1]) == 1
    src, dst = src[adjacent], dst[adjacent]
    branchy = (kinds[src] == BlockKind.BRANCH)
    src, dst = src[branchy], dst[branchy]
    taken = addr[dst] != addr[src] + sizes[src] * INSTR_BYTES
    # branch instruction address: last instruction of the source block
    branch_addr = (addr[src] + (sizes[src] - 1) * INSTR_BYTES).tolist()
    taken_list = taken.tolist()

    counters = [1] * n_entries
    mask = n_entries - 1
    mispredicted = 0
    for a, t in zip(branch_addr, taken_list):
        i = (a >> 2) & mask
        c = counters[i]
        if (c >= 2) != t:
            mispredicted += 1
        if t:
            if c < 3:
                counters[i] = c + 1
        elif c > 0:
            counters[i] = c - 1

    return PredictionResult(
        layout_name=layout.name,
        n_branches=int(src.size),
        n_mispredicted=mispredicted,
        n_taken=int(taken.sum()),
    )
