"""Trace cache (Rotenberg et al.), paper Section 7.3.

A direct-mapped trace cache of 256 entries (16 instructions each = 16 KB)
in front of the SEQ.3 fetch unit. Each cycle the trace cache is probed with
the fetch address; with perfect branch prediction a stored trace hits when
its starting address matches and its recorded branch outcomes equal the
actual upcoming outcomes. On a hit the whole trace (up to 16 instructions,
up to 3 branches, *crossing taken branches*) is supplied in one cycle with
no i-cache access; on a miss the SEQ.3 unit fetches from the i-cache and
the fill unit stores the newly observed trace.

Output separates the cache-independent cycle count from the miss-path line
stream, so one stateful simulation serves every i-cache configuration —
and the same run reports both the trace-cache-alone and combined
STC+trace-cache numbers of Table 4.

Implementation: the outcome bitmask and third-branch distance the
sequential walk needs are functions of the *next-branch index* of a
position, so they are precomputed vectorized into per-branch tables
(typically 5x smaller than the instruction stream) and the only
per-instruction table beyond the shared SEQ.3 fetch lengths is one prefix
count. The hot loop reads a handful of table cells per visited position.
Cache entries persist across chunks (:class:`TraceCacheStream`); the fill
window truncates at chunk boundaries exactly as before, so results at the
default window match the previous implementation bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cfg.layout import Layout
from repro.cfg.program import Program
from repro.profiling.trace import BlockTrace
from repro.simulators.fetch import (
    BRANCH_LIMIT,
    FETCH_WIDTH,
    MISS_PENALTY_CYCLES,
    _Chunk,
    _fetch_lengths,
    expand_chunk,
    iter_chunk_contexts,
)
from repro.simulators.icache import CacheConfig, count_misses

__all__ = [
    "TraceCacheConfig",
    "TraceCacheResult",
    "TraceCacheStream",
    "simulate_trace_cache",
]


@dataclass(frozen=True)
class TraceCacheConfig:
    """Trace cache geometry (256 entries of 16 instructions = 16 KB)."""

    n_entries: int = 256
    trace_instructions: int = FETCH_WIDTH
    branch_limit: int = BRANCH_LIMIT


@dataclass
class TraceCacheResult:
    layout_name: str
    n_instructions: int
    n_cycles_base: int  # one cycle per fetch attempt (hit or miss path)
    n_hits: int
    n_misses: int
    n_taken: int
    miss_line_chunks: list[np.ndarray]

    @property
    def hit_rate(self) -> float:
        total = self.n_hits + self.n_misses
        return self.n_hits / total if total else 0.0

    def bandwidth(self, config: CacheConfig | None) -> float:
        """IPC; ``config=None`` models a perfect backing i-cache."""
        cycles = self.n_cycles_base
        if config is not None:
            cycles += MISS_PENALTY_CYCLES * count_misses(self.miss_line_chunks, config)
        return self.n_instructions / cycles if cycles else 0.0


class TraceCacheStream:
    """Incremental trace-cache simulation fed one expanded chunk at a time.

    Entry state persists across chunks. Each chunk's miss-path line
    accesses are routed to the attached i-cache miss counters
    (``consumers``) and/or collected for the one-shot
    :class:`TraceCacheResult` path.

    The hot loop's lookup tables are indexed *by branch*, not by
    instruction: both the outcome bitmask and the third-branch distance
    from a position ``p`` are functions of ``first_branch[p]`` alone, so
    the per-instruction vectorized work is a single prefix count and the
    (typically 5x smaller) per-branch tables are read scalar only at the
    ~n/8 positions the walk actually visits.
    """

    def __init__(
        self,
        layout_name: str,
        config: TraceCacheConfig = TraceCacheConfig(),
        *,
        line_bytes: int = 32,
        consumers=None,
        collect_lines: bool = False,
    ) -> None:
        self.layout_name = layout_name
        self.config = config
        self.line_bytes = line_bytes
        self.consumers = list(consumers) if consumers is not None else []
        self.n_instructions = 0
        self.n_hits = 0
        self.n_misses = 0
        self.n_taken = 0
        self.miss_line_chunks: list[np.ndarray] | None = [] if collect_lines else None
        # entry: index -> (start address, outcome bitmask, n_branches, n_instr)
        self._entries: list[tuple[int, int, int, int] | None] = [None] * config.n_entries
        self._low_bits = [(1 << k) - 1 for k in range(config.branch_limit + 1)]

    def feed(self, chunk: _Chunk, lengths: np.ndarray) -> None:
        """Consume one expanded chunk; ``lengths`` from :func:`_fetch_lengths`.

        ``lengths`` must be computed for this stream's ``line_bytes`` (the
        SEQ.3 advance on the miss path).
        """
        config = self.config
        width = config.trace_instructions
        blimit = config.branch_limit
        n = chunk.addr.shape[0]
        self.n_instructions += n
        self.n_taken += int(chunk.is_taken.sum())
        is_branch = chunk.is_branch
        branch_pos = np.flatnonzero(is_branch)
        nb = int(branch_pos.size)
        # next-branch index per position (exclusive prefix count of
        # branches) — the only per-instruction table beyond the shared
        # fetch lengths; everything else is indexed by branch
        first_branch = np.cumsum(is_branch, dtype=np.int32)
        first_branch -= is_branch

        # outcome bitmask of the next `blimit` branches from every branch
        # index (including nb = "past the last branch"), zero-padded
        taken_at = chunk.is_taken[branch_pos].astype(np.int64)
        padded = np.concatenate((taken_at, np.zeros(blimit, dtype=np.int64)))
        mask_by_branch = np.zeros(nb + 1, dtype=np.int64)
        for j in range(blimit):
            mask_by_branch |= padded[j : j + nb + 1] << j
        # position of the `blimit`-th branch at or after each branch index;
        # the out-of-range sentinel makes the fill window width-limited
        third_by_branch = np.full(nb + 1, n + width, dtype=np.int64)
        if nb >= blimit:
            third_by_branch[: nb - blimit + 1] = branch_pos[blimit - 1 :]

        # zero-copy memoryviews: the loop touches only the positions it
        # visits, so materializing full Python lists would cost more than
        # the walk itself
        seq_len = np.ascontiguousarray(lengths).data
        addr = np.ascontiguousarray(chunk.addr).data
        fb_of = np.ascontiguousarray(first_branch).data
        mask_of = mask_by_branch.data
        third_of = third_by_branch.data

        entries = self._entries
        low_bits = self._low_bits
        n_entries = config.n_entries
        line_bytes = self.line_bytes
        hits = 0
        misses = 0
        miss_lines: list[int] = []
        append = miss_lines.append
        p = 0
        while p < n:
            a = addr[p]
            index = (a >> 4) % n_entries  # 16-byte granular index bits
            fb = fb_of[p]
            entry = entries[index]
            if entry is not None and entry[0] == a:
                _, mask, k, length = entry
                # actual outcomes of the next k branches
                if (
                    fb + k <= nb
                    and mask_of[fb] & low_bits[k] == mask
                    and p + length <= n
                ):
                    hits += 1
                    p += length
                    continue
            # trace cache miss: SEQ.3 fetch from the i-cache
            misses += 1
            line = a // line_bytes
            append(line)
            append(line + 1)
            # fill unit stores the observed trace: up to `width`
            # instructions or `blimit` branches, crossing taken branches
            until_third = third_of[fb] - p + 1
            length = until_third if until_third < width else width
            rem = n - p
            if length > rem:
                length = rem
            k = (fb_of[p + length] if p + length < n else nb) - fb
            if k > blimit:
                k = blimit
            entries[index] = (a, mask_of[fb] & low_bits[k], k, length)
            p += seq_len[p]
        self.n_hits += hits
        self.n_misses += misses
        lines_arr = np.asarray(miss_lines, dtype=np.int64)
        for consumer in self.consumers:
            consumer.feed(lines_arr)
        if self.miss_line_chunks is not None:
            self.miss_line_chunks.append(lines_arr)

    @property
    def n_cycles_base(self) -> int:
        return self.n_hits + self.n_misses

    def state_dict(self) -> dict:
        """Complete carried state (counters + entry array), picklable.

        Consumers and collected miss-line chunks are intentionally
        excluded: the sharded relay carries consumer states separately
        and accumulates line chunks per shard.
        """
        return {
            "n_instructions": self.n_instructions,
            "n_hits": self.n_hits,
            "n_misses": self.n_misses,
            "n_taken": self.n_taken,
            "entries": list(self._entries),
        }

    def load_state(self, state: dict) -> None:
        entries = list(state["entries"])
        if len(entries) != self.config.n_entries:
            raise ValueError(
                f"state has {len(entries)} entries, config wants {self.config.n_entries}"
            )
        self.n_instructions = int(state["n_instructions"])
        self.n_hits = int(state["n_hits"])
        self.n_misses = int(state["n_misses"])
        self.n_taken = int(state["n_taken"])
        self._entries = entries

    def result(self) -> TraceCacheResult:
        return TraceCacheResult(
            layout_name=self.layout_name,
            n_instructions=self.n_instructions,
            n_cycles_base=self.n_cycles_base,
            n_hits=self.n_hits,
            n_misses=self.n_misses,
            n_taken=self.n_taken,
            miss_line_chunks=(
                self.miss_line_chunks if self.miss_line_chunks is not None else []
            ),
        )


def simulate_trace_cache(
    trace: BlockTrace,
    program: Program,
    layout: Layout,
    config: TraceCacheConfig = TraceCacheConfig(),
    *,
    line_bytes: int = 32,
    chunk_events: int = 2_000_000,
) -> TraceCacheResult:
    """Stateful trace-cache + SEQ.3 simulation over one trace."""
    stream = TraceCacheStream(layout.name, config, line_bytes=line_bytes, collect_lines=True)
    line_instrs = line_bytes // 4
    for ctx in iter_chunk_contexts(trace, program, chunk_events):
        chunk = expand_chunk(ctx, layout)
        stream.feed(chunk, _fetch_lengths(chunk, line_instrs))
    return stream.result()
