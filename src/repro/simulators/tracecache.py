"""Trace cache (Rotenberg et al.), paper Section 7.3.

A direct-mapped trace cache of 256 entries (16 instructions each = 16 KB)
in front of the SEQ.3 fetch unit. Each cycle the trace cache is probed with
the fetch address; with perfect branch prediction a stored trace hits when
its starting address matches and its recorded branch outcomes equal the
actual upcoming outcomes. On a hit the whole trace (up to 16 instructions,
up to 3 branches, *crossing taken branches*) is supplied in one cycle with
no i-cache access; on a miss the SEQ.3 unit fetches from the i-cache and
the fill unit stores the newly observed trace.

Output separates the cache-independent cycle count from the miss-path line
stream, so one stateful simulation serves every i-cache configuration —
and the same run reports both the trace-cache-alone and combined
STC+trace-cache numbers of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cfg.layout import Layout
from repro.cfg.program import Program
from repro.profiling.trace import BlockTrace
from repro.simulators.fetch import (
    BRANCH_LIMIT,
    FETCH_WIDTH,
    MISS_PENALTY_CYCLES,
    _fetch_lengths,
    instruction_chunks,
)
from repro.simulators.icache import CacheConfig, count_misses

__all__ = ["TraceCacheConfig", "TraceCacheResult", "simulate_trace_cache"]


@dataclass(frozen=True)
class TraceCacheConfig:
    """Trace cache geometry (256 entries of 16 instructions = 16 KB)."""

    n_entries: int = 256
    trace_instructions: int = FETCH_WIDTH
    branch_limit: int = BRANCH_LIMIT


@dataclass
class TraceCacheResult:
    layout_name: str
    n_instructions: int
    n_cycles_base: int  # one cycle per fetch attempt (hit or miss path)
    n_hits: int
    n_misses: int
    n_taken: int
    miss_line_chunks: list[np.ndarray]

    @property
    def hit_rate(self) -> float:
        total = self.n_hits + self.n_misses
        return self.n_hits / total if total else 0.0

    def bandwidth(self, config: CacheConfig | None) -> float:
        """IPC; ``config=None`` models a perfect backing i-cache."""
        cycles = self.n_cycles_base
        if config is not None:
            cycles += MISS_PENALTY_CYCLES * count_misses(self.miss_line_chunks, config)
        return self.n_instructions / cycles if cycles else 0.0


def simulate_trace_cache(
    trace: BlockTrace,
    program: Program,
    layout: Layout,
    config: TraceCacheConfig = TraceCacheConfig(),
    *,
    line_bytes: int = 32,
    chunk_events: int = 2_000_000,
) -> TraceCacheResult:
    """Stateful trace-cache + SEQ.3 simulation over one trace."""
    n_instructions = 0
    n_hits = 0
    n_misses = 0
    n_cycles = 0
    n_taken = 0
    miss_line_chunks: list[np.ndarray] = []
    # entry: index -> (start address, outcome bitmask, n_branches, n_instr)
    entries: list[tuple[int, int, int, int] | None] = [None] * config.n_entries
    n_entries = config.n_entries
    width = config.trace_instructions
    blimit = config.branch_limit

    low_bits = [(1 << k) - 1 for k in range(blimit + 1)]

    for chunk in instruction_chunks(trace, program, layout, chunk_events):
        n = chunk.addr.shape[0]
        n_instructions += n
        n_taken += int(chunk.is_taken.sum())
        # zero-copy memoryviews: the loop touches only the positions it
        # visits, so materializing full Python lists would cost more than
        # the walk itself
        seq_len = _fetch_lengths(chunk, line_bytes // 4).data

        addr = np.ascontiguousarray(chunk.addr).data
        is_branch = chunk.is_branch
        is_taken = chunk.is_taken
        branch_pos = np.flatnonzero(is_branch)
        n_branches_total = int(branch_pos.size)
        idxs = np.arange(n, dtype=np.int64)
        # next-branch index per position (exclusive prefix count of branches)
        first_branch = np.cumsum(is_branch, dtype=np.int64) - is_branch
        first_branch_l = first_branch.data

        # outcome bitmask of the next `blimit` branches from every position,
        # zero-padded past the last branch — the hit check and the fill unit
        # both read their masks from this table instead of looping
        taken_at = is_taken[branch_pos].astype(np.int64)
        padded = np.concatenate((taken_at, np.zeros(blimit, dtype=np.int64)))
        next_mask = np.zeros(n, dtype=np.int64)
        for j in range(blimit):
            next_mask |= padded[first_branch + j] << j
        next_mask_l = next_mask.data

        # fill-unit trace length from every position: up to `width`
        # instructions or `blimit` branches, crossing taken branches
        until_third = np.full(n, width, dtype=np.int64)
        if branch_pos.size:
            third = first_branch + blimit - 1
            has = third < branch_pos.size
            until_third[has] = branch_pos[third[has]] - idxs[has] + 1
        fill_len = np.minimum(until_third, width)
        fill_len = np.minimum(fill_len, n - idxs)
        fill_len = np.maximum(fill_len, 1)
        fill_len_l = fill_len.data
        # branches inside the fill window, capped at `blimit`
        branches_before = np.concatenate((first_branch, [n_branches_total]))
        fill_k = np.minimum(branches_before[idxs + fill_len] - first_branch, blimit)
        fill_k_l = fill_k.data

        miss_lines: list[int] = []
        p = 0
        while p < n:
            a = addr[p]
            index = (a >> 4) % n_entries  # 16-byte granular index bits
            entry = entries[index]
            if entry is not None and entry[0] == a:
                _, mask, k, length = entry
                # actual outcomes of the next k branches
                if (
                    first_branch_l[p] + k <= n_branches_total
                    and next_mask_l[p] & low_bits[k] == mask
                    and p + length <= n
                ):
                    n_hits += 1
                    n_cycles += 1
                    p += length
                    continue
            # trace cache miss: SEQ.3 fetch from the i-cache
            n_misses += 1
            n_cycles += 1
            line = a // line_bytes
            miss_lines.append(line)
            miss_lines.append(line + 1)
            # fill unit stores the observed trace
            k = fill_k_l[p]
            entries[index] = (a, next_mask_l[p] & low_bits[k], k, fill_len_l[p])
            p += seq_len[p]
        miss_line_chunks.append(np.asarray(miss_lines, dtype=np.int64))

    return TraceCacheResult(
        layout_name=layout.name,
        n_instructions=n_instructions,
        n_cycles_base=n_cycles,
        n_hits=n_hits,
        n_misses=n_misses,
        n_taken=n_taken,
        miss_line_chunks=miss_line_chunks,
    )
