"""Instruction cache models (paper Table 3's cache column variants).

Input is a stream of cache-line numbers (from the fetch unit), supplied as
one array or a list of chunk arrays. Three organizations:

* direct-mapped — fully vectorized (stable argsort groups accesses by set;
  a miss is a tag change within the group);
* 2-way set associative, LRU — vectorized via the run-compression identity:
  within one set's access stream with consecutive duplicates removed, the
  cache holds exactly the previous two distinct lines, so access ``j`` hits
  iff it equals the compressed stream's entry ``j-2``;
* direct-mapped + fully associative victim cache (16 lines) — stateful
  swap behaviour, simulated with an explicit loop over the line stream.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["CacheConfig", "count_misses", "simulate_victim_cache"]


@dataclass(frozen=True)
class CacheConfig:
    """An i-cache organization (sizes in bytes)."""

    size_bytes: int
    line_bytes: int = 32
    associativity: int = 1
    victim_lines: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError("cache size must be a multiple of line size x associativity")
        if self.associativity not in (1, 2):
            raise ValueError("only direct-mapped and 2-way caches are modeled (as in the paper)")
        if self.victim_lines and self.associativity != 1:
            raise ValueError("the victim cache augments a direct-mapped cache")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


def _as_chunks(lines) -> list[np.ndarray]:
    if isinstance(lines, np.ndarray):
        return [lines]
    return list(lines)


def count_misses(lines: np.ndarray | Sequence[np.ndarray], config: CacheConfig) -> int:
    """Cold-start miss count of the line stream under ``config``."""
    chunks = _as_chunks(lines)
    if not chunks:
        return 0
    stream = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
    if stream.size == 0:
        return 0
    if config.victim_lines:
        return simulate_victim_cache(stream, config)
    if config.associativity == 1:
        return _direct_mapped(stream, config.n_sets)
    return _two_way_lru(stream, config.n_sets)


def _direct_mapped(lines: np.ndarray, n_sets: int) -> int:
    sets = lines % n_sets
    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    sorted_lines = lines[order]
    miss = np.empty(lines.shape[0], dtype=bool)
    miss[0] = True
    miss[1:] = (sorted_sets[1:] != sorted_sets[:-1]) | (sorted_lines[1:] != sorted_lines[:-1])
    return int(miss.sum())


def _two_way_lru(lines: np.ndarray, n_sets: int) -> int:
    sets = lines % n_sets
    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    sorted_lines = lines[order]
    # compress consecutive duplicates within each set's stream: those are
    # guaranteed hits (the line is MRU); only distinct transitions can miss
    keep = np.empty(lines.shape[0], dtype=bool)
    keep[0] = True
    keep[1:] = (sorted_sets[1:] != sorted_sets[:-1]) | (sorted_lines[1:] != sorted_lines[:-1])
    c_sets = sorted_sets[keep]
    c_lines = sorted_lines[keep]
    n = c_lines.shape[0]
    miss = np.ones(n, dtype=bool)  # first and second distinct accesses miss
    if n > 2:
        same_set = c_sets[2:] == c_sets[:-2]
        # entry j hits iff it equals entry j-2 of the same set's stream
        # (entry j-1 differs by construction, so {j-1, j-2} is the set state)
        miss[2:] = ~(same_set & (c_lines[2:] == c_lines[:-2]))
    return int(miss.sum())


def simulate_victim_cache(lines: np.ndarray, config: CacheConfig) -> int:
    """Direct-mapped cache with a fully associative LRU victim buffer.

    On a primary miss that hits the victim buffer, the lines swap (the
    victim's line moves into the primary slot, the evicted primary line
    into the buffer) and the access counts as a hit, as in Jouppi's design.
    """
    from collections import OrderedDict

    n_sets = config.n_sets
    primary = np.full(n_sets, -1, dtype=np.int64)
    victim: OrderedDict[int, None] = OrderedDict()
    capacity = config.victim_lines
    misses = 0
    for line in lines.tolist():
        s = line % n_sets
        resident = primary[s]
        if resident == line:
            continue
        if line in victim:
            del victim[line]
            if resident >= 0:
                victim[resident] = None
                while len(victim) > capacity:
                    victim.popitem(last=False)
            primary[s] = line
            continue
        misses += 1
        if resident >= 0:
            victim[resident] = None
            victim.move_to_end(resident)
            while len(victim) > capacity:
                victim.popitem(last=False)
        primary[s] = line
    return misses
