"""Instruction cache models (paper Table 3's cache column variants).

Input is a stream of cache-line numbers (from the fetch unit), supplied as
one array or a list of chunk arrays. Chunks are processed one at a time
with per-set state carried across chunk boundaries, so the stream is never
concatenated (peak memory stays one chunk). Three organizations:

* direct-mapped — fully vectorized (stable argsort groups accesses by set;
  a miss is a tag change within the group, or against the carried tag at
  the chunk boundary);
* 2-way set associative, LRU — vectorized via the run-compression identity:
  within one set's access stream with consecutive duplicates removed, the
  cache holds exactly the previous two distinct lines, so access ``j`` hits
  iff it equals the compressed stream's entry ``j-2`` (the carried last two
  compressed entries extend the identity across chunks);
* direct-mapped + fully associative victim cache (16 lines) — stateful
  swap behaviour. The stream is first run-compressed per set (a repeat of
  the immediately preceding access to the same set always hits the primary
  slot and changes no state), then the surviving accesses — typically a
  small fraction — run through the explicit swap loop.

:func:`simulate_victim_cache` keeps the original one-shot scalar loop as
the reference implementation; :func:`count_misses` uses the batched path.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["CacheConfig", "count_misses", "simulate_victim_cache"]


@dataclass(frozen=True)
class CacheConfig:
    """An i-cache organization (sizes in bytes)."""

    size_bytes: int
    line_bytes: int = 32
    associativity: int = 1
    victim_lines: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError("cache size must be a multiple of line size x associativity")
        if self.associativity not in (1, 2):
            raise ValueError("only direct-mapped and 2-way caches are modeled (as in the paper)")
        if self.victim_lines and self.associativity != 1:
            raise ValueError("the victim cache augments a direct-mapped cache")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


def _as_chunks(lines) -> list[np.ndarray]:
    if isinstance(lines, np.ndarray):
        chunks = [lines]
    else:
        chunks = list(lines)
    return [c for c in chunks if c.size]


def count_misses(lines: np.ndarray | Sequence[np.ndarray], config: CacheConfig) -> int:
    """Cold-start miss count of the line stream under ``config``."""
    chunks = _as_chunks(lines)
    if not chunks:
        return 0
    if config.victim_lines:
        return _victim_misses(chunks, config)
    if config.associativity == 1:
        return _direct_mapped(chunks, config.n_sets)
    return _two_way_lru(chunks, config.n_sets)


def _group_sorted(lines: np.ndarray, n_sets: int):
    """Sort a chunk stably by set; return (sets, lines, group-start mask)."""
    sets = lines % n_sets
    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    sorted_lines = lines[order]
    first = np.empty(lines.shape[0], dtype=bool)
    first[0] = True
    first[1:] = sorted_sets[1:] != sorted_sets[:-1]
    return order, sorted_sets, sorted_lines, first


def _direct_mapped(chunks: list[np.ndarray], n_sets: int) -> int:
    tags = np.full(n_sets, -1, dtype=np.int64)
    misses = 0
    for lines in chunks:
        _, sorted_sets, sorted_lines, first = _group_sorted(lines, n_sets)
        miss = np.empty(lines.shape[0], dtype=bool)
        miss[1:] = first[1:] | (sorted_lines[1:] != sorted_lines[:-1])
        first_idx = np.flatnonzero(first)
        miss[first_idx] = sorted_lines[first_idx] != tags[sorted_sets[first_idx]]
        misses += int(miss.sum())
        last_idx = np.concatenate((first_idx[1:] - 1, [lines.shape[0] - 1]))
        tags[sorted_sets[last_idx]] = sorted_lines[last_idx]
    return misses


def _two_way_lru(chunks: list[np.ndarray], n_sets: int) -> int:
    # carried per-set state: the last two entries of the set's run-compressed
    # access stream (w0 most recent); distinct negative sentinels keep the
    # cold-start "first two distinct accesses miss" behaviour
    w0 = np.full(n_sets, -1, dtype=np.int64)
    w1 = np.full(n_sets, -2, dtype=np.int64)
    misses = 0
    for lines in chunks:
        _, sorted_sets, sorted_lines, first = _group_sorted(lines, n_sets)
        # compress consecutive duplicates within each set's stream: those are
        # guaranteed hits (the line is MRU); only distinct transitions can
        # miss. At the chunk boundary the previous compressed entry is w0.
        keep = np.empty(lines.shape[0], dtype=bool)
        keep[1:] = first[1:] | (sorted_lines[1:] != sorted_lines[:-1])
        first_idx = np.flatnonzero(first)
        keep[first_idx] = sorted_lines[first_idx] != w0[sorted_sets[first_idx]]
        c_sets = sorted_sets[keep]
        c_lines = sorted_lines[keep]
        n = c_lines.shape[0]
        if n == 0:
            continue
        # entry j hits iff it equals entry j-2 of the same set's compressed
        # stream (entry j-1 differs by construction, so {j-1, j-2} is the
        # set state); the carried (w0, w1) stand in for entries -1 and -2
        miss = np.ones(n, dtype=bool)
        if n > 2:
            same_set = c_sets[2:] == c_sets[:-2]
            miss[2:] = ~(same_set & (c_lines[2:] == c_lines[:-2]))
        g_first = np.empty(n, dtype=bool)
        g_first[0] = True
        g_first[1:] = c_sets[1:] != c_sets[:-1]
        g_start = np.flatnonzero(g_first)
        miss[g_start] = c_lines[g_start] != w1[c_sets[g_start]]
        second = g_start + 1
        second = second[second < n]
        second = second[~g_first[second]]
        miss[second] = c_lines[second] != w0[c_sets[second]]
        misses += int(miss.sum())
        # roll the carried state forward to each set's last two entries
        g_last = np.concatenate((g_start[1:] - 1, [n - 1]))
        g_sets = c_sets[g_start]
        single = g_last == g_start
        w1[g_sets[single]] = w0[g_sets[single]]
        w1[g_sets[~single]] = c_lines[g_last[~single] - 1]
        w0[g_sets] = c_lines[g_last]
    return misses


def _victim_misses(chunks: list[np.ndarray], config: CacheConfig) -> int:
    """Batched victim-cache simulation over chunked streams.

    Vectorized per-set run compression removes the accesses that repeat the
    immediately preceding access to the same set — always primary hits with
    no state change — before the stateful swap loop.
    """
    n_sets = config.n_sets
    last = np.full(n_sets, -1, dtype=np.int64)
    primary = np.full(n_sets, -1, dtype=np.int64)
    victim: dict[int, None] = {}
    capacity = config.victim_lines
    misses = 0
    for lines in chunks:
        order, sorted_sets, sorted_lines, first = _group_sorted(lines, n_sets)
        keep_sorted = np.empty(lines.shape[0], dtype=bool)
        keep_sorted[1:] = first[1:] | (sorted_lines[1:] != sorted_lines[:-1])
        first_idx = np.flatnonzero(first)
        keep_sorted[first_idx] = sorted_lines[first_idx] != last[sorted_sets[first_idx]]
        last_idx = np.concatenate((first_idx[1:] - 1, [lines.shape[0] - 1]))
        last[sorted_sets[last_idx]] = sorted_lines[last_idx]
        # back to stream order: the compressed accesses interleave across
        # sets exactly as in the original stream
        keep = np.zeros(lines.shape[0], dtype=bool)
        keep[order] = keep_sorted
        compressed = lines[keep]
        sets = (compressed % n_sets).tolist()
        for line, s in zip(compressed.tolist(), sets):
            resident = primary[s]
            if resident == line:
                continue
            if line in victim:
                del victim[line]
                if resident >= 0:
                    victim[resident] = None
                    while len(victim) > capacity:
                        del victim[next(iter(victim))]
                primary[s] = line
                continue
            misses += 1
            if resident >= 0:
                victim.pop(resident, None)
                victim[resident] = None
                while len(victim) > capacity:
                    del victim[next(iter(victim))]
            primary[s] = line
    return misses


def simulate_victim_cache(lines: np.ndarray, config: CacheConfig) -> int:
    """Direct-mapped cache with a fully associative LRU victim buffer.

    On a primary miss that hits the victim buffer, the lines swap (the
    victim's line moves into the primary slot, the evicted primary line
    into the buffer) and the access counts as a hit, as in Jouppi's design.

    This is the reference scalar implementation; :func:`count_misses`
    routes victim configurations through the batched equivalent.
    """
    from collections import OrderedDict

    n_sets = config.n_sets
    primary = np.full(n_sets, -1, dtype=np.int64)
    victim: OrderedDict[int, None] = OrderedDict()
    capacity = config.victim_lines
    misses = 0
    for line in lines.tolist():
        s = line % n_sets
        resident = primary[s]
        if resident == line:
            continue
        if line in victim:
            del victim[line]
            if resident >= 0:
                victim[resident] = None
                while len(victim) > capacity:
                    victim.popitem(last=False)
            primary[s] = line
            continue
        misses += 1
        if resident >= 0:
            victim[resident] = None
            victim.move_to_end(resident)
            while len(victim) > capacity:
                victim.popitem(last=False)
        primary[s] = line
    return misses
