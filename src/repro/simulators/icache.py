"""Instruction cache models (paper Table 3's cache column variants).

Input is a stream of cache-line numbers (from the fetch unit), supplied as
one array or a list of chunk arrays. Chunks are processed one at a time
with per-set state carried across chunk boundaries, so the stream is never
concatenated (peak memory stays one chunk). Three organizations:

* direct-mapped — fully vectorized (stable argsort groups accesses by set;
  a miss is a tag change within the group, or against the carried tag at
  the chunk boundary);
* 2-way set associative, LRU — vectorized via the run-compression identity:
  within one set's access stream with consecutive duplicates removed, the
  cache holds exactly the previous two distinct lines, so access ``j`` hits
  iff it equals the compressed stream's entry ``j-2`` (the carried last two
  compressed entries extend the identity across chunks);
* direct-mapped + fully associative victim cache (16 lines) — stateful
  swap behaviour. The stream is first run-compressed per set (a repeat of
  the immediately preceding access to the same set always hits the primary
  slot and changes no state), then the surviving accesses — typically a
  small fraction — run through the explicit swap loop.

Each model is an incremental counter object (:func:`miss_counter`) with a
``feed(lines)`` method, so the fused multi-configuration driver can push
one chunk of lines through many configurations in a single pass over the
trace. :func:`count_misses` is the one-shot wrapper over the same
counters — chunked and whole-stream counts are identical by construction.

:func:`simulate_victim_cache` keeps the original one-shot scalar loop as
the reference implementation; :func:`count_misses` uses the batched path.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = [
    "CacheConfig",
    "count_misses",
    "counter_from_spec",
    "counter_from_state",
    "counter_spec",
    "miss_counter",
    "simulate_victim_cache",
]


@dataclass(frozen=True)
class CacheConfig:
    """An i-cache organization (sizes in bytes)."""

    size_bytes: int
    line_bytes: int = 32
    associativity: int = 1
    victim_lines: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError("cache size must be a multiple of line size x associativity")
        if self.associativity not in (1, 2):
            raise ValueError("only direct-mapped and 2-way caches are modeled (as in the paper)")
        if self.victim_lines and self.associativity != 1:
            raise ValueError("the victim cache augments a direct-mapped cache")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


def _as_chunks(lines) -> list[np.ndarray]:
    if isinstance(lines, np.ndarray):
        chunks = [lines]
    else:
        chunks = list(lines)
    return [c for c in chunks if c.size]


def miss_counter(config: CacheConfig) -> "_MissCounter":
    """A stateful cold-start miss counter for ``config``.

    Feed it line chunks in stream order; ``.misses`` is the running count.
    Feeding the stream in any chunking yields the same count as one call.
    """
    if config.victim_lines:
        return _VictimCounter(config.n_sets, config.victim_lines)
    if config.associativity == 1:
        return _DirectMappedCounter(config.n_sets)
    return _TwoWayLRUCounter(config.n_sets)


def count_misses(lines: np.ndarray | Sequence[np.ndarray], config: CacheConfig) -> int:
    """Cold-start miss count of the line stream under ``config``."""
    counter = miss_counter(config)
    for chunk in _as_chunks(lines):
        counter.feed(chunk)
    return counter.misses


def _group_sorted(lines: np.ndarray, n_sets: int):
    """Sort a chunk stably by set; return (sets, lines, group-start mask).

    The set index is computed with a bit mask when ``n_sets`` is a power
    of two and narrowed to uint16 when it fits: NumPy's stable sort is a
    radix sort for 16-bit keys, which turns the dominant cost of every
    cache model from O(n log n) comparisons into O(n) passes.
    """
    if n_sets & (n_sets - 1) == 0:
        sets = lines & (n_sets - 1)
    else:
        sets = lines % n_sets
    if n_sets <= 1 << 16:
        sets = sets.astype(np.uint16)
    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    sorted_lines = lines[order]
    first = np.empty(lines.shape[0], dtype=bool)
    first[0] = True
    first[1:] = sorted_sets[1:] != sorted_sets[:-1]
    return order, sorted_sets, sorted_lines, first


class _MissCounter:
    """Base: a cache model carrying state across fed chunks.

    Every concrete counter implements the sharding state protocol:
    ``state_dict()``/``load_state()`` capture and restore the *complete*
    carried state (including ``misses``), so a relay worker can resume a
    counter mid-stream bit-identically. Counters built with
    ``record_journal=True`` additionally capture the per-set boundary
    facts (:meth:`shard_journal`) that let the sharded reconciliation
    pass stitch an independently cold-started shard onto arbitrary
    incoming state without replaying it.
    """

    __slots__ = ("misses",)

    kind = "abstract"

    def __init__(self) -> None:
        self.misses = 0

    def feed(self, lines: np.ndarray) -> None:
        if lines.size:
            self._feed(lines)

    def _feed(self, lines: np.ndarray) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class _DirectMappedCounter(_MissCounter):
    __slots__ = ("_tags", "_head")

    kind = "dm"

    def __init__(self, n_sets: int, *, record_journal: bool = False) -> None:
        super().__init__()
        self._tags = np.full(n_sets, -1, dtype=np.int64)
        self._head = np.full(n_sets, -1, dtype=np.int64) if record_journal else None

    def _feed(self, lines: np.ndarray) -> None:
        tags = self._tags
        _, sorted_sets, sorted_lines, first = _group_sorted(lines, tags.shape[0])
        miss = np.empty(lines.shape[0], dtype=bool)
        miss[1:] = first[1:] | (sorted_lines[1:] != sorted_lines[:-1])
        first_idx = np.flatnonzero(first)
        miss[first_idx] = sorted_lines[first_idx] != tags[sorted_sets[first_idx]]
        if self._head is not None:
            # first access ever to a set (tag still cold): the only access
            # whose hit/miss outcome depends on pre-shard state
            fresh = first_idx[tags[sorted_sets[first_idx]] == -1]
            self._head[sorted_sets[fresh]] = sorted_lines[fresh]
        self.misses += int(miss.sum())
        last_idx = np.concatenate((first_idx[1:] - 1, [lines.shape[0] - 1]))
        tags[sorted_sets[last_idx]] = sorted_lines[last_idx]

    def state_dict(self) -> dict:
        return {"kind": self.kind, "tags": self._tags.copy(), "misses": self.misses}

    def load_state(self, state: dict) -> None:
        self._tags[:] = state["tags"]
        self.misses = int(state["misses"])

    def shard_journal(self) -> dict:
        """Boundary facts of a cold-started run: per touched set, the
        first accessed line (``head``) and the final tag (``end``)."""
        if self._head is None:
            raise RuntimeError("counter was not built with record_journal=True")
        touched = np.flatnonzero(self._tags != -1)
        return {
            "kind": self.kind,
            "sets": touched,
            "head": self._head[touched],
            "end": self._tags[touched],
            "misses": self.misses,
        }


class _TwoWayLRUCounter(_MissCounter):
    # carried per-set state: the last two entries of the set's run-compressed
    # access stream (w0 most recent); distinct negative sentinels keep the
    # cold-start "first two distinct accesses miss" behaviour
    __slots__ = ("_w0", "_w1", "_c1", "_c2")

    kind = "lru2"

    def __init__(self, n_sets: int, *, record_journal: bool = False) -> None:
        super().__init__()
        self._w0 = np.full(n_sets, -1, dtype=np.int64)
        self._w1 = np.full(n_sets, -2, dtype=np.int64)
        self._c1 = np.full(n_sets, -1, dtype=np.int64) if record_journal else None
        self._c2 = np.full(n_sets, -1, dtype=np.int64) if record_journal else None

    def _feed(self, lines: np.ndarray) -> None:
        w0, w1 = self._w0, self._w1
        _, sorted_sets, sorted_lines, first = _group_sorted(lines, w0.shape[0])
        # compress consecutive duplicates within each set's stream: those are
        # guaranteed hits (the line is MRU); only distinct transitions can
        # miss. At the chunk boundary the previous compressed entry is w0.
        keep = np.empty(lines.shape[0], dtype=bool)
        keep[1:] = first[1:] | (sorted_lines[1:] != sorted_lines[:-1])
        first_idx = np.flatnonzero(first)
        keep[first_idx] = sorted_lines[first_idx] != w0[sorted_sets[first_idx]]
        c_sets = sorted_sets[keep]
        c_lines = sorted_lines[keep]
        n = c_lines.shape[0]
        if n == 0:
            return
        # entry j hits iff it equals entry j-2 of the same set's compressed
        # stream (entry j-1 differs by construction, so {j-1, j-2} is the
        # set state); the carried (w0, w1) stand in for entries -1 and -2
        miss = np.ones(n, dtype=bool)
        if n > 2:
            same_set = c_sets[2:] == c_sets[:-2]
            miss[2:] = ~(same_set & (c_lines[2:] == c_lines[:-2]))
        g_first = np.empty(n, dtype=bool)
        g_first[0] = True
        g_first[1:] = c_sets[1:] != c_sets[:-1]
        g_start = np.flatnonzero(g_first)
        miss[g_start] = c_lines[g_start] != w1[c_sets[g_start]]
        second = g_start + 1
        second = second[second < n]
        second = second[~g_first[second]]
        miss[second] = c_lines[second] != w0[c_sets[second]]
        if self._c1 is not None:
            # record each set's first two compressed entries of the whole
            # run — the only accesses whose outcome depends on pre-run
            # state. Pre-chunk w0 == -1 means no compressed entry yet;
            # w1 == -1 means exactly one (the cold sentinels are -1/-2 and
            # a rolled-forward w1 only ever takes value -1 from w0).
            gs = c_sets[g_start]
            first_ever = w0[gs] == -1
            self._c1[gs[first_ever]] = c_lines[g_start[first_ever]]
            second_ever = ~first_ever & (w1[gs] == -1)
            self._c2[gs[second_ever]] = c_lines[g_start[second_ever]]
            if second.size:
                ss = c_sets[second]
                both_here = w0[ss] == -1
                self._c2[ss[both_here]] = c_lines[second[both_here]]
        self.misses += int(miss.sum())
        # roll the carried state forward to each set's last two entries
        g_last = np.concatenate((g_start[1:] - 1, [n - 1]))
        g_sets = c_sets[g_start]
        single = g_last == g_start
        w1[g_sets[single]] = w0[g_sets[single]]
        w1[g_sets[~single]] = c_lines[g_last[~single] - 1]
        w0[g_sets] = c_lines[g_last]

    def state_dict(self) -> dict:
        return {
            "kind": self.kind,
            "w0": self._w0.copy(),
            "w1": self._w1.copy(),
            "misses": self.misses,
        }

    def load_state(self, state: dict) -> None:
        self._w0[:] = state["w0"]
        self._w1[:] = state["w1"]
        self.misses = int(state["misses"])

    def shard_journal(self) -> dict:
        """Boundary facts of a cold-started run: per touched set, the
        first two compressed entries (``c2`` is -1 when only one exists)
        and the final compressed pair (``w1`` is -1 in the same case)."""
        if self._c1 is None:
            raise RuntimeError("counter was not built with record_journal=True")
        touched = np.flatnonzero(self._w0 != -1)
        return {
            "kind": self.kind,
            "sets": touched,
            "c1": self._c1[touched],
            "c2": self._c2[touched],
            "w0": self._w0[touched],
            "w1": self._w1[touched],
            "misses": self.misses,
        }


class _VictimCounter(_MissCounter):
    """Batched victim-cache simulation over chunked streams.

    Vectorized per-set run compression removes the accesses that repeat the
    immediately preceding access to the same set — always primary hits with
    no state change — before the stateful swap loop.
    """

    __slots__ = ("_last", "_primary", "_victim", "_capacity")

    kind = "victim"

    def __init__(self, n_sets: int, capacity: int) -> None:
        super().__init__()
        self._last = np.full(n_sets, -1, dtype=np.int64)
        self._primary = np.full(n_sets, -1, dtype=np.int64)
        self._victim: dict[int, None] = {}
        self._capacity = capacity

    def _feed(self, lines: np.ndarray) -> None:
        last, primary, victim = self._last, self._primary, self._victim
        n_sets = last.shape[0]
        capacity = self._capacity
        misses = 0
        order, sorted_sets, sorted_lines, first = _group_sorted(lines, n_sets)
        keep_sorted = np.empty(lines.shape[0], dtype=bool)
        keep_sorted[1:] = first[1:] | (sorted_lines[1:] != sorted_lines[:-1])
        first_idx = np.flatnonzero(first)
        keep_sorted[first_idx] = sorted_lines[first_idx] != last[sorted_sets[first_idx]]
        last_idx = np.concatenate((first_idx[1:] - 1, [lines.shape[0] - 1]))
        last[sorted_sets[last_idx]] = sorted_lines[last_idx]
        # back to stream order: the compressed accesses interleave across
        # sets exactly as in the original stream
        keep = np.zeros(lines.shape[0], dtype=bool)
        keep[order] = keep_sorted
        compressed = lines[keep]
        sets = (compressed % n_sets).tolist()
        for line, s in zip(compressed.tolist(), sets):
            resident = primary[s]
            if resident == line:
                continue
            if line in victim:
                del victim[line]
                if resident >= 0:
                    victim[resident] = None
                    while len(victim) > capacity:
                        del victim[next(iter(victim))]
                primary[s] = line
                continue
            misses += 1
            if resident >= 0:
                victim.pop(resident, None)
                victim[resident] = None
                while len(victim) > capacity:
                    del victim[next(iter(victim))]
            primary[s] = line
        self.misses += misses

    def state_dict(self) -> dict:
        return {
            "kind": self.kind,
            "last": self._last.copy(),
            "primary": self._primary.copy(),
            "victim": list(self._victim),  # LRU order, oldest first
            "capacity": self._capacity,
            "misses": self.misses,
        }

    def load_state(self, state: dict) -> None:
        self._last[:] = state["last"]
        self._primary[:] = state["primary"]
        self._victim = dict.fromkeys(state["victim"])
        self._capacity = int(state["capacity"])
        self.misses = int(state["misses"])


# -- sharding construction protocol --------------------------------------


def counter_spec(counter: _MissCounter) -> tuple:
    """A picklable recipe for building a cold twin of ``counter``."""
    if isinstance(counter, _DirectMappedCounter):
        return ("dm", counter._tags.shape[0])
    if isinstance(counter, _TwoWayLRUCounter):
        return ("lru2", counter._w0.shape[0])
    if isinstance(counter, _VictimCounter):
        return ("victim", counter._last.shape[0], counter._capacity)
    raise TypeError(f"not a miss counter: {type(counter).__name__}")


def counter_from_spec(spec: tuple, *, record_journal: bool = False) -> _MissCounter:
    """Build a cold counter from a :func:`counter_spec` recipe."""
    kind = spec[0]
    if kind == "dm":
        return _DirectMappedCounter(spec[1], record_journal=record_journal)
    if kind == "lru2":
        return _TwoWayLRUCounter(spec[1], record_journal=record_journal)
    if kind == "victim":
        if record_journal:
            raise ValueError("victim counters have no shard journal; relay them")
        return _VictimCounter(spec[1], spec[2])
    raise ValueError(f"unknown counter spec {spec!r}")


def counter_from_state(state: dict) -> _MissCounter:
    """Reconstruct a counter, state and all, from a ``state_dict()``."""
    kind = state["kind"]
    if kind == "dm":
        counter = _DirectMappedCounter(len(state["tags"]))
    elif kind == "lru2":
        counter = _TwoWayLRUCounter(len(state["w0"]))
    elif kind == "victim":
        counter = _VictimCounter(len(state["last"]), int(state["capacity"]))
    else:
        raise ValueError(f"unknown counter state kind {kind!r}")
    counter.load_state(state)
    return counter


def simulate_victim_cache(lines: np.ndarray, config: CacheConfig) -> int:
    """Direct-mapped cache with a fully associative LRU victim buffer.

    On a primary miss that hits the victim buffer, the lines swap (the
    victim's line moves into the primary slot, the evicted primary line
    into the buffer) and the access counts as a hit, as in Jouppi's design.

    This is the reference scalar implementation; :func:`count_misses`
    routes victim configurations through the batched equivalent.
    """
    from collections import OrderedDict

    n_sets = config.n_sets
    primary = np.full(n_sets, -1, dtype=np.int64)
    victim: OrderedDict[int, None] = OrderedDict()
    capacity = config.victim_lines
    misses = 0
    for line in lines.tolist():
        s = line % n_sets
        resident = primary[s]
        if resident == line:
            continue
        if line in victim:
            del victim[line]
            if resident >= 0:
                victim[resident] = None
                while len(victim) > capacity:
                    victim.popitem(last=False)
            primary[s] = line
            continue
        misses += 1
        if resident >= 0:
            victim[resident] = None
            victim.move_to_end(resident)
            while len(victim) > capacity:
                victim.popitem(last=False)
        primary[s] = line
    return misses
