"""Simulators: instruction cache, SEQ.3 sequential fetch unit, trace cache.

The methodology mirrors the paper's Section 7.1: simulators are fed the
per-layout block *addresses* (code is never rewritten, block sizes never
change), branch prediction is perfect, the i-cache miss penalty is a fixed
5 cycles, and the fetch unit is SEQ.3 from Rotenberg et al. — two
consecutive cache lines per access, up to the first taken branch, three
branches, or 16 instructions.
"""

from repro.simulators.icache import CacheConfig, count_misses, miss_counter, simulate_victim_cache
from repro.simulators.fetch import (
    FetchResult,
    FetchStream,
    MISS_PENALTY_CYCLES,
    expand_chunk,
    iter_chunk_contexts,
    simulate_fetch,
)
from repro.simulators.fused import run_fused
from repro.simulators.sharded import (
    ShardError,
    ShardPlan,
    ShardReport,
    ShardTimeoutError,
    plan_shards,
    run_sharded,
)
from repro.simulators.tracecache import (
    TraceCacheConfig,
    TraceCacheResult,
    TraceCacheStream,
    simulate_trace_cache,
)
from repro.simulators.metrics import (
    miss_rate_percent,
    fetch_bandwidth,
    ideal_fetch_bandwidth,
    instructions_between_taken_branches,
)

__all__ = [
    "CacheConfig",
    "count_misses",
    "miss_counter",
    "simulate_victim_cache",
    "FetchResult",
    "FetchStream",
    "simulate_fetch",
    "MISS_PENALTY_CYCLES",
    "expand_chunk",
    "iter_chunk_contexts",
    "run_fused",
    "ShardError",
    "ShardPlan",
    "ShardReport",
    "ShardTimeoutError",
    "plan_shards",
    "run_sharded",
    "TraceCacheConfig",
    "simulate_trace_cache",
    "TraceCacheResult",
    "TraceCacheStream",
    "miss_rate_percent",
    "fetch_bandwidth",
    "ideal_fetch_bandwidth",
    "instructions_between_taken_branches",
]
