"""Fused multi-configuration simulation: one trace pass, many streams.

The fetch and trace-cache simulators are incremental streams
(:class:`~repro.simulators.fetch.FetchStream`,
:class:`~repro.simulators.tracecache.TraceCacheStream`) whose i-cache
configurations are attached miss counters. This driver runs any number of
such streams — across layouts and configurations — in a *single* pass
over the trace: each window of events is expanded to the
layout-independent :class:`~repro.simulators.fetch.ChunkContext` once,
then for each distinct layout the per-layout instruction arrays and SEQ.3
fetch lengths are computed once and fed to every stream of that layout.

Peak memory is one window's expansion regardless of how many streams are
fused: layouts are processed sequentially per window and the expansion is
dropped before the next layout's is built. Because every stream carries
its own state across windows exactly as in the one-shot simulators,
fused results are bit-identical to running each simulation alone.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.cfg.blocks import INSTR_BYTES
from repro.cfg.layout import Layout
from repro.cfg.program import Program
from repro.simulators.fetch import _fetch_lengths, expand_chunk, iter_chunk_contexts

__all__ = ["run_fused"]


def run_fused(
    trace,
    program: Program,
    pairs: Sequence[tuple[Layout, object]],
    *,
    chunk_events: int = 2_000_000,
    start_event: int = 0,
    stop_event: int | None = None,
) -> None:
    """Feed every ``(layout, stream)`` pair in one pass over ``trace``.

    ``trace`` is a :class:`~repro.profiling.trace.BlockTrace` or an
    on-disk :class:`~repro.profiling.tracestore.TraceStore`. Streams are
    mutated in place; read their counters or ``result()`` afterwards.
    Streams sharing the same layout *object* share the per-window
    expansion, and among those, streams with equal ``line_bytes`` share
    the SEQ.3 fetch-length computation.

    ``start_event``/``stop_event`` restrict the pass to that event slice
    of the trace; the sharded engine (:mod:`repro.simulators.sharded`)
    uses window-aligned slices so consecutive passes splice together
    bit-identically to one full pass.
    """
    if not pairs:
        return
    # group by layout identity, preserving first-seen order
    groups: list[tuple[Layout, list]] = []
    index: dict[int, int] = {}
    for layout, stream in pairs:
        at = index.get(id(layout))
        if at is None:
            index[id(layout)] = len(groups)
            groups.append((layout, [stream]))
        else:
            groups[at][1].append(stream)

    for ctx in iter_chunk_contexts(
        trace, program, chunk_events, start_event=start_event, stop_event=stop_event
    ):
        for layout, streams in groups:
            chunk = expand_chunk(ctx, layout)
            lengths_for: dict[int, object] = {}
            for stream in streams:
                line_bytes = stream.line_bytes
                lengths = lengths_for.get(line_bytes)
                if lengths is None:
                    lengths = _fetch_lengths(chunk, line_bytes // INSTR_BYTES)
                    lengths_for[line_bytes] = lengths
                stream.feed(chunk, lengths)
            del chunk, lengths_for  # one expansion live at a time
