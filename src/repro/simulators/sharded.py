"""Sharded chunk-parallel simulation, bit-identical to :func:`run_fused`.

The fused driver streams the whole trace through every simulation stream
sequentially. At paper scale (SF 0.1, ~2 billion instructions) that single
pass is the wall-clock bottleneck, so this module partitions the chunked
trace into contiguous *shard* spans of whole simulation windows and runs
the fused pass per shard in parallel workers. Because window boundaries
fall at the same absolute event offsets whether the trace is walked in one
pass or shard by shard (``iter_events(start_event=, stop_event=)``), the
only coupling between shards is the Python-level carried state of the
streams themselves. Each stream kind is handled by the cheapest mechanism
that reproduces that state exactly:

* **fetch counters** (:class:`~repro.simulators.fetch.FetchStream`) carry
  no cross-window state at all — the SEQ.3 fetch orbit restarts at every
  window — so per-shard counters simply add up;
* **direct-mapped and 2-way LRU miss counters** run cold per shard while
  recording a *journal*: per touched set, the few boundary accesses whose
  hit/miss outcome depends on pre-shard state (the first access for
  direct-mapped; the first two compressed accesses for 2-way LRU, via the
  run-compression identity). The sequential reconciliation pass folds each
  shard's journal onto the carried state in O(touched sets) — it corrects
  the cold miss count and advances the per-set state without replaying a
  single access;
* **victim-cache counters and trace-cache streams** have global,
  trajectory-dependent state (a shared LRU victim buffer; cache entries
  whose walk advances differently on hit and miss), for which no compact
  journal exists. They run as sequential *relay chains*: shard ``k`` is
  simulated seeded with shard ``k-1``'s pickled end state, so the chain is
  trivially exact. Distinct chains still run concurrently with each other
  and with the cold shard jobs. A victim counter attached to a
  :class:`FetchStream` is split off into its own chain with a private
  fetch stream (the line stream it consumes is state-independent), so the
  parent stream's other counters still shard in parallel.

Fault tolerance mirrors the suite engine: each shard job or relay step is
a checkpoint/retry unit (``checkpoint.load/store`` hooks), transient
failures retry with backoff, a parallel run that stalls raises
:class:`ShardTimeoutError`, and a dead worker pool degrades to in-process
execution of the remaining jobs. Results are bit-identical to
:func:`run_fused` for any shard count, any worker count, and any
interleaving of checkpoint resumes.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from repro.cfg.program import Program
from repro.simulators.fetch import _DEFAULT_CHUNK_EVENTS, FetchStream
from repro.simulators.fused import run_fused
from repro.simulators.icache import (
    _DirectMappedCounter,
    _TwoWayLRUCounter,
    _VictimCounter,
    counter_from_spec,
    counter_spec,
)
from repro.simulators.tracecache import TraceCacheConfig, TraceCacheStream

__all__ = [
    "ShardError",
    "ShardPlan",
    "ShardReport",
    "ShardTimeoutError",
    "plan_shards",
    "run_sharded",
]


# -- shard planning ------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous shard spans over a trace's event stream.

    ``bounds`` has one entry per shard boundary (``n_shards + 1`` in
    total); every interior boundary is a multiple of ``chunk_events``, so
    each shard covers whole simulation windows and shard-wise iteration
    reproduces the exact window sequence of a full pass.
    """

    chunk_events: int
    n_events: int  # total events in the trace, separators included
    bounds: tuple[int, ...]

    @property
    def n_shards(self) -> int:
        return len(self.bounds) - 1

    def span(self, shard: int) -> tuple[int, int]:
        return self.bounds[shard], self.bounds[shard + 1]

    def signature(self) -> tuple:
        """Checkpoint-key component identifying this exact partition."""
        return ("shard-plan", self.chunk_events, self.n_events, self.bounds)


def plan_shards(
    n_events: int,
    chunk_events: int = _DEFAULT_CHUNK_EVENTS,
    shards: int = 1,
) -> ShardPlan:
    """Split ``n_events`` into at most ``shards`` window-aligned spans.

    Windows are distributed near-evenly; a request for more shards than
    there are windows collapses to one shard per window.
    """
    if chunk_events <= 0:
        raise ValueError("chunk_events must be positive")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    n_windows = -(-n_events // chunk_events)
    n_shards = max(1, min(int(shards), n_windows))
    base, rem = divmod(n_windows, n_shards)
    bounds = [0]
    w = 0
    for s in range(n_shards):
        w += base + (1 if s < rem else 0)
        bounds.append(min(w * chunk_events, n_events))
    return ShardPlan(int(chunk_events), int(n_events), tuple(bounds))


# -- errors and reporting ------------------------------------------------


class ShardError(RuntimeError):
    """A shard job or relay step failed permanently."""

    def __init__(self, key: tuple, cause: BaseException) -> None:
        super().__init__(f"shard job {key!r} failed: {cause!r}")
        self.key = key
        self.cause = cause


class ShardTimeoutError(RuntimeError):
    """No shard job completed within ``task_timeout`` seconds."""

    def __init__(self, keys: list, timeout: float) -> None:
        super().__init__(
            f"no shard job completed in {timeout:.1f}s; "
            f"still running: {', '.join(map(repr, keys))}"
        )
        self.keys = keys
        self.timeout = timeout


@dataclass
class ShardReport:
    """What a :func:`run_sharded` call actually did."""

    plan: ShardPlan
    computed: list = field(default_factory=list)  # job keys run this call
    checkpointed: list = field(default_factory=list)  # job keys loaded
    degraded: bool = False  # worker pool died; finished in-process

    @property
    def n_jobs(self) -> int:
        return len(self.computed) + len(self.checkpointed)


#: Failure classes worth retrying (environmental pressure, not bugs).
_TRANSIENT_EXCEPTIONS = (OSError, MemoryError, EOFError)

_RETRY_BACKOFF_SECONDS = 0.05


def _is_transient(exc: BaseException) -> bool:
    return isinstance(exc, _TRANSIENT_EXCEPTIONS)


def _backoff(attempt: int) -> float:
    return _RETRY_BACKOFF_SECONDS * (2 ** (attempt - 1))


# -- stream classification -----------------------------------------------


@dataclass
class _FamilyEntry:
    """One caller FetchStream that shards in parallel (journal stitching)."""

    layout_index: int
    stream: FetchStream
    consumers: list  # the caller's journal-stitchable miss counters

    def spec(self) -> tuple:
        return (
            self.layout_index,
            self.stream.line_bytes,
            self.stream.line_chunks is not None,
            tuple(counter_spec(c) for c in self.consumers),
        )


@dataclass
class _Chain:
    """One sequential relay chain (victim counters or a trace cache)."""

    kind: str  # "victim" | "tc"
    layout_index: int
    line_bytes: int
    tc_config: tuple | None
    counters: list  # the caller's counter objects
    stream: TraceCacheStream | None
    collect: bool  # tc: caller collects miss-line chunks

    def spec(self) -> tuple:
        return (
            self.kind,
            self.layout_index,
            self.line_bytes,
            self.tc_config,
            tuple(counter_spec(c) for c in self.counters),
            self.collect,
        )

    def seed_state(self) -> dict:
        return {
            "counters": [c.state_dict() for c in self.counters],
            "stream": self.stream.state_dict() if self.stream is not None else None,
        }


def _classify(pairs):
    """Split ``(layout, stream)`` pairs into parallel family entries and
    sequential relay chains; unknown stream/consumer types are rejected
    rather than silently simulated wrong."""
    layouts: list = []
    index: dict[int, int] = {}
    family: list[_FamilyEntry] = []
    chains: list[_Chain] = []
    for layout, stream in pairs:
        li = index.get(id(layout))
        if li is None:
            li = index[id(layout)] = len(layouts)
            layouts.append(layout)
        if isinstance(stream, FetchStream):
            journaled: list = []
            victims: list = []
            for consumer in stream.consumers:
                if isinstance(consumer, (_DirectMappedCounter, _TwoWayLRUCounter)):
                    journaled.append(consumer)
                elif isinstance(consumer, _VictimCounter):
                    victims.append(consumer)
                else:
                    raise TypeError(
                        f"run_sharded cannot shard consumer type "
                        f"{type(consumer).__name__}"
                    )
            family.append(_FamilyEntry(li, stream, journaled))
            if victims:
                chains.append(
                    _Chain("victim", li, stream.line_bytes, None, victims, None, False)
                )
        elif isinstance(stream, TraceCacheStream):
            for consumer in stream.consumers:
                if not isinstance(
                    consumer, (_DirectMappedCounter, _TwoWayLRUCounter, _VictimCounter)
                ):
                    raise TypeError(
                        f"run_sharded cannot shard consumer type "
                        f"{type(consumer).__name__}"
                    )
            cfg = stream.config
            chains.append(
                _Chain(
                    "tc",
                    li,
                    stream.line_bytes,
                    (cfg.n_entries, cfg.trace_instructions, cfg.branch_limit),
                    list(stream.consumers),
                    stream,
                    stream.miss_line_chunks is not None,
                )
            )
        else:
            raise TypeError(
                f"run_sharded cannot shard stream type {type(stream).__name__}"
            )
    return layouts, family, chains


# -- shard workers -------------------------------------------------------

# Worker context for fork-based pools: set in the parent immediately
# before the fork so children inherit the trace handles, program and
# layouts copy-on-write instead of receiving pickled copies.
_SHARD_CTX: tuple | None = None


def _family_shard(trace, program, layouts, chunk_events, plan, family_specs, shard_idx):
    """Cold fused pass of every family stream over one shard span."""
    start, stop = plan.span(shard_idx)
    streams = []
    pairs = []
    for li, line_bytes, collect, cspecs in family_specs:
        consumers = [counter_from_spec(cs, record_journal=True) for cs in cspecs]
        stream = FetchStream(
            layouts[li].name,
            line_bytes=line_bytes,
            consumers=consumers,
            collect_lines=collect,
        )
        streams.append(stream)
        pairs.append((layouts[li], stream))
    run_fused(
        trace, program, pairs,
        chunk_events=chunk_events, start_event=start, stop_event=stop,
    )
    out = []
    for stream in streams:
        entry = {
            "n_instructions": stream.n_instructions,
            "n_fetches": stream.n_fetches,
            "n_taken": stream.n_taken,
            "journals": [c.shard_journal() for c in stream.consumers],
        }
        if stream.line_chunks is not None:
            entry["line_chunks"] = stream.line_chunks
        out.append(entry)
    return out


def _relay_shard(trace, program, layouts, chunk_events, plan, spec, shard_idx, state):
    """One relay step: simulate a shard seeded with the previous shard's
    end state; returns the new end state (plus any collected lines)."""
    kind, li, line_bytes, tc_config, cspecs, collect = spec
    start, stop = plan.span(shard_idx)
    counters = [counter_from_spec(cs) for cs in cspecs]
    for counter, cstate in zip(counters, state["counters"]):
        counter.load_state(cstate)
    if kind == "tc":
        stream = TraceCacheStream(
            layouts[li].name,
            TraceCacheConfig(*tc_config),
            line_bytes=line_bytes,
            consumers=counters,
            collect_lines=collect,
        )
        stream.load_state(state["stream"])
    else:
        # this private fetch stream only regenerates the (state-independent)
        # line stream for the victim counters; its own counters are
        # discarded — the caller's fetch counters come from the family jobs
        stream = FetchStream(layouts[li].name, line_bytes=line_bytes, consumers=counters)
    run_fused(
        trace, program, [(layouts[li], stream)],
        chunk_events=chunk_events, start_event=start, stop_event=stop,
    )
    out_state = {"counters": [c.state_dict() for c in counters]}
    payload = {"state": out_state}
    if kind == "tc":
        out_state["stream"] = stream.state_dict()
        if collect:
            payload["miss_line_chunks"] = stream.miss_line_chunks
    else:
        out_state["stream"] = None
    return payload


def _worker_family(shard_idx):
    trace, program, layouts, chunk_events, plan, family_specs, _ = _SHARD_CTX
    return _family_shard(trace, program, layouts, chunk_events, plan, family_specs, shard_idx)


def _worker_relay(chain_idx, shard_idx, state):
    trace, program, layouts, chunk_events, plan, _, chain_specs = _SHARD_CTX
    return _relay_shard(
        trace, program, layouts, chunk_events, plan, chain_specs[chain_idx], shard_idx, state
    )


# -- journal reconciliation ----------------------------------------------


def _stitch_dm(counter, journal) -> None:
    """Fold a cold direct-mapped shard onto carried state.

    The only state-dependent access per set is the shard's first: the cold
    run counted it as a miss unconditionally (cold tags are -1), so it
    flips to a hit exactly when the incoming tag equals the recorded head.
    Every later access compares against a tag set within the shard and is
    already correct; the end state is the shard's end tags over the
    incoming tags.
    """
    tags = counter._tags
    sets = journal["sets"]
    hits = int((journal["head"] == tags[sets]).sum())
    counter.misses += int(journal["misses"]) - hits
    tags[sets] = journal["end"]


def _stitch_lru2(counter, journal) -> None:
    """Fold a cold 2-way LRU shard onto carried state.

    By the run-compression identity, the warm compressed stream per set is
    the cold one, minus its first entry ``c1`` exactly when ``c1`` equals
    the incoming MRU way ``W0`` (a repeat of the most recent access is
    dropped by compression and always hits). Only the first two surviving
    entries compare against pre-shard state; entry 3 onward compares
    against in-shard entries identically in both runs. The cold run
    counted ``c1`` and ``c2`` as misses unconditionally (cold sentinels
    are -1/-2), so the corrections are pure subtractions:

    * ``c1`` dropped: +1 hit for ``c1``; ``c2`` (if any) hits iff it
      equals the incoming LRU way ``W1``;
    * ``c1`` kept: ``c1`` hits iff it equals ``W1``; ``c2`` (if any) hits
      iff it equals ``W0``.

    End state: two or more cold entries make the cold end pair already
    correct; a single entry rolls the incoming pair forward (or leaves it
    untouched when that entry was dropped).
    """
    w0a, w1a = counter._w0, counter._w1
    sets = journal["sets"]
    c1 = journal["c1"]
    c2 = journal["c2"]
    W0 = w0a[sets]
    W1 = w1a[sets]
    has2 = c2 >= 0
    dropped = c1 == W0
    hits = dropped.astype(np.int64)
    hits += dropped & has2 & (c2 == W1)
    hits += ~dropped & (c1 == W1)
    hits += ~dropped & has2 & (c2 == W0)
    counter.misses += int(journal["misses"]) - int(hits.sum())
    w0a[sets] = np.where(has2, journal["w0"], np.where(dropped, W0, c1))
    w1a[sets] = np.where(has2, journal["w1"], np.where(dropped, W1, W0))


def _stitch(counter, journal) -> None:
    if journal["kind"] == "dm":
        _stitch_dm(counter, journal)
    elif journal["kind"] == "lru2":
        _stitch_lru2(counter, journal)
    else:  # pragma: no cover - journals only come from the two kinds above
        raise ValueError(f"unknown journal kind {journal['kind']!r}")


def _reconcile(family, family_payloads, chains, chain_payloads) -> None:
    """Write shard results back into the caller's live streams, in shard
    order, exactly as one full fused pass would have left them."""
    for idx, entry in enumerate(family):
        stream = entry.stream
        for payload in family_payloads or []:
            p = payload[idx]
            stream.n_instructions += int(p["n_instructions"])
            stream.n_fetches += int(p["n_fetches"])
            stream.n_taken += int(p["n_taken"])
            if stream.line_chunks is not None:
                stream.line_chunks.extend(p["line_chunks"])
            for counter, journal in zip(entry.consumers, p["journals"]):
                _stitch(counter, journal)
    for ci, chain in enumerate(chains):
        steps = chain_payloads[ci]
        if not steps:
            continue
        final = steps[-1]["state"]
        for counter, cstate in zip(chain.counters, final["counters"]):
            counter.load_state(cstate)
        if chain.stream is not None:
            chain.stream.load_state(final["stream"])
            if chain.stream.miss_line_chunks is not None:
                for step in steps:
                    chain.stream.miss_line_chunks.extend(step["miss_line_chunks"])


# -- driver --------------------------------------------------------------


def run_sharded(
    trace,
    program: Program,
    pairs: Sequence[tuple],
    *,
    chunk_events: int = _DEFAULT_CHUNK_EVENTS,
    shards: int | ShardPlan | None = None,
    jobs: int = 1,
    retries: int = 0,
    task_timeout: float | None = None,
    checkpoint=None,
    on_job=None,
) -> ShardReport:
    """Feed every ``(layout, stream)`` pair shard-parallel over ``trace``.

    Drop-in equivalent of :func:`run_fused`: streams are mutated in place
    and end up bit-identical — counters *and* carried state — to a single
    fused pass, for any ``shards``/``jobs`` combination. ``shards`` is a
    shard count or a precomputed :class:`ShardPlan`; ``jobs > 1`` fans the
    shard jobs and relay steps over a fork-based process pool (platforms
    without ``fork``, and ``jobs=1``, run in-process).

    ``checkpoint``, when given, must expose ``load(key) -> payload|None``
    and ``store(key, payload)``; keys are ``("family", shard)`` and
    ``("relay", chain, shard)`` tuples. The caller is responsible for
    scoping the store to this exact trace, stream composition, initial
    stream state, and shard plan (``ShardPlan.signature()``); the suite
    engine scopes by workload settings, task keys and plan. ``on_job``
    receives ``(key, source)`` for every job satisfied, with ``source``
    ``"checkpoint"`` or ``"computed"``. Transient failures (``OSError``,
    ``MemoryError``, ``EOFError``) retry up to ``retries`` times with
    backoff; ``task_timeout`` bounds how long a parallel run may go with
    no job completing; a dead worker pool degrades to in-process
    execution of the remaining jobs.
    """
    global _SHARD_CTX
    n_events = len(trace)
    if isinstance(shards, ShardPlan):
        plan = shards
        if plan.chunk_events != chunk_events or plan.n_events != n_events:
            raise ValueError("shard plan does not match this trace/window size")
    else:
        plan = plan_shards(n_events, chunk_events, shards if shards else max(jobs, 1))
    report = ShardReport(plan=plan)
    if not pairs:
        return report
    layouts, family, chains = _classify(pairs)
    n_shards = plan.n_shards
    family_specs = tuple(e.spec() for e in family)
    chain_specs = tuple(c.spec() for c in chains)
    seeds = [c.seed_state() for c in chains]
    notify = on_job if on_job is not None else (lambda key, source: None)

    family_payloads: list | None = [None] * n_shards if family else None
    chain_payloads: list[list] = [[None] * n_shards for _ in chains]

    if checkpoint is not None:
        if family_payloads is not None:
            for s in range(n_shards):
                payload = checkpoint.load(("family", s))
                if payload is not None:
                    family_payloads[s] = payload
                    report.checkpointed.append(("family", s))
                    notify(("family", s), "checkpoint")
        for ci in range(len(chains)):
            for s in range(n_shards):
                payload = checkpoint.load(("relay", ci, s))
                if payload is not None:
                    chain_payloads[ci][s] = payload
                    report.checkpointed.append(("relay", ci, s))
                    notify(("relay", ci, s), "checkpoint")

    def missing_jobs() -> list[tuple]:
        out: list[tuple] = []
        if family_payloads is not None:
            out.extend(("family", s) for s in range(n_shards) if family_payloads[s] is None)
        for ci, steps in enumerate(chain_payloads):
            out.extend(("relay", ci, s) for s in range(n_shards) if steps[s] is None)
        return out

    def relay_input(ci: int, s: int):
        return seeds[ci] if s == 0 else chain_payloads[ci][s - 1]["state"]

    def run_local(key: tuple):
        if key[0] == "family":
            return _family_shard(
                trace, program, layouts, chunk_events, plan, family_specs, key[1]
            )
        _, ci, s = key
        return _relay_shard(
            trace, program, layouts, chunk_events, plan,
            chain_specs[ci], s, relay_input(ci, s),
        )

    def complete(key: tuple, payload) -> None:
        if key[0] == "family":
            family_payloads[key[1]] = payload
        else:
            chain_payloads[key[1]][key[2]] = payload
        if checkpoint is not None:
            checkpoint.store(key, payload)
        report.computed.append(key)
        notify(key, "computed")

    def run_serial(keys: list[tuple]) -> None:
        for key in sorted(keys):  # "family" sorts first; relay steps ascend
            attempt = 0
            while True:
                attempt += 1
                try:
                    payload = run_local(key)
                    break
                except Exception as exc:
                    if attempt <= retries and _is_transient(exc):
                        time.sleep(_backoff(attempt))
                        continue
                    raise ShardError(key, exc) from exc
            complete(key, payload)

    todo = missing_jobs()
    if todo:
        n_workers = min(max(1, jobs), len(todo))
        if n_workers > 1 and "fork" in multiprocessing.get_all_start_methods():
            _SHARD_CTX = (
                trace, program, layouts, chunk_events, plan, family_specs, chain_specs,
            )
            ctx = multiprocessing.get_context("fork")
            pool = ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx)
            try:
                attempts: dict[tuple, int] = {}
                in_flight: dict = {}
                submitted: set[tuple] = set()

                def try_submit() -> None:
                    for key in missing_jobs():
                        if key in submitted:
                            continue
                        if key[0] == "relay":
                            _, ci, s = key
                            if s > 0 and chain_payloads[ci][s - 1] is None:
                                continue  # predecessor still running
                            future = pool.submit(_worker_relay, ci, s, relay_input(ci, s))
                        else:
                            future = pool.submit(_worker_family, key[1])
                        attempts[key] = attempts.get(key, 0) + 1
                        in_flight[future] = key
                        submitted.add(key)

                try_submit()
                while in_flight:
                    done, not_done = wait(
                        set(in_flight), timeout=task_timeout, return_when=FIRST_COMPLETED
                    )
                    if not done:  # stalled: nothing finished within the budget
                        for future in not_done:
                            future.cancel()
                        raise ShardTimeoutError(sorted(in_flight.values()), task_timeout)
                    for future in done:
                        key = in_flight.pop(future)
                        try:
                            payload = future.result()
                        except BrokenProcessPool:
                            raise
                        except Exception as exc:
                            if attempts[key] <= retries and _is_transient(exc):
                                submitted.discard(key)  # resubmit below
                                time.sleep(_backoff(attempts[key]))
                            else:
                                for pending in in_flight:
                                    pending.cancel()
                                raise ShardError(key, exc) from exc
                        else:
                            complete(key, payload)
                    try_submit()
            except BrokenProcessPool:
                report.degraded = True
                run_serial(missing_jobs())
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
                _SHARD_CTX = None
        else:
            run_serial(todo)

    _reconcile(family, family_payloads, chains, chain_payloads)
    return report
