"""Derived metrics for Tables 3 and 4."""

from __future__ import annotations

from repro.simulators.fetch import MISS_PENALTY_CYCLES, FetchResult
from repro.simulators.icache import CacheConfig, count_misses

__all__ = [
    "miss_rate_percent",
    "fetch_bandwidth",
    "ideal_fetch_bandwidth",
    "instructions_between_taken_branches",
]


def miss_rate_percent(result: FetchResult, config: CacheConfig) -> float:
    """I-cache misses per instruction executed, in percent (Table 3)."""
    if result.n_instructions == 0:
        return 0.0
    misses = count_misses(result.line_chunks, config)
    return 100.0 * misses / result.n_instructions


def fetch_bandwidth(result: FetchResult, config: CacheConfig) -> float:
    """Instructions per cycle with the fixed 5-cycle miss penalty (Table 4)."""
    if result.n_fetches == 0:
        return 0.0
    misses = count_misses(result.line_chunks, config)
    cycles = result.n_fetches + MISS_PENALTY_CYCLES * misses
    return result.n_instructions / cycles


def ideal_fetch_bandwidth(result: FetchResult) -> float:
    """Fetch bandwidth with a perfect i-cache (Table 4's Ideal row)."""
    return result.ideal_ipc


def instructions_between_taken_branches(result: FetchResult) -> float:
    """Average run length between taken branches (Section 8: 8.9 -> 22.4)."""
    return result.instructions_between_taken
