"""SEQ.3 sequential fetch unit (Rotenberg et al.), paper Section 7.1.

Each fetch accesses two consecutive cache lines and supplies instructions
from the fetch address up to the first *taken* branch, up to three branches
of any kind (conditional, unconditional, calls, returns — Section 7.3), up
to 16 instructions, or up to the end of the two lines, whichever comes
first. Branch prediction is perfect.

The simulation is layout-dependent but cache-independent: it produces the
fetch count and the line-access stream once per layout; cache organizations
are then evaluated vectorized over that stream
(:func:`repro.simulators.icache.count_misses`).

Implementation: the trace is expanded to instruction-level NumPy arrays in
bounded chunks (memory stays flat for arbitrarily long traces). For every
instruction position the fetch length is computed vectorized; the actual
fetch boundaries are the orbit of position 0 under ``p -> p + n[p]``,
extracted by a vectorized jump-table traversal (:func:`_orbit_starts`)
that walks all taken-branch-delimited segments in lockstep.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.cfg.blocks import INSTR_BYTES, BlockKind
from repro.cfg.layout import Layout
from repro.cfg.program import Program
from repro.profiling.trace import SEPARATOR, BlockTrace

__all__ = [
    "ChunkContext",
    "FetchResult",
    "FetchStream",
    "MISS_PENALTY_CYCLES",
    "expand_chunk",
    "instruction_chunks",
    "iter_chunk_contexts",
    "simulate_fetch",
]

#: Fixed i-cache miss penalty (paper Table 4).
MISS_PENALTY_CYCLES = 5

#: SEQ.3 limits.
FETCH_WIDTH = 16
BRANCH_LIMIT = 3

_DEFAULT_CHUNK_EVENTS = 2_000_000


@dataclass
class FetchResult:
    """Per-layout fetch simulation output (cache-independent)."""

    layout_name: str
    n_instructions: int
    n_fetches: int
    n_taken: int
    #: cache-line numbers accessed, 2 per fetch, chunked
    line_chunks: list[np.ndarray]

    @property
    def ideal_ipc(self) -> float:
        """Fetch bandwidth with a perfect i-cache."""
        return self.n_instructions / self.n_fetches if self.n_fetches else 0.0

    @property
    def instructions_between_taken(self) -> float:
        return self.n_instructions / self.n_taken if self.n_taken else float("inf")


@dataclass
class _Chunk:
    """Instruction-level arrays for a span of trace events."""

    addr: np.ndarray  # int64 byte address per instruction
    is_branch: np.ndarray  # bool: last instruction of a branch/call/return block
    is_taken: np.ndarray  # bool: branch whose successor is non-sequential
    last: bool  # final chunk of the trace


@dataclass
class ChunkContext:
    """Layout-independent expansion of one window of trace events.

    Everything here depends only on the trace and the program — block
    ids, sizes, instruction offsets, adjacency — so the fused driver
    computes it once per window and shares it across every layout
    (:func:`expand_chunk` adds the per-layout addresses).
    """

    ids: np.ndarray  # int64 block id per valid event
    ev_size: np.ndarray  # int64 instructions per event
    rep_idx: np.ndarray  # int64: event index of each instruction
    offset_bytes: np.ndarray  # int64: byte offset within its block
    last_idx: np.ndarray  # int64: instruction index of each event's last instr
    branchy_ev: np.ndarray  # bool: event ends in a branch/call/return block
    adjacent: np.ndarray  # bool (len-1): no separator between events i, i+1
    next_id: int | None  # first block id after the window (None: sep/EOF)
    total: int  # instructions in the window
    last: bool  # final window of the trace


def iter_chunk_contexts(
    trace: BlockTrace,
    program: Program,
    chunk_events: int = _DEFAULT_CHUNK_EVENTS,
    *,
    start_event: int = 0,
    stop_event: int | None = None,
) -> Iterator[ChunkContext]:
    """Expand the trace into layout-independent chunk contexts.

    ``trace`` may be an in-memory :class:`BlockTrace` or an on-disk
    :class:`~repro.profiling.tracestore.TraceStore` — anything with the
    ``iter_events(chunk_events)`` windowed iterator.

    ``start_event``/``stop_event`` restrict expansion to that event slice
    (shard workers use this): when the bounds fall on window boundaries,
    the contexts produced are bit-identical to the corresponding contexts
    of a full iteration, including the boundary sequentiality peek past
    ``stop_event``.
    """
    sizes = program.block_size.astype(np.int64)
    kinds = program.block_kind
    branchy = (kinds == BlockKind.BRANCH) | (kinds == BlockKind.CALL) | (kinds == BlockKind.RETURN)

    if start_event or stop_event is not None:
        windows = trace.iter_events(
            chunk_events, start_event=start_event, stop_event=stop_event
        )
    else:
        windows = trace.iter_events(chunk_events)
    for ev, next_event in windows:
        valid_idx = np.flatnonzero(ev != SEPARATOR)
        if valid_idx.size == 0:
            continue
        ids = ev[valid_idx].astype(np.int64)
        ev_size = sizes[ids]
        ends = np.cumsum(ev_size)
        total = int(ends[-1])
        block_start = ends - ev_size
        rep_idx = np.repeat(np.arange(ids.shape[0], dtype=np.int64), ev_size)
        offset_bytes = np.arange(total, dtype=np.int64)
        offset_bytes -= block_start[rep_idx]
        offset_bytes *= INSTR_BYTES  # shared across layouts by the fused driver
        yield ChunkContext(
            ids=ids,
            ev_size=ev_size,
            rep_idx=rep_idx,
            offset_bytes=offset_bytes,
            last_idx=ends - 1,
            branchy_ev=branchy[ids],
            adjacent=(valid_idx[1:] - valid_idx[:-1]) == 1,
            next_id=(
                int(next_event)
                if next_event is not None and next_event != SEPARATOR
                else None
            ),
            total=total,
            last=next_event is None,
        )


def expand_chunk(ctx: ChunkContext, layout: Layout) -> _Chunk:
    """Per-layout instruction arrays for one chunk context.

    Run separators force a taken branch on the preceding instruction (two
    profiled runs never fall through into each other).
    """
    addresses = layout.address
    ev_addr = addresses[ctx.ids]
    ev_end = ev_addr + ctx.ev_size * INSTR_BYTES
    # a transition is sequential when the next block starts exactly where
    # this one ends, with no run separator in between
    seq = np.zeros(ctx.ids.shape[0], dtype=bool)
    if ctx.ids.shape[0] > 1:
        seq[:-1] = (ev_addr[1:] == ev_end[:-1]) & ctx.adjacent
    if ctx.next_id is not None:
        seq[-1] = int(addresses[ctx.next_id]) == int(ev_end[-1])

    addr = ev_addr[ctx.rep_idx]
    addr += ctx.offset_bytes
    is_branch = np.zeros(ctx.total, dtype=bool)
    is_taken = np.zeros(ctx.total, dtype=bool)
    # any non-sequential transition behaves as a taken branch — including
    # a fall-through whose successor the layout moved away (the layout
    # step would insert an unconditional jump there)
    non_seq = ~seq
    is_branch[ctx.last_idx] = ctx.branchy_ev | non_seq
    is_taken[ctx.last_idx] = non_seq
    return _Chunk(addr=addr, is_branch=is_branch, is_taken=is_taken, last=ctx.last)


def instruction_chunks(
    trace: BlockTrace,
    program: Program,
    layout: Layout,
    chunk_events: int = _DEFAULT_CHUNK_EVENTS,
) -> Iterator[_Chunk]:
    """Expand the block trace into per-instruction arrays, chunk by chunk."""
    for ctx in iter_chunk_contexts(trace, program, chunk_events):
        yield expand_chunk(ctx, layout)


def _fetch_lengths(chunk: _Chunk, line_instrs: int) -> np.ndarray:
    """Vectorized SEQ.3 fetch length from every instruction position.

    All distance computations are O(n) passes — a prefix count per branch
    kind followed by a monotone (cache-friendly) gather into the branch
    position list — carried out in int32 with in-place combining: this
    function runs once per (layout, line size) per window and its memory
    traffic dominates the fused suite, so every avoided temporary counts.
    """
    n = chunk.addr.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int32)
    idx = np.arange(n, dtype=np.int32)

    # distance to the next taken branch (inclusive): positions past the
    # last taken branch run to the end of the chunk
    taken_pos = np.flatnonzero(chunk.is_taken)
    if taken_pos.size:
        before_taken = np.cumsum(chunk.is_taken, dtype=np.int32)
        before_taken -= chunk.is_taken  # exclusive prefix count, in place
        np.minimum(before_taken, taken_pos.size - 1, out=before_taken)
        until_taken = taken_pos.astype(np.int32).take(before_taken)
        until_taken -= idx
        until_taken += 1
        tail = int(taken_pos[-1]) + 1  # past the last taken branch:
        if tail < n:  # run to the chunk end
            until_taken[tail:] = np.arange(n - tail, 0, -1, dtype=np.int32)
    else:
        until_taken = np.arange(n, 0, -1, dtype=np.int32)

    # distance to the third branch (inclusive): exclusive prefix count of
    # branches, clip-gathered into the branch positions; positions past
    # the (size - BRANCH_LIMIT)-th branch have no third branch (a
    # contiguous tail, since the count is monotone)
    branch_pos = np.flatnonzero(chunk.is_branch)
    if branch_pos.size >= BRANCH_LIMIT:
        third = np.cumsum(chunk.is_branch, dtype=np.int32)
        third -= chunk.is_branch
        third += BRANCH_LIMIT - 1
        np.minimum(third, branch_pos.size - 1, out=third)
        until_third = branch_pos.astype(np.int32).take(third)
        until_third -= idx
        until_third += 1
        cut = int(branch_pos[branch_pos.size - BRANCH_LIMIT]) + 1
        if cut < n:
            until_third[cut:] = n
        np.minimum(until_taken, until_third, out=until_taken)

    # two consecutive cache lines from the fetch address
    # addr // INSTR_BYTES as a shift (INSTR_BYTES is a power of two)
    instr_pos = np.right_shift(chunk.addr, INSTR_BYTES.bit_length() - 1).astype(np.int32)
    if line_instrs & (line_instrs - 1) == 0:
        instr_pos &= line_instrs - 1
    else:  # non-power-of-two line size: generic modulo
        instr_pos %= line_instrs
    np.subtract(2 * line_instrs, instr_pos, out=instr_pos)
    cap = instr_pos
    np.minimum(cap, FETCH_WIDTH, out=cap)

    np.minimum(until_taken, cap, out=until_taken)
    np.maximum(until_taken, 1, out=until_taken)
    return until_taken


#: Lockstep rounds after which the few remaining long segments finish scalar.
_ORBIT_SCALAR_CUTOFF_ROUNDS = 64
_ORBIT_SCALAR_CUTOFF_ACTIVE = 32


def _orbit_starts_scalar(lengths: np.ndarray) -> np.ndarray:
    """Reference orbit of 0 under ``p -> p + lengths[p]`` (scalar walk)."""
    n = lengths.shape[0]
    length_list = lengths.tolist()
    starts: list[int] = []
    append = starts.append
    p = 0
    while p < n:
        append(p)
        p += length_list[p]
    return np.asarray(starts, dtype=np.int64)


def _orbit_starts(lengths: np.ndarray, is_taken: np.ndarray) -> np.ndarray:
    """Orbit of 0 under ``p -> p + lengths[p]``, vectorized.

    Requires the SEQ.3 invariant that a fetch never crosses a taken branch
    (``lengths[p] <= next_taken(p) - p + 1``, which :func:`_fetch_lengths`
    guarantees). The orbit then decomposes into independent segments
    delimited by taken branches: each segment's first fetch starts right
    after the previous taken branch. All segments are walked in lockstep —
    one gather per fetch — and the visited mask yields the starts already
    in stream order. Rare pathological segments (thousands of short
    fetches back to back) are finished with the scalar walk.
    """
    n = lengths.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    taken_pos = np.flatnonzero(is_taken)
    seg_start = np.concatenate(([0], taken_pos + 1))
    seg_end = np.concatenate((taken_pos, [n - 1]))[: seg_start.size]
    alive = seg_start <= seg_end  # drop the empty tail when the last
    cur = seg_start[alive]  # instruction is a taken branch
    end = seg_end[alive]

    visited = np.zeros(n, dtype=bool)
    rounds = 0
    while cur.size:
        visited[cur] = True
        cur = cur + lengths[cur]
        keep = cur <= end
        if not keep.all():
            cur = cur[keep]
            end = end[keep]
        rounds += 1
        if rounds >= _ORBIT_SCALAR_CUTOFF_ROUNDS and cur.size <= _ORBIT_SCALAR_CUTOFF_ACTIVE:
            length_list = lengths.tolist()
            for p, e in zip(cur.tolist(), end.tolist()):
                while p <= e:
                    visited[p] = True
                    p += length_list[p]
            break
    return np.flatnonzero(visited)


class FetchStream:
    """Incremental SEQ.3 fetch simulation fed one expanded chunk at a time.

    The stream accumulates the cache-independent counters and routes each
    chunk's line accesses to any number of attached i-cache miss counters
    (``consumers``, objects with ``feed(lines)``), so one pass over the
    trace evaluates every cache configuration at once. With
    ``collect_lines=True`` the per-chunk line arrays are also kept, which
    is what :func:`simulate_fetch` uses to build a full
    :class:`FetchResult`.
    """

    def __init__(
        self,
        layout_name: str,
        *,
        line_bytes: int = 32,
        consumers: Sequence | None = None,
        collect_lines: bool = False,
    ) -> None:
        self.layout_name = layout_name
        self.line_bytes = line_bytes
        self.consumers = list(consumers) if consumers is not None else []
        self.n_instructions = 0
        self.n_fetches = 0
        self.n_taken = 0
        self.line_chunks: list[np.ndarray] | None = [] if collect_lines else None

    def feed(self, chunk: _Chunk, lengths: np.ndarray) -> None:
        """Consume one expanded chunk; ``lengths`` from :func:`_fetch_lengths`."""
        n = chunk.addr.shape[0]
        self.n_instructions += n
        self.n_taken += int(chunk.is_taken.sum())
        start_arr = _orbit_starts(lengths, chunk.is_taken)
        self.n_fetches += start_arr.shape[0]
        first_line = chunk.addr[start_arr]
        if self.line_bytes & (self.line_bytes - 1) == 0:
            first_line >>= self.line_bytes.bit_length() - 1
        else:
            first_line //= self.line_bytes
        lines = np.empty(2 * start_arr.shape[0], dtype=np.int64)
        lines[0::2] = first_line
        lines[1::2] = first_line + 1
        for consumer in self.consumers:
            consumer.feed(lines)
        if self.line_chunks is not None:
            self.line_chunks.append(lines)

    def result(self) -> FetchResult:
        return FetchResult(
            layout_name=self.layout_name,
            n_instructions=self.n_instructions,
            n_fetches=self.n_fetches,
            n_taken=self.n_taken,
            line_chunks=self.line_chunks if self.line_chunks is not None else [],
        )


def simulate_fetch(
    trace: BlockTrace,
    program: Program,
    layout: Layout,
    *,
    line_bytes: int = 32,
    chunk_events: int = _DEFAULT_CHUNK_EVENTS,
) -> FetchResult:
    """Run the SEQ.3 fetch unit over a trace under a layout."""
    line_instrs = line_bytes // INSTR_BYTES
    stream = FetchStream(layout.name, line_bytes=line_bytes, collect_lines=True)
    for ctx in iter_chunk_contexts(trace, program, chunk_events):
        chunk = expand_chunk(ctx, layout)
        stream.feed(chunk, _fetch_lengths(chunk, line_instrs))
    return stream.result()
