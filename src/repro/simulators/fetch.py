"""SEQ.3 sequential fetch unit (Rotenberg et al.), paper Section 7.1.

Each fetch accesses two consecutive cache lines and supplies instructions
from the fetch address up to the first *taken* branch, up to three branches
of any kind (conditional, unconditional, calls, returns — Section 7.3), up
to 16 instructions, or up to the end of the two lines, whichever comes
first. Branch prediction is perfect.

The simulation is layout-dependent but cache-independent: it produces the
fetch count and the line-access stream once per layout; cache organizations
are then evaluated vectorized over that stream
(:func:`repro.simulators.icache.count_misses`).

Implementation: the trace is expanded to instruction-level NumPy arrays in
bounded chunks (memory stays flat for arbitrarily long traces). For every
instruction position the fetch length is computed vectorized; the actual
fetch boundaries are then the orbit of position 0 under ``p -> p + n[p]``,
a cheap scalar walk.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.cfg.blocks import INSTR_BYTES, BlockKind
from repro.cfg.layout import Layout
from repro.cfg.program import Program
from repro.profiling.trace import SEPARATOR, BlockTrace

__all__ = ["FetchResult", "simulate_fetch", "MISS_PENALTY_CYCLES", "instruction_chunks"]

#: Fixed i-cache miss penalty (paper Table 4).
MISS_PENALTY_CYCLES = 5

#: SEQ.3 limits.
FETCH_WIDTH = 16
BRANCH_LIMIT = 3

_DEFAULT_CHUNK_EVENTS = 2_000_000


@dataclass
class FetchResult:
    """Per-layout fetch simulation output (cache-independent)."""

    layout_name: str
    n_instructions: int
    n_fetches: int
    n_taken: int
    #: cache-line numbers accessed, 2 per fetch, chunked
    line_chunks: list[np.ndarray]

    @property
    def ideal_ipc(self) -> float:
        """Fetch bandwidth with a perfect i-cache."""
        return self.n_instructions / self.n_fetches if self.n_fetches else 0.0

    @property
    def instructions_between_taken(self) -> float:
        return self.n_instructions / self.n_taken if self.n_taken else float("inf")


@dataclass
class _Chunk:
    """Instruction-level arrays for a span of trace events."""

    addr: np.ndarray  # int64 byte address per instruction
    is_branch: np.ndarray  # bool: last instruction of a branch/call/return block
    is_taken: np.ndarray  # bool: branch whose successor is non-sequential
    last: bool  # final chunk of the trace


def instruction_chunks(
    trace: BlockTrace,
    program: Program,
    layout: Layout,
    chunk_events: int = _DEFAULT_CHUNK_EVENTS,
) -> Iterator[_Chunk]:
    """Expand the block trace into per-instruction arrays, chunk by chunk.

    Run separators force a taken branch on the preceding instruction (two
    profiled runs never fall through into each other).
    """
    events = trace.events
    n_events = events.shape[0]
    sizes = program.block_size.astype(np.int64)
    kinds = program.block_kind
    branchy = (kinds == BlockKind.BRANCH) | (kinds == BlockKind.CALL) | (kinds == BlockKind.RETURN)
    addresses = layout.address

    start = 0
    while start < n_events:
        end = min(start + chunk_events, n_events)
        ev = events[start:end]
        valid_idx = np.flatnonzero(ev != SEPARATOR)
        if valid_idx.size == 0:
            start = end
            continue
        ids = ev[valid_idx].astype(np.int64)
        ev_size = sizes[ids]
        ev_addr = addresses[ids]
        ev_end = ev_addr + ev_size * INSTR_BYTES
        # a transition is sequential when the next block starts exactly where
        # this one ends, with no run separator in between
        seq = np.zeros(ids.shape[0], dtype=bool)
        if ids.shape[0] > 1:
            seq[:-1] = (ev_addr[1:] == ev_end[:-1]) & ((valid_idx[1:] - valid_idx[:-1]) == 1)
        if end < n_events and int(events[end]) != SEPARATOR:
            seq[-1] = int(addresses[int(events[end])]) == int(ev_end[-1])

        total = int(ev_size.sum())
        block_start = np.cumsum(ev_size) - ev_size
        offsets = np.arange(total, dtype=np.int64) - np.repeat(block_start, ev_size)
        addr = np.repeat(ev_addr, ev_size) + offsets * INSTR_BYTES
        last_of_block = np.zeros(total, dtype=bool)
        last_of_block[np.cumsum(ev_size) - 1] = True
        is_branch = last_of_block & np.repeat(branchy[ids], ev_size)
        # any non-sequential transition behaves as a taken branch — including
        # a fall-through whose successor the layout moved away (the layout
        # step would insert an unconditional jump there)
        non_seq = last_of_block & np.repeat(~seq, ev_size)
        yield _Chunk(addr=addr, is_branch=is_branch | non_seq, is_taken=non_seq, last=end >= n_events)
        start = end


def _fetch_lengths(chunk: _Chunk, line_instrs: int) -> np.ndarray:
    """Vectorized SEQ.3 fetch length from every instruction position."""
    n = chunk.addr.shape[0]
    idx = np.arange(n, dtype=np.int64)

    # distance to the next taken branch (inclusive)
    taken_pos = np.flatnonzero(chunk.is_taken)
    next_taken = np.full(n, n - 1, dtype=np.int64)
    if taken_pos.size:
        j = np.searchsorted(taken_pos, idx, side="left")
        j = np.minimum(j, taken_pos.size - 1)
        nt = taken_pos[j]
        nt[idx > taken_pos[-1]] = n - 1  # tail past the last taken branch
        next_taken = nt
    until_taken = next_taken - idx + 1

    # distance to the third branch (inclusive)
    branch_pos = np.flatnonzero(chunk.is_branch)
    until_third = np.full(n, n, dtype=np.int64)
    if branch_pos.size:
        j = np.searchsorted(branch_pos, idx, side="left")
        third = j + BRANCH_LIMIT - 1
        has_third = third < branch_pos.size
        until_third[has_third] = branch_pos[third[has_third]] - idx[has_third] + 1

    # two consecutive cache lines from the fetch address
    cap = 2 * line_instrs - (chunk.addr // INSTR_BYTES) % line_instrs

    length = np.minimum(np.minimum(until_taken, until_third), np.minimum(cap, FETCH_WIDTH))
    return np.maximum(length, 1)


def simulate_fetch(
    trace: BlockTrace,
    program: Program,
    layout: Layout,
    *,
    line_bytes: int = 32,
    chunk_events: int = _DEFAULT_CHUNK_EVENTS,
) -> FetchResult:
    """Run the SEQ.3 fetch unit over a trace under a layout."""
    line_instrs = line_bytes // INSTR_BYTES
    n_instructions = 0
    n_fetches = 0
    n_taken = 0
    line_chunks: list[np.ndarray] = []

    for chunk in instruction_chunks(trace, program, layout, chunk_events):
        n = chunk.addr.shape[0]
        n_instructions += n
        n_taken += int(chunk.is_taken.sum())
        lengths = _fetch_lengths(chunk, line_instrs)
        # orbit of 0 under p -> p + lengths[p]
        length_list = lengths.tolist()
        starts: list[int] = []
        p = 0
        append = starts.append
        while p < n:
            append(p)
            p += length_list[p]
        n_fetches += len(starts)
        start_arr = np.asarray(starts, dtype=np.int64)
        first_line = chunk.addr[start_arr] // line_bytes
        lines = np.empty(2 * start_arr.shape[0], dtype=np.int64)
        lines[0::2] = first_line
        lines[1::2] = first_line + 1
        line_chunks.append(lines)

    return FetchResult(
        layout_name=layout.name,
        n_instructions=n_instructions,
        n_fetches=n_fetches,
        n_taken=n_taken,
        line_chunks=line_chunks,
    )
