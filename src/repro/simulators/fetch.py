"""SEQ.3 sequential fetch unit (Rotenberg et al.), paper Section 7.1.

Each fetch accesses two consecutive cache lines and supplies instructions
from the fetch address up to the first *taken* branch, up to three branches
of any kind (conditional, unconditional, calls, returns — Section 7.3), up
to 16 instructions, or up to the end of the two lines, whichever comes
first. Branch prediction is perfect.

The simulation is layout-dependent but cache-independent: it produces the
fetch count and the line-access stream once per layout; cache organizations
are then evaluated vectorized over that stream
(:func:`repro.simulators.icache.count_misses`).

Implementation: the trace is expanded to instruction-level NumPy arrays in
bounded chunks (memory stays flat for arbitrarily long traces). For every
instruction position the fetch length is computed vectorized; the actual
fetch boundaries are the orbit of position 0 under ``p -> p + n[p]``,
extracted by a vectorized jump-table traversal (:func:`_orbit_starts`)
that walks all taken-branch-delimited segments in lockstep.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.cfg.blocks import INSTR_BYTES, BlockKind
from repro.cfg.layout import Layout
from repro.cfg.program import Program
from repro.profiling.trace import SEPARATOR, BlockTrace

__all__ = ["FetchResult", "simulate_fetch", "MISS_PENALTY_CYCLES", "instruction_chunks"]

#: Fixed i-cache miss penalty (paper Table 4).
MISS_PENALTY_CYCLES = 5

#: SEQ.3 limits.
FETCH_WIDTH = 16
BRANCH_LIMIT = 3

_DEFAULT_CHUNK_EVENTS = 2_000_000


@dataclass
class FetchResult:
    """Per-layout fetch simulation output (cache-independent)."""

    layout_name: str
    n_instructions: int
    n_fetches: int
    n_taken: int
    #: cache-line numbers accessed, 2 per fetch, chunked
    line_chunks: list[np.ndarray]

    @property
    def ideal_ipc(self) -> float:
        """Fetch bandwidth with a perfect i-cache."""
        return self.n_instructions / self.n_fetches if self.n_fetches else 0.0

    @property
    def instructions_between_taken(self) -> float:
        return self.n_instructions / self.n_taken if self.n_taken else float("inf")


@dataclass
class _Chunk:
    """Instruction-level arrays for a span of trace events."""

    addr: np.ndarray  # int64 byte address per instruction
    is_branch: np.ndarray  # bool: last instruction of a branch/call/return block
    is_taken: np.ndarray  # bool: branch whose successor is non-sequential
    last: bool  # final chunk of the trace


def instruction_chunks(
    trace: BlockTrace,
    program: Program,
    layout: Layout,
    chunk_events: int = _DEFAULT_CHUNK_EVENTS,
) -> Iterator[_Chunk]:
    """Expand the block trace into per-instruction arrays, chunk by chunk.

    Run separators force a taken branch on the preceding instruction (two
    profiled runs never fall through into each other).
    """
    events = trace.events
    n_events = events.shape[0]
    sizes = program.block_size.astype(np.int64)
    kinds = program.block_kind
    branchy = (kinds == BlockKind.BRANCH) | (kinds == BlockKind.CALL) | (kinds == BlockKind.RETURN)
    addresses = layout.address

    start = 0
    while start < n_events:
        end = min(start + chunk_events, n_events)
        ev = events[start:end]
        valid_idx = np.flatnonzero(ev != SEPARATOR)
        if valid_idx.size == 0:
            start = end
            continue
        ids = ev[valid_idx].astype(np.int64)
        ev_size = sizes[ids]
        ev_addr = addresses[ids]
        ev_end = ev_addr + ev_size * INSTR_BYTES
        # a transition is sequential when the next block starts exactly where
        # this one ends, with no run separator in between
        seq = np.zeros(ids.shape[0], dtype=bool)
        if ids.shape[0] > 1:
            seq[:-1] = (ev_addr[1:] == ev_end[:-1]) & ((valid_idx[1:] - valid_idx[:-1]) == 1)
        if end < n_events and int(events[end]) != SEPARATOR:
            seq[-1] = int(addresses[int(events[end])]) == int(ev_end[-1])

        total = int(ev_size.sum())
        block_start = np.cumsum(ev_size) - ev_size
        offsets = np.arange(total, dtype=np.int64) - np.repeat(block_start, ev_size)
        addr = np.repeat(ev_addr, ev_size) + offsets * INSTR_BYTES
        last_of_block = np.zeros(total, dtype=bool)
        last_of_block[np.cumsum(ev_size) - 1] = True
        is_branch = last_of_block & np.repeat(branchy[ids], ev_size)
        # any non-sequential transition behaves as a taken branch — including
        # a fall-through whose successor the layout moved away (the layout
        # step would insert an unconditional jump there)
        non_seq = last_of_block & np.repeat(~seq, ev_size)
        yield _Chunk(addr=addr, is_branch=is_branch | non_seq, is_taken=non_seq, last=end >= n_events)
        start = end


def _fetch_lengths(chunk: _Chunk, line_instrs: int) -> np.ndarray:
    """Vectorized SEQ.3 fetch length from every instruction position.

    All distance computations are O(n) passes (reverse minimum-accumulate
    for the next taken branch, an exclusive prefix count for the third
    branch) — no per-position binary searches.
    """
    n = chunk.addr.shape[0]
    idx = np.arange(n, dtype=np.int64)

    # distance to the next taken branch (inclusive): positions past the
    # last taken branch run to the end of the chunk
    cand = np.where(chunk.is_taken, idx, n - 1)
    next_taken = np.minimum.accumulate(cand[::-1])[::-1]
    until_taken = next_taken - idx + 1

    # distance to the third branch (inclusive): the number of branches
    # strictly before each position is an exclusive prefix sum
    branch_pos = np.flatnonzero(chunk.is_branch)
    until_third = np.full(n, n, dtype=np.int64)
    if branch_pos.size:
        before = np.cumsum(chunk.is_branch, dtype=np.int64) - chunk.is_branch
        third = before + BRANCH_LIMIT - 1
        has_third = third < branch_pos.size
        until_third[has_third] = branch_pos[third[has_third]] - idx[has_third] + 1

    # two consecutive cache lines from the fetch address
    cap = 2 * line_instrs - (chunk.addr // INSTR_BYTES) % line_instrs

    length = np.minimum(np.minimum(until_taken, until_third), np.minimum(cap, FETCH_WIDTH))
    return np.maximum(length, 1)


#: Lockstep rounds after which the few remaining long segments finish scalar.
_ORBIT_SCALAR_CUTOFF_ROUNDS = 64
_ORBIT_SCALAR_CUTOFF_ACTIVE = 32


def _orbit_starts_scalar(lengths: np.ndarray) -> np.ndarray:
    """Reference orbit of 0 under ``p -> p + lengths[p]`` (scalar walk)."""
    n = lengths.shape[0]
    length_list = lengths.tolist()
    starts: list[int] = []
    append = starts.append
    p = 0
    while p < n:
        append(p)
        p += length_list[p]
    return np.asarray(starts, dtype=np.int64)


def _orbit_starts(lengths: np.ndarray, is_taken: np.ndarray) -> np.ndarray:
    """Orbit of 0 under ``p -> p + lengths[p]``, vectorized.

    Requires the SEQ.3 invariant that a fetch never crosses a taken branch
    (``lengths[p] <= next_taken(p) - p + 1``, which :func:`_fetch_lengths`
    guarantees). The orbit then decomposes into independent segments
    delimited by taken branches: each segment's first fetch starts right
    after the previous taken branch. All segments are walked in lockstep —
    one gather per fetch — and the visited mask yields the starts already
    in stream order. Rare pathological segments (thousands of short
    fetches back to back) are finished with the scalar walk.
    """
    n = lengths.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    taken_pos = np.flatnonzero(is_taken)
    seg_start = np.concatenate(([0], taken_pos + 1))
    seg_end = np.concatenate((taken_pos, [n - 1]))[: seg_start.size]
    alive = seg_start <= seg_end  # drop the empty tail when the last
    cur = seg_start[alive]  # instruction is a taken branch
    end = seg_end[alive]

    visited = np.zeros(n, dtype=bool)
    rounds = 0
    while cur.size:
        visited[cur] = True
        cur = cur + lengths[cur]
        keep = cur <= end
        if not keep.all():
            cur = cur[keep]
            end = end[keep]
        rounds += 1
        if rounds >= _ORBIT_SCALAR_CUTOFF_ROUNDS and cur.size <= _ORBIT_SCALAR_CUTOFF_ACTIVE:
            length_list = lengths.tolist()
            for p, e in zip(cur.tolist(), end.tolist()):
                while p <= e:
                    visited[p] = True
                    p += length_list[p]
            break
    return np.flatnonzero(visited)


def simulate_fetch(
    trace: BlockTrace,
    program: Program,
    layout: Layout,
    *,
    line_bytes: int = 32,
    chunk_events: int = _DEFAULT_CHUNK_EVENTS,
) -> FetchResult:
    """Run the SEQ.3 fetch unit over a trace under a layout."""
    line_instrs = line_bytes // INSTR_BYTES
    n_instructions = 0
    n_fetches = 0
    n_taken = 0
    line_chunks: list[np.ndarray] = []

    for chunk in instruction_chunks(trace, program, layout, chunk_events):
        n = chunk.addr.shape[0]
        n_instructions += n
        n_taken += int(chunk.is_taken.sum())
        lengths = _fetch_lengths(chunk, line_instrs)
        start_arr = _orbit_starts(lengths, chunk.is_taken)
        n_fetches += start_arr.shape[0]
        first_line = chunk.addr[start_arr] // line_bytes
        lines = np.empty(2 * start_arr.shape[0], dtype=np.int64)
        lines[0::2] = first_line
        lines[1::2] = first_line + 1
        line_chunks.append(lines)

    return FetchResult(
        layout_name=layout.name,
        n_instructions=n_instructions,
        n_fetches=n_fetches,
        n_taken=n_taken,
        line_chunks=line_chunks,
    )
