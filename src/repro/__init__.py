"""Software Trace Cache reproduction (Ramirez et al., ICPP 1999).

Subpackages:

* :mod:`repro.core` -- the STC layout algorithm (the paper's contribution)
* :mod:`repro.baselines` -- original, Pettis & Hansen, Torrellas layouts
* :mod:`repro.cfg` -- static program representation and layouts
* :mod:`repro.profiling` -- traces, profiles, workload characterization
* :mod:`repro.kernel` -- instrumentation and synthetic kernel bodies
* :mod:`repro.minidb` -- the relational engine substrate
* :mod:`repro.tpcd` -- TPC-D schema, data generator, the 17 queries
* :mod:`repro.simulators` -- SEQ.3 fetch unit, i-caches, trace cache
* :mod:`repro.experiments` -- per-table/figure reproduction harness

See README.md for a tour and DESIGN.md for the system inventory.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
