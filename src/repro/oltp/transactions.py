"""The three OLTP transactions: New-Order, Payment, Order-Status.

Each transaction is driven through the executor (index scans / projections)
plus the engine's write paths (:meth:`Table.insert`,
:meth:`Table.update`), all instrumented, so a traced transaction mix
produces the same kind of dynamic basic-block trace as the DSS queries —
just with a very different path profile (short index-heavy transactions,
write amplification through index maintenance).
"""

from __future__ import annotations

import numpy as np

from repro.minidb.engine import Database
from repro.minidb.executor import IndexScan, Limit, Project, col
from repro.oltp.schema import (
    CUSTOMERS_PER_DISTRICT,
    DISTRICTS_PER_WAREHOUSE,
    N_ITEMS,
    customer_key,
    district_key,
    order_key,
    stock_key,
)

__all__ = ["new_order", "payment", "order_status", "run_mix"]


def _fetch_one(db: Database, table: str, column: str, key, index_kind: str):
    """Point lookup through the executor: (row, tid is implicit)."""
    rows = db.run(Limit(IndexScan(db.table(table), column, index_kind=index_kind, eq=key), 1))
    if not rows:
        raise KeyError(f"{table}.{column} = {key!r} not found")
    return rows[0]


def _tid_of(db: Database, table: str, column: str, key, index_kind: str):
    tids = db.table(table).index_on(column, index_kind).search(key)
    if not tids:
        raise KeyError(f"{table}.{column} = {key!r} not found")
    return tids[0]


def new_order(
    db: Database,
    w_id: int,
    d_id: int,
    c_id: int,
    items: list[tuple[int, int]],
    *,
    index_kind: str = "btree",
    entry_date: int = 0,
) -> int:
    """Place an order of ``items`` = [(item id, quantity)]; returns o_id."""
    district_table = db.table("district")
    d_tid = _tid_of(db, "district", "d_key", district_key(w_id, d_id), index_kind)
    district = district_table.fetch(d_tid)
    o_id = district[4]
    district_table.update(d_tid, district[:4] + (o_id + 1,) + district[5:])

    total = 0.0
    stock_table = db.table("stock")
    for number, (i_id, qty) in enumerate(items, start=1):
        item = _fetch_one(db, "item", "i_id", i_id, index_kind)
        s_tid = _tid_of(db, "stock", "s_key", stock_key(i_id, w_id), index_kind)
        stock = stock_table.fetch(s_tid)
        quantity = stock[3] - qty if stock[3] >= qty + 10 else stock[3] - qty + 91
        stock_table.update(
            s_tid, stock[:3] + (quantity, stock[4] + qty, stock[5] + 1)
        )
        amount = round(item[2] * qty, 2)
        total += amount
        db.table("order_line").insert(
            (order_key(w_id, d_id, o_id), number, i_id, qty, amount)
        )
    db.table("oorder").insert(
        (order_key(w_id, d_id, o_id), o_id, d_id, w_id, c_id, entry_date, len(items))
    )
    return o_id


def payment(
    db: Database,
    w_id: int,
    d_id: int,
    c_id: int,
    amount: float,
    *,
    index_kind: str = "btree",
    date: int = 0,
) -> float:
    """Record a customer payment; returns the new balance."""
    wh_table = db.table("warehouse")
    w_tid = _tid_of(db, "warehouse", "w_id", w_id, index_kind)
    warehouse = wh_table.fetch(w_tid)
    wh_table.update(w_tid, warehouse[:3] + (warehouse[3] + amount,))

    district_table = db.table("district")
    d_tid = _tid_of(db, "district", "d_key", district_key(w_id, d_id), index_kind)
    district = district_table.fetch(d_tid)
    district_table.update(d_tid, district[:5] + (district[5] + amount,))

    cust_table = db.table("tpcc_customer")
    c_key = customer_key(w_id, d_id, c_id)
    c_tid = _tid_of(db, "tpcc_customer", "c_key", c_key, index_kind)
    customer = cust_table.fetch(c_tid)
    balance = customer[5] - amount
    cust_table.update(
        c_tid,
        customer[:5] + (balance, customer[6] + amount, customer[7] + 1),
    )
    db.table("history").insert((c_key, date, amount))
    return balance


def order_status(
    db: Database,
    w_id: int,
    d_id: int,
    c_id: int,
    *,
    index_kind: str = "btree",
):
    """Read a customer's balance and their most recent order's lines."""
    customer = _fetch_one(db, "tpcc_customer", "c_key", customer_key(w_id, d_id, c_id), index_kind)
    orders = db.run(
        Project(
            IndexScan(db.table("oorder"), "o_c_id", index_kind=index_kind, eq=c_id),
            [(col("o_key"), "o_key"), (col("o_id"), "o_id"), (col("o_ol_cnt"), "cnt")],
        )
    )
    if not orders:
        return customer[5], []
    last = max(orders, key=lambda r: r[1])
    lines = db.run(
        IndexScan(db.table("order_line"), "ol_o_key", index_kind=index_kind, eq=last[0])
    )
    return customer[5], lines


def run_mix(
    db: Database,
    n_transactions: int,
    *,
    warehouses: int,
    seed: int = 29,
    index_kind: str = "btree",
    customers_per_district: int = CUSTOMERS_PER_DISTRICT,
    n_items: int = N_ITEMS,
) -> dict[str, int]:
    """Run the TPC-C-style mix (45% New-Order / 43% Payment / 12% Status)."""
    rng = np.random.default_rng(seed)
    executed = {"new_order": 0, "payment": 0, "order_status": 0}
    for _ in range(n_transactions):
        w = int(rng.integers(1, warehouses + 1))
        d = int(rng.integers(1, DISTRICTS_PER_WAREHOUSE + 1))
        c = int(rng.integers(1, customers_per_district + 1))
        u = rng.random()
        if u < 0.45:
            n_lines = int(rng.integers(3, 9))
            items = [
                (int(rng.integers(1, n_items + 1)), int(rng.integers(1, 11)))
                for _ in range(n_lines)
            ]
            new_order(db, w, d, c, items, index_kind=index_kind)
            executed["new_order"] += 1
        elif u < 0.88:
            payment(db, w, d, c, round(float(rng.uniform(1.0, 500.0)), 2), index_kind=index_kind)
            executed["payment"] += 1
        else:
            order_status(db, w, d, c, index_kind=index_kind)
            executed["order_status"] += 1
    return executed
