"""TPC-C-style schema (the OLTP counterpart of :mod:`repro.tpcd.schema`).

Cardinalities scale with the warehouse count, as in TPC-C: 10 districts
per warehouse, 300 customers per district (scaled down from 3000 to keep
in-memory runs snappy), 1000 items, 1 stock row per (item, warehouse).
Only balances and counters are updated by transactions, so all indexed
columns are immutable — matching :meth:`repro.minidb.catalog.Table.update`'s
in-place contract.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.minidb.tuples import Column, ColumnType

__all__ = ["OLTPTableSpec", "TPCC_TABLES", "DISTRICTS_PER_WAREHOUSE", "CUSTOMERS_PER_DISTRICT", "N_ITEMS"]

I, F, S, D = ColumnType.INT, ColumnType.FLOAT, ColumnType.STR, ColumnType.DATE

DISTRICTS_PER_WAREHOUSE = 10
CUSTOMERS_PER_DISTRICT = 300
N_ITEMS = 1000


@dataclass(frozen=True)
class OLTPTableSpec:
    name: str
    columns: tuple[Column, ...]
    unique_keys: tuple[str, ...] = ()
    foreign_keys: tuple[str, ...] = ()


def _cols(*pairs) -> tuple[Column, ...]:
    return tuple(Column(n, t) for n, t in pairs)


TPCC_TABLES: dict[str, OLTPTableSpec] = {
    spec.name: spec
    for spec in (
        OLTPTableSpec(
            "item",
            _cols(("i_id", I), ("i_name", S), ("i_price", F)),
            unique_keys=("i_id",),
        ),
        OLTPTableSpec(
            "warehouse",
            _cols(("w_id", I), ("w_name", S), ("w_tax", F), ("w_ytd", F)),
            unique_keys=("w_id",),
        ),
        OLTPTableSpec(
            "district",
            _cols(
                ("d_key", I),  # w_id * 100 + d_id: single-column composite key
                ("d_id", I),
                ("d_w_id", I),
                ("d_tax", F),
                ("d_next_o_id", I),
                ("d_ytd", F),
            ),
            unique_keys=("d_key",),
            foreign_keys=("d_w_id",),
        ),
        OLTPTableSpec(
            "tpcc_customer",
            _cols(
                ("c_key", I),  # (w_id * 100 + d_id) * 10000 + c_id
                ("c_id", I),
                ("c_d_id", I),
                ("c_w_id", I),
                ("c_name", S),
                ("c_balance", F),
                ("c_ytd_payment", F),
                ("c_payment_cnt", I),
            ),
            unique_keys=("c_key",),
            foreign_keys=("c_w_id",),
        ),
        OLTPTableSpec(
            "stock",
            _cols(
                ("s_key", I),  # i_id * 1000 + w_id
                ("s_i_id", I),
                ("s_w_id", I),
                ("s_quantity", I),
                ("s_ytd", I),
                ("s_order_cnt", I),
            ),
            unique_keys=("s_key",),
            foreign_keys=("s_i_id",),
        ),
        OLTPTableSpec(
            "oorder",
            _cols(
                ("o_key", I),  # (w_id * 100 + d_id) * 1000000 + o_id
                ("o_id", I),
                ("o_d_id", I),
                ("o_w_id", I),
                ("o_c_id", I),
                ("o_entry_d", D),
                ("o_ol_cnt", I),
            ),
            unique_keys=("o_key",),
            foreign_keys=("o_c_id",),
        ),
        OLTPTableSpec(
            "order_line",
            _cols(
                ("ol_o_key", I),
                ("ol_number", I),
                ("ol_i_id", I),
                ("ol_qty", I),
                ("ol_amount", F),
            ),
            foreign_keys=("ol_o_key",),
        ),
        OLTPTableSpec(
            "history",
            _cols(("h_c_key", I), ("h_date", D), ("h_amount", F)),
            foreign_keys=("h_c_key",),
        ),
    )
}


def district_key(w_id: int, d_id: int) -> int:
    return w_id * 100 + d_id


def customer_key(w_id: int, d_id: int, c_id: int) -> int:
    return district_key(w_id, d_id) * 10_000 + c_id


def stock_key(i_id: int, w_id: int) -> int:
    return i_id * 1000 + w_id


def order_key(w_id: int, d_id: int, o_id: int) -> int:
    return district_key(w_id, d_id) * 1_000_000 + o_id
