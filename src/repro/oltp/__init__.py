"""OLTP workload — the paper's Section 8 future-work direction.

"In the near future ... we will examine the effect of our technique on the
IPC for a wider range of applications like OLTP workloads." This package
implements that study: a TPC-C-style transactional workload (New-Order,
Payment, Order-Status over warehouse/district/customer/stock tables) that
runs on minidb alongside the TPC-D schema, so one static image serves both
workloads and cross-training experiments are possible (DSS-trained layout
evaluated on OLTP execution, and vice versa).

Unlike the read-only DSS queries, OLTP transactions exercise the engine's
write paths (inserts with index maintenance, in-place updates), which
appear in the traces like every other kernel routine.
"""

from repro.oltp.schema import TPCC_TABLES
from repro.oltp.gen import populate_oltp
from repro.oltp.transactions import new_order, payment, order_status, run_mix
from repro.oltp.workload import OLTPWorkload, build_combined_database

__all__ = [
    "TPCC_TABLES",
    "populate_oltp",
    "new_order",
    "payment",
    "order_status",
    "run_mix",
    "OLTPWorkload",
    "build_combined_database",
]
