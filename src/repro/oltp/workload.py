"""Combined DSS + OLTP workload for cross-training experiments.

One Database hosts both schemas, so both workloads execute the same static
image (one "binary"), enabling the question the paper raises: does a layout
trained on the DSS profile still help an OLTP execution?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.model import ColdCodeConfig, KernelModel
from repro.minidb.engine import Database
from repro.oltp.gen import populate_oltp
from repro.oltp.transactions import run_mix
from repro.profiling.trace import BlockTrace
from repro.tpcd.dbgen import generate_table
from repro.tpcd.schema import TPCD_TABLES
from repro.tpcd.workload import TRAINING_QUERIES, capture_trace

__all__ = ["build_combined_database", "OLTPWorkload"]


def build_combined_database(
    dss_scale: float = 0.002,
    warehouses: int = 2,
    *,
    seed: int = 7,
    buffer_pages: int = 256,
) -> Database:
    """TPC-D and TPC-C-style tables in one Database (shared kernel image)."""
    db = Database("mixed", buffer_pages=buffer_pages)
    for name, spec in TPCD_TABLES.items():
        table = db.create_table(name, spec.columns)
        for kind in ("btree", "hash"):
            for column in spec.unique_keys:
                table.create_index(column, kind, unique=True)
            for column in spec.foreign_keys:
                table.create_index(column, kind)
        db.load(name, generate_table(name, dss_scale, seed))
    populate_oltp(db, warehouses, seed=seed + 1)
    return db


@dataclass
class OLTPWorkload:
    """Combined setup: one image, a DSS training trace, an OLTP test trace."""

    db: Database
    model: KernelModel
    dss_training_trace: BlockTrace
    oltp_trace: BlockTrace

    @classmethod
    def build(
        cls,
        dss_scale: float = 0.002,
        warehouses: int = 2,
        n_transactions: int = 400,
        *,
        seed: int = 7,
        kernel_seed: int = 2029,
        cold: ColdCodeConfig | None = None,
    ) -> "OLTPWorkload":
        db = build_combined_database(dss_scale, warehouses, seed=seed)
        model = db.kernel_model(seed=kernel_seed, cold=cold)
        dss_trace = capture_trace(db, model, TRAINING_QUERIES, ("btree",))
        tracer = model.tracer()
        with tracer:
            run_mix(db, n_transactions, warehouses=warehouses, seed=seed + 2)
        oltp_trace = tracer.take_trace()
        return cls(db=db, model=model, dss_training_trace=dss_trace, oltp_trace=oltp_trace)

    @property
    def program(self):
        return self.model.program
