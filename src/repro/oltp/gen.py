"""OLTP data generator: deterministic initial population."""

from __future__ import annotations

from repro.minidb.engine import Database
from repro.oltp.schema import (
    CUSTOMERS_PER_DISTRICT,
    DISTRICTS_PER_WAREHOUSE,
    N_ITEMS,
    TPCC_TABLES,
    customer_key,
    district_key,
    stock_key,
)
from repro.util.rng import stream

__all__ = ["populate_oltp"]


def populate_oltp(
    db: Database,
    warehouses: int = 2,
    *,
    seed: int = 13,
    index_kinds: tuple[str, ...] = ("btree", "hash"),
    customers_per_district: int = CUSTOMERS_PER_DISTRICT,
    n_items: int = N_ITEMS,
) -> dict[str, int]:
    """Create and load the TPC-C-style tables; returns row counts.

    Tables may coexist with the TPC-D schema in the same Database (names
    are disjoint), which is what the cross-workload experiments rely on.
    """
    if warehouses < 1:
        raise ValueError("need at least one warehouse")
    rng = stream(seed, "oltp")
    counts: dict[str, int] = {}
    for name, spec in TPCC_TABLES.items():
        table = db.create_table(name, spec.columns)
        for kind in index_kinds:
            for column in spec.unique_keys:
                table.create_index(column, kind, unique=True)
            for column in spec.foreign_keys:
                table.create_index(column, kind)

    counts["item"] = db.load(
        "item",
        ((i, f"item-{i:05d}", round(float(rng.uniform(1.0, 100.0)), 2)) for i in range(1, n_items + 1)),
    )
    counts["warehouse"] = db.load(
        "warehouse",
        ((w, f"wh-{w}", round(float(rng.uniform(0.0, 0.2)), 4), 0.0) for w in range(1, warehouses + 1)),
    )
    counts["district"] = db.load(
        "district",
        (
            (district_key(w, d), d, w, round(float(rng.uniform(0.0, 0.2)), 4), 1, 0.0)
            for w in range(1, warehouses + 1)
            for d in range(1, DISTRICTS_PER_WAREHOUSE + 1)
        ),
    )
    counts["tpcc_customer"] = db.load(
        "tpcc_customer",
        (
            (customer_key(w, d, c), c, d, w, f"cust-{w}-{d}-{c}", 0.0, 0.0, 0)
            for w in range(1, warehouses + 1)
            for d in range(1, DISTRICTS_PER_WAREHOUSE + 1)
            for c in range(1, customers_per_district + 1)
        ),
    )
    counts["stock"] = db.load(
        "stock",
        (
            (stock_key(i, w), i, w, int(rng.integers(10, 101)), 0, 0)
            for i in range(1, n_items + 1)
            for w in range(1, warehouses + 1)
        ),
    )
    # order tables start empty: transactions create them
    counts["oorder"] = 0
    counts["order_line"] = 0
    counts["history"] = 0
    return counts
