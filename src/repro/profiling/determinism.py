"""Control-flow determinism analysis (paper Section 4.2, Table 2).

Basic blocks are classified by how they end (:class:`~repro.cfg.BlockKind`);
for each kind the static share, the dynamic (execution-weighted) share, and
the fraction of dynamic executions whose next block is "fixed" are reported.

Following the paper, fall-through blocks always continue at the next block,
and call/return blocks "usually have a fixed target", so they count as
predictable; a branch block is predictable when it behaves in a fixed way —
its dominant successor is taken with probability at least
``fixed_threshold``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cfg.blocks import BlockKind
from repro.cfg.program import Program
from repro.cfg.weighted import WeightedCFG

__all__ = ["BlockKindMix", "kind_mix", "transition_determinism"]


@dataclass(frozen=True)
class BlockKindMix:
    """Per-kind shares for Table 2 (values are fractions in ``[0, 1]``)."""

    static: dict[BlockKind, float]
    dynamic: dict[BlockKind, float]
    predictable: dict[BlockKind, float]

    @property
    def overall_predictable(self) -> float:
        """Fraction of all dynamic block executions with a fixed next block."""
        return sum(self.dynamic[k] * self.predictable[k] for k in BlockKind)


def kind_mix(
    program: Program,
    cfg: WeightedCFG,
    *,
    fixed_threshold: float = 0.95,
    executed_only: bool = True,
) -> BlockKindMix:
    """Compute the Table 2 statistics from a profile.

    ``executed_only`` restricts the static mix to blocks that were executed
    at least once, matching the paper's methodology (its static column sums
    the *executed* binary's blocks; never-executed code has no observable
    behaviour to classify).
    """
    kinds = program.block_kind
    counts = cfg.block_count
    if executed_only:
        mask = counts > 0
    else:
        mask = np.ones(program.n_blocks, dtype=bool)

    static_total = int(mask.sum())
    dynamic_total = int(counts[mask].sum())

    static: dict[BlockKind, float] = {}
    dynamic: dict[BlockKind, float] = {}
    predictable: dict[BlockKind, float] = {}
    for kind in BlockKind:
        sel = mask & (kinds == kind)
        static[kind] = float(sel.sum() / static_total) if static_total else 0.0
        kind_dynamic = int(counts[sel].sum())
        dynamic[kind] = float(kind_dynamic / dynamic_total) if dynamic_total else 0.0
        if kind == BlockKind.BRANCH:
            predictable[kind] = _fixed_branch_fraction(cfg, np.flatnonzero(sel), fixed_threshold)
        else:
            # Fall-through blocks always continue sequentially; calls and
            # returns have fixed targets per call site (paper Section 4.2).
            predictable[kind] = 1.0 if kind_dynamic else 0.0
    return BlockKindMix(static=static, dynamic=dynamic, predictable=predictable)


def _fixed_branch_fraction(cfg: WeightedCFG, branch_blocks: np.ndarray, threshold: float) -> float:
    """Execution-weighted fraction of branch blocks that behave in a fixed way."""
    fixed = 0
    total = 0
    for block in branch_blocks:
        block = int(block)
        executions = int(cfg.block_count[block])
        if executions == 0:
            continue
        total += executions
        top = cfg.hottest_successor(block)
        out = cfg.out_weight(block)
        if top is not None and out and top[1] / out >= threshold:
            fixed += executions
    return fixed / total if total else 0.0


def transition_determinism(cfg: WeightedCFG, *, threshold: float = 0.95) -> float:
    """Fraction of dynamic transitions leaving blocks with a dominant successor.

    This is the paper's summary claim "overall, 80 % of the basic block
    transitions are predictable" computed directly over all executed blocks.
    """
    fixed = 0
    total = 0
    for block in cfg.executed_blocks():
        block = int(block)
        out = cfg.out_weight(block)
        if out == 0:
            continue
        total += out
        top = cfg.hottest_successor(block)
        if top is not None and top[1] / out >= threshold:
            fixed += out
    return fixed / total if total else 0.0
