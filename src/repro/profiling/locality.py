"""Reference-locality analyses (paper Section 4.1, Figure 2).

Two views of locality:

* *Concentration*: how many static basic blocks capture a given fraction of
  the dynamic references (Figure 2: the 1000 most popular blocks capture
  ~90 %, 2500 capture ~99 %).
* *Temporal locality*: the number of instructions executed between two
  consecutive invocations of the same basic block (the paper reports that
  the blocks concentrating 75 % of references have a 33 % probability of
  re-execution within 250 instructions and 19 % within 100).
"""

from __future__ import annotations

import numpy as np

from repro.profiling.trace import BlockTrace

__all__ = [
    "cumulative_reference_curve",
    "blocks_for_coverage",
    "hottest_blocks_for_coverage",
    "reuse_distances",
    "fraction_reexecuted_within",
]


def cumulative_reference_curve(block_count: np.ndarray) -> np.ndarray:
    """Cumulative fraction of dynamic references vs. number of static blocks.

    Element ``i`` is the fraction of all references captured by the ``i+1``
    most popular blocks. Blocks with zero count are excluded (they capture
    nothing and would only flatten the tail).
    """
    counts = np.sort(block_count[block_count > 0])[::-1].astype(np.float64)
    total = counts.sum()
    if total == 0:
        return np.empty(0, dtype=np.float64)
    return np.cumsum(counts) / total


def blocks_for_coverage(block_count: np.ndarray, fraction: float) -> int:
    """Smallest number of most-popular blocks capturing ``fraction`` of references."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    curve = cumulative_reference_curve(block_count)
    if curve.size == 0:
        return 0
    return int(np.searchsorted(curve, fraction - 1e-12) + 1)


def hottest_blocks_for_coverage(block_count: np.ndarray, fraction: float) -> np.ndarray:
    """Ids of the most-popular blocks that together capture ``fraction`` of references."""
    n = blocks_for_coverage(block_count, fraction)
    order = np.argsort(block_count, kind="stable")[::-1]
    return order[:n]


def reuse_distances(
    trace: BlockTrace,
    block_size: np.ndarray,
    subset: np.ndarray | None = None,
) -> np.ndarray:
    """Instruction distances between consecutive executions of the same block.

    Returns one distance per re-execution event (not per block). When
    ``subset`` is given, only re-executions of those blocks are reported.
    Vectorized: events are grouped per block with a stable argsort, and
    distances are differences of instruction positions within each group.
    """
    ids = trace.block_ids()
    if ids.size < 2:
        return np.empty(0, dtype=np.int64)
    pos = trace.instruction_positions(block_size)
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    sorted_pos = pos[order]
    same = sorted_ids[1:] == sorted_ids[:-1]
    gaps = sorted_pos[1:] - sorted_pos[:-1]
    if subset is not None:
        keep = np.zeros(int(block_size.shape[0]), dtype=bool)
        keep[np.asarray(subset)] = True
        same = same & keep[sorted_ids[1:]]
    return gaps[same]


def fraction_reexecuted_within(distances: np.ndarray, limit: int) -> float:
    """Fraction of re-executions occurring within ``limit`` instructions."""
    if distances.size == 0:
        return 0.0
    return float((distances < limit).mean())
