"""Compact, chunked, on-disk block traces.

A stored trace is the streaming twin of :class:`~repro.profiling.trace.
BlockTrace`: the same ``int32`` event stream (block ids plus ``SEPARATOR``
sentinels between runs), but written incrementally by the tracer and read
back window by window, so neither producer nor consumer ever holds more
than one chunk in memory.

File layout (all integers little-endian)::

    header    magic ``RTRC``, format version, nominal chunk size,
              total/valid event counts, directory offset, CRC-32
    chunks    back-to-back compressed chunks of exactly ``chunk_events``
              events (the last chunk may be shorter)
    directory one fixed-size record per chunk — byte offset, compressed
              size, event count, CRC-32 of the compressed bytes, encoding
              flags — followed by a CRC-32 of the directory itself

Each chunk is delta-encoded (first event absolute, then successive
differences — block ids emitted back to back are usually close, so the
deltas are small and zlib squeezes them hard) and deflate-compressed. A
chunk whose deltas overflow ``int32`` falls back to raw encoding, flagged
per chunk in the directory.

Readers memory-map the file and decompress only the chunks they touch.
Every structural problem — bad magic, unknown version, truncated file,
CRC mismatch, short chunk — raises :class:`TraceFormatError`, which cache
loaders treat as corruption (rebuild) rather than a crash.

Writes are atomic: :class:`TraceWriter` streams into ``<path>.tmp`` and
renames over ``path`` only when ``close()`` has written a complete,
self-consistent file, so a killed writer can never leave a half-written
trace behind at the final path.
"""

from __future__ import annotations

import mmap
import os
import struct
import weakref
import zlib
from collections import deque
from collections.abc import Iterator
from pathlib import Path

import numpy as np

from repro.profiling.trace import SEPARATOR, BlockTrace

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TraceFormatError",
    "TraceStore",
    "TraceWriter",
    "write_trace",
]

#: On-disk format version; readers reject anything else.
TRACE_FORMAT_VERSION = 1

#: Nominal events per stored chunk. Matches the simulators' default
#: expansion window, so streamed reads pass stored chunks through without
#: re-slicing.
DEFAULT_CHUNK_EVENTS = 2_000_000

_MAGIC = b"RTRC"
#: magic, version, reserved, chunk_events, n_events, n_valid, dir_offset, crc
_HEADER = struct.Struct("<4sHHIQQQI")
#: offset, compressed size, event count, crc32, flags
_RECORD = struct.Struct("<QIIII")
_DIR_COUNT = struct.Struct("<I")
_DIR_CRC = struct.Struct("<I")

_FLAG_DELTA = 1


class TraceFormatError(RuntimeError):
    """The trace file is truncated, corrupt, or of an unknown version."""


def _encode_chunk(events: np.ndarray) -> tuple[bytes, int]:
    """Compress one chunk; returns (payload, flags)."""
    deltas = np.diff(events.astype(np.int64), prepend=np.int64(0))
    if deltas.size and (deltas.max() > np.iinfo(np.int32).max or deltas.min() < np.iinfo(np.int32).min):
        return zlib.compress(np.ascontiguousarray(events, dtype=np.int32).tobytes()), 0
    return zlib.compress(deltas.astype(np.int32).tobytes()), _FLAG_DELTA


def _decode_chunk(payload: bytes, n_events: int, flags: int) -> np.ndarray:
    try:
        raw = zlib.decompress(payload)
    except zlib.error as exc:
        raise TraceFormatError(f"undecompressable trace chunk: {exc}") from exc
    arr = np.frombuffer(raw, dtype=np.int32)
    if arr.shape[0] != n_events:
        raise TraceFormatError(
            f"trace chunk decoded to {arr.shape[0]} events, directory says {n_events}"
        )
    if flags & _FLAG_DELTA:
        arr = np.cumsum(arr, dtype=np.int64).astype(np.int32)
    arr.setflags(write=False)
    return arr


class TraceWriter:
    """Streams an event sequence into a stored trace, chunk by chunk.

    The run/separator protocol mirrors :meth:`BlockTrace.concatenate`:
    callers push events with :meth:`append_events` and close each logical
    run with :meth:`end_run`; a ``SEPARATOR`` is inserted exactly between
    non-empty runs, never leading or trailing.
    """

    def __init__(self, path: Path | str, chunk_events: int = DEFAULT_CHUNK_EVENTS) -> None:
        if chunk_events <= 0:
            raise ValueError("chunk_events must be positive")
        self._path = Path(path)
        self._tmp = self._path.with_name(self._path.name + ".tmp")
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self._tmp, "wb")
        self._fh.write(b"\0" * _HEADER.size)  # placeholder; rewritten on close
        self._chunk_events = chunk_events
        self._pending: deque[np.ndarray] = deque()
        self._pending_n = 0
        self._records: list[tuple[int, int, int, int, int]] = []
        self._n_events = 0
        self._n_valid = 0
        self._offset = _HEADER.size
        self._any_prev_run = False
        self._run_events = 0
        self._closed = False

    # -- run protocol ----------------------------------------------------

    def append_events(self, events: np.ndarray) -> None:
        """Append events to the current run (empty arrays are no-ops)."""
        events = np.asarray(events, dtype=np.int32)
        if events.size == 0:
            return
        if self._run_events == 0 and self._any_prev_run:
            self._push(np.asarray([SEPARATOR], dtype=np.int32))
        self._run_events += int(events.size)
        self._push(events)

    def end_run(self) -> None:
        """Close the current run; the next events start a new segment."""
        if self._run_events:
            self._any_prev_run = True
            self._run_events = 0

    # -- chunk machinery -------------------------------------------------

    def _push(self, events: np.ndarray) -> None:
        self._pending.append(events)
        self._pending_n += int(events.size)
        self._n_events += int(events.size)
        self._n_valid += int(np.count_nonzero(events != SEPARATOR))
        while self._pending_n >= self._chunk_events:
            self._emit(self._chunk_events)

    def _emit(self, take: int) -> None:
        parts: list[np.ndarray] = []
        need = take
        while need:
            head = self._pending[0]
            if head.shape[0] <= need:
                parts.append(head)
                self._pending.popleft()
                need -= head.shape[0]
            else:
                parts.append(head[:need])
                self._pending[0] = head[need:]
                need = 0
        self._pending_n -= take
        chunk = parts[0] if len(parts) == 1 else np.concatenate(parts)
        payload, flags = _encode_chunk(chunk)
        self._records.append((self._offset, len(payload), take, zlib.crc32(payload), flags))
        self._fh.write(payload)
        self._offset += len(payload)

    # -- finalization ----------------------------------------------------

    def close(self) -> "TraceStore":
        """Finish the file atomically and return a store over it."""
        if self._closed:
            raise RuntimeError("TraceWriter already closed")
        self.end_run()
        if self._pending_n:
            self._emit(self._pending_n)
        directory = bytearray(_DIR_COUNT.pack(len(self._records)))
        for record in self._records:
            directory += _RECORD.pack(*record)
        directory += _DIR_CRC.pack(zlib.crc32(bytes(directory)))
        dir_offset = self._offset
        self._fh.write(bytes(directory))
        head = _HEADER.pack(
            _MAGIC, TRACE_FORMAT_VERSION, 0, self._chunk_events,
            self._n_events, self._n_valid, dir_offset, 0,
        )
        head = head[:-4] + struct.pack("<I", zlib.crc32(head[:-4]))
        self._fh.seek(0)
        self._fh.write(head)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        os.replace(self._tmp, self._path)
        self._closed = True
        return TraceStore(self._path)

    def abort(self) -> None:
        """Discard the partial file (safe to call after a failure)."""
        if not self._closed:
            self._closed = True
            try:
                self._fh.close()
            finally:
                self._tmp.unlink(missing_ok=True)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is not None:
            self.abort()
        elif not self._closed:
            self.close()


def write_trace(trace: BlockTrace, path: Path | str,
                chunk_events: int = DEFAULT_CHUNK_EVENTS) -> "TraceStore":
    """Store an in-memory trace (keeps the event stream bit-identical)."""
    writer = TraceWriter(path, chunk_events)
    try:
        # the events already carry their separators: bypass the run protocol
        n = trace.events.shape[0]
        for start in range(0, n, chunk_events):
            writer._push(trace.events[start : start + chunk_events])
        return writer.close()
    except BaseException:
        writer.abort()
        raise


class TraceStore:
    """Read side of a stored trace; duck-types as a :class:`BlockTrace`.

    The streaming interface is :meth:`iter_events` — identical windows to
    ``BlockTrace.iter_events`` over the materialized stream, so simulators
    accept either kind of trace and produce bit-identical results. Any
    other ``BlockTrace`` attribute (``events``, ``block_ids``, …) is
    served by transparently materializing the full trace (weakly cached),
    which legacy/analysis paths may rely on but the streaming suite never
    touches for large traces.

    Stores pickle as just their path and re-open lazily, so a workload
    holding stored traces costs nothing to fan out to worker processes.
    """

    def __init__(self, path: Path | str) -> None:
        self._path = Path(path)
        self._records: list[tuple[int, int, int, int, int]] | None = None
        self._n_events = 0
        self._n_valid = 0
        self._chunk_events = DEFAULT_CHUNK_EVENTS
        self._materialized: weakref.ref[BlockTrace] | None = None

    @property
    def path(self) -> Path:
        return self._path

    # -- directory -------------------------------------------------------

    def _ensure(self) -> list[tuple[int, int, int, int, int]]:
        if self._records is not None:
            return self._records
        try:
            size = self._path.stat().st_size
            with open(self._path, "rb") as fh:
                head = fh.read(_HEADER.size)
                if len(head) < _HEADER.size:
                    raise TraceFormatError(f"{self._path}: truncated header")
                magic, version, _, chunk_events, n_events, n_valid, dir_offset, crc = (
                    _HEADER.unpack(head)
                )
                if magic != _MAGIC:
                    raise TraceFormatError(f"{self._path}: not a trace file")
                if crc != zlib.crc32(head[:-4]):
                    raise TraceFormatError(f"{self._path}: header CRC mismatch")
                if version != TRACE_FORMAT_VERSION:
                    raise TraceFormatError(
                        f"{self._path}: format version {version}, "
                        f"reader supports {TRACE_FORMAT_VERSION}"
                    )
                if dir_offset + _DIR_COUNT.size + _DIR_CRC.size > size:
                    raise TraceFormatError(f"{self._path}: truncated directory")
                fh.seek(dir_offset)
                directory = fh.read(size - dir_offset)
        except OSError as exc:
            raise TraceFormatError(f"{self._path}: unreadable trace file: {exc}") from exc
        (n_chunks,) = _DIR_COUNT.unpack_from(directory, 0)
        body_end = _DIR_COUNT.size + n_chunks * _RECORD.size
        if body_end + _DIR_CRC.size > len(directory):
            raise TraceFormatError(f"{self._path}: truncated directory")
        (dir_crc,) = _DIR_CRC.unpack_from(directory, body_end)
        if dir_crc != zlib.crc32(directory[:body_end]):
            raise TraceFormatError(f"{self._path}: directory CRC mismatch")
        records = [
            _RECORD.unpack_from(directory, _DIR_COUNT.size + i * _RECORD.size)
            for i in range(n_chunks)
        ]
        total = sum(r[2] for r in records)
        if total != n_events:
            raise TraceFormatError(
                f"{self._path}: directory events ({total}) != header events ({n_events})"
            )
        for offset, comp_size, _, _, _ in records:
            if offset + comp_size > dir_offset:
                raise TraceFormatError(f"{self._path}: chunk extends past the directory")
        self._records = records
        self._n_events = n_events
        self._n_valid = n_valid
        self._chunk_events = chunk_events or DEFAULT_CHUNK_EVENTS
        return records

    def verify(self, deep: bool = False) -> None:
        """Raise :class:`TraceFormatError` on any structural problem.

        ``deep=True`` additionally decompresses every chunk and checks its
        CRC; the default validates only the header and directory.
        """
        self._ensure()
        if deep:
            for _ in self._iter_stored():
                pass

    # -- streaming reads -------------------------------------------------

    def _iter_stored(
        self, start_event: int = 0, stop_event: int | None = None
    ) -> Iterator[np.ndarray]:
        """Decompress stored chunks, restricted to ``[start_event, stop_event)``.

        The directory's per-chunk event counts locate the overlapping
        chunks, so a slice near the end of a long trace never touches the
        chunks before it — shard workers pay only for their own span.
        """
        records = self._ensure()
        if not records:
            return
        stop = self._n_events if stop_event is None else min(stop_event, self._n_events)
        if start_event >= stop:
            return
        pos = 0
        with open(self._path, "rb") as fh:
            with mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ) as mm:
                for offset, comp_size, n_events, crc, flags in records:
                    lo, hi = pos, pos + n_events
                    pos = hi
                    if hi <= start_event:
                        continue
                    if lo >= stop:
                        break
                    payload = mm[offset : offset + comp_size]
                    if len(payload) != comp_size or zlib.crc32(payload) != crc:
                        raise TraceFormatError(f"{self._path}: chunk CRC mismatch")
                    arr = _decode_chunk(payload, n_events, flags)
                    a = start_event - lo if lo < start_event else 0
                    b = stop - lo if hi > stop else n_events
                    yield arr if a == 0 and b == n_events else arr[a:b]

    def iter_events(
        self,
        chunk_events: int | None = None,
        *,
        start_event: int = 0,
        stop_event: int | None = None,
    ) -> Iterator[tuple[np.ndarray, int | None]]:
        """Yield ``(window, next_event)`` in windows of ``chunk_events``.

        Windows partition the event stream exactly as slicing the
        materialized array would; ``next_event`` is the event just past
        the window (``None`` at end of trace), which the simulators need
        for their chunk-boundary sequentiality check. When the window
        size equals the stored chunk size (the default), stored chunks
        stream through without copying.

        ``start_event``/``stop_event`` restrict iteration to the event
        slice ``[start_event, stop_event)`` — the same contract as
        :meth:`BlockTrace.iter_events`: the final window's ``next_event``
        peeks one event past ``stop_event`` into the underlying stream,
        and only the stored chunks overlapping the slice are decompressed.
        """
        window = chunk_events or self._chunk_events
        if window <= 0:
            raise ValueError("chunk_events must be positive")
        self._ensure()
        total = self._n_events
        stop = total if stop_event is None else min(max(int(stop_event), 0), total)
        start = min(max(int(start_event), 0), stop)
        limit = stop - start
        if limit == 0:
            return
        # decode one event past the slice: the final window's boundary peek
        stored = self._iter_stored(start, min(stop + 1, total))
        buf: deque[np.ndarray] = deque()
        have = 0
        exhausted = False

        def pull() -> None:
            nonlocal have, exhausted
            try:
                arr = next(stored)
            except StopIteration:
                exhausted = True
                return
            if arr.shape[0]:
                buf.append(arr)
                have += arr.shape[0]

        emitted = 0
        while emitted < limit:
            take = min(window, limit - emitted)
            while have < take + 1 and not exhausted:
                pull()
            parts: list[np.ndarray] = []
            need = take
            while need:
                head = buf[0]
                if head.shape[0] <= need:
                    parts.append(head)
                    buf.popleft()
                    need -= head.shape[0]
                else:
                    parts.append(head[:need])
                    buf[0] = head[need:]
                    need = 0
            have -= take
            emitted += take
            out = parts[0] if len(parts) == 1 else np.concatenate(parts)
            yield out, (int(buf[0][0]) if have else None)

    # -- BlockTrace compatibility ----------------------------------------

    def materialize(self) -> BlockTrace:
        """The full in-memory trace (weakly cached across calls)."""
        trace = self._materialized() if self._materialized is not None else None
        if trace is None:
            records = self._ensure()
            if records:
                trace = BlockTrace(np.concatenate(list(self._iter_stored())))
            else:
                trace = BlockTrace(np.empty(0, dtype=np.int32))
            self._materialized = weakref.ref(trace)
        return trace

    @property
    def n_events(self) -> int:
        """Valid (non-separator) event count, from the header."""
        self._ensure()
        return self._n_valid

    def __len__(self) -> int:
        self._ensure()
        return self._n_events

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.materialize(), name)

    def __reduce__(self):
        return (TraceStore, (str(self._path),))

    def stats(self) -> dict:
        """On-disk footprint vs the raw int32 stream."""
        records = self._ensure()
        stored = self._path.stat().st_size
        raw = 4 * self._n_events
        return {
            "path": str(self._path),
            "bytes": stored,
            "raw_bytes": raw,
            "compression_ratio": raw / stored if stored else 0.0,
            "n_chunks": len(records),
            "chunk_events": self._chunk_events,
            "n_events": self._n_events,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceStore({str(self._path)!r})"
