"""Dynamic-trace capture and workload characterization.

Implements the paper's Section 4 analyses: basic-block execution counts and
transitions (the weighted CFG of Section 5), reference-locality curves
(Figure 2, Table 1) and control-flow determinism (Table 2).
"""

from repro.profiling.trace import SEPARATOR, BlockTrace
from repro.profiling.tracestore import (
    TRACE_FORMAT_VERSION,
    TraceFormatError,
    TraceStore,
    TraceWriter,
    write_trace,
)
from repro.profiling.profiler import profile_trace
from repro.profiling.locality import (
    cumulative_reference_curve,
    blocks_for_coverage,
    hottest_blocks_for_coverage,
    reuse_distances,
    fraction_reexecuted_within,
)
from repro.profiling.determinism import BlockKindMix, kind_mix, transition_determinism

__all__ = [
    "SEPARATOR",
    "BlockTrace",
    "TRACE_FORMAT_VERSION",
    "TraceFormatError",
    "TraceStore",
    "TraceWriter",
    "write_trace",
    "profile_trace",
    "cumulative_reference_curve",
    "blocks_for_coverage",
    "hottest_blocks_for_coverage",
    "reuse_distances",
    "fraction_reexecuted_within",
    "BlockKindMix",
    "kind_mix",
    "transition_determinism",
]
