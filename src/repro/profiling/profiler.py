"""Trace -> weighted control-flow graph (vectorized).

This is the instrumentation post-processing step of the paper's Section 4:
"counting the number of times each basic block is executed, and recording
all basic block transitions".
"""

from __future__ import annotations

import numpy as np

from repro.cfg.weighted import WeightedCFG
from repro.profiling.trace import SEPARATOR, BlockTrace

__all__ = ["profile_trace"]


def profile_trace(trace: BlockTrace, n_blocks: int) -> WeightedCFG:
    """Build the weighted CFG (node and edge counts) from a trace.

    Transitions across run separators are not recorded. The implementation
    is fully vectorized: edges are aggregated by packing ``(src, dst)`` into
    a single 64-bit key and running :func:`numpy.unique`.
    """
    events = trace.events
    counts = np.bincount(trace.block_ids(), minlength=n_blocks).astype(np.int64)
    if counts.shape[0] > n_blocks:
        raise ValueError("trace references blocks outside the program")

    cfg = WeightedCFG(n_blocks)
    cfg.block_count = counts

    if events.shape[0] >= 2:
        src = events[:-1].astype(np.int64)
        dst = events[1:].astype(np.int64)
        mask = (src != SEPARATOR) & (dst != SEPARATOR)
        keys = src[mask] * n_blocks + dst[mask]
        unique_keys, edge_counts = np.unique(keys, return_counts=True)
        for key, count in zip(unique_keys, edge_counts):
            cfg.add_transition(int(key // n_blocks), int(key % n_blocks), int(count))
    return cfg
