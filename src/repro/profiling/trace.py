"""Dynamic basic-block traces.

A :class:`BlockTrace` is the reproduction's stand-in for an ATOM-style
instruction trace: the sequence of executed basic-block ids, stored as a
NumPy ``int32`` array so the simulators can work vectorized. Independent
runs (e.g. separate queries) are concatenated with a ``SEPARATOR`` sentinel
so that no false transition is recorded across run boundaries.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["SEPARATOR", "BlockTrace"]

#: Sentinel event separating independent runs within one trace.
SEPARATOR = -1


class BlockTrace:
    """Immutable sequence of executed basic-block ids (plus run separators)."""

    __slots__ = ("events", "__weakref__")

    def __init__(self, events: np.ndarray | Sequence[int]) -> None:
        events = np.asarray(events, dtype=np.int32)
        if events.ndim != 1:
            raise ValueError("trace must be one-dimensional")
        if events.size and int(events.min()) < SEPARATOR:
            raise ValueError("negative block id in trace")
        self.events = events
        self.events.setflags(write=False)

    # -- construction ----------------------------------------------------

    @classmethod
    def concatenate(cls, traces: Iterable["BlockTrace"]) -> "BlockTrace":
        """Join traces with separators so no cross-run transition appears."""
        parts: list[np.ndarray] = []
        sep = np.asarray([SEPARATOR], dtype=np.int32)
        for trace in traces:
            if parts:
                parts.append(sep)
            parts.append(trace.events)
        if not parts:
            return cls(np.empty(0, dtype=np.int32))
        return cls(np.concatenate(parts))

    # -- basic queries ---------------------------------------------------

    def __len__(self) -> int:
        return int(self.events.shape[0])

    @property
    def valid(self) -> np.ndarray:
        """Boolean mask of real (non-separator) events."""
        return self.events != SEPARATOR

    @property
    def n_events(self) -> int:
        """Number of basic-block executions (separators excluded)."""
        return int(self.valid.sum())

    def block_ids(self) -> np.ndarray:
        """The executed block ids with separators removed."""
        return self.events[self.valid]

    def n_instructions(self, block_size: np.ndarray) -> int:
        """Dynamic instruction count given the program's block-size table."""
        ids = self.block_ids()
        return int(block_size[ids].astype(np.int64).sum()) if ids.size else 0

    def instruction_positions(self, block_size: np.ndarray) -> np.ndarray:
        """``int64`` start position (in instructions) of each *valid* event.

        Positions keep increasing across run separators: the runs execute
        back-to-back in one process, as in the paper's profiling runs.
        """
        ids = self.block_ids()
        sizes = block_size[ids].astype(np.int64)
        positions = np.zeros(ids.shape[0], dtype=np.int64)
        if ids.size > 1:
            np.cumsum(sizes[:-1], out=positions[1:])
        return positions

    def iter_events(
        self,
        chunk_events: int,
        *,
        start_event: int = 0,
        stop_event: int | None = None,
    ) -> Iterator[tuple[np.ndarray, int | None]]:
        """Yield ``(window, next_event)`` in windows of ``chunk_events``.

        ``next_event`` is the event just past the window (``None`` at end
        of trace); the simulators use it for their chunk-boundary
        sequentiality check. Stored traces
        (:class:`~repro.profiling.tracestore.TraceStore`) expose the same
        iterator, which is what lets the simulators stream either kind.

        ``start_event``/``stop_event`` restrict iteration to the event
        slice ``[start_event, stop_event)``; windows still fall at the
        same absolute offsets as a full iteration would place them when
        ``start_event`` is a multiple of ``chunk_events``, and the final
        window's ``next_event`` peeks past ``stop_event`` into the
        underlying stream — which is what makes shard-wise iteration
        splice together bit-identically to one full pass.
        """
        if chunk_events <= 0:
            raise ValueError("chunk_events must be positive")
        events = self.events
        n = events.shape[0]
        stop = n if stop_event is None else min(max(int(stop_event), 0), n)
        start = min(max(int(start_event), 0), stop)
        while start < stop:
            end = min(start + chunk_events, stop)
            yield events[start:end], (int(events[end]) if end < n else None)
            start = end

    def segments(self) -> Iterator[np.ndarray]:
        """Yield each separator-delimited run as an array of block ids."""
        bounds = np.flatnonzero(self.events == SEPARATOR)
        start = 0
        for b in bounds:
            yield self.events[start:b]
            start = int(b) + 1
        yield self.events[start:]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockTrace(n_events={self.n_events}, len={len(self)})"
