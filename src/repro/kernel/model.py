"""Kernel model assembly: registry + bodies + cold code -> static Program.

The :class:`KernelModel` is the reproduction's "compiled binary": it turns a
registry snapshot into body models and lays them out — together with
generated never-executed cold procedures (parser, optimizer, utility code
that DSS queries never touch) — as a :class:`~repro.cfg.Program` in a
realistic module-grouped link order. It also compiles the per-routine
walker tables the tracer's hot path uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cfg.program import Program, ProgramBuilder
from repro.kernel.body import BodyModel, generate_body
from repro.kernel.registry import Registry, RoutineSpec
from repro.kernel.tracer import KernelTracer
from repro.util.rng import stream

__all__ = ["ColdCodeConfig", "KernelModel"]

#: Link order of DBMS modules (Figure 1's layering plus the support modules
#: every RDBMS binary carries). Hot minidb routines use a subset of these
#: module names; cold procedures fill in the rest.
MODULE_LINK_ORDER = (
    "main",
    "parser",
    "optimizer",
    "rewrite",
    "executor",
    "access",
    "buffer",
    "storage",
    "catalog",
    "utility",
)

#: Modules that never run during plan execution (cold-only).
COLD_ONLY_MODULES = ("main", "parser", "optimizer", "rewrite")


@dataclass(frozen=True)
class ColdCodeConfig:
    """How much never-executed code surrounds the hot kernel.

    Defaults are tuned so that, with the full minidb routine set and the
    TPC-D workload, the executed fractions land near the paper's Table 1
    (roughly 13 % of procedures and 12-13 % of static instructions
    executed; see EXPERIMENTS.md for the measured values).
    """

    n_procedures: int = 290
    richness: float = 10.0
    max_sites: int = 3
    max_decides: int = 4
    #: fraction of cold procedures assigned to cold-only modules; the rest
    #: spread across the hot modules (real binaries keep rarely-used
    #: routines next to hot ones, which is what hurts the original layout).
    cold_module_fraction: float = 0.55


class KernelModel:
    """Static image plus walker tables for one registry snapshot."""

    def __init__(
        self,
        registry: Registry,
        *,
        seed: int = 2029,
        richness: float = 10.0,
        cold: ColdCodeConfig | None = None,
        clones: tuple[tuple[str, str], ...] = (),
    ) -> None:
        """``clones`` lists (callee name, caller name) pairs: each creates a
        private copy of the callee's code for that caller (profile-guided
        function cloning, see :mod:`repro.kernel.inline`). The tracer routes
        the caller's invocations to the clone."""
        self.seed = seed
        cold = cold if cold is not None else ColdCodeConfig()
        hot_specs = registry.specs()
        if not hot_specs:
            raise ValueError("registry is empty: import/instantiate minidb first")
        spec_by_name = {spec.name: spec for spec in hot_specs}

        bodies: dict[str, BodyModel] = {
            spec.name: generate_body(spec, stream(seed, "body", spec.name), richness=richness)
            for spec in hot_specs
        }
        cold_entries = self._generate_cold(cold)

        # Link order: modules in fixed order; within a module a deterministic
        # shuffle interleaves hot routines with same-module cold procedures.
        by_module: dict[str, list[tuple[str, RoutineSpec | None, BodyModel]]] = {m: [] for m in MODULE_LINK_ORDER}
        for spec in hot_specs:
            if spec.module not in by_module:
                raise ValueError(f"routine {spec.name!r} uses unknown module {spec.module!r}")
            by_module[spec.module].append((spec.name, spec, bodies[spec.name]))
        for name, module, body in cold_entries:
            by_module[module].append((name, None, body))

        # routing table for the tracer: (caller, callee) -> clone name
        self.clone_route: dict[tuple[str, str], str] = {}
        clones_of: dict[str, list[tuple[str, RoutineSpec, BodyModel]]] = {}
        for callee, caller in clones:
            from repro.kernel.inline import clone_name

            for name in (callee, caller):
                if name not in spec_by_name:
                    raise ValueError(f"clone refers to unknown routine {name!r}")
            cname = clone_name(callee, caller)
            base_spec = spec_by_name[callee]
            clone_spec = RoutineSpec(
                name=cname,
                module=spec_by_name[caller].module,
                sites=base_spec.sites,
                decides=base_spec.decides,
            )
            # identical code, new identity: the clone reuses the callee body
            clones_of.setdefault(caller, []).append((cname, clone_spec, bodies[callee]))
            self.clone_route[(caller, callee)] = cname

        builder = ProgramBuilder()
        self._tables: dict[str, tuple] = {}
        for module in MODULE_LINK_ORDER:
            entries = by_module[module]
            order = stream(seed, "linkorder", module).permutation(len(entries))
            ordered = [entries[int(idx)] for idx in order]
            # a clone sits right after its caller, like inlined code would
            placed: list[tuple[str, RoutineSpec | None, BodyModel]] = []
            for entry in ordered:
                placed.append(entry)
                placed.extend(clones_of.get(entry[0], ()))
            for name, spec, body in placed:
                _pid, base = builder.add_procedure(
                    name,
                    module,
                    sizes=body.size,
                    kinds=body.kind,
                    is_operation=bool(spec and spec.op),
                    cold=spec is None,
                    local_succ=body.local_succ(),
                )
                if spec is not None:
                    self._tables[name] = (body.cat, body.hot, body.alt, base, body.fanout)
        self.program: Program = builder.build()

    def _generate_cold(self, cold: ColdCodeConfig) -> list[tuple[str, str, BodyModel]]:
        rng = stream(self.seed, "coldgen")
        hot_modules = tuple(m for m in MODULE_LINK_ORDER if m not in COLD_ONLY_MODULES)
        entries: list[tuple[str, str, BodyModel]] = []
        for i in range(cold.n_procedures):
            if rng.random() < cold.cold_module_fraction:
                module = COLD_ONLY_MODULES[int(rng.integers(0, len(COLD_ONLY_MODULES)))]
            else:
                module = hot_modules[int(rng.integers(0, len(hot_modules)))]
            name = f"{module}_fn_{i:04d}"
            spec = RoutineSpec(
                name=name,
                module=module,
                sites=int(rng.integers(0, cold.max_sites + 1)),
                decides=int(rng.integers(0, cold.max_decides + 1)),
            )
            body = generate_body(spec, stream(self.seed, "coldbody", name), richness=cold.richness)
            entries.append((name, module, body))
        return entries

    # -- tracer plumbing ---------------------------------------------------

    def routine_tables(self) -> dict[str, tuple]:
        """Per-routine walker tables: name -> (cat, hot, alt, base gid, fanout)."""
        return self._tables

    def tracer(self, sink=None) -> KernelTracer:
        """A fresh tracer bound to this model.

        ``sink`` (a :class:`~repro.profiling.tracestore.TraceWriter`-like
        object) switches the tracer to streaming mode: events are flushed
        to the sink incrementally instead of accumulating in memory.
        """
        return KernelTracer(self, sink=sink)

    # -- conveniences ------------------------------------------------------

    def entry_of(self, routine: str) -> int:
        """Global id of a hot routine's entry block."""
        return self._tables[routine][3]
