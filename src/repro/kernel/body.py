"""Synthetic intra-procedural control flow ("body models").

A body model is a small CFG generated deterministically from a routine's
:class:`~repro.kernel.registry.RoutineSpec` and the root seed. Its shape
mirrors how DBMS kernel C routines compile:

* a *prologue* chain (register saves, setup), possibly with a rarely-taken
  guard branch whose other side is a cold error path;
* a *ring* of loop segments — each with a loop junction (continue/exit),
  optional data-dependent branch diamonds, and (for calling routines) a
  guarded call site plus the return-target block;
* an *epilogue* ending in one or two return blocks;
* *cold* error chains hanging off the never-taken sides of fixed branches —
  present in the static image, never executed.

Block categories drive the runtime walker (:mod:`repro.kernel.tracer`): the
walker picks an edge per category depending on what the Python code actually
does next (call again, decide, or return), so trip counts and branch
outcomes in the trace are the engine's real data-dependent behaviour.

Local block ids are in generation order, which doubles as the "source
order" used by the original code layout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.cfg.blocks import BlockKind
from repro.kernel.registry import RoutineSpec

__all__ = ["Category", "BodyModel", "generate_body"]


class Category(enum.IntEnum):
    """Walker-relevant role of a block (independent of its BlockKind)."""

    PLAIN = 0  #: straight-line code
    FIXED = 1  #: branch whose alternative side is a cold path
    DYN = 2  #: data-dependent branch diamond, steered by decide()
    JUNCTION = 3  #: loop junction: continue ring (hot) or exit to epilogue (alt)
    GUARD = 4  #: call guard: take the call site (hot) or skip ahead (alt)
    CALL = 5  #: call-site block (ends in a subroutine call)
    RETTGT = 6  #: block where control lands after a callee returns
    RETURN = 7  #: return block
    COLD = 8  #: never-executed error-path block
    SPREAD = 9  #: multiway switch dispatch; case picked per invocation

#: Geometric size parameter per category: (p, cap). Mean block size is
#: roughly 1/p, matching the paper's ~4.7 instructions per block overall
#: (593 884 instructions / 127 426 blocks).
_SIZE_PARAMS: dict[Category, tuple[float, int]] = {
    Category.PLAIN: (0.20, 24),
    Category.FIXED: (0.35, 12),
    Category.DYN: (0.35, 12),
    Category.JUNCTION: (0.45, 8),
    Category.GUARD: (0.45, 8),
    Category.CALL: (0.40, 8),
    Category.RETTGT: (0.30, 16),
    Category.RETURN: (0.35, 8),
    Category.COLD: (0.25, 24),
    Category.SPREAD: (0.40, 8),
}


@dataclass
class BodyModel:
    """Compiled body of one routine (see module docstring)."""

    name: str
    cat: list[int] = field(default_factory=list)
    hot: list[int] = field(default_factory=list)
    alt: list[int] = field(default_factory=list)
    size: list[int] = field(default_factory=list)
    kind: list[int] = field(default_factory=list)
    #: SPREAD block -> its case-entry blocks (hot duplicates entry 0)
    fanout: dict[int, tuple[int, ...]] = field(default_factory=dict)

    @property
    def n_blocks(self) -> int:
        return len(self.cat)

    @property
    def entry(self) -> int:
        return 0

    def n_of(self, category: Category) -> int:
        return sum(1 for c in self.cat if c == category)

    def local_succ(self) -> dict[int, tuple[int, ...]]:
        """Static intra-procedural successor edges (hot/alt/fanout sides)."""
        succ: dict[int, tuple[int, ...]] = {}
        for b in range(self.n_blocks):
            edges = list(self.fanout.get(b, ()))
            edges.extend(e for e in (self.hot[b], self.alt[b]) if e >= 0)
            if edges:
                succ[b] = tuple(dict.fromkeys(edges))
        return succ

    def validate(self, spec: RoutineSpec) -> None:
        n = self.n_blocks
        if n == 0:
            raise ValueError(f"{self.name}: empty body")
        for b in range(n):
            cat = Category(self.cat[b])
            hot, alt = self.hot[b], self.alt[b]
            for e in (hot, alt):
                if e != -1 and not 0 <= e < n:
                    raise ValueError(f"{self.name}: block {b} edge out of range")
            if cat == Category.RETURN:
                if hot != -1:
                    raise ValueError(f"{self.name}: return block {b} has successor")
            elif hot == -1:
                raise ValueError(f"{self.name}: non-return block {b} lacks hot edge")
            if cat in (Category.DYN, Category.JUNCTION, Category.GUARD) and alt == -1:
                raise ValueError(f"{self.name}: {cat.name} block {b} lacks alt edge")
            if cat == Category.SPREAD:
                cases = self.fanout.get(b, ())
                if len(cases) < 2:
                    raise ValueError(f"{self.name}: SPREAD block {b} has < 2 cases")
                if self.hot[b] != cases[0]:
                    raise ValueError(f"{self.name}: SPREAD block {b} hot edge is not case 0")
            if self.size[b] < 1:
                raise ValueError(f"{self.name}: block {b} has zero size")
        if spec.sites > 0 and self.n_of(Category.CALL) == 0:
            raise ValueError(f"{self.name}: spec declares call sites but body has none")
        if spec.decides > 0 and self.n_of(Category.DYN) == 0:
            raise ValueError(f"{self.name}: spec declares decides but body has no DYN block")
        if self.n_of(Category.RETURN) == 0:
            raise ValueError(f"{self.name}: no return block")


class _Builder:
    """Appends blocks and patches forward links to the next construct."""

    def __init__(self, name: str, rng: np.random.Generator) -> None:
        self.body = BodyModel(name=name)
        self.rng = rng
        self._pending: list[int] = []  # blocks whose hot edge awaits the next block

    def new_block(self, cat: Category, *, link: bool = True) -> int:
        b = self.body.n_blocks
        p, cap = _SIZE_PARAMS[cat]
        size = min(int(self.rng.geometric(p)), cap)
        self.body.cat.append(int(cat))
        self.body.hot.append(-1)
        self.body.alt.append(-1)
        self.body.size.append(size)
        self.body.kind.append(-1)  # filled in finalize()
        if link:
            for src in self._pending:
                self.body.hot[src] = b
            self._pending.clear()
            self._pending.append(b)
        return b

    def take_pending(self) -> list[int]:
        pending, self._pending = self._pending, []
        return pending

    def switch(self, n_cases: int, case_len: int) -> int:
        """Multiway dispatch: a SPREAD block fanning out to ``n_cases``
        parallel case chains of ``case_len`` blocks, rejoining after.

        Models the type/node/opcode dispatch switches DBMS kernels are full
        of: each invocation walks one short case, while the accumulated
        footprint covers all cases.
        """
        spread = self.new_block(Category.SPREAD)
        self._pending.clear()
        case_entries: list[int] = []
        tails: list[int] = []
        for _ in range(n_cases):
            first = self.new_block(Category.PLAIN, link=False)
            prev = first
            for _ in range(case_len - 1):
                nxt = self.new_block(Category.PLAIN, link=False)
                self.body.hot[prev] = nxt
                prev = nxt
            case_entries.append(first)
            tails.append(prev)
        self.body.fanout[spread] = tuple(case_entries)
        self.body.hot[spread] = case_entries[0]
        self._pending = tails
        return spread

    def diamond(self, cat: Category) -> int:
        """Branch block + hot-side block (+ alt-side block) rejoining after.

        For FIXED diamonds the alt side is a cold chain ending in a cold
        return (an error path); for DYN diamonds the alt side is a live
        block that the walker emits when decide(False) steers there.
        """
        branch = self.new_block(cat)
        self._pending.clear()
        hot_side = self.new_block(Category.PLAIN, link=False)
        self.body.hot[branch] = hot_side
        if cat == Category.DYN:
            alt_side = self.new_block(Category.PLAIN, link=False)
            self.body.alt[branch] = alt_side
            self._pending = [hot_side, alt_side]
        else:
            cold = self.new_block(Category.COLD, link=False)
            self.body.alt[branch] = cold
            # error chain: 0-1 extra cold blocks, then a cold return
            if self.rng.random() < 0.5:
                nxt = self.new_block(Category.COLD, link=False)
                self.body.hot[cold] = nxt
                cold = nxt
            cold_ret = self.new_block(Category.RETURN, link=False)
            self.body.hot[cold] = cold_ret
            self._pending = [hot_side]
        return branch

    def finalize(self) -> BodyModel:
        if self._pending:
            raise AssertionError(f"{self.body.name}: dangling links at finalize")
        body = self.body
        for b in range(body.n_blocks):
            cat = Category(body.cat[b])
            if cat == Category.CALL:
                kind = BlockKind.CALL
            elif cat == Category.RETURN:
                kind = BlockKind.RETURN
            elif cat in (Category.FIXED, Category.DYN, Category.JUNCTION, Category.GUARD, Category.SPREAD):
                kind = BlockKind.BRANCH
            elif body.hot[b] == b + 1:
                kind = BlockKind.FALL_THROUGH
            else:
                # straight-line code ending in an unconditional jump
                kind = BlockKind.BRANCH
            body.kind[b] = int(kind)
        return body


def generate_body(spec: RoutineSpec, rng: np.random.Generator, *, richness: float = 1.0) -> BodyModel:
    """Generate the deterministic body model for one routine spec.

    ``richness`` scales the amount of straight-line and error-path code
    around the semantic skeleton (call ring, decide diamonds). The kernel
    model uses it to give minidb routines C-function-sized bodies so that
    the executed footprint reaches the paper's footprint-to-cache ratios
    (see DESIGN.md, "Scale").
    """
    if richness <= 0:
        raise ValueError("richness must be positive")
    b = _Builder(spec.name, rng)

    def filler(scale: float) -> None:
        """Code between the semantic skeleton points: a mix of straight-line
        blocks, fixed (error-check) diamonds whose cold sides build the
        never-executed part of the image, and switch dispatches whose cases
        spread successive invocations over parallel short paths.

        ``richness`` sets the static block budget; the walked-path length
        per invocation grows only logarithmically with it (one case per
        switch), which is what keeps per-invocation traces short while the
        accumulated footprint is large — the combination the paper observes.
        """
        budget = scale * richness * 6.0 * float(rng.uniform(0.7, 1.3))
        while budget > 0:
            r = rng.random()
            if r < 0.35:
                # deep-not-wide dispatch keeps the per-invocation path short
                n_cases = 6 + int(rng.integers(0, 19))
                case_len = 1 + int(rng.integers(0, 3))
                b.switch(n_cases, case_len)
                budget -= 1 + n_cases * case_len
            elif r < 0.65:
                b.diamond(Category.FIXED)
                budget -= 4.5
            else:
                b.new_block(Category.PLAIN)
                budget -= 1.0

    # Prologue: setup code behind the entry block.
    b.new_block(Category.PLAIN)
    filler(1.0)

    n_sites = spec.sites
    n_seg = n_sites if n_sites > 0 else (1 if spec.decides > 0 else 0)
    junction_exits: list[int] = []  # JUNCTION blocks; alt -> epilogue

    if n_seg:
        # Diamonds per segment: every segment gets its share of the declared
        # decide diamonds (at least the ring as a whole gets max(decides, 0)).
        per_seg = [spec.decides // n_seg] * n_seg
        for i in range(spec.decides % n_seg):
            per_seg[i] += 1
        junctions: list[int] = []
        ring_tail_patches: list[tuple[list[int], int]] = []  # (blocks, next segment index)
        for s in range(n_seg):
            junction = b.new_block(Category.JUNCTION)
            junctions.append(junction)
            junction_exits.append(junction)
            for _ in range(per_seg[s]):
                b.diamond(Category.DYN)
                # processing code after each data check
                if rng.random() < 0.5:
                    b.new_block(Category.PLAIN)
            filler(0.8 / max(1, n_seg))
            if n_sites > 0:
                guard = b.new_block(Category.GUARD)
                b.take_pending()
                call = b.new_block(Category.CALL, link=False)
                b.body.hot[guard] = call
                rettgt = b.new_block(Category.RETTGT, link=False)
                b.body.hot[call] = rettgt
                # guard skip-side and return-target both continue at the
                # next junction (wrapping to the ring head on the last one).
                ring_tail_patches.append(([guard], s + 1))  # guard.alt patched below
                ring_tail_patches.append(([rettgt], s + 1))
            else:
                # leaf loop: segment tail loops back to the junction ring
                ring_tail_patches.append((b.take_pending(), s + 1))
        for blocks, nxt in ring_tail_patches:
            target = junctions[nxt % n_seg]
            for src in blocks:
                if Category(b.body.cat[src]) == Category.GUARD:
                    b.body.alt[src] = target
                else:
                    b.body.hot[src] = target

    # Epilogue: junction exits (and, with no ring, the prologue tail) land here.
    tail = b.take_pending()  # non-empty only when there is no ring
    epilogue_first = -1
    prev = -1
    for _ in range(int(rng.integers(0, 1 + round(0.6 * richness)))):
        blk = b.new_block(Category.PLAIN, link=False)
        if prev >= 0:
            b.body.hot[prev] = blk
        else:
            epilogue_first = blk
        prev = blk
    if rng.random() < 0.35:
        # final fixed check picking between two return blocks; the walker
        # always takes the hot return, so the alt return is effectively cold.
        node = b.new_block(Category.FIXED, link=False)
        ret_a = b.new_block(Category.RETURN, link=False)
        ret_b = b.new_block(Category.RETURN, link=False)
        b.body.hot[node] = ret_a
        b.body.alt[node] = ret_b
    else:
        node = b.new_block(Category.RETURN, link=False)
    if prev >= 0:
        b.body.hot[prev] = node
    else:
        epilogue_first = node
    for src in tail:
        b.body.hot[src] = epilogue_first
    for junction in junction_exits:
        b.body.alt[junction] = epilogue_first

    body = b.finalize()
    body.validate(spec)
    return body
