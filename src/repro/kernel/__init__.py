"""Synthetic kernel bodies: the bridge between minidb and the block trace.

The paper instruments a compiled database binary; here every minidb routine
is registered (via :func:`kernel_routine`) with a deterministic synthetic
control-flow body. Executing the routine *walks* its body: instrumented
calls advance the caller's walker to a call-site block, data-dependent
decisions (:func:`decide`) steer dynamic branch diamonds, and returning
walks to a return block. The result is a dynamic basic-block trace whose
inter-procedural structure comes from the real engine and whose
intra-procedural footprint has realistic DBMS-kernel statistics (block
sizes, branch mix, determinism).

See DESIGN.md, "Substitutions", for why this preserves the behaviour the
paper's layout algorithm depends on.
"""

from repro.kernel.registry import Registry, RoutineSpec, kernel_routine, decide, default_registry
from repro.kernel.body import BodyModel, Category, generate_body
from repro.kernel.tracer import KernelTracer, ContractError
from repro.kernel.model import KernelModel, ColdCodeConfig
from repro.kernel.inline import InlinePlan, plan_inlining, clone_name

__all__ = [
    "Registry",
    "RoutineSpec",
    "kernel_routine",
    "decide",
    "default_registry",
    "BodyModel",
    "Category",
    "generate_body",
    "KernelTracer",
    "ContractError",
    "KernelModel",
    "ColdCodeConfig",
    "InlinePlan",
    "plan_inlining",
    "clone_name",
]
