"""Routine registration and the instrumentation entry points.

minidb routines are plain Python functions decorated with
:func:`kernel_routine`. The decorator records a :class:`RoutineSpec`
(module, number of call-site segments, number of data-dependent branch
diamonds) that the body generator turns into a synthetic CFG, and wraps the
function so that, when a :class:`~repro.kernel.tracer.KernelTracer` is
active, entering/leaving the routine drives the trace walker. With no
tracer active the wrapper is a cheap passthrough, so the engine can run
untraced (e.g. while loading data) at full speed.
"""

from __future__ import annotations

import functools
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TypeVar

__all__ = ["RoutineSpec", "Registry", "kernel_routine", "decide", "default_registry"]

F = TypeVar("F", bound=Callable)


@dataclass(frozen=True)
class RoutineSpec:
    """Static description of an instrumented routine.

    ``sites``  — number of call-site segments in the routine's loop ring;
    must be >= 1 if the routine (or helpers it calls) invokes other
    instrumented routines.
    ``decides`` — number of dynamic branch diamonds; must be >= 1 if the
    routine calls :func:`decide`.
    ``op``     — True for Executor operation entry points (the paper's
    knowledge-based *ops* seed selection takes exactly these).
    """

    name: str
    module: str
    sites: int = 1
    decides: int = 0
    op: bool = False

    def __post_init__(self) -> None:
        if self.sites < 0 or self.decides < 0:
            raise ValueError(f"routine {self.name!r}: sites/decides must be >= 0")


class Registry:
    """An ordered collection of routine specs.

    minidb registers into :func:`default_registry` at import time; tests
    build private registries so they stay hermetic.
    """

    def __init__(self) -> None:
        self._specs: dict[str, RoutineSpec] = {}

    def routine(
        self,
        module: str,
        *,
        sites: int = 1,
        decides: int = 0,
        op: bool = False,
        name: str | None = None,
    ) -> Callable[[F], F]:
        """Decorator registering (and instrumenting) a kernel routine."""

        def wrap(fn: F) -> F:
            spec = RoutineSpec(name=name or fn.__qualname__, module=module, sites=sites, decides=decides, op=op)
            self.add(spec)

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                tracer = _ACTIVE
                if tracer is None:
                    return fn(*args, **kwargs)
                tracer._enter(spec)
                try:
                    return fn(*args, **kwargs)
                finally:
                    tracer._exit(spec)

            wrapper.__kernel_spec__ = spec  # type: ignore[attr-defined]
            return wrapper  # type: ignore[return-value]

        return wrap

    def scope(
        self,
        name: str,
        module: str,
        *,
        sites: int = 1,
        decides: int = 0,
        op: bool = False,
    ) -> "InstrumentedScope":
        """Register a routine and return a ``with``-style instrumentation scope.

        This is how minidb models *specialized* kernel routines — e.g. one
        B-tree descent routine per index, one comparator per key type — the
        way a compiled DBMS has cloned/inlined variants. The scope object is
        re-entrant (safe for recursive routines).
        """
        spec = RoutineSpec(name=name, module=module, sites=sites, decides=decides, op=op)
        self.add(spec)
        return InstrumentedScope(spec)

    def add(self, spec: RoutineSpec) -> None:
        if spec.name in self._specs:
            raise ValueError(f"duplicate kernel routine {spec.name!r}")
        self._specs[spec.name] = spec

    def clone(self) -> "Registry":
        """A copy sharing no state: used per Database so that dynamically
        registered per-index routine specializations never collide across
        instances (the static decorated routines are carried over by name)."""
        reg = Registry()
        reg._specs = dict(self._specs)
        return reg

    def specs(self) -> list[RoutineSpec]:
        """All specs, sorted by name (the deterministic routine order)."""
        return sorted(self._specs.values(), key=lambda s: s.name)

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs


class InstrumentedScope:
    """Context manager marking a dynamic extent as one instrumented routine.

    The active tracer is captured at ``__enter__`` and popped with it at
    ``__exit__`` (as a stack, so recursion works), which keeps enter/exit
    balanced even if a tracer is activated or deactivated mid-scope.
    """

    __slots__ = ("spec", "_tracers")

    def __init__(self, spec: RoutineSpec) -> None:
        self.spec = spec
        self._tracers: list = []

    def __enter__(self) -> "InstrumentedScope":
        tracer = _ACTIVE
        self._tracers.append(tracer)
        if tracer is not None:
            tracer._enter(self.spec)
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracers.pop()
        if tracer is not None:
            tracer._exit(self.spec)


_DEFAULT_REGISTRY = Registry()

#: The tracer currently receiving events, or None (module-global so the
#: per-call fast path is a single load; the engine is single-threaded, as is
#: each PostgreSQL backend in the paper).
_ACTIVE = None


def default_registry() -> Registry:
    """The process-wide registry minidb registers into."""
    return _DEFAULT_REGISTRY


def kernel_routine(
    module: str,
    *,
    sites: int = 1,
    decides: int = 0,
    op: bool = False,
    name: str | None = None,
) -> Callable[[F], F]:
    """Register a routine in the default registry (see :meth:`Registry.routine`)."""
    return _DEFAULT_REGISTRY.routine(module, sites=sites, decides=decides, op=op, name=name)


def decide(outcome: object) -> bool:
    """Report a data-dependent branch outcome to the active tracer.

    Returns ``bool(outcome)`` so it can wrap conditions inline::

        if decide(tuple_matches):
            ...

    With no active tracer this is a cheap no-op passthrough.
    """
    outcome = bool(outcome)
    tracer = _ACTIVE
    if tracer is not None:
        tracer._decide(outcome)
    return outcome


def _set_active(tracer) -> None:
    """Install/remove the active tracer (used by KernelTracer.activate)."""
    global _ACTIVE
    _ACTIVE = tracer
