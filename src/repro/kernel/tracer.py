"""Runtime trace walker.

While a :class:`KernelTracer` is active, every instrumented minidb call
pushes a walker frame that steps through the routine's body model, emitting
global basic-block ids into the trace buffer. The walker advances in three
modes, each choosing edges by block category:

* ``to call`` (a child routine was entered): junctions continue the ring,
  guards take the call side; stops at the CALL block.
* ``to decision`` (:func:`~repro.kernel.registry.decide` was invoked):
  guards skip their call site; stops at the first DYN branch and takes the
  side given by the engine's actual boolean.
* ``to exit`` (the routine returned): junctions exit to the epilogue,
  guards skip; stops at a RETURN block.

Fixed branches always take their hot side (their alt side is a cold error
path), and undecided DYN branches default to the hot side — real data
decisions are only the ones the engine reports.
"""

from __future__ import annotations

from array import array

import numpy as np

from repro.kernel import registry as _registry
from repro.kernel.body import BodyModel, Category
from repro.kernel.registry import RoutineSpec
from repro.profiling.trace import BlockTrace

__all__ = ["KernelTracer", "ContractError"]

_CAT_PLAIN = int(Category.PLAIN)
_CAT_FIXED = int(Category.FIXED)
_CAT_DYN = int(Category.DYN)
_CAT_JUNCTION = int(Category.JUNCTION)
_CAT_GUARD = int(Category.GUARD)
_CAT_CALL = int(Category.CALL)
_CAT_RETTGT = int(Category.RETTGT)
_CAT_RETURN = int(Category.RETURN)
_CAT_SPREAD = int(Category.SPREAD)


def _case_of(ctx: int, n_cases: int) -> int:
    """Skewed switch-case selection from the invocation context.

    Real kernel dispatch switches (tuple type, plan-node tag, opcode) are
    heavily skewed toward a few hot cases; the cubic transform makes case 0
    take ~45 % of executions while still exercising the tail over time —
    which is what lets a layout make the hot case fall through (the paper's
    run-length doubling) while the accumulated footprint stays large.
    """
    u = ctx * 4.656612873077393e-10  # / 2**31
    return int(n_cases * u * u * u)


class ContractError(RuntimeError):
    """An instrumented routine behaved outside its declared spec.

    Raised when e.g. a routine declared ``sites=0`` calls another
    instrumented routine, or calls ``decide()`` without declaring any
    dynamic branch diamonds; the error names the offending routine so the
    annotation can be fixed.
    """


class KernelTracer:
    """Collects one dynamic basic-block trace from instrumented execution.

    Use as a context manager around the traced region::

        tracer = KernelTracer(model)
        with tracer:
            engine.run(plan)
        trace = tracer.take_trace()

    The tracer is single-threaded (each PostgreSQL backend in the paper is a
    single process) and must be the only active tracer.
    """

    #: In streaming mode, the buffer is flushed to the sink whenever it
    #: reaches this many events with no instrumented call in flight.
    FLUSH_EVENTS = 1_000_000

    def __init__(self, model, sink=None) -> None:
        # model is a KernelModel; imported lazily to avoid an import cycle.
        self._model = model
        self._routines = model.routine_tables()
        self._route = getattr(model, "clone_route", {})  # (caller, callee) -> clone
        self._buf = array("i")
        # frames: [cat, hot, alt, base, cur, name, fanout, ctx]
        self._stack: list[list] = []
        self._runs: list[np.ndarray] = []
        self._invocations: dict[str, int] = {}
        # streaming mode: events flow to the sink (TraceWriter protocol:
        # append_events/end_run) in bounded pieces instead of accumulating
        self._sink = sink
        self._flushed = 0

    # -- activation --------------------------------------------------------

    def __enter__(self) -> "KernelTracer":
        if _registry._ACTIVE is not None:
            raise RuntimeError("another KernelTracer is already active")
        _registry._set_active(self)
        return self

    def __exit__(self, *exc) -> None:
        _registry._set_active(None)
        if self._stack:
            # unwound abnormally (exception through instrumented frames)
            self._stack.clear()

    def _flush_to_sink(self) -> None:
        if len(self._buf):
            self._flushed += len(self._buf)
            self._sink.append_events(np.frombuffer(self._buf, dtype=np.int32).copy())
            self._buf = array("i")

    def end_run(self) -> None:
        """Close the current run; the next events start a new trace segment."""
        if self._stack:
            raise RuntimeError("end_run() inside an instrumented call")
        if self._sink is not None:
            self._flush_to_sink()
            self._sink.end_run()
            return
        if len(self._buf):
            self._runs.append(np.frombuffer(self._buf, dtype=np.int32).copy())
            self._buf = array("i")

    def take_trace(self) -> BlockTrace:
        """Finish tracing and return the collected (multi-run) trace."""
        if self._sink is not None:
            raise RuntimeError(
                "streaming tracer keeps no in-memory trace; close the sink instead"
            )
        self.end_run()
        trace = BlockTrace.concatenate([BlockTrace(run) for run in self._runs])
        self._runs = []
        return trace

    @property
    def n_events(self) -> int:
        return sum(r.shape[0] for r in self._runs) + len(self._buf) + self._flushed

    # -- instrumentation callbacks (hot path) ------------------------------

    def _enter(self, spec: RoutineSpec) -> None:
        name = spec.name
        stack = self._stack
        if stack:
            # cloned routines: this caller may own a private copy
            route = self._route
            if route:
                clone = route.get((stack[-1][5], name))
                if clone is not None:
                    name = clone
            self._advance_to_call(stack[-1])
        table = self._routines.get(name)
        if table is None:
            raise ContractError(f"routine {name!r} is not part of the kernel model")
        cat, hot, alt, base, fanout = table
        # per-invocation dispatch context: successive calls of the same
        # routine walk different switch cases (deterministic Weyl sequence)
        count = self._invocations.get(name, 0) + 1
        self._invocations[name] = count
        ctx = (count * 2654435761) & 0x7FFFFFFF
        self._buf.append(base)  # entry block is local 0
        stack.append([cat, hot, alt, base, 0, name, fanout, ctx])

    def _decide(self, outcome: bool) -> None:
        stack = self._stack
        if not stack:
            return  # data decision outside any instrumented routine: ignore
        frame = stack[-1]
        cat, hot, alt, base, cur, name, fanout, ctx = frame
        buf = self._buf
        limit = 4 * len(cat) + 8
        steps = 0
        # `cur` is the last emitted block: move first, then emit.
        while True:
            c = cat[cur]
            if c == _CAT_RETURN:
                raise ContractError(f"routine {name!r}: decide() after control reached a return block")
            if c == _CAT_GUARD:
                cur = alt[cur]
            elif c == _CAT_SPREAD:
                cases = fanout[cur]
                cur = cases[_case_of(ctx, len(cases))]
                ctx = (ctx * 1103515245 + 12345) & 0x7FFFFFFF
            else:
                cur = hot[cur]
            buf.append(base + cur)
            if cat[cur] == _CAT_DYN:
                cur = hot[cur] if outcome else alt[cur]
                buf.append(base + cur)
                frame[4] = cur
                frame[7] = ctx
                return
            steps += 1
            if steps > limit:
                raise ContractError(f"routine {name!r}: decide() called but body declares no DYN diamonds")

    def _exit(self, spec: RoutineSpec) -> None:
        stack = self._stack
        if not stack:
            raise ContractError(f"unbalanced exit from {spec.name!r}")
        frame = stack.pop()
        cat, hot, alt, base, cur, name, fanout, ctx = frame
        if name != spec.name and name.split("@", 1)[0] != spec.name:
            raise ContractError(f"unbalanced exit: leaving {spec.name!r} but top frame is {name!r}")
        buf = self._buf
        limit = 4 * len(cat) + 8
        steps = 0
        # `cur` is the last emitted block: move first, then emit.
        while cat[cur] != _CAT_RETURN:
            c = cat[cur]
            if c == _CAT_JUNCTION or c == _CAT_GUARD:
                nxt = alt[cur]
            elif c == _CAT_SPREAD:
                cases = fanout[cur]
                nxt = cases[_case_of(ctx, len(cases))]
                ctx = (ctx * 1103515245 + 12345) & 0x7FFFFFFF
            elif c == _CAT_CALL:
                raise ContractError(f"routine {name!r}: exit while positioned at a call block")
            else:
                nxt = hot[cur]
            cur = nxt
            buf.append(base + cur)
            steps += 1
            if steps > limit:
                raise ContractError(f"routine {name!r}: no return block reachable on exit path")
        if stack:
            # the caller resumes at the return-target block after its call site
            parent = stack[-1]
            pcat, phot, pbase, pcur, pname = parent[0], parent[1], parent[3], parent[4], parent[5]
            if pcat[pcur] != _CAT_CALL:
                raise ContractError(f"routine {pname!r}: child returned but caller not at a call block")
            pcur = phot[pcur]
            buf.append(pbase + pcur)
            parent[4] = pcur
        elif self._sink is not None and len(buf) >= self.FLUSH_EVENTS:
            # between top-level calls the run can be flushed mid-stream:
            # memory stays bounded even when one run is hundreds of
            # millions of events
            self._flush_to_sink()

    def _advance_to_call(self, frame: list) -> None:
        cat, hot, _alt, base, cur, name, fanout, ctx = frame
        buf = self._buf
        limit = 4 * len(cat) + 8
        steps = 0
        # `cur` is the last emitted block: move first, then emit. Guards take
        # their hot side here (the call site); everything else advances hot.
        while True:
            c = cat[cur]
            if c == _CAT_RETURN:
                raise ContractError(f"routine {name!r}: call made after control reached a return block")
            if c == _CAT_SPREAD:
                cases = fanout[cur]
                cur = cases[_case_of(ctx, len(cases))]
                ctx = (ctx * 1103515245 + 12345) & 0x7FFFFFFF
            else:
                cur = hot[cur]
            buf.append(base + cur)
            if cat[cur] == _CAT_CALL:
                frame[4] = cur
                frame[7] = ctx
                return
            steps += 1
            if steps > limit:
                raise ContractError(f"routine {name!r}: calls a child but declares sites=0")
