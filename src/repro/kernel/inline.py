"""Profile-guided function cloning (paper Section 8 future work).

"It is worth studying if the controlled use of code expanding techniques
like function inlining and code replication can increase the potential
fetch bandwidth provided by a sequential fetch unit while keeping the miss
rate under control."

A clone gives one caller a private copy of a callee's code. The layout
pipeline then places the clone *between* the call site and its return
target, so both the call and the return become sequential transitions —
longer fall-through runs and wider fetches — while the duplicated code
grows the static footprint and can raise the miss rate. The
:mod:`repro.experiments.inlining` module measures both sides.

The plan is chosen from a profile: callees invoked from several distinct
callers, where a (caller, callee) pair carries a significant share of all
calls, get per-caller clones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.program import Program
from repro.cfg.weighted import WeightedCFG

__all__ = ["InlinePlan", "plan_inlining", "clone_name"]


def clone_name(callee: str, caller: str) -> str:
    """The cloned routine's identity (also its procedure name)."""
    return f"{callee}@{caller}"


@dataclass(frozen=True)
class InlinePlan:
    """Clone set: (callee routine name, caller routine name) pairs."""

    pairs: tuple[tuple[str, str], ...]

    @property
    def n_clones(self) -> int:
        return len(self.pairs)

    def route_table(self) -> dict[tuple[str, str], str]:
        """(caller, callee) -> clone routine name, for the tracer."""
        return {(caller, callee): clone_name(callee, caller) for callee, caller in self.pairs}


def plan_inlining(
    program: Program,
    cfg: WeightedCFG,
    *,
    min_call_fraction: float = 0.01,
    min_callers: int = 2,
    max_clones: int = 24,
) -> InlinePlan:
    """Pick (callee, caller) pairs worth cloning, hottest first.

    ``min_call_fraction`` is the pair's share of all dynamic calls;
    ``min_callers`` requires the callee to be shared (cloning a
    single-caller callee buys nothing the layout cannot already do).
    """
    call_graph = cfg.procedure_call_graph(program)
    total_calls = sum(call_graph.values())
    if total_calls == 0:
        return InlinePlan(())
    callers_of: dict[int, set[int]] = {}
    for (caller, callee), _count in call_graph.items():
        callers_of.setdefault(callee, set()).add(caller)
    candidates = sorted(call_graph.items(), key=lambda kv: (-kv[1], kv[0]))
    pairs: list[tuple[str, str]] = []
    for (caller_pid, callee_pid), count in candidates:
        if len(pairs) >= max_clones:
            break
        if count / total_calls < min_call_fraction:
            break
        if len(callers_of[callee_pid]) < min_callers:
            continue
        caller = program.procedures[caller_pid]
        callee = program.procedures[callee_pid]
        if caller.cold or callee.cold:
            continue
        pairs.append((callee.name, caller.name))
    return InlinePlan(tuple(pairs))
