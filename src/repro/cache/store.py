"""Content-addressed on-disk artifact store.

Artifacts (built workloads, training profiles, suite results) are pickled
under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-stc``), addressed by a
SHA-256 digest of a canonicalized key object plus two version salts:

* :data:`CACHE_VERSION` — the store format; bumping it orphans every entry
  (they live under a ``v<N>`` directory that is simply no longer read);
* a per-kind version from :data:`ARTIFACT_VERSIONS` — bump the entry for
  one artifact kind when the code producing it changes meaning, and only
  that kind's entries are invalidated.

Keys canonicalize dataclasses (class name + field items), mappings, and
sequences recursively, so any change to e.g. ``WorkloadSettings`` values
(scale, seed, kernel seed) or the evaluation grid produces a different
address. Writes are atomic (temp file + rename). Genuinely corrupt
entries (truncated or unparseable pickles) are dropped and behave as
misses; any other load error (``MemoryError``, an ``ImportError`` from a
mid-edit source tree, permissions) is surfaced as a miss *without*
deleting the entry, which may be perfectly valid. Every cache carries
:class:`CacheStats` counters so long runs can report hit/miss/error
behaviour in their manifests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any

__all__ = [
    "ARTIFACT_VERSIONS",
    "CACHE_VERSION",
    "ArtifactCache",
    "CacheStats",
    "cache_enabled",
    "default_cache",
    "stable_digest",
]

#: Store-format version: bump to orphan every cached artifact at once.
CACHE_VERSION = 1

#: Per-kind schema versions, folded into every key of that kind. Bump one
#: when the producing code changes what the artifact means.
ARTIFACT_VERSIONS: dict[str, int] = {
    "workload": 2,  # v2: traces stored as on-disk TraceStore files
    "profile": 1,
    "suite": 1,
    "suite-task": 1,  # per-task suite checkpoints (crash/interrupt resume)
    "trace": 1,  # chunked trace files (repro.profiling.tracestore format v1)
    "serve-result": 1,  # repro.serve job results for uploaded-trace jobs
}

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_DISABLE = "REPRO_CACHE_DISABLE"
_ENV_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"


def cache_enabled() -> bool:
    """Artifact caching is on unless ``REPRO_CACHE_DISABLE`` is truthy."""
    return os.environ.get(_ENV_DISABLE, "") not in ("1", "true", "yes")


def _default_root() -> Path:
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-stc"


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic, hashable-by-repr structure."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = [(f.name, _canonical(getattr(obj, f.name))) for f in dataclasses.fields(obj)]
        return (type(obj).__name__, tuple(fields))
    if isinstance(obj, dict):
        return ("dict", tuple(sorted((str(k), _canonical(v)) for k, v in obj.items())))
    if isinstance(obj, (list, tuple)):
        return tuple(_canonical(v) for v in obj)
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips exactly; 0.005 != 0.0050000001
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} for a cache key")


def stable_digest(obj: Any) -> str:
    """Hex SHA-256 of the canonicalized key object."""
    payload = repr(_canonical(obj)).encode()
    return hashlib.sha256(payload).hexdigest()[:40]


#: Orphaned write temporaries younger than this are left alone on the
#: opportunistic sweep — they may belong to an in-flight store in another
#: process. ``clear()`` ignores the age and reclaims everything.
TMP_MAX_AGE_SECONDS = 3600.0


@dataclasses.dataclass
class CacheStats:
    """Counters for one :class:`ArtifactCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0  #: load errors surfaced as misses without unlinking
    corrupt_dropped: int = 0  #: truncated/unparseable entries unlinked
    tmp_swept: int = 0  #: orphaned ``*.tmp`` files reclaimed
    evictions: int = 0  #: entries removed by the size-cap LRU sweep

    def snapshot(self) -> "CacheStats":
        return dataclasses.replace(self)

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    def delta(self, since: "CacheStats") -> dict[str, int]:
        """Per-counter change since an earlier :meth:`snapshot`."""
        return {
            f.name: getattr(self, f.name) - getattr(since, f.name)
            for f in dataclasses.fields(self)
        }


#: Load failures that prove the entry itself is damaged (truncated file,
#: garbage bytes). Anything else — MemoryError, ImportError while the
#: source tree is mid-edit, EPERM — may strike a valid entry and must not
#: destroy it.
_CORRUPT_EXCEPTIONS = (pickle.UnpicklingError, EOFError)


class ArtifactCache:
    """Pickle-backed artifact store with content-addressed keys."""

    def __init__(
        self, root: Path | str | None = None, *, max_bytes: int | None = None
    ) -> None:
        self._root = Path(root) if root is not None else None
        self._max_bytes = max_bytes
        self.stats = CacheStats()

    @property
    def root(self) -> Path:
        """Resolved store root (env re-read when no explicit root given)."""
        return self._root if self._root is not None else _default_root()

    @property
    def max_bytes(self) -> int | None:
        """Optional total-size cap (``$REPRO_CACHE_MAX_BYTES`` when unset).

        ``None``/``0`` means unbounded — the sweep never runs and stores
        cost nothing extra.
        """
        if self._max_bytes is not None:
            return self._max_bytes or None
        env = os.environ.get(_ENV_MAX_BYTES, "").strip()
        if not env:
            return None
        try:
            cap = int(env)
        except ValueError:
            return None
        return cap if cap > 0 else None

    def path_for(self, kind: str, key_obj: Any) -> Path:
        digest = stable_digest((kind, ARTIFACT_VERSIONS.get(kind, 0), key_obj))
        return self.root / f"v{CACHE_VERSION}" / kind / f"{digest}.pkl"

    def load(self, kind: str, key_obj: Any) -> Any | None:
        """The stored artifact, or ``None`` on miss/corruption/disable.

        Only genuine corruption (truncation, unparseable bytes) deletes
        the entry; transient errors leave it in place for the next reader.
        """
        if not cache_enabled():
            return None
        path = self.path_for(kind, key_obj)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except _CORRUPT_EXCEPTIONS:
            self.stats.misses += 1
            self.stats.corrupt_dropped += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None
        except Exception:
            self.stats.misses += 1
            self.stats.errors += 1
            return None
        self.stats.hits += 1
        try:
            os.utime(path)  # refresh recency for the LRU-by-mtime sweep
        except OSError:
            pass
        return value

    def store(self, kind: str, key_obj: Any, value: Any) -> Path | None:
        """Atomically persist ``value``; returns its path (None if disabled)."""
        if not cache_enabled():
            return None
        path = self.path_for(kind, key_obj)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            return None  # read-only or full disk: caching is best-effort
        self.stats.stores += 1
        self._sweep_tmp(path.parent)
        self._enforce_cap(protect=path)
        return path

    def has(self, kind: str, key_obj: Any) -> bool:
        return cache_enabled() and self.path_for(kind, key_obj).exists()

    def file_path(self, kind: str, key_obj: Any, suffix: str = ".bin") -> Path:
        """Content-addressed location for a *file* artifact.

        For artifacts that manage their own on-disk format (e.g. stored
        traces), the cache hands out an addressed path instead of
        pickling; the producer is responsible for writing it atomically
        (write to a ``*.tmp`` sibling, then rename — orphaned temporaries
        are reclaimed by the same sweep as pickle writes).
        """
        digest = stable_digest((kind, ARTIFACT_VERSIONS.get(kind, 0), key_obj))
        return self.root / f"v{CACHE_VERSION}" / kind / f"{digest}{suffix}"

    def _sweep_tmp(self, directory: Path, max_age: float = TMP_MAX_AGE_SECONDS) -> int:
        """Reclaim orphaned ``*.tmp`` files left by killed writers.

        Files younger than ``max_age`` seconds survive: they may belong to
        a store in flight in another process.
        """
        now = time.time()
        removed = 0
        try:
            candidates = list(directory.glob("*.tmp"))
        except OSError:
            return 0
        for p in candidates:
            try:
                if now - p.stat().st_mtime >= max_age:
                    p.unlink()
                    removed += 1
            except OSError:
                pass
        self.stats.tmp_swept += removed
        return removed

    def _enforce_cap(self, protect: Path | None = None) -> int:
        """LRU-by-mtime sweep: evict oldest entries until under ``max_bytes``.

        Runs after every successful store when a cap is configured; the
        just-written entry (``protect``) is never evicted, so a single
        artifact larger than the cap still lands (the cap then empties the
        rest of the store around it). Concurrent readers racing an
        eviction observe an ordinary miss and recompute. Returns the
        number of entries removed.
        """
        cap = self.max_bytes
        if cap is None:
            return 0
        base = self.root / f"v{CACHE_VERSION}"
        entries: list[tuple[float, int, Path]] = []
        total = 0
        try:
            candidates = list(base.rglob("*"))
        except OSError:
            return 0
        for p in candidates:
            try:
                if not p.is_file() or p.suffix == ".tmp":
                    continue
                st = p.stat()
            except OSError:
                continue
            total += st.st_size
            if protect is None or p != protect:
                entries.append((st.st_mtime, st.st_size, p))
        if total <= cap:
            return 0
        entries.sort()  # oldest mtime first
        removed = 0
        for _, size, p in entries:
            if total <= cap:
                break
            try:
                p.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        self.stats.evictions += removed
        return removed

    def clear(self, kind: str | None = None) -> int:
        """Remove cached entries (one kind, or everything); returns count.

        Also reclaims orphaned write temporaries regardless of age.
        """
        base = self.root / f"v{CACHE_VERSION}"
        if kind is not None:
            base = base / kind
        if not base.exists():
            return 0
        removed = 0
        for p in sorted(base.rglob("*")):
            if not p.is_file() or p.suffix == ".tmp":
                continue
            try:
                p.unlink()
                removed += 1
            except OSError:
                pass
        for directory in {p.parent for p in base.rglob("*.tmp")}:
            removed += self._sweep_tmp(directory, max_age=0.0)
        return removed


_DEFAULT = ArtifactCache()


def default_cache() -> ArtifactCache:
    """The process-wide store rooted at ``$REPRO_CACHE_DIR``/XDG default."""
    return _DEFAULT
