"""Content-addressed on-disk artifact store.

Artifacts (built workloads, training profiles, suite results) are pickled
under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-stc``), addressed by a
SHA-256 digest of a canonicalized key object plus two version salts:

* :data:`CACHE_VERSION` — the store format; bumping it orphans every entry
  (they live under a ``v<N>`` directory that is simply no longer read);
* a per-kind version from :data:`ARTIFACT_VERSIONS` — bump the entry for
  one artifact kind when the code producing it changes meaning, and only
  that kind's entries are invalidated.

Keys canonicalize dataclasses (class name + field items), mappings, and
sequences recursively, so any change to e.g. ``WorkloadSettings`` values
(scale, seed, kernel seed) or the evaluation grid produces a different
address. Writes are atomic (temp file + rename); unreadable or corrupt
entries behave as misses.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

__all__ = [
    "ARTIFACT_VERSIONS",
    "CACHE_VERSION",
    "ArtifactCache",
    "cache_enabled",
    "default_cache",
    "stable_digest",
]

#: Store-format version: bump to orphan every cached artifact at once.
CACHE_VERSION = 1

#: Per-kind schema versions, folded into every key of that kind. Bump one
#: when the producing code changes what the artifact means.
ARTIFACT_VERSIONS: dict[str, int] = {
    "workload": 1,
    "profile": 1,
    "suite": 1,
}

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_DISABLE = "REPRO_CACHE_DISABLE"


def cache_enabled() -> bool:
    """Artifact caching is on unless ``REPRO_CACHE_DISABLE`` is truthy."""
    return os.environ.get(_ENV_DISABLE, "") not in ("1", "true", "yes")


def _default_root() -> Path:
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-stc"


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic, hashable-by-repr structure."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = [(f.name, _canonical(getattr(obj, f.name))) for f in dataclasses.fields(obj)]
        return (type(obj).__name__, tuple(fields))
    if isinstance(obj, dict):
        return ("dict", tuple(sorted((str(k), _canonical(v)) for k, v in obj.items())))
    if isinstance(obj, (list, tuple)):
        return tuple(_canonical(v) for v in obj)
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips exactly; 0.005 != 0.0050000001
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} for a cache key")


def stable_digest(obj: Any) -> str:
    """Hex SHA-256 of the canonicalized key object."""
    payload = repr(_canonical(obj)).encode()
    return hashlib.sha256(payload).hexdigest()[:40]


class ArtifactCache:
    """Pickle-backed artifact store with content-addressed keys."""

    def __init__(self, root: Path | str | None = None) -> None:
        self._root = Path(root) if root is not None else None

    @property
    def root(self) -> Path:
        """Resolved store root (env re-read when no explicit root given)."""
        return self._root if self._root is not None else _default_root()

    def path_for(self, kind: str, key_obj: Any) -> Path:
        digest = stable_digest((kind, ARTIFACT_VERSIONS.get(kind, 0), key_obj))
        return self.root / f"v{CACHE_VERSION}" / kind / f"{digest}.pkl"

    def load(self, kind: str, key_obj: Any) -> Any | None:
        """The stored artifact, or ``None`` on miss/corruption/disable."""
        if not cache_enabled():
            return None
        path = self.path_for(kind, key_obj)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:  # corrupt entry: drop it and treat as a miss
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None

    def store(self, kind: str, key_obj: Any, value: Any) -> Path | None:
        """Atomically persist ``value``; returns its path (None if disabled)."""
        if not cache_enabled():
            return None
        path = self.path_for(kind, key_obj)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            return None  # read-only or full disk: caching is best-effort
        return path

    def has(self, kind: str, key_obj: Any) -> bool:
        return cache_enabled() and self.path_for(kind, key_obj).exists()

    def clear(self, kind: str | None = None) -> int:
        """Remove cached entries (one kind, or everything); returns count."""
        base = self.root / f"v{CACHE_VERSION}"
        if kind is not None:
            base = base / kind
        if not base.exists():
            return 0
        removed = 0
        for p in sorted(base.rglob("*.pkl")):
            try:
                p.unlink()
                removed += 1
            except OSError:
                pass
        return removed


_DEFAULT = ArtifactCache()


def default_cache() -> ArtifactCache:
    """The process-wide store rooted at ``$REPRO_CACHE_DIR``/XDG default."""
    return _DEFAULT
