"""Persistent artifact cache for expensive experiment inputs and results.

See :mod:`repro.cache.store` for the key scheme and invalidation rules.
"""

from repro.cache.store import (
    ARTIFACT_VERSIONS,
    CACHE_VERSION,
    ArtifactCache,
    CacheStats,
    cache_enabled,
    default_cache,
    stable_digest,
)

__all__ = [
    "ARTIFACT_VERSIONS",
    "CACHE_VERSION",
    "ArtifactCache",
    "CacheStats",
    "cache_enabled",
    "default_cache",
    "stable_digest",
]
