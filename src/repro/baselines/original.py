"""The original (compiler/link order) layout."""

from __future__ import annotations

from repro.cfg.layout import Layout
from repro.cfg.program import Program

__all__ = ["original_layout"]


def original_layout(program: Program) -> Layout:
    """Blocks at their original addresses: procedure link order, source
    order within each procedure (cold error paths inline, as compiled)."""
    return Layout.original(program)
