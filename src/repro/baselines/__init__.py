"""Layout baselines the paper compares against (Sections 6 and 7):

* ``orig`` — the compiler/link-order layout.
* ``P&H`` — Pettis & Hansen: bottom-up basic-block chaining within each
  procedure plus closest-is-best procedure ordering; cache-geometry
  oblivious.
* ``Torr`` — Torrellas et al.: block sequences spanning functions, with the
  most frequently referenced *individual blocks* pinned in a Conflict Free
  Area (versus the STC, which keeps whole sequences there).
"""

from repro.baselines.original import original_layout
from repro.baselines.pettis_hansen import pettis_hansen_layout
from repro.baselines.torrellas import torrellas_layout

__all__ = ["original_layout", "pettis_hansen_layout", "torrellas_layout"]
