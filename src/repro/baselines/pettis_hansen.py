"""Pettis & Hansen profile-guided code positioning (PLDI 1990).

Two levels, both driven by the weighted CFG:

* **Basic-block positioning** (within each procedure): bottom-up chaining —
  process intra-procedure edges heaviest first, concatenating the chains
  whose tail/head they connect; the entry chain leads, remaining chains
  follow by connection weight; never-executed blocks ("fluff") sink to the
  bottom of the procedure, which is P&H's procedure splitting in spirit.
* **Procedure positioning**: closest-is-best — process call-graph edges
  heaviest first, merging the procedure chains that contain caller and
  callee in the orientation that puts the most strongly connected endpoints
  next to each other.

As the paper notes (Section 6), the algorithm does not consider the target
cache geometry — there is no CFA.
"""

from __future__ import annotations

import numpy as np

from repro.cfg.layout import Layout
from repro.cfg.program import Program
from repro.cfg.weighted import WeightedCFG

__all__ = ["pettis_hansen_layout"]


class _Chains:
    """Union of ordered chains supporting tail/head concatenation."""

    def __init__(self, items: list[int]) -> None:
        self.chain_of = {x: i for i, x in enumerate(items)}
        self.chains: dict[int, list[int]] = {i: [x] for i, x in enumerate(items)}

    def try_join(self, a: int, b: int) -> bool:
        """Concatenate the chain ending in ``a`` with the one starting at ``b``."""
        ca, cb = self.chain_of[a], self.chain_of[b]
        if ca == cb or self.chains[ca][-1] != a or self.chains[cb][0] != b:
            return False
        self._merge(ca, cb)
        return True

    def _merge(self, ca: int, cb: int) -> None:
        for x in self.chains[cb]:
            self.chain_of[x] = ca
        self.chains[ca].extend(self.chains.pop(cb))

    def chain_containing(self, x: int) -> list[int]:
        return self.chains[self.chain_of[x]]


def _order_blocks(program: Program, cfg: WeightedCFG, proc_blocks: tuple[int, ...]) -> list[int]:
    """P&H bottom-up block chaining for one procedure."""
    counts = cfg.block_count
    hot = [b for b in proc_blocks if counts[b] > 0]
    fluff = [b for b in proc_blocks if counts[b] == 0]
    if not hot:
        return list(proc_blocks)
    members = set(hot)
    edges = [
        (count, src, dst)
        for src in hot
        for dst, count in cfg.successors(src)
        if dst in members and dst != src
    ]
    edges.sort(key=lambda e: (-e[0], e[1], e[2]))
    chains = _Chains(hot)
    for _count, src, dst in edges:
        chains.try_join(src, dst)

    # entry chain first, remaining chains by total weight
    entry = proc_blocks[0]
    ordered: list[int] = []
    seen_chains: set[int] = set()

    def emit(chain_id: int) -> None:
        if chain_id in seen_chains:
            return
        seen_chains.add(chain_id)
        ordered.extend(chains.chains[chain_id])

    if entry in chains.chain_of:
        emit(chains.chain_of[entry])
    remaining = sorted(
        (cid for cid in chains.chains if cid not in seen_chains),
        key=lambda cid: (-sum(int(counts[b]) for b in chains.chains[cid]), chains.chains[cid][0]),
    )
    for cid in remaining:
        emit(cid)
    ordered.extend(fluff)
    return ordered


def _order_procedures(program: Program, cfg: WeightedCFG) -> list[int]:
    """Closest-is-best procedure ordering over the weighted call graph."""
    call_graph = cfg.procedure_call_graph(program)
    # undirected edge weights between procedures
    weights: dict[tuple[int, int], int] = {}
    for (p, q), count in call_graph.items():
        key = (min(p, q), max(p, q))
        weights[key] = weights.get(key, 0) + count
    edges = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))

    chains: dict[int, list[int]] = {p.pid: [p.pid] for p in program.procedures}
    chain_of = {p.pid: p.pid for p in program.procedures}

    def connection(a: int, b: int) -> int:
        key = (min(a, b), max(a, b))
        return weights.get(key, 0)

    for (p, q), _count in edges:
        cp, cq = chain_of[p], chain_of[q]
        if cp == cq:
            continue
        a, b = chains[cp], chains[cq]
        # four orientations; pick the one whose seam (the two procedures
        # made adjacent by the merge) carries the heaviest connection
        orientations = ((a, b), (a, b[::-1]), (a[::-1], b), (b, a))
        best, best_score = None, -1
        for left, right in orientations:
            seam = connection(left[-1], right[0])
            if seam > best_score:
                best, best_score = left + right, seam
        for pid in best:
            chain_of[pid] = cp
        chains[cp] = best
        del chains[cq]

    counts = cfg.block_count
    proc_weight = {
        p.pid: sum(int(counts[b]) for b in p.blocks) for p in program.procedures
    }
    ordered_chains = sorted(
        chains.values(),
        key=lambda chain: (-max(proc_weight[pid] for pid in chain), chain[0]),
    )
    return [pid for chain in ordered_chains for pid in chain]


def pettis_hansen_layout(program: Program, cfg: WeightedCFG) -> Layout:
    """The P&H layout: procedure ordering + per-procedure block chaining."""
    order: list[int] = []
    for pid in _order_procedures(program, cfg):
        order.extend(_order_blocks(program, cfg, program.procedures[pid].blocks))
    return Layout.from_order(program, np.asarray(order), name="P&H")
