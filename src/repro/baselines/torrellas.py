"""Torrellas, Xia & Daigle layout (HPCA 1995), as the paper characterizes it.

Like the STC it builds basic-block sequences spanning functions and
reserves a Conflict Free Area, but the CFA holds the most frequently
referenced *individual basic blocks* — pulled out of their sequences. The
paper's evaluation (Section 7.3) observes exactly the consequence this
reproduces: a larger CFA pulls more blocks out of their sequences,
"breaking the sequential execution jumping in and out of the CFA", so the
Torr layout matches STC on miss rate but trails it on fetch bandwidth.
"""

from __future__ import annotations

import numpy as np

from repro.cfg.layout import Layout
from repro.cfg.program import Program
from repro.cfg.weighted import WeightedCFG
from repro.core.mapping import CacheGeometry, map_sequences
from repro.core.seeds import auto_seeds
from repro.core.tracebuild import TraceParams, build_sequences

__all__ = ["torrellas_layout"]


def torrellas_layout(
    program: Program,
    cfg: WeightedCFG,
    geometry: CacheGeometry,
    *,
    exec_threshold: int | None = None,
    branch_threshold: float = 0.08,
) -> Layout:
    """Sequences + block-granularity CFA."""
    if exec_threshold is None:
        exec_threshold = max(1, int(1e-5 * int(cfg.block_count.sum())))
    sequences = build_sequences(
        cfg,
        auto_seeds(program, cfg),
        TraceParams(exec_threshold=exec_threshold, branch_threshold=branch_threshold),
    )
    # the most frequently referenced individual blocks fill the CFA; they
    # are laid out there in *sequence order*, so pulled neighbours stay
    # adjacent (pulling them out of their sequences is still what breaks
    # sequential execution at the CFA boundary, per the paper's analysis)
    counts = cfg.block_count
    hot_order = np.argsort(counts, kind="stable")[::-1]
    position: dict[int, tuple[int, int]] = {}
    for si, seq in enumerate(sequences):
        for bi, block in enumerate(seq):
            position[block] = (si, bi)
    chosen: list[int] = []
    budget = geometry.cfa_bytes
    sizes = program.block_size.astype(np.int64) * 4
    for block in hot_order:
        block = int(block)
        if counts[block] == 0 or budget <= 0:
            break
        if sizes[block] <= budget:
            chosen.append(block)
            budget -= int(sizes[block])
    n_seq = len(sequences)
    cfa_blocks = sorted(chosen, key=lambda b: position.get(b, (n_seq, b)))
    return map_sequences(
        program,
        sequences,
        geometry,
        name="Torr",
        cfa_blocks=cfa_blocks,
    )
