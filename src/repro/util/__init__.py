"""Small shared utilities: deterministic RNG streams, table formatting,
progress reporting."""

from repro.util.fmt import format_table
from repro.util.progress import Progress
from repro.util.rng import derive_seed, stream

__all__ = ["derive_seed", "stream", "format_table", "Progress"]
