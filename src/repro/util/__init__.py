"""Small shared utilities: deterministic RNG streams and table formatting."""

from repro.util.rng import derive_seed, stream
from repro.util.fmt import format_table

__all__ = ["derive_seed", "stream", "format_table"]
