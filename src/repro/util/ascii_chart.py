"""Minimal ASCII line chart for the CLI experiment output (Figure 2)."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["ascii_curve"]


def ascii_curve(
    points: Sequence[tuple[float, float]],
    *,
    width: int = 60,
    height: int = 12,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render (x, y) points as a monotone ASCII curve.

    Points are linearly interpolated onto a ``width`` x ``height`` grid; the
    y-axis shows min/max ticks. Intended for quick visual confirmation of a
    curve's shape in terminal output, not for publication.
    """
    if len(points) < 2:
        raise ValueError("need at least two points")
    xs = [float(x) for x, _y in points]
    ys = [float(y) for _x, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo or y_hi == y_lo:
        raise ValueError("degenerate axis range")

    def interp(x: float) -> float:
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            if x0 <= x <= x1:
                if x1 == x0:
                    return float(y1)
                t = (x - x0) / (x1 - x0)
                return float(y0) + t * (float(y1) - float(y0))
        return ys[-1]

    grid = [[" "] * width for _ in range(height)]
    for column in range(width):
        x = x_lo + (x_hi - x_lo) * column / (width - 1)
        y = interp(x)
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][column] = "*"

    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            tick = f"{y_hi:8.1f} |"
        elif i == height - 1:
            tick = f"{y_lo:8.1f} |"
        else:
            tick = " " * 9 + "|"
        lines.append(tick + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    footer = f"{x_lo:<12.0f}{x_label:^{max(0, width - 24)}}{x_hi:>12.0f}"
    lines.append(" " * 10 + footer)
    if y_label:
        lines.insert(0, f"{y_label}")
    return "\n".join(lines)
