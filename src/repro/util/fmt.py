"""ASCII table formatting for experiment output.

The experiment modules print tables in the same row/column shape as the
paper's Tables 1-4; this module keeps the rendering in one place.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table"]


def _cell(value: object, spec: str | None) -> str:
    if value is None:
        return "-"
    if spec and isinstance(value, (int, float)):
        return format(value, spec)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    floatfmt: str = ".2f",
) -> str:
    """Render ``rows`` as a fixed-width ASCII table.

    ``None`` cells render as ``-`` (the paper uses a dash for configurations
    that do not apply, e.g. CFA sizes for the original layout).
    Floats are formatted with ``floatfmt``; pass per-call specs for other
    precisions.
    """
    str_rows = [[_cell(v, floatfmt if isinstance(v, float) else None) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths, strict=True))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
