"""Timestamped progress reporting with rate and ETA, quiet by default.

Replaces ad-hoc ``print(f"  [suite] ...")`` scattering: one
:class:`Progress` instance per long-running computation, stepped once per
completed unit of work. Output goes to ``stderr`` so piped experiment
tables stay clean.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

__all__ = ["Progress"]


class Progress:
    """Step counter that prints ``[HH:MM:SS] [label] k/N (rate, ETA) msg``.

    ``enabled=False`` (the default) makes every method a no-op, so callers
    thread a single flag instead of guarding each report site. ``total``
    distinguishes *unknown* (``None``) from *zero work* (``0``): a
    zero-task run renders ``0/0`` rather than pretending the total is
    open-ended. :meth:`fail` reports failed/retried units without
    advancing the counter, so a stream of task reports survives individual
    task failures.
    """

    def __init__(
        self,
        label: str,
        total: int | None = None,
        *,
        enabled: bool = False,
        stream: TextIO | None = None,
        clock=time.monotonic,
    ) -> None:
        self.label = label
        self.total = total
        self.enabled = enabled
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._t0 = clock()
        self.count = 0
        self.failures = 0

    def _emit(self, text: str) -> None:
        stamp = time.strftime("%H:%M:%S")
        print(f"[{stamp}] [{self.label}] {text}", file=self.stream, flush=True)

    def step(self, message: str = "") -> None:
        """Record one completed unit and report it."""
        self.count += 1
        if not self.enabled:
            return
        elapsed = max(self._clock() - self._t0, 1e-9)
        rate = self.count / elapsed
        parts = [f"{self.count}/{self.total}" if self.total is not None else f"{self.count}"]
        parts.append(f"{rate:.2f}/s")
        if self.total is not None and self.count < self.total:
            parts.append(f"ETA {(self.total - self.count) / rate:.0f}s")
        prefix = f"{parts[0]} ({', '.join(parts[1:])})"
        self._emit(f"{prefix} {message}".rstrip())

    def fail(self, message: str = "") -> None:
        """Report a failed or retried unit without ending the stream."""
        self.failures += 1
        if not self.enabled:
            return
        self._emit(f"FAIL {message}".rstrip())

    def done(self, message: str = "") -> None:
        """Report total wall-clock for the whole run."""
        if not self.enabled:
            return
        elapsed = self._clock() - self._t0
        tail = f", {self.failures} failed" if self.failures else ""
        self._emit(f"done: {self.count} steps in {elapsed:.1f}s{tail} {message}".rstrip())
