"""Deterministic, named random streams.

Every stochastic choice in the repository (synthetic kernel bodies, block
sizes, TPC-D data) draws from a stream derived from a root seed plus a string
name, so the whole pipeline is reproducible bit-for-bit and independent
subsystems never share or perturb each other's streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "stream"]


def derive_seed(root: int, *names: str | int) -> int:
    """Derive a 64-bit seed from a root seed and a path of names.

    The derivation is stable across Python versions and platforms (it uses
    BLAKE2, not ``hash()``).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root)).encode())
    for name in names:
        h.update(b"/")
        h.update(str(name).encode())
    return int.from_bytes(h.digest(), "little")


def stream(root: int, *names: str | int) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the named sub-stream."""
    return np.random.default_rng(derive_seed(root, *names))
