"""Weighted dynamic control-flow graph.

"Instrumenting the database and running the Training set, we obtained a
directed control flow graph with weighted edges" (paper, Section 5). Nodes
are basic blocks, edge weights are observed transition counts; node weights
are execution counts. Call and return transitions appear as ordinary edges
(call block -> callee entry; callee return block -> the block following the
call site), which is exactly what lets the greedy sequence builder inline
callees into a trace.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.cfg.program import Program

__all__ = ["WeightedCFG"]


class WeightedCFG:
    """Block-level weighted digraph with execution counts."""

    def __init__(self, n_blocks: int) -> None:
        self._n = int(n_blocks)
        self.block_count = np.zeros(self._n, dtype=np.int64)
        self._out: dict[int, dict[int, int]] = {}
        self._in: dict[int, dict[int, int]] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        n_blocks: int,
        edges: Iterable[tuple[int, int, int]],
        block_count: np.ndarray | None = None,
    ) -> "WeightedCFG":
        """Build from ``(src, dst, count)`` triples.

        If ``block_count`` is omitted, node counts are inferred as the total
        outgoing edge weight (with incoming weight as a fallback for sinks).
        """
        cfg = cls(n_blocks)
        for src, dst, count in edges:
            cfg.add_transition(int(src), int(dst), int(count))
        if block_count is not None:
            cfg.block_count = np.asarray(block_count, dtype=np.int64).copy()
        else:
            for b, succs in cfg._out.items():
                cfg.block_count[b] = sum(succs.values())
            for b, preds in cfg._in.items():
                if cfg.block_count[b] == 0:
                    cfg.block_count[b] = sum(preds.values())
        return cfg

    def add_transition(self, src: int, dst: int, count: int = 1) -> None:
        if count <= 0:
            raise ValueError("transition count must be positive")
        self._out.setdefault(src, {})
        self._out[src][dst] = self._out[src].get(dst, 0) + count
        self._in.setdefault(dst, {})
        self._in[dst][src] = self._in[dst].get(src, 0) + count

    # -- queries ---------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return self._n

    @property
    def n_edges(self) -> int:
        return sum(len(s) for s in self._out.values())

    def successors(self, block: int) -> list[tuple[int, int]]:
        """``(succ, count)`` pairs, heaviest first (ties broken by block id)."""
        succs = self._out.get(block)
        if not succs:
            return []
        return sorted(succs.items(), key=lambda kv: (-kv[1], kv[0]))

    def predecessors(self, block: int) -> list[tuple[int, int]]:
        preds = self._in.get(block)
        if not preds:
            return []
        return sorted(preds.items(), key=lambda kv: (-kv[1], kv[0]))

    def out_weight(self, block: int) -> int:
        succs = self._out.get(block)
        return sum(succs.values()) if succs else 0

    def edge_count(self, src: int, dst: int) -> int:
        return self._out.get(src, {}).get(dst, 0)

    def probability(self, src: int, dst: int) -> float:
        """Observed probability of taking ``src -> dst`` among src's exits."""
        total = self.out_weight(src)
        return self.edge_count(src, dst) / total if total else 0.0

    def hottest_successor(self, block: int) -> tuple[int, int] | None:
        succs = self.successors(block)
        return succs[0] if succs else None

    def edges(self) -> Iterator[tuple[int, int, int]]:
        for src in sorted(self._out):
            for dst, count in sorted(self._out[src].items()):
                yield src, dst, count

    def executed_blocks(self) -> np.ndarray:
        """Ids of blocks with a nonzero execution count."""
        return np.flatnonzero(self.block_count > 0)

    # -- aggregations ----------------------------------------------------

    def procedure_call_graph(self, program: Program) -> dict[tuple[int, int], int]:
        """Aggregate inter-procedure edge weights ``(caller pid, callee pid) -> count``.

        Only cross-procedure transitions out of CALL blocks are counted, so
        this is the weighted call graph used by Pettis & Hansen procedure
        ordering (return transitions are excluded to avoid double-counting).
        """
        from repro.cfg.blocks import BlockKind

        graph: dict[tuple[int, int], int] = {}
        proc = program.block_proc
        kind = program.block_kind
        for src, dst, count in self.edges():
            if kind[src] != BlockKind.CALL:
                continue
            p, q = int(proc[src]), int(proc[dst])
            if p != q:
                key = (p, q)
                graph[key] = graph.get(key, 0) + count
        return graph
