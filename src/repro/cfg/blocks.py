"""Basic block kinds and procedure descriptors.

The paper (Section 4.2) classifies basic blocks into four kinds by how they
end, because the kind determines how the block can affect program flow:

* ``FALL_THROUGH`` — no terminating branch; execution always continues at the
  next sequential block.
* ``BRANCH`` — ends with a conditional or unconditional branch.
* ``CALL`` — ends with a subroutine invocation (or indirect jump); may have
  many successors.
* ``RETURN`` — ends with a subroutine return; has one successor per caller.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["BlockKind", "Procedure", "INSTR_BYTES"]

#: Bytes per instruction (fixed-width Alpha encoding, as in the paper).
INSTR_BYTES = 4


class BlockKind(enum.IntEnum):
    """How a basic block terminates (paper Table 2 taxonomy)."""

    FALL_THROUGH = 0
    BRANCH = 1
    CALL = 2
    RETURN = 3


@dataclass(frozen=True)
class Procedure:
    """A procedure in the static image.

    ``blocks`` lists global block ids in source order; the first entry is the
    procedure's entry block. ``module`` mirrors the DBMS module layering of
    Figure 1 (executor, access, buffer, storage, ...) and is used by the
    knowledge-based *ops* seed selection, which takes the entry points of the
    Executor operations.
    """

    pid: int
    name: str
    module: str
    blocks: tuple[int, ...]
    is_operation: bool = False
    cold: bool = False
    _block_set: frozenset[int] = field(init=False, repr=False, compare=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError(f"procedure {self.name!r} has no blocks")
        object.__setattr__(self, "_block_set", frozenset(self.blocks))

    @property
    def entry(self) -> int:
        """Global id of the procedure's entry block."""
        return self.blocks[0]

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def __contains__(self, block: int) -> bool:
        return block in self._block_set

    def size_instructions(self, block_size: np.ndarray) -> int:
        """Total instructions in the procedure given the program's size table."""
        return int(block_size[list(self.blocks)].sum())
