"""Code layouts: the mapping from basic block to memory address.

As in the paper (Section 7.1), a layout never rewrites code: every block
keeps its original size, only its address changes. A layout may contain
gaps — the CFA mapping of Figure 4 deliberately leaves the conflict-free
address range of every subsequent "logical cache" copy empty.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.cfg.blocks import INSTR_BYTES
from repro.cfg.program import Program

__all__ = ["Layout"]


@dataclass(frozen=True)
class Layout:
    """Byte address of every basic block of a program.

    Attributes
    ----------
    name:
        Short identifier used in experiment tables (``orig``, ``P&H``, ...).
    address:
        ``int64[n_blocks]`` byte address of each block's first instruction.
    """

    name: str
    address: np.ndarray

    @classmethod
    def from_order(
        cls,
        program: Program,
        order: Sequence[int] | np.ndarray,
        *,
        name: str,
        start: int = 0,
    ) -> "Layout":
        """Contiguous layout: blocks placed back-to-back in ``order``."""
        order = np.asarray(order, dtype=np.int64)
        if order.shape[0] != program.n_blocks or np.unique(order).shape[0] != order.shape[0]:
            raise ValueError("order must be a permutation of all block ids")
        sizes = program.block_size[order].astype(np.int64) * INSTR_BYTES
        starts = start + np.concatenate(([0], np.cumsum(sizes[:-1])))
        address = np.empty(program.n_blocks, dtype=np.int64)
        address[order] = starts
        return cls(name=name, address=address)

    @classmethod
    def original(cls, program: Program) -> "Layout":
        """The compiler/link-order layout: block ids in increasing order."""
        return cls.from_order(program, np.arange(program.n_blocks), name="orig")

    @classmethod
    def from_placements(
        cls,
        program: Program,
        placements: dict[int, int] | tuple[np.ndarray, np.ndarray],
        *,
        name: str,
    ) -> "Layout":
        """Layout from explicit ``block -> byte address`` placements (may have gaps)."""
        address = np.full(program.n_blocks, -1, dtype=np.int64)
        if isinstance(placements, dict):
            for block, addr in placements.items():
                address[block] = addr
        else:
            blocks, addrs = placements
            address[np.asarray(blocks)] = np.asarray(addrs)
        if (address < 0).any():
            missing = int((address < 0).sum())
            raise ValueError(f"{missing} blocks left unplaced")
        layout = cls(name=name, address=address)
        layout.validate(program)
        return layout

    # -- persistence -------------------------------------------------------

    def save(self, path) -> None:
        """Persist to ``.npz`` (name + addresses); see :meth:`load`."""
        np.savez_compressed(path, name=np.array(self.name), address=self.address)

    @classmethod
    def load(cls, path, program: Program | None = None) -> "Layout":
        """Load a layout saved with :meth:`save`; validates against
        ``program`` when given."""
        with np.load(path, allow_pickle=False) as data:
            layout = cls(name=str(data["name"]), address=data["address"].astype(np.int64))
        if program is not None:
            if layout.address.shape[0] != program.n_blocks:
                raise ValueError("layout block count does not match program")
            layout.validate(program)
        return layout

    # -- queries ---------------------------------------------------------

    def end_address(self, program: Program) -> np.ndarray:
        """Byte address one past the last instruction of each block."""
        return self.address + program.block_size.astype(np.int64) * INSTR_BYTES

    def extent_bytes(self, program: Program) -> int:
        """Highest occupied byte address (the layout's memory extent)."""
        return int(self.end_address(program).max()) if program.n_blocks else 0

    def order(self) -> np.ndarray:
        """Block ids sorted by address (the physical code order)."""
        return np.argsort(self.address, kind="stable")

    def is_sequential(self, src: int, dst: int, program: Program) -> bool:
        """True if ``dst`` starts exactly where ``src`` ends (no taken branch)."""
        return int(self.address[dst]) == int(self.address[src]) + int(program.block_size[src]) * INSTR_BYTES

    def validate(self, program: Program) -> None:
        """Check blocks do not overlap; raises ``ValueError`` otherwise."""
        order = self.order()
        starts = self.address[order]
        ends = starts + program.block_size[order].astype(np.int64) * INSTR_BYTES
        if (starts[1:] < ends[:-1]).any():
            bad = int(np.argmax(starts[1:] < ends[:-1]))
            a, b = int(order[bad]), int(order[bad + 1])
            raise ValueError(f"blocks {a} and {b} overlap in layout {self.name!r}")
