"""Static program representation.

This package models what the paper obtains from the compiled PostgreSQL
binary: a static image made of procedures, each a list of basic blocks with a
size (in instructions) and a kind (how the block ends), plus the weighted
dynamic control-flow graph recovered from profiling.

Addresses are byte addresses with 4 bytes per instruction (Alpha ISA, as in
the paper).
"""

from repro.cfg.blocks import BlockKind, Procedure, INSTR_BYTES
from repro.cfg.program import Program, ProgramBuilder
from repro.cfg.layout import Layout
from repro.cfg.weighted import WeightedCFG

__all__ = [
    "BlockKind",
    "Procedure",
    "Program",
    "ProgramBuilder",
    "Layout",
    "WeightedCFG",
    "INSTR_BYTES",
]
