"""The static program image.

A :class:`Program` is the analogue of the compiled database binary: a table
of basic blocks (size in instructions, kind, owning procedure) plus the list
of procedures in original link order. Static successor edges (from the body
models) are kept for analysis; the layout algorithms work on the *weighted*
dynamic CFG recovered from profiling (:mod:`repro.cfg.weighted`).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.cfg.blocks import INSTR_BYTES, BlockKind, Procedure

__all__ = ["Program", "ProgramBuilder"]


@dataclass(frozen=True)
class Program:
    """Immutable static image: blocks, procedures and static edges.

    Attributes
    ----------
    block_size:
        ``int32[n_blocks]`` — instructions per block (>= 1).
    block_kind:
        ``int8[n_blocks]`` — :class:`BlockKind` values.
    block_proc:
        ``int32[n_blocks]`` — owning procedure id per block.
    procedures:
        Procedures in original link order; block ids within each procedure
        are contiguous and in source order, so the original code layout is
        simply blocks ``0..n_blocks-1`` in id order.
    static_succ:
        Optional static successor lists (branch/fall-through edges only;
        call and return targets are inter-procedural and resolved
        dynamically), keyed by block id.
    """

    block_size: np.ndarray
    block_kind: np.ndarray
    block_proc: np.ndarray
    procedures: tuple[Procedure, ...]
    static_succ: dict[int, tuple[int, ...]]

    @property
    def n_blocks(self) -> int:
        return int(self.block_size.shape[0])

    @property
    def n_procedures(self) -> int:
        return len(self.procedures)

    @property
    def n_instructions(self) -> int:
        return int(self.block_size.sum())

    @property
    def image_bytes(self) -> int:
        return self.n_instructions * INSTR_BYTES

    def procedure_of(self, block: int) -> Procedure:
        return self.procedures[int(self.block_proc[block])]

    def entry_blocks(self) -> np.ndarray:
        """Entry block id of every procedure, in procedure order."""
        return np.fromiter((p.entry for p in self.procedures), dtype=np.int32, count=len(self.procedures))

    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` on corruption."""
        n = self.n_blocks
        if not (self.block_kind.shape[0] == n and self.block_proc.shape[0] == n):
            raise ValueError("block table arrays disagree on length")
        if n and int(self.block_size.min()) < 1:
            raise ValueError("zero-sized basic block")
        seen = np.zeros(n, dtype=bool)
        for proc in self.procedures:
            ids = np.asarray(proc.blocks)
            if seen[ids].any():
                raise ValueError(f"procedure {proc.name!r} shares blocks with another procedure")
            seen[ids] = True
            if not (self.block_proc[ids] == proc.pid).all():
                raise ValueError(f"procedure {proc.name!r} block_proc mismatch")
        if not seen.all():
            raise ValueError("orphan blocks outside any procedure")
        for src, succs in self.static_succ.items():
            if not 0 <= src < n:
                raise ValueError(f"static edge from unknown block {src}")
            for dst in succs:
                if not 0 <= dst < n:
                    raise ValueError(f"static edge to unknown block {dst}")


class ProgramBuilder:
    """Incremental builder used by the kernel model and by tests.

    Procedures are added in link order; each call allocates a contiguous
    range of global block ids and returns ``(pid, base_gid)``.
    """

    def __init__(self) -> None:
        self._sizes: list[int] = []
        self._kinds: list[int] = []
        self._procs: list[Procedure] = []
        self._static_succ: dict[int, tuple[int, ...]] = {}

    @property
    def n_blocks(self) -> int:
        return len(self._sizes)

    def add_procedure(
        self,
        name: str,
        module: str,
        sizes: Sequence[int],
        kinds: Sequence[BlockKind | int],
        *,
        is_operation: bool = False,
        cold: bool = False,
        local_succ: dict[int, Iterable[int]] | None = None,
    ) -> tuple[int, int]:
        """Append a procedure; returns ``(pid, base global block id)``.

        ``local_succ`` maps local block index -> local successor indices and
        is rebased onto global ids.
        """
        if len(sizes) != len(kinds):
            raise ValueError("sizes and kinds must have equal length")
        if not sizes:
            raise ValueError(f"procedure {name!r} has no blocks")
        base = len(self._sizes)
        pid = len(self._procs)
        self._sizes.extend(int(s) for s in sizes)
        self._kinds.extend(int(k) for k in kinds)
        blocks = tuple(range(base, base + len(sizes)))
        self._procs.append(
            Procedure(pid=pid, name=name, module=module, blocks=blocks, is_operation=is_operation, cold=cold)
        )
        if local_succ:
            for src, dsts in local_succ.items():
                self._static_succ[base + src] = tuple(base + d for d in dsts)
        return pid, base

    def build(self) -> Program:
        n = len(self._sizes)
        proc_ids = np.empty(n, dtype=np.int32)
        for proc in self._procs:
            proc_ids[proc.blocks[0] : proc.blocks[-1] + 1] = proc.pid
        program = Program(
            block_size=np.asarray(self._sizes, dtype=np.int32),
            block_kind=np.asarray(self._kinds, dtype=np.int8),
            block_proc=proc_ids,
            procedures=tuple(self._procs),
            static_succ=dict(self._static_succ),
        )
        program.validate()
        return program
