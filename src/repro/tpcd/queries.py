"""The 17 TPC-D read-only queries as minidb plan trees.

There is no SQL parser (the paper treats parsing/optimization time as
negligible, Section 2); each query is a hand-built plan in the shape
PostgreSQL's optimizer produces for it: index nested loops along foreign
keys where indexes exist, Sort+Group for GROUP BY, hash joins against
computed sub-results. The ``index_kind`` argument ("btree" or "hash")
selects the access-path variant, mirroring the paper's two databases.

Queries that SQL expresses with scalar subqueries (Q11, Q15) execute in two
phases, feeding the first phase's scalar into the second plan — exactly how
PostgreSQL 6.x evaluated uncorrelated subqueries.

Substitutions (documented per query): minidb has no outer joins, so Q13
reports the order-count distribution over customers *with* orders.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.minidb.engine import Database
from repro.minidb.executor import (
    AggSpec,
    Aggregate,
    Filter,
    GroupAggregate,
    HashJoin,
    IndexScan,
    Limit,
    MergeJoin,
    NestLoopJoin,
    PlanNode,
    Project,
    Rename,
    SeqScan,
    Sort,
    SortKey,
    and_,
    col,
    const,
    contains,
    between,
    not_,
    or_,
    startswith,
)
from repro.tpcd.dates import DAYS_PER_YEAR, START_YEAR, date

__all__ = ["QuerySpec", "QUERIES", "build_query", "run_query"]


@dataclass(frozen=True)
class QuerySpec:
    qid: int
    name: str
    execute: Callable[[Database, str], list]


def _nl_eq(outer: PlanNode, inner: IndexScan, outer_col: str, qual=None) -> NestLoopJoin:
    """Index nested-loop join: rebind the inner's eq key from the outer row."""
    idx = outer.schema.index_of(outer_col)
    return NestLoopJoin(outer, inner, bind=lambda row: {"eq": row[idx]}, qual=qual)


def _revenue():
    return col("l_extendedprice") * (const(1.0) - col("l_discount"))


def _year(column: str):
    return const(START_YEAR) + col(column) // DAYS_PER_YEAR


def _sorted_group(child: PlanNode, keys: list, groups: list, aggs: list) -> GroupAggregate:
    """Sort on the group keys, then group-aggregate (PostgreSQL 6.x shape)."""
    return GroupAggregate(Sort(child, [SortKey(k) for k in keys]), groups, aggs)


# -- Q1: pricing summary report ---------------------------------------------


def q1(db: Database, ik: str) -> list:
    cutoff = date(1998, 12, 1) - 90
    scan = SeqScan(db.table("lineitem"), qual=col("l_shipdate") <= cutoff)
    disc_price = _revenue()
    plan = _sorted_group(
        scan,
        [col("l_returnflag"), col("l_linestatus")],
        [(col("l_returnflag"), "l_returnflag"), (col("l_linestatus"), "l_linestatus")],
        [
            AggSpec("sum", col("l_quantity"), "sum_qty"),
            AggSpec("sum", col("l_extendedprice"), "sum_base_price"),
            AggSpec("sum", disc_price, "sum_disc_price"),
            AggSpec("sum", disc_price * (const(1.0) + col("l_tax")), "sum_charge"),
            AggSpec("avg", col("l_quantity"), "avg_qty"),
            AggSpec("avg", col("l_extendedprice"), "avg_price"),
            AggSpec("avg", col("l_discount"), "avg_disc"),
            AggSpec("count", None, "count_order"),
        ],
    )
    return db.run(plan)


# -- Q2: minimum cost supplier -----------------------------------------------


def _q2_joined(db: Database, ik: str) -> PlanNode:
    part = SeqScan(
        db.table("part"),
        qual=and_(col("p_size") == 15, contains(col("p_type"), "BRASS")),
    )
    j = _nl_eq(part, IndexScan(db.table("partsupp"), "ps_partkey", index_kind=ik), "p_partkey")
    j = _nl_eq(j, IndexScan(db.table("supplier"), "s_suppkey", index_kind=ik), "ps_suppkey")
    j = _nl_eq(j, IndexScan(db.table("nation"), "n_nationkey", index_kind=ik), "s_nationkey")
    j = _nl_eq(
        j,
        IndexScan(db.table("region"), "r_regionkey", index_kind=ik, qual=col("r_name") == "EUROPE"),
        "n_regionkey",
    )
    return j


def q2(db: Database, ik: str) -> list:
    mins = _sorted_group(
        _q2_joined(db, ik),
        [col("p_partkey")],
        [(col("p_partkey"), "min_partkey")],
        [AggSpec("min", col("ps_supplycost"), "min_cost")],
    )
    final = HashJoin(
        _q2_joined(db, ik),
        mins,
        col("p_partkey"),
        col("min_partkey"),
        qual=col("ps_supplycost") == col("min_cost"),
    )
    plan = Limit(
        Sort(
            Project(
                final,
                [
                    (col("s_acctbal"), "s_acctbal"),
                    (col("s_name"), "s_name"),
                    (col("n_name"), "n_name"),
                    (col("p_partkey"), "p_partkey"),
                    (col("p_mfgr"), "p_mfgr"),
                    (col("s_address"), "s_address"),
                    (col("s_phone"), "s_phone"),
                ],
            ),
            [
                SortKey(col("s_acctbal"), descending=True),
                SortKey(col("n_name")),
                SortKey(col("s_name")),
                SortKey(col("p_partkey")),
            ],
        ),
        100,
    )
    return db.run(plan)


# -- Q3: shipping priority ----------------------------------------------------


def q3(db: Database, ik: str) -> list:
    cut = date(1995, 3, 15)
    cust = SeqScan(db.table("customer"), qual=col("c_mktsegment") == "BUILDING")
    j = _nl_eq(
        cust,
        IndexScan(db.table("orders"), "o_custkey", index_kind=ik, qual=col("o_orderdate") < cut),
        "c_custkey",
    )
    j = _nl_eq(
        j,
        IndexScan(db.table("lineitem"), "l_orderkey", index_kind=ik, qual=col("l_shipdate") > cut),
        "o_orderkey",
    )
    grouped = _sorted_group(
        j,
        [col("l_orderkey"), col("o_orderdate"), col("o_shippriority")],
        [
            (col("l_orderkey"), "l_orderkey"),
            (col("o_orderdate"), "o_orderdate"),
            (col("o_shippriority"), "o_shippriority"),
        ],
        [AggSpec("sum", _revenue(), "revenue")],
    )
    plan = Limit(
        Sort(grouped, [SortKey(col("revenue"), descending=True), SortKey(col("o_orderdate"))]),
        10,
    )
    return db.run(plan)


# -- Q4: order priority checking ------------------------------------------------


def q4(db: Database, ik: str) -> list:
    lo, hi = date(1993, 7, 1), date(1993, 10, 1)
    orders = SeqScan(
        db.table("orders"), qual=and_(col("o_orderdate") >= lo, col("o_orderdate") < hi)
    )
    # EXISTS semijoin: the inner index scan is capped at one matching line
    exists = Limit(
        IndexScan(
            db.table("lineitem"),
            "l_orderkey",
            index_kind=ik,
            qual=col("l_commitdate") < col("l_receiptdate"),
        ),
        1,
    )
    j = _nl_eq(orders, exists, "o_orderkey")
    plan = _sorted_group(
        j,
        [col("o_orderpriority")],
        [(col("o_orderpriority"), "o_orderpriority")],
        [AggSpec("count", None, "order_count")],
    )
    return db.run(plan)


# -- Q5: local supplier volume ---------------------------------------------------


def q5(db: Database, ik: str) -> list:
    lo, hi = date(1994, 1, 1), date(1995, 1, 1)
    region = SeqScan(db.table("region"), qual=col("r_name") == "ASIA")
    j = _nl_eq(region, IndexScan(db.table("nation"), "n_regionkey", index_kind=ik), "r_regionkey")
    j = _nl_eq(j, IndexScan(db.table("customer"), "c_nationkey", index_kind=ik), "n_nationkey")
    j = _nl_eq(
        j,
        IndexScan(
            db.table("orders"),
            "o_custkey",
            index_kind=ik,
            qual=and_(col("o_orderdate") >= lo, col("o_orderdate") < hi),
        ),
        "c_custkey",
    )
    j = _nl_eq(j, IndexScan(db.table("lineitem"), "l_orderkey", index_kind=ik), "o_orderkey")
    # local suppliers only: supplier nation must equal customer nation
    j = _nl_eq(
        j,
        IndexScan(db.table("supplier"), "s_suppkey", index_kind=ik),
        "l_suppkey",
        qual=col("s_nationkey") == col("c_nationkey"),
    )
    grouped = _sorted_group(
        j,
        [col("n_name")],
        [(col("n_name"), "n_name")],
        [AggSpec("sum", _revenue(), "revenue")],
    )
    return db.run(Sort(grouped, [SortKey(col("revenue"), descending=True)]))


# -- Q6: forecasting revenue change ------------------------------------------------


def q6(db: Database, ik: str) -> list:
    lo, hi = date(1994, 1, 1), date(1995, 1, 1)
    scan = SeqScan(
        db.table("lineitem"),
        qual=and_(
            col("l_shipdate") >= lo,
            col("l_shipdate") < hi,
            between(col("l_discount"), 0.05, 0.07),
            col("l_quantity") < 24.0,
        ),
    )
    plan = Aggregate(scan, [AggSpec("sum", col("l_extendedprice") * col("l_discount"), "revenue")])
    return db.run(plan)


# -- Q7: volume shipping -------------------------------------------------------------


def q7(db: Database, ik: str) -> list:
    lo, hi = date(1995, 1, 1), date(1996, 12, 31)
    li = SeqScan(
        db.table("lineitem"), qual=and_(col("l_shipdate") >= lo, col("l_shipdate") <= hi)
    )
    j = _nl_eq(li, IndexScan(db.table("supplier"), "s_suppkey", index_kind=ik), "l_suppkey")
    j = _nl_eq(j, IndexScan(db.table("orders"), "o_orderkey", index_kind=ik), "l_orderkey")
    j = _nl_eq(j, IndexScan(db.table("customer"), "c_custkey", index_kind=ik), "o_custkey")
    n1 = Rename(
        IndexScan(db.table("nation"), "n_nationkey", index_kind=ik),
        {"n_nationkey": "n1_nationkey", "n_name": "supp_nation", "n_regionkey": "n1_regionkey", "n_comment": "n1_comment"},
    )
    j = _nl_eq(j, n1, "s_nationkey")
    n2 = Rename(
        IndexScan(db.table("nation"), "n_nationkey", index_kind=ik),
        {"n_nationkey": "n2_nationkey", "n_name": "cust_nation", "n_regionkey": "n2_regionkey", "n_comment": "n2_comment"},
    )
    j = _nl_eq(
        j,
        n2,
        "c_nationkey",
        qual=or_(
            and_(col("supp_nation") == "FRANCE", col("cust_nation") == "GERMANY"),
            and_(col("supp_nation") == "GERMANY", col("cust_nation") == "FRANCE"),
        ),
    )
    plan = _sorted_group(
        j,
        [col("supp_nation"), col("cust_nation"), _year("l_shipdate")],
        [
            (col("supp_nation"), "supp_nation"),
            (col("cust_nation"), "cust_nation"),
            (_year("l_shipdate"), "l_year"),
        ],
        [AggSpec("sum", _revenue(), "revenue")],
    )
    return db.run(plan)


# -- Q8: national market share ----------------------------------------------------------


def q8(db: Database, ik: str) -> list:
    lo, hi = date(1995, 1, 1), date(1996, 12, 31)
    part = SeqScan(db.table("part"), qual=col("p_type") == "ECONOMY ANODIZED STEEL")
    j = _nl_eq(part, IndexScan(db.table("lineitem"), "l_partkey", index_kind=ik), "p_partkey")
    j = _nl_eq(
        j,
        IndexScan(
            db.table("orders"),
            "o_orderkey",
            index_kind=ik,
            qual=and_(col("o_orderdate") >= lo, col("o_orderdate") <= hi),
        ),
        "l_orderkey",
    )
    j = _nl_eq(j, IndexScan(db.table("customer"), "c_custkey", index_kind=ik), "o_custkey")
    n1 = Rename(
        IndexScan(db.table("nation"), "n_nationkey", index_kind=ik),
        {"n_nationkey": "n1_nationkey", "n_name": "cust_nation", "n_regionkey": "cust_regionkey", "n_comment": "n1_comment"},
    )
    j = _nl_eq(j, n1, "c_nationkey")
    j = _nl_eq(
        j,
        IndexScan(db.table("region"), "r_regionkey", index_kind=ik, qual=col("r_name") == "AMERICA"),
        "cust_regionkey",
    )
    j = _nl_eq(j, IndexScan(db.table("supplier"), "s_suppkey", index_kind=ik), "l_suppkey")
    n2 = Rename(
        IndexScan(db.table("nation"), "n_nationkey", index_kind=ik),
        {"n_nationkey": "n2_nationkey", "n_name": "supp_nation", "n_regionkey": "supp_regionkey", "n_comment": "n2_comment"},
    )
    j = _nl_eq(j, n2, "s_nationkey")
    volume = _revenue()
    grouped = _sorted_group(
        j,
        [_year("o_orderdate")],
        [(_year("o_orderdate"), "o_year")],
        [
            AggSpec("sum", (col("supp_nation") == "BRAZIL") * volume, "brazil_volume"),
            AggSpec("sum", volume, "total_volume"),
        ],
    )
    plan = Project(
        grouped,
        [(col("o_year"), "o_year"), (col("brazil_volume") / col("total_volume"), "mkt_share")],
    )
    return db.run(plan)


# -- Q9: product type profit measure ---------------------------------------------------------


def q9(db: Database, ik: str) -> list:
    part = SeqScan(db.table("part"), qual=contains(col("p_name"), "green"))
    j = _nl_eq(part, IndexScan(db.table("lineitem"), "l_partkey", index_kind=ik), "p_partkey")
    j = _nl_eq(j, IndexScan(db.table("supplier"), "s_suppkey", index_kind=ik), "l_suppkey")
    # composite partsupp key: eq on ps_partkey plus suppkey qualification
    j = _nl_eq(
        j,
        IndexScan(db.table("partsupp"), "ps_partkey", index_kind=ik),
        "l_partkey",
        qual=col("ps_suppkey") == col("l_suppkey"),
    )
    j = _nl_eq(j, IndexScan(db.table("orders"), "o_orderkey", index_kind=ik), "l_orderkey")
    j = _nl_eq(j, IndexScan(db.table("nation"), "n_nationkey", index_kind=ik), "s_nationkey")
    amount = _revenue() - col("ps_supplycost") * col("l_quantity")
    grouped = _sorted_group(
        j,
        [col("n_name"), _year("o_orderdate")],
        [(col("n_name"), "nation"), (_year("o_orderdate"), "o_year")],
        [AggSpec("sum", amount, "sum_profit")],
    )
    plan = Sort(grouped, [SortKey(col("nation")), SortKey(col("o_year"), descending=True)])
    return db.run(plan)


# -- Q10: returned item reporting ---------------------------------------------------------------


def q10(db: Database, ik: str) -> list:
    lo, hi = date(1993, 10, 1), date(1994, 1, 1)
    cust = SeqScan(db.table("customer"))
    j = _nl_eq(
        cust,
        IndexScan(
            db.table("orders"),
            "o_custkey",
            index_kind=ik,
            qual=and_(col("o_orderdate") >= lo, col("o_orderdate") < hi),
        ),
        "c_custkey",
    )
    j = _nl_eq(
        j,
        IndexScan(db.table("lineitem"), "l_orderkey", index_kind=ik, qual=col("l_returnflag") == "R"),
        "o_orderkey",
    )
    j = _nl_eq(j, IndexScan(db.table("nation"), "n_nationkey", index_kind=ik), "c_nationkey")
    grouped = _sorted_group(
        j,
        [col("c_custkey")],
        [
            (col("c_custkey"), "c_custkey"),
            (col("c_name"), "c_name"),
            (col("c_acctbal"), "c_acctbal"),
            (col("c_phone"), "c_phone"),
            (col("n_name"), "n_name"),
            (col("c_address"), "c_address"),
        ],
        [AggSpec("sum", _revenue(), "revenue")],
    )
    plan = Limit(Sort(grouped, [SortKey(col("revenue"), descending=True)]), 20)
    return db.run(plan)


# -- Q11: important stock identification -----------------------------------------------------------


def _q11_joined(db: Database, ik: str) -> PlanNode:
    supp = SeqScan(db.table("supplier"))
    j = _nl_eq(
        supp,
        IndexScan(db.table("nation"), "n_nationkey", index_kind=ik, qual=col("n_name") == "GERMANY"),
        "s_nationkey",
    )
    return _nl_eq(j, IndexScan(db.table("partsupp"), "ps_suppkey", index_kind=ik), "s_suppkey")


def q11(db: Database, ik: str) -> list:
    value = col("ps_supplycost") * col("ps_availqty")
    # phase 1: total stock value (the uncorrelated scalar subquery)
    total_rows = db.run(Aggregate(_q11_joined(db, ik), [AggSpec("sum", value, "total")]))
    threshold = total_rows[0][0] * 0.0001
    # phase 2: per-part values above the threshold
    grouped = _sorted_group(
        _q11_joined(db, ik),
        [col("ps_partkey")],
        [(col("ps_partkey"), "ps_partkey")],
        [AggSpec("sum", value, "value")],
    )
    plan = Sort(
        Filter(grouped, col("value") > threshold),
        [SortKey(col("value"), descending=True)],
    )
    return db.run(plan)


# -- Q12: shipping modes and order priority ------------------------------------------------------------


def q12(db: Database, ik: str) -> list:
    lo, hi = date(1994, 1, 1), date(1995, 1, 1)
    li = SeqScan(
        db.table("lineitem"),
        qual=and_(
            or_(col("l_shipmode") == "MAIL", col("l_shipmode") == "SHIP"),
            col("l_commitdate") < col("l_receiptdate"),
            col("l_shipdate") < col("l_commitdate"),
            col("l_receiptdate") >= lo,
            col("l_receiptdate") < hi,
        ),
    )
    j = _nl_eq(li, IndexScan(db.table("orders"), "o_orderkey", index_kind=ik), "l_orderkey")
    high = or_(col("o_orderpriority") == "1-URGENT", col("o_orderpriority") == "2-HIGH")
    plan = _sorted_group(
        j,
        [col("l_shipmode")],
        [(col("l_shipmode"), "l_shipmode")],
        [
            AggSpec("sum", high * 1, "high_line_count"),
            AggSpec("sum", not_(high) * 1, "low_line_count"),
        ],
    )
    return db.run(plan)


# -- Q13: customer order-count distribution ----------------------------------------------------------------


def q13(db: Database, ik: str) -> list:
    """Distribution of order counts per customer.

    Substitution: SQL expresses this with a LEFT OUTER JOIN so customers
    with no orders appear with count 0; minidb has no outer joins, so the
    distribution covers customers with at least one qualifying order.
    """
    orders = SeqScan(db.table("orders"), qual=not_(contains(col("o_comment"), "special")))
    per_customer = _sorted_group(
        orders,
        [col("o_custkey")],
        [(col("o_custkey"), "c_custkey")],
        [AggSpec("count", None, "c_count")],
    )
    dist = _sorted_group(
        per_customer,
        [col("c_count")],
        [(col("c_count"), "c_count")],
        [AggSpec("count", None, "custdist")],
    )
    return db.run(
        Sort(dist, [SortKey(col("custdist"), descending=True), SortKey(col("c_count"), descending=True)])
    )


# -- Q14: promotion effect --------------------------------------------------------------------------------


def q14(db: Database, ik: str) -> list:
    lo, hi = date(1995, 9, 1), date(1995, 10, 1)
    li = SeqScan(
        db.table("lineitem"), qual=and_(col("l_shipdate") >= lo, col("l_shipdate") < hi)
    )
    j = _nl_eq(li, IndexScan(db.table("part"), "p_partkey", index_kind=ik), "l_partkey")
    rev = _revenue()
    agg = Aggregate(
        j,
        [
            AggSpec("sum", startswith(col("p_type"), "PROMO") * rev, "promo"),
            AggSpec("sum", rev, "total"),
        ],
    )
    plan = Project(agg, [(const(100.0) * col("promo") / col("total"), "promo_revenue")])
    return db.run(plan)


# -- Q15: top supplier ---------------------------------------------------------------------------------------


def _q15_revenue(db: Database, ik: str) -> PlanNode:
    lo, hi = date(1996, 1, 1), date(1996, 4, 1)
    li = SeqScan(
        db.table("lineitem"), qual=and_(col("l_shipdate") >= lo, col("l_shipdate") < hi)
    )
    return _sorted_group(
        li,
        [col("l_suppkey")],
        [(col("l_suppkey"), "supplier_no")],
        [AggSpec("sum", _revenue(), "total_revenue")],
    )


def q15(db: Database, ik: str) -> list:
    # phase 1: the view's maximum revenue (scalar subquery)
    max_rows = db.run(Aggregate(_q15_revenue(db, ik), [AggSpec("max", col("total_revenue"), "m")]))
    max_revenue = max_rows[0][0]
    if max_revenue is None:
        return []
    # phase 2: suppliers achieving it
    j = HashJoin(
        SeqScan(db.table("supplier")),
        Filter(_q15_revenue(db, ik), col("total_revenue") >= max_revenue),
        col("s_suppkey"),
        col("supplier_no"),
    )
    plan = Sort(
        Project(
            j,
            [
                (col("s_suppkey"), "s_suppkey"),
                (col("s_name"), "s_name"),
                (col("s_address"), "s_address"),
                (col("s_phone"), "s_phone"),
                (col("total_revenue"), "total_revenue"),
            ],
        ),
        [SortKey(col("s_suppkey"))],
    )
    return db.run(plan)


# -- Q16: parts/supplier relationship ---------------------------------------------------------------------------


def q16(db: Database, ik: str) -> list:
    sizes = (49, 14, 23, 45, 19, 3, 36, 9)
    part = SeqScan(
        db.table("part"),
        qual=and_(
            not_(col("p_brand") == "Brand#45"),
            not_(startswith(col("p_type"), "MEDIUM POLISHED")),
            or_(*[col("p_size") == s for s in sizes]),
        ),
    )
    j = _nl_eq(part, IndexScan(db.table("partsupp"), "ps_partkey", index_kind=ik), "p_partkey")
    j = _nl_eq(
        j,
        IndexScan(db.table("supplier"), "s_suppkey", index_kind=ik,
                  qual=not_(contains(col("s_comment"), "Customer Complaints"))),
        "ps_suppkey",
    )
    # COUNT(DISTINCT ps_suppkey): group once including suppkey, then re-group
    distinct = _sorted_group(
        j,
        [col("p_brand"), col("p_type"), col("p_size"), col("ps_suppkey")],
        [
            (col("p_brand"), "p_brand"),
            (col("p_type"), "p_type"),
            (col("p_size"), "p_size"),
            (col("ps_suppkey"), "ps_suppkey"),
        ],
        [AggSpec("count", None, "dup")],
    )
    # distinct's output is already sorted by (brand, type, size): group directly
    counted = GroupAggregate(
        distinct,
        [(col("p_brand"), "p_brand"), (col("p_type"), "p_type"), (col("p_size"), "p_size")],
        [AggSpec("count", None, "supplier_cnt")],
    )
    return db.run(
        Sort(
            counted,
            [
                SortKey(col("supplier_cnt"), descending=True),
                SortKey(col("p_brand")),
                SortKey(col("p_type")),
                SortKey(col("p_size")),
            ],
        )
    )


# -- Q17: small-quantity-order revenue ------------------------------------------------------------------------------


def _q17_part_lines(db: Database, ik: str) -> PlanNode:
    part = SeqScan(
        db.table("part"),
        qual=and_(col("p_brand") == "Brand#23", col("p_container") == "MED BOX"),
    )
    return _nl_eq(part, IndexScan(db.table("lineitem"), "l_partkey", index_kind=ik), "p_partkey")


def q17(db: Database, ik: str) -> list:
    avg_qty = _sorted_group(
        _q17_part_lines(db, ik),
        [col("p_partkey")],
        [(col("p_partkey"), "avg_partkey")],
        [AggSpec("avg", col("l_quantity"), "avg_qty")],
    )
    j = HashJoin(
        _q17_part_lines(db, ik),
        avg_qty,
        col("p_partkey"),
        col("avg_partkey"),
        qual=col("l_quantity") < const(0.2) * col("avg_qty"),
    )
    plan = Project(
        Aggregate(j, [AggSpec("sum", col("l_extendedprice"), "s")]),
        [(col("s") / 7.0, "avg_yearly")],
    )
    return db.run(plan)


QUERIES: dict[int, QuerySpec] = {
    spec.qid: spec
    for spec in (
        QuerySpec(1, "pricing summary report", q1),
        QuerySpec(2, "minimum cost supplier", q2),
        QuerySpec(3, "shipping priority", q3),
        QuerySpec(4, "order priority checking", q4),
        QuerySpec(5, "local supplier volume", q5),
        QuerySpec(6, "forecasting revenue change", q6),
        QuerySpec(7, "volume shipping", q7),
        QuerySpec(8, "national market share", q8),
        QuerySpec(9, "product type profit", q9),
        QuerySpec(10, "returned item reporting", q10),
        QuerySpec(11, "important stock identification", q11),
        QuerySpec(12, "shipping modes and order priority", q12),
        QuerySpec(13, "customer order-count distribution", q13),
        QuerySpec(14, "promotion effect", q14),
        QuerySpec(15, "top supplier", q15),
        QuerySpec(16, "parts/supplier relationship", q16),
        QuerySpec(17, "small-quantity-order revenue", q17),
    )
}


def build_query(qid: int) -> QuerySpec:
    try:
        return QUERIES[qid]
    except KeyError:
        raise KeyError(f"TPC-D defines queries 1-17; got {qid}") from None


def run_query(db: Database, qid: int, index_kind: str = "btree") -> list:
    """Execute one TPC-D query to completion (the paper's methodology)."""
    return build_query(qid).execute(db, index_kind)
