"""Deterministic TPC-D data generator (a compact dbgen).

Generates rows with the value distributions the 17 queries depend on
(market segments, order priorities, ship modes, part types/brands/
containers, date ranges and correlations). All randomness flows from named
streams of the root seed, so every scale factor reproduces bit-for-bit.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.tpcd.dates import DAYS_PER_YEAR, date
from repro.tpcd.schema import TPCD_TABLES
from repro.util.rng import stream

__all__ = [
    "generate_table",
    "populate",
    "REGIONS",
    "NATIONS",
    "SEGMENTS",
    "PRIORITIES",
    "SHIPMODES",
    "TYPE_SYLLABLES",
    "CONTAINERS",
    "P_NAME_WORDS",
]

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

#: (name, region index) — the 25 TPC-D nations.
NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
)

SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
SHIPMODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
SHIPINSTRUCT = ("DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN")

TYPE_SYLLABLES = (
    ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"),
    ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"),
    ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER"),
)
CONTAINERS = tuple(
    f"{a} {b}"
    for a in ("SM", "LG", "MED", "JUMBO", "WRAP")
    for b in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
)
P_NAME_WORDS = (
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "chartreuse", "chiffon",
    "chocolate", "coral", "cornflower", "cream", "cyan", "dark", "dim", "drab",
    "firebrick", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
    "green", "grey", "honeydew", "hot", "indian", "ivory", "khaki", "lace",
    "lavender", "lawn", "lemon", "light", "lime", "linen", "magenta", "maroon",
    "medium", "metallic", "midnight", "mint", "misty", "moccasin", "navajo",
    "navy", "olive", "orange", "orchid", "pale", "papaya", "peach", "peru",
    "pink", "plum", "powder", "puff", "purple", "red", "rose", "rosy",
    "royal", "saddle", "salmon", "sandy", "seashell", "sienna", "sky", "slate",
    "smoke", "snow", "spring", "steel", "tan", "thistle", "tomato", "turquoise",
    "violet", "wheat", "white", "yellow",
)
_COMMENT_WORDS = (
    "carefully", "quickly", "slyly", "furiously", "blithely", "deposits",
    "requests", "accounts", "packages", "instructions", "foxes", "pearls",
    "ideas", "theodolites", "pinto", "beans", "asymptotes", "dependencies",
    "Customer", "Complaints", "Recommends", "final", "express", "regular",
    "special", "bold", "even", "silent", "unusual", "pending",
)

_ORDER_DATE_MIN = date(1992, 1, 1)
_ORDER_DATE_MAX = date(1998, 8, 2)  # leaves room for ship/receipt offsets


def _comment(rng: np.random.Generator, n_words: int = 4) -> str:
    words = rng.choice(len(_COMMENT_WORDS), size=n_words)
    return " ".join(_COMMENT_WORDS[w] for w in words)


def _phone(rng: np.random.Generator, nationkey: int) -> str:
    return f"{10 + nationkey}-{rng.integers(100, 1000)}-{rng.integers(100, 1000)}-{rng.integers(1000, 10000)}"


def generate_table(name: str, scale: float, seed: int = 7) -> Iterator[tuple]:
    """Yield all rows of a TPC-D table at the given scale factor."""
    gen = _GENERATORS.get(name)
    if gen is None:
        raise ValueError(f"unknown TPC-D table {name!r}")
    return gen(scale, seed)


def _gen_region(scale: float, seed: int) -> Iterator[tuple]:
    rng = stream(seed, "dbgen", "region")
    for i, rname in enumerate(REGIONS):
        yield (i, rname, _comment(rng))


def _gen_nation(scale: float, seed: int) -> Iterator[tuple]:
    rng = stream(seed, "dbgen", "nation")
    for i, (nname, region) in enumerate(NATIONS):
        yield (i, nname, region, _comment(rng))


def _gen_supplier(scale: float, seed: int) -> Iterator[tuple]:
    rng = stream(seed, "dbgen", "supplier")
    n = TPCD_TABLES["supplier"].rows_at(scale)
    for key in range(1, n + 1):
        nation = int(rng.integers(0, len(NATIONS)))
        comment = _comment(rng)
        if rng.random() < 0.005:  # Q16's complaint filter needs these
            comment = "Customer Complaints " + comment
        yield (
            key,
            f"Supplier#{key:09d}",
            _comment(rng, 2),
            nation,
            _phone(rng, nation),
            round(float(rng.uniform(-999.99, 9999.99)), 2),
            comment,
        )


def _gen_customer(scale: float, seed: int) -> Iterator[tuple]:
    rng = stream(seed, "dbgen", "customer")
    n = TPCD_TABLES["customer"].rows_at(scale)
    for key in range(1, n + 1):
        nation = int(rng.integers(0, len(NATIONS)))
        yield (
            key,
            f"Customer#{key:09d}",
            _comment(rng, 2),
            nation,
            _phone(rng, nation),
            round(float(rng.uniform(-999.99, 9999.99)), 2),
            SEGMENTS[int(rng.integers(0, len(SEGMENTS)))],
            _comment(rng),
        )


def _gen_part(scale: float, seed: int) -> Iterator[tuple]:
    rng = stream(seed, "dbgen", "part")
    n = TPCD_TABLES["part"].rows_at(scale)
    for key in range(1, n + 1):
        t1, t2, t3 = (TYPE_SYLLABLES[i][int(rng.integers(0, len(TYPE_SYLLABLES[i])))] for i in range(3))
        mfgr = int(rng.integers(1, 6))
        brand = mfgr * 10 + int(rng.integers(1, 6))
        words = rng.choice(len(P_NAME_WORDS), size=5, replace=False)
        yield (
            key,
            " ".join(P_NAME_WORDS[w] for w in words),
            f"Manufacturer#{mfgr}",
            f"Brand#{brand}",
            f"{t1} {t2} {t3}",
            int(rng.integers(1, 51)),
            CONTAINERS[int(rng.integers(0, len(CONTAINERS)))],
            round(90000 + (key / 10) % 20001 + 100 * (key % 1000), 2) / 100,
            _comment(rng, 2),
        )


def _gen_partsupp(scale: float, seed: int) -> Iterator[tuple]:
    rng = stream(seed, "dbgen", "partsupp")
    n_parts = TPCD_TABLES["part"].rows_at(scale)
    n_supp = TPCD_TABLES["supplier"].rows_at(scale)
    # 4 suppliers per part, as in dbgen
    for partkey in range(1, n_parts + 1):
        for j in range(4):
            suppkey = 1 + (partkey + j * max(1, n_supp // 4)) % n_supp
            yield (
                partkey,
                suppkey,
                int(rng.integers(1, 10000)),
                round(float(rng.uniform(1.0, 1000.0)), 2),
                _comment(rng),
            )


def _order_dates(scale: float, seed: int) -> np.ndarray:
    """Order dates, index 0 = orderkey 1 — shared by orders and lineitem so
    l_shipdate correlates with o_orderdate exactly as dbgen's does."""
    n = TPCD_TABLES["orders"].rows_at(scale)
    return stream(seed, "dbgen", "odates").integers(_ORDER_DATE_MIN, _ORDER_DATE_MAX + 1, size=n)


def _gen_orders(scale: float, seed: int) -> Iterator[tuple]:
    rng = stream(seed, "dbgen", "orders")
    odates = _order_dates(scale, seed)
    n = TPCD_TABLES["orders"].rows_at(scale)
    n_cust = TPCD_TABLES["customer"].rows_at(scale)
    for key in range(1, n + 1):
        yield (
            key,
            1 + int(rng.integers(0, n_cust)),
            "FOP"[int(rng.integers(0, 3))],
            round(float(rng.uniform(1000.0, 450000.0)), 2),
            int(odates[key - 1]),
            PRIORITIES[int(rng.integers(0, len(PRIORITIES)))],
            f"Clerk#{int(rng.integers(1, 1001)):09d}",
            0,
            _comment(rng),
        )


def _gen_lineitem(scale: float, seed: int) -> Iterator[tuple]:
    """Line items are generated per order (1..7 lines, avg ~4, as in dbgen)."""
    rng = stream(seed, "dbgen", "lineitem")
    odates = _order_dates(scale, seed)
    n_orders = TPCD_TABLES["orders"].rows_at(scale)
    n_parts = TPCD_TABLES["part"].rows_at(scale)
    n_supp = TPCD_TABLES["supplier"].rows_at(scale)
    for orderkey in range(1, n_orders + 1):
        odate = int(odates[orderkey - 1])
        n_lines = 1 + int(rng.integers(0, 7))
        for lineno in range(1, n_lines + 1):
            partkey = 1 + int(rng.integers(0, n_parts))
            quantity = float(rng.integers(1, 51))
            extprice = round(quantity * float(rng.uniform(900.0, 1100.0)), 2)
            shipdate = odate + 1 + int(rng.integers(0, 121))
            commitdate = odate + 30 + int(rng.integers(0, 61))
            receiptdate = shipdate + 1 + int(rng.integers(0, 30))
            returnflag = ("R" if rng.random() < 0.5 else "A") if receiptdate <= date(1995, 6, 17) else "N"
            yield (
                orderkey,
                partkey,
                1 + (partkey + int(rng.integers(0, 4)) * max(1, n_supp // 4)) % n_supp,
                lineno,
                quantity,
                extprice,
                round(float(rng.integers(0, 11)) / 100.0, 2),
                round(float(rng.integers(0, 9)) / 100.0, 2),
                returnflag,
                "F" if shipdate <= date(1995, 6, 17) else "O",
                shipdate,
                commitdate,
                receiptdate,
                SHIPINSTRUCT[int(rng.integers(0, len(SHIPINSTRUCT)))],
                SHIPMODES[int(rng.integers(0, len(SHIPMODES)))],
                _comment(rng),
            )


_GENERATORS = {
    "region": _gen_region,
    "nation": _gen_nation,
    "supplier": _gen_supplier,
    "customer": _gen_customer,
    "part": _gen_part,
    "partsupp": _gen_partsupp,
    "orders": _gen_orders,
    "lineitem": _gen_lineitem,
}


def populate(db, scale: float, seed: int = 7) -> dict[str, int]:
    """Create and load all 8 tables into a Database; returns row counts."""
    counts = {}
    for name, spec in TPCD_TABLES.items():
        db.create_table(name, spec.columns)
        counts[name] = db.load(name, generate_table(name, scale, seed))
    return counts
