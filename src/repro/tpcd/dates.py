"""The synthetic TPC-D calendar.

Dates are stored as integer day numbers in a fixed 365-day calendar (no
leap years) starting 1992-01-01 = day 0. This keeps year extraction an
exact integer division — queries that group by year (Q7-Q9) rely on it —
while preserving the benchmark's date arithmetic (intervals in days).
"""

from __future__ import annotations

__all__ = ["date", "year_of", "START_YEAR", "DAYS_PER_YEAR"]

START_YEAR = 1992
DAYS_PER_YEAR = 365

_MONTH_DAYS = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)
_MONTH_START = tuple(sum(_MONTH_DAYS[:m]) for m in range(12))


def date(year: int, month: int, day: int) -> int:
    """Day number of a calendar date (1992-01-01 -> 0)."""
    if not 1 <= month <= 12:
        raise ValueError(f"month out of range: {month}")
    if not 1 <= day <= _MONTH_DAYS[month - 1]:
        raise ValueError(f"day out of range: {year}-{month}-{day}")
    return (year - START_YEAR) * DAYS_PER_YEAR + _MONTH_START[month - 1] + (day - 1)


def year_of(daynum: int) -> int:
    """Calendar year of a day number (exact in the 365-day calendar)."""
    return START_YEAR + daynum // DAYS_PER_YEAR
