"""TPC-D schema: the 8 tables, their key columns and scaled cardinalities.

Column subsets cover everything the 17 queries touch. Primary-key columns
get unique indexes and foreign-key columns get multiple-entry indexes, as
the paper's database setup specifies (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.minidb.tuples import Column, ColumnType

__all__ = ["TableSpec", "TPCD_TABLES", "table_cardinality"]

I, F, S, D = ColumnType.INT, ColumnType.FLOAT, ColumnType.STR, ColumnType.DATE


@dataclass(frozen=True)
class TableSpec:
    name: str
    columns: tuple[Column, ...]
    #: rows at scale factor 1.0 (None = fixed-size table)
    base_rows: int | None
    fixed_rows: int = 0
    #: single-column unique keys (unique index) and foreign keys (multi-entry
    #: index); composite keys are indexed on their leading column, multi-entry.
    unique_keys: tuple[str, ...] = ()
    foreign_keys: tuple[str, ...] = ()

    def rows_at(self, scale: float) -> int:
        if self.base_rows is None:
            return self.fixed_rows
        return max(1, round(self.base_rows * scale))


def _cols(*pairs) -> tuple[Column, ...]:
    return tuple(Column(n, t) for n, t in pairs)


TPCD_TABLES: dict[str, TableSpec] = {
    spec.name: spec
    for spec in (
        TableSpec(
            "region",
            _cols(("r_regionkey", I), ("r_name", S), ("r_comment", S)),
            base_rows=None,
            fixed_rows=5,
            unique_keys=("r_regionkey",),
        ),
        TableSpec(
            "nation",
            _cols(("n_nationkey", I), ("n_name", S), ("n_regionkey", I), ("n_comment", S)),
            base_rows=None,
            fixed_rows=25,
            unique_keys=("n_nationkey",),
            foreign_keys=("n_regionkey",),
        ),
        TableSpec(
            "supplier",
            _cols(
                ("s_suppkey", I),
                ("s_name", S),
                ("s_address", S),
                ("s_nationkey", I),
                ("s_phone", S),
                ("s_acctbal", F),
                ("s_comment", S),
            ),
            base_rows=10_000,
            unique_keys=("s_suppkey",),
            foreign_keys=("s_nationkey",),
        ),
        TableSpec(
            "customer",
            _cols(
                ("c_custkey", I),
                ("c_name", S),
                ("c_address", S),
                ("c_nationkey", I),
                ("c_phone", S),
                ("c_acctbal", F),
                ("c_mktsegment", S),
                ("c_comment", S),
            ),
            base_rows=150_000,
            unique_keys=("c_custkey",),
            foreign_keys=("c_nationkey",),
        ),
        TableSpec(
            "part",
            _cols(
                ("p_partkey", I),
                ("p_name", S),
                ("p_mfgr", S),
                ("p_brand", S),
                ("p_type", S),
                ("p_size", I),
                ("p_container", S),
                ("p_retailprice", F),
                ("p_comment", S),
            ),
            base_rows=200_000,
            unique_keys=("p_partkey",),
        ),
        TableSpec(
            "partsupp",
            _cols(
                ("ps_partkey", I),
                ("ps_suppkey", I),
                ("ps_availqty", I),
                ("ps_supplycost", F),
                ("ps_comment", S),
            ),
            base_rows=800_000,
            # composite PK (ps_partkey, ps_suppkey): both multi-entry
            foreign_keys=("ps_partkey", "ps_suppkey"),
        ),
        TableSpec(
            "orders",
            _cols(
                ("o_orderkey", I),
                ("o_custkey", I),
                ("o_orderstatus", S),
                ("o_totalprice", F),
                ("o_orderdate", D),
                ("o_orderpriority", S),
                ("o_clerk", S),
                ("o_shippriority", I),
                ("o_comment", S),
            ),
            base_rows=1_500_000,
            unique_keys=("o_orderkey",),
            foreign_keys=("o_custkey",),
        ),
        TableSpec(
            "lineitem",
            _cols(
                ("l_orderkey", I),
                ("l_partkey", I),
                ("l_suppkey", I),
                ("l_linenumber", I),
                ("l_quantity", F),
                ("l_extendedprice", F),
                ("l_discount", F),
                ("l_tax", F),
                ("l_returnflag", S),
                ("l_linestatus", S),
                ("l_shipdate", D),
                ("l_commitdate", D),
                ("l_receiptdate", D),
                ("l_shipinstruct", S),
                ("l_shipmode", S),
                ("l_comment", S),
            ),
            base_rows=None,  # derived: ~4 lines per order
            foreign_keys=("l_orderkey", "l_partkey", "l_suppkey"),
        ),
    )
}


def table_cardinality(name: str, scale: float) -> int:
    """Row count for a table at the given scale factor (lineitem is derived
    from orders at generation time; this returns its expected value)."""
    spec = TPCD_TABLES[name]
    if name == "lineitem":
        return TPCD_TABLES["orders"].rows_at(scale) * 4
    return spec.rows_at(scale)
