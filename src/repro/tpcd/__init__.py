"""TPC-D workload: schema, data generator, the 17 read-only queries, and
the paper's Training/Test workload definitions (Sections 3, 4 and 7).

"The TPC-D benchmark is just a data set and the queries on this data; it is
not an executable" (paper, Section 2.3) — accordingly this package only
*describes* data and plans; execution happens in minidb.
"""

from repro.tpcd.dates import date, year_of
from repro.tpcd.schema import TPCD_TABLES, table_cardinality
from repro.tpcd.dbgen import generate_table, populate
from repro.tpcd.queries import QUERIES, build_query
from repro.tpcd.workload import (
    TRAINING_QUERIES,
    TEST_QUERIES,
    build_database,
    capture_trace,
    Workload,
)

__all__ = [
    "date",
    "year_of",
    "TPCD_TABLES",
    "table_cardinality",
    "generate_table",
    "populate",
    "QUERIES",
    "build_query",
    "TRAINING_QUERIES",
    "TEST_QUERIES",
    "build_database",
    "capture_trace",
    "Workload",
]
