"""Workload definitions and trace capture (paper Sections 3, 4, 7).

* Training set: queries 3, 4, 5, 6 and 9 on the Btree-indexed database —
  used to obtain the profile the layout algorithms consume.
* Test set: queries 2, 3, 4, 6, 11, 12, 13, 14, 15 and 17, on both the
  Btree- and Hash-indexed databases — used for all simulation results.

All queries run to completion, and every table carries unique indexes on
primary keys plus multiple-entry indexes on foreign keys, in both index
kinds (one binary, two access-path variants — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.kernel.model import ColdCodeConfig, KernelModel
from repro.minidb.engine import Database
from repro.profiling.trace import BlockTrace
from repro.profiling.tracestore import TraceStore, TraceWriter
from repro.tpcd.dbgen import generate_table
from repro.tpcd.queries import run_query
from repro.tpcd.schema import TPCD_TABLES

__all__ = [
    "TRAINING_QUERIES",
    "TEST_QUERIES",
    "build_database",
    "capture_trace",
    "Workload",
    "WorkloadSettings",
]

TRAINING_QUERIES: tuple[int, ...] = (3, 4, 5, 6, 9)
TEST_QUERIES: tuple[int, ...] = (2, 3, 4, 6, 11, 12, 13, 14, 15, 17)


def build_database(
    scale: float = 0.01,
    *,
    seed: int = 7,
    page_capacity: int = 64,
    buffer_pages: int = 256,
    index_kinds: tuple[str, ...] = ("btree", "hash"),
) -> Database:
    """Create, index and load the TPC-D database at the given scale factor."""
    db = Database("tpcd", page_capacity=page_capacity, buffer_pages=buffer_pages)
    for name, spec in TPCD_TABLES.items():
        table = db.create_table(name, spec.columns)
        for kind in index_kinds:
            for column in spec.unique_keys:
                table.create_index(column, kind, unique=True)
            for column in spec.foreign_keys:
                table.create_index(column, kind)
        db.load(name, generate_table(name, scale, seed))
    return db


def capture_trace(
    db: Database,
    model: KernelModel,
    queries: tuple[int, ...],
    index_kinds: tuple[str, ...] = ("btree",),
    *,
    path: Path | str | None = None,
) -> BlockTrace | TraceStore:
    """Run queries under tracing; one trace run per (index kind, query).

    With ``path`` the trace streams to a chunked on-disk store as it is
    generated — peak memory stays one tracer flush buffer, independent of
    trace length — and the returned :class:`TraceStore` reads it back
    window by window. Without it, the trace accumulates in memory as a
    plain :class:`BlockTrace`. Both carry the bit-identical event stream.
    """
    if path is None:
        tracer = model.tracer()
        with tracer:
            for kind in index_kinds:
                for qid in queries:
                    run_query(db, qid, kind)
                    tracer.end_run()
        return tracer.take_trace()
    writer = TraceWriter(path)
    try:
        tracer = model.tracer(sink=writer)
        with tracer:
            for kind in index_kinds:
                for qid in queries:
                    run_query(db, qid, kind)
                    tracer.end_run()
        return writer.close()
    except BaseException:
        writer.abort()
        raise


@dataclass(frozen=True)
class WorkloadSettings:
    """Reproducible workload identity — the in-memory and on-disk cache key."""

    scale: float = 0.005
    seed: int = 7
    kernel_seed: int = 2029

    def build(self) -> "Workload":
        """Build the workload; traces stream to the artifact cache when on.

        With caching enabled the traces are captured straight into the
        chunked on-disk format (cache kind ``trace``, keyed by these
        settings), so generation memory is O(flush buffer) and every
        later simulation streams the stored file. With caching disabled
        the traces stay in memory, as before.
        """
        from repro.cache import cache_enabled, default_cache

        trace_paths = None
        if cache_enabled():
            cache = default_cache()
            trace_paths = (
                cache.file_path("trace", (self, "training"), suffix=".trace"),
                cache.file_path("trace", (self, "test"), suffix=".trace"),
            )
        workload = Workload.build(
            self.scale, seed=self.seed, kernel_seed=self.kernel_seed, trace_paths=trace_paths
        )
        workload.settings = self
        return workload


@dataclass(eq=False)
class Workload:
    """A fully built experimental setup: database, static image and traces.

    ``settings`` is stamped when the workload was built from a
    :class:`WorkloadSettings`; it is what keys the derived-artifact caches
    (profiles, suite results) — workloads built ad hoc (``settings is
    None``) are keyed per instance instead.
    """

    db: Database
    model: KernelModel
    training_trace: BlockTrace | TraceStore
    test_trace: BlockTrace | TraceStore
    settings: WorkloadSettings | None = None

    @classmethod
    def build(
        cls,
        scale: float = 0.01,
        *,
        seed: int = 7,
        kernel_seed: int = 2029,
        richness: float = 10.0,
        cold: ColdCodeConfig | None = None,
        buffer_pages: int = 256,
        training_queries: tuple[int, ...] = TRAINING_QUERIES,
        test_queries: tuple[int, ...] = TEST_QUERIES,
        trace_paths: tuple[Path | str, Path | str] | None = None,
    ) -> "Workload":
        """Build everything the experiments need (minutes at scale 0.01).

        ``trace_paths`` names (training, test) files to stream the traces
        into as they are captured; the workload then holds
        :class:`TraceStore` handles instead of in-memory arrays.
        """
        db = build_database(scale, seed=seed, buffer_pages=buffer_pages)
        model = db.kernel_model(seed=kernel_seed, richness=richness, cold=cold)
        training_path, test_path = trace_paths if trace_paths else (None, None)
        training = capture_trace(db, model, training_queries, ("btree",), path=training_path)
        test = capture_trace(db, model, test_queries, ("btree", "hash"), path=test_path)
        return cls(db=db, model=model, training_trace=training, test_trace=test)

    @property
    def program(self):
        return self.model.program
