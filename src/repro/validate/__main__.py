"""Run the full conformance suite: ``python -m repro.validate``.

Three layers, in order: the differential harness (production simulators
vs loop-literal oracles over generated cases), the metamorphic laws, and
the paper-shape gate over a small fixed-seed workload. Exits non-zero if
any layer finds a problem; ``--report`` writes the JSON conformance
report CI archives as a workflow artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.validate.gate import GATE_SCALE, run_validation


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="differential + metamorphic + paper-shape conformance checks",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed for generated cases")
    parser.add_argument(
        "--cases", type=int, default=200, help="differential cases to generate (default 200)"
    )
    parser.add_argument(
        "--law-rounds", type=int, default=12,
        help="rounds of each metamorphic law per window size (default 12)",
    )
    parser.add_argument(
        "--scale", type=float, default=GATE_SCALE,
        help=f"TPC-D scale of the paper-shape gate workload (default {GATE_SCALE})",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the gate suite"
    )
    parser.add_argument(
        "--skip-paper-shape", action="store_true",
        help="run only the differential and metamorphic layers (no workload build)",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH", help="write the JSON conformance report here"
    )
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    report = run_validation(
        args.seed,
        cases=args.cases,
        law_rounds=args.law_rounds,
        scale=args.scale,
        jobs=args.jobs,
        paper_shape=not args.skip_paper_shape,
    )
    elapsed = time.perf_counter() - t0
    report["elapsed_seconds"] = round(elapsed, 2)

    diff = report["differential"]
    laws = report["laws"]
    print(
        f"differential: {diff['cases']} cases, {len(diff['divergences'])} divergences"
    )
    for divergence in diff["divergences"][:10]:
        print(f"  DIVERGENCE {divergence['counter']}: {divergence['case']}")
    print(f"metamorphic: {laws['cases']} cases, {len(laws['violations'])} violations")
    for violation in laws["violations"][:10]:
        print(f"  VIOLATION {violation['law']} (seed {violation['seed']}): {violation['detail']}")
    if "paper_shape" in report:
        claims = report["paper_shape"]["claims"]
        n_failed = len(report["paper_shape"]["failed"])
        print(f"paper shape: {len(claims)} claims, {n_failed} failed")
        for claim in claims:
            if not claim["passed"]:
                print(f"  FAILED {claim['claim_id']}: {claim['description']} ({claim['detail']})")
    print(f"{'PASSED' if report['passed'] else 'FAILED'} in {elapsed:.1f}s")

    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.report}")
    if not report["passed"]:
        sys.exit(1)


if __name__ == "__main__":
    main()
