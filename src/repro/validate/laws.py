"""Metamorphic laws over the production simulators.

Each law states an equivalence or invariant that must hold for *any*
generated input, and checks it by running the production simulators on
both sides of the equivalence (the differential harness separately pins
production to the oracles, so the laws get bit-exact semantics for free):

* **concat ≡ chunked** — simulating a concatenated in-memory trace and
  the same trace streamed from an on-disk store (any stored chunk size)
  give identical counters at any simulation window, and the store
  round-trips the event stream byte for byte;
* **cold permutation** — permuting the addresses of never-executed
  blocks (among equal sizes, so the layout stays valid) changes no
  counter: fetch bandwidth is a property of the executed path only;
* **CFA conflict-freedom** — a trace touching only mapped sequences
  never conflict-misses inside the Conflict Free Area: every fully
  protected cache line misses exactly once (cold miss), regardless of
  how much other sequence code the trace interleaves;
* **fused group split** — :func:`~repro.simulators.fused.run_fused` over
  any partition of the (layout, stream) pairs equals the one-shot
  simulators, stream for stream;
* **shard split** — :func:`~repro.simulators.sharded.run_sharded` over
  any window-aligned partition of the *trace* (any shard count from the
  degenerate single shard up to one shard per window, serial or with
  worker processes) equals one fused pass, counters and carried state
  alike.

Every law is exercised both at a tiny simulation window (so fetch and
fill windows truncate at chunk boundaries many times per trace) and at a
window larger than the trace (the single-chunk fast path).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.cfg.blocks import INSTR_BYTES
from repro.cfg.layout import Layout
from repro.core.mapping import CacheGeometry, map_sequences
from repro.profiling.trace import BlockTrace
from repro.profiling.tracestore import TraceWriter
from repro.simulators.fetch import FetchStream, simulate_fetch
from repro.simulators.fused import run_fused
from repro.simulators.icache import CacheConfig, count_misses, miss_counter
from repro.simulators.sharded import run_sharded
from repro.simulators.tracecache import TraceCacheStream, simulate_trace_cache
from repro.validate.generators import (
    random_cache_configs,
    random_layout,
    random_program,
    random_trace,
    random_trace_cache_config,
)
from repro.validate.oracles import oracle_direct_mapped

__all__ = [
    "LAW_CHUNK_EVENTS",
    "law_cfa_conflict_free",
    "law_cold_permutation",
    "law_concat_vs_chunked",
    "law_fused_group_split",
    "law_shard_split",
    "run_laws",
]

#: Simulation windows every law runs at: chunk-boundary-heavy and
#: single-chunk.
LAW_CHUNK_EVENTS = (7, 1_000_000)


def _counters(trace, program, layout, configs, tc_config, *, line_bytes, chunk_events) -> dict:
    """Every observable counter of the one-shot production simulators."""
    fetch = simulate_fetch(
        trace, program, layout, line_bytes=line_bytes, chunk_events=chunk_events
    )
    lines = (
        np.concatenate(fetch.line_chunks).tolist() if fetch.line_chunks else []
    )
    out = {
        "fetch.n_instructions": fetch.n_instructions,
        "fetch.n_fetches": fetch.n_fetches,
        "fetch.n_taken": fetch.n_taken,
        "fetch.lines": tuple(lines),
    }
    for config in configs:
        key = f"miss/{config.size_bytes}/{config.associativity}/{config.victim_lines}"
        out[key] = count_misses(fetch.line_chunks, config)
    tc = simulate_trace_cache(
        trace, program, layout, tc_config, line_bytes=line_bytes, chunk_events=chunk_events
    )
    miss_lines = (
        np.concatenate(tc.miss_line_chunks).tolist() if tc.miss_line_chunks else []
    )
    out["tc.n_hits"] = tc.n_hits
    out["tc.n_misses"] = tc.n_misses
    out["tc.miss_lines"] = tuple(miss_lines)
    return out


def _diff_keys(a: dict, b: dict) -> list[str]:
    return [key for key in a if a[key] != b.get(key)]


# -- law 1: trace concatenation ≡ chunked/stored simulation ----------------


def law_concat_vs_chunked(
    rng: np.random.Generator, tmp_dir: Path, chunk_events: int
) -> list[str]:
    program = random_program(rng)
    layout = random_layout(rng, program)
    runs = [
        trace
        for trace in (random_trace(rng, program, max_events=120) for _ in range(int(rng.integers(1, 5))))
        if len(trace)
    ]
    if not runs:
        return []
    trace = BlockTrace.concatenate(runs)
    stored_chunk = int(rng.choice((2, 5, 64, 10_000)))
    path = tmp_dir / f"law1-{rng.integers(1 << 31)}.trc"
    with TraceWriter(path, chunk_events=stored_chunk) as writer:
        for run in runs:
            writer.append_events(run.events)
            writer.end_run()
    store_path = path  # writer renamed tmp onto path on close

    from repro.profiling.tracestore import TraceStore

    store = TraceStore(store_path)
    violations: list[str] = []
    if not np.array_equal(store.materialize().events, trace.events):
        violations.append("store round-trip changed the event stream")
    configs = random_cache_configs(rng)
    tc_config = random_trace_cache_config(rng)
    line_bytes = configs[0].line_bytes
    mem = _counters(
        trace, program, layout, configs, tc_config,
        line_bytes=line_bytes, chunk_events=chunk_events,
    )
    disk = _counters(
        store, program, layout, configs, tc_config,
        line_bytes=line_bytes, chunk_events=chunk_events,
    )
    for key in _diff_keys(mem, disk):
        violations.append(
            f"in-memory vs stored (stored_chunk={stored_chunk}) differ on {key}"
        )
    return violations


# -- law 2: permuting cold blocks changes nothing --------------------------


def law_cold_permutation(rng: np.random.Generator, chunk_events: int) -> list[str]:
    program = random_program(rng)
    layout = random_layout(rng, program)
    trace = random_trace(rng, program)
    executed = set(trace.block_ids().tolist())
    cold_by_size: dict[int, list[int]] = {}
    for block in range(program.n_blocks):
        if block not in executed:
            cold_by_size.setdefault(int(program.block_size[block]), []).append(block)

    address = layout.address.copy()
    swapped = False
    for group in cold_by_size.values():
        if len(group) < 2:
            continue
        permuted = list(group)
        rng.shuffle(permuted)
        address[group] = layout.address[permuted]
        swapped = True
    if not swapped:
        return []
    shuffled = Layout(name="cold-permuted", address=address)
    shuffled.validate(program)

    configs = random_cache_configs(rng)
    tc_config = random_trace_cache_config(rng)
    line_bytes = configs[0].line_bytes
    base = _counters(
        trace, program, layout, configs, tc_config,
        line_bytes=line_bytes, chunk_events=chunk_events,
    )
    after = _counters(
        trace, program, shuffled, configs, tc_config,
        line_bytes=line_bytes, chunk_events=chunk_events,
    )
    return [
        f"cold-block permutation changed {key}" for key in _diff_keys(base, after)
    ]


# -- law 3: CFA-mapped sequences never conflict-miss -----------------------


def law_cfa_conflict_free(rng: np.random.Generator, chunk_events: int) -> list[str]:
    program = random_program(rng)
    line_bytes = 32
    cache_bytes = int(rng.choice((256, 512)))
    cfa_bytes = line_bytes * int(rng.integers(1, cache_bytes // line_bytes))
    geometry = CacheGeometry(cache_bytes=cache_bytes, cfa_bytes=cfa_bytes, line_bytes=line_bytes)

    # carve random disjoint sequences out of the block set
    blocks = rng.permutation(program.n_blocks).tolist()
    sequences: list[list[int]] = []
    at = 0
    while at < len(blocks) and len(sequences) < 6:
        take = int(rng.integers(1, 4))
        sequences.append(blocks[at : at + take])
        at += take
    if not sequences:
        return []
    n_cfa_candidates = int(rng.integers(1, len(sequences) + 1))
    cfa_candidates = sequences[:n_cfa_candidates]
    rest = sequences[n_cfa_candidates:]

    # replay map_sequences' greedy whole-sequence admission to learn which
    # candidates actually land in the CFA
    sizes = program.block_size.astype(np.int64) * INSTR_BYTES
    budget = geometry.cfa_bytes
    in_cfa: set[int] = set()
    for seq in cfa_candidates:
        seq_size = int(sizes[list(seq)].sum())
        if seq_size <= budget:
            in_cfa.update(seq)
            budget -= seq_size
    layout = map_sequences(
        program, rest, geometry, name="cfa-law", cfa_sequences=cfa_candidates
    )

    violations: list[str] = []
    for block in in_cfa:
        start = int(layout.address[block])
        end = start + int(sizes[block])
        if start < 0 or end > geometry.cfa_bytes:
            violations.append(f"CFA block {block} placed at [{start}, {end}) outside the CFA")
    if not in_cfa:
        return violations

    # Trace only mapped sequence blocks whose line footprint stays out of
    # the protected sets. Two mapped shapes legitimately reach into them
    # and are excluded: sequences too long for a logical cache's free area
    # (placed straddling a reserved window — self-conflict is accepted),
    # and SEQ.3's second-line access spilling from the line just before a
    # reserved window.
    protected_lines = geometry.cfa_bytes // line_bytes  # cfa is line-aligned
    cache_lines = cache_bytes // line_bytes

    def conflict_free(block: int) -> bool:
        first = int(layout.address[block]) // line_bytes
        last = (int(layout.address[block]) + int(sizes[block]) - 1) // line_bytes
        return all(
            line < protected_lines or line % cache_lines >= protected_lines
            for line in range(first, last + 2)  # +1: SEQ.3 next-line access
        )

    hot = sorted(
        block
        for block in in_cfa.union(b for seq in sequences for b in seq)
        if conflict_free(block)
    )
    if not hot:
        return violations
    events = [int(rng.choice(hot)) for _ in range(int(rng.integers(1, 400)))]
    trace = BlockTrace(np.asarray(events, dtype=np.int32))

    fetch = simulate_fetch(
        trace, program, layout, line_bytes=line_bytes, chunk_events=chunk_events
    )
    lines = np.concatenate(fetch.line_chunks).tolist() if fetch.line_chunks else []
    config = CacheConfig(size_bytes=cache_bytes, line_bytes=line_bytes)
    _, per_line = oracle_direct_mapped(lines, config, per_line=True)
    for line, miss_count in per_line.items():
        if line < protected_lines and miss_count != 1:
            violations.append(
                f"protected line {line} missed {miss_count} times (conflict in the CFA)"
            )
    return violations


# -- law 4: fused group results ≡ per-task results for any split -----------


def _fetch_signature(stream: FetchStream, counters) -> tuple:
    return (
        stream.n_instructions,
        stream.n_fetches,
        stream.n_taken,
        tuple(counter.misses for counter in counters),
    )


def _tc_signature(stream: TraceCacheStream, counters) -> tuple:
    return (
        stream.n_instructions,
        stream.n_hits,
        stream.n_misses,
        stream.n_taken,
        tuple(counter.misses for counter in counters),
    )


def law_fused_group_split(rng: np.random.Generator, chunk_events: int) -> list[str]:
    program = random_program(rng)
    trace = random_trace(rng, program)
    layouts = [random_layout(rng, program, name=f"L{i}") for i in range(int(rng.integers(1, 4)))]
    configs = random_cache_configs(rng)
    tc_config = random_trace_cache_config(rng)
    line_bytes = configs[0].line_bytes

    def build_pairs():
        """Fresh (layout, stream, counters, kind) tuples for one variant."""
        units = []
        for layout in layouts:
            fetch_counters = [miss_counter(config) for config in configs]
            units.append(
                (
                    layout,
                    FetchStream(layout.name, line_bytes=line_bytes, consumers=fetch_counters),
                    fetch_counters,
                    "fetch",
                )
            )
            tc_counters = [miss_counter(config) for config in configs]
            units.append(
                (
                    layout,
                    TraceCacheStream(
                        layout.name, tc_config, line_bytes=line_bytes, consumers=tc_counters
                    ),
                    tc_counters,
                    "tc",
                )
            )
        return units

    def signatures(units) -> list[tuple]:
        return [
            _fetch_signature(stream, counters)
            if kind == "fetch"
            else _tc_signature(stream, counters)
            for _, stream, counters, kind in units
        ]

    # reference: every stream fed in its own pass
    solo = build_pairs()
    for layout, stream, _, _ in solo:
        run_fused(trace, program, [(layout, stream)], chunk_events=chunk_events)
    reference = signatures(solo)

    # all streams in one fused pass
    fused_all = build_pairs()
    run_fused(
        trace,
        program,
        [(layout, stream) for layout, stream, _, _ in fused_all],
        chunk_events=chunk_events,
    )

    # a random partition of the streams, one fused pass per group
    split = build_pairs()
    order = rng.permutation(len(split)).tolist()
    n_groups = int(rng.integers(1, len(split) + 1))
    groups: list[list] = [[] for _ in range(n_groups)]
    for slot, unit_index in enumerate(order):
        groups[slot % n_groups].append(split[unit_index])
    for group in groups:
        if group:
            run_fused(
                trace,
                program,
                [(layout, stream) for layout, stream, _, _ in group],
                chunk_events=chunk_events,
            )

    violations: list[str] = []
    for label, units in (("all-in-one", fused_all), ("split", split)):
        for unit, reference_sig, sig in zip(solo, reference, signatures(units)):
            if sig != reference_sig:
                _, stream, _, kind = unit
                violations.append(
                    f"fused {label} {kind} stream {stream.layout_name!r}: "
                    f"{sig} != solo {reference_sig}"
                )
    return violations


# -- law 5: sharded trace-split results ≡ one fused pass -------------------


def _state_equal(a, b) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(_state_equal(a[k], b[k]) for k in a)
    if isinstance(a, np.ndarray):
        return a.shape == b.shape and bool((a == b).all())
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(_state_equal(x, y) for x, y in zip(a, b))
    return a == b


def law_shard_split(rng: np.random.Generator, chunk_events: int) -> list[str]:
    """Sharded simulation is invariant to the shard partition and equal to
    one fused pass — counters *and* carried state (per-set cache tags,
    victim buffer, trace-cache entries)."""
    program = random_program(rng)
    trace = random_trace(rng, program)
    layouts = [
        random_layout(rng, program, name=f"L{i}") for i in range(int(rng.integers(1, 3)))
    ]
    configs = random_cache_configs(rng)
    tc_config = random_trace_cache_config(rng)
    line_bytes = configs[0].line_bytes

    def build_units():
        units = []
        for layout in layouts:
            fetch_counters = [miss_counter(config) for config in configs]
            units.append(
                (
                    layout,
                    FetchStream(layout.name, line_bytes=line_bytes, consumers=fetch_counters),
                    fetch_counters,
                    "fetch",
                )
            )
            tc_counters = [miss_counter(config) for config in configs]
            units.append(
                (
                    layout,
                    TraceCacheStream(
                        layout.name, tc_config, line_bytes=line_bytes, consumers=tc_counters
                    ),
                    tc_counters,
                    "tc",
                )
            )
        return units

    def observe(units) -> list[tuple]:
        out = []
        for _, stream, counters, kind in units:
            sig = (
                _fetch_signature(stream, counters)
                if kind == "fetch"
                else _tc_signature(stream, counters)
            )
            states = [counter.state_dict() for counter in counters]
            if kind == "tc":
                states.append(stream.state_dict())
            out.append((sig, states))
        return out

    fused = build_units()
    run_fused(
        trace,
        program,
        [(layout, stream) for layout, stream, _, _ in fused],
        chunk_events=chunk_events,
    )
    reference = observe(fused)

    n_windows = max(1, -(-len(trace) // chunk_events))
    shard_counts = sorted({1, int(rng.integers(1, n_windows + 2)), n_windows})
    violations: list[str] = []
    for shards in shard_counts:
        jobs = int(rng.integers(1, 3))
        sharded = build_units()
        run_sharded(
            trace,
            program,
            [(layout, stream) for layout, stream, _, _ in sharded],
            chunk_events=chunk_events,
            shards=shards,
            jobs=jobs,
        )
        for unit, (ref_sig, ref_states), (sig, states) in zip(
            fused, reference, observe(sharded)
        ):
            _, stream, _, kind = unit
            if sig != ref_sig:
                violations.append(
                    f"sharded (shards={shards}, jobs={jobs}) {kind} stream "
                    f"{stream.layout_name!r}: {sig} != fused {ref_sig}"
                )
            elif not _state_equal(states, ref_states):
                violations.append(
                    f"sharded (shards={shards}, jobs={jobs}) {kind} stream "
                    f"{stream.layout_name!r}: carried state diverged from fused"
                )
    return violations


def run_laws(seed: int, rounds: int = 12) -> tuple[int, list[dict]]:
    """Run every law ``rounds`` times at each window size.

    Returns ``(cases run, violations)``; each violation carries the law
    name, the case seed and the window size for standalone reproduction.
    """
    laws = {
        "concat_vs_chunked": None,  # needs a temp dir, handled below
        "cold_permutation": law_cold_permutation,
        "cfa_conflict_free": law_cfa_conflict_free,
        "fused_group_split": law_fused_group_split,
        "shard_split": law_shard_split,
    }
    case_seeds = np.random.SeedSequence(seed).generate_state(rounds)
    n_cases = 0
    violations: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="repro-validate-") as tmp:
        tmp_dir = Path(tmp)
        for case_seed in case_seeds.tolist():
            for chunk_events in LAW_CHUNK_EVENTS:
                for name, law in laws.items():
                    rng = np.random.default_rng(int(case_seed))
                    if law is None:
                        found = law_concat_vs_chunked(rng, tmp_dir, chunk_events)
                    else:
                        found = law(rng, chunk_events)
                    n_cases += 1
                    violations.extend(
                        {
                            "law": name,
                            "seed": int(case_seed),
                            "chunk_events": chunk_events,
                            "detail": detail,
                        }
                        for detail in found
                    )
    return n_cases, violations
