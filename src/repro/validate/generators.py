"""Seeded random-input generators for the validation harness.

One generator family serves two consumers:

* the differential CLI (``python -m repro.validate``) draws cases from a
  single ``numpy`` generator seeded by ``--seed``, so a CI failure is
  reproducible from the seed in the conformance report;
* the Hypothesis property tests draw the *parameters* (seed, chunk size,
  cache geometry) with Hypothesis strategies and call these same
  functions, so shrinking still works at the parameter level.

The traces produced here are deliberately adversarial for the chunked
simulators: heavy sequential runs (to exercise fall-through detection),
random jumps, separators in random places, and window sizes small enough
that nearly every fetch window straddles a chunk boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cfg.blocks import INSTR_BYTES, BlockKind
from repro.cfg.layout import Layout
from repro.cfg.program import Program, ProgramBuilder
from repro.profiling.trace import SEPARATOR, BlockTrace
from repro.simulators.icache import CacheConfig
from repro.simulators.tracecache import TraceCacheConfig

__all__ = [
    "CHUNK_EVENT_CHOICES",
    "GeneratedCase",
    "random_cache_configs",
    "random_case",
    "random_layout",
    "random_program",
    "random_trace",
    "random_trace_cache_config",
]

#: Window sizes fed to ``iter_events``; the small ones guarantee many
#: windows and therefore many chunk-boundary truncations per case.
CHUNK_EVENT_CHOICES = (3, 7, 17, 64, 1000)

_KIND_CHOICES = (
    int(BlockKind.FALL_THROUGH),
    int(BlockKind.BRANCH),
    int(BlockKind.CALL),
    int(BlockKind.RETURN),
)


def random_program(rng: np.random.Generator) -> Program:
    """A small random program: 1-6 procedures of 1-8 blocks each."""
    builder = ProgramBuilder()
    n_procs = int(rng.integers(1, 7))
    for pid in range(n_procs):
        n_blocks = int(rng.integers(1, 9))
        sizes = [int(s) for s in rng.integers(1, 13, size=n_blocks)]
        kinds = [_KIND_CHOICES[int(k)] for k in rng.integers(0, 4, size=n_blocks)]
        builder.add_procedure(
            f"proc{pid}",
            "gen",
            sizes,
            kinds,
            is_operation=bool(rng.integers(0, 2)),
        )
    return builder.build()


def random_layout(rng: np.random.Generator, program: Program, name: str = "gen") -> Layout:
    """A random valid layout: original, permuted-contiguous, or gapped.

    Gapped layouts shuffle the block order and insert random
    instruction-aligned holes between blocks — the shape the CFA mapping
    produces — so address arithmetic is tested away from the contiguous
    fast case.
    """
    mode = int(rng.integers(0, 3))
    if mode == 0:
        return Layout(name=f"{name}-orig", address=Layout.original(program).address)
    order = rng.permutation(program.n_blocks)
    if mode == 1:
        return Layout.from_order(program, order, name=f"{name}-perm")
    name = f"{name}-gap"
    address = np.empty(program.n_blocks, dtype=np.int64)
    cursor = int(rng.integers(0, 4)) * INSTR_BYTES
    for block in order.tolist():
        cursor += int(rng.integers(0, 6)) * INSTR_BYTES  # random hole
        address[block] = cursor
        cursor += int(program.block_size[block]) * INSTR_BYTES
    layout = Layout(name=name, address=address)
    layout.validate(program)
    return layout


def random_trace(
    rng: np.random.Generator,
    program: Program,
    *,
    max_events: int = 600,
) -> BlockTrace:
    """A random trace with sequential bursts, jumps and run separators.

    With probability ~1/2 the next event continues sequentially
    (``id + 1``), which — under the original layout — produces genuine
    fall-through transitions; otherwise it jumps to a random block.
    Separators appear with small probability, including back-to-back and
    at the very start/end of the trace.
    """
    n_blocks = program.n_blocks
    n_events = int(rng.integers(0, max_events + 1))
    events: list[int] = []
    current = int(rng.integers(0, n_blocks))
    for _ in range(n_events):
        roll = rng.random()
        if roll < 0.08:
            events.append(SEPARATOR)
            current = int(rng.integers(0, n_blocks))
            continue
        if roll < 0.55 and current + 1 < n_blocks:
            current += 1
        else:
            current = int(rng.integers(0, n_blocks))
        events.append(current)
    return BlockTrace(np.asarray(events, dtype=np.int32))


def random_cache_configs(rng: np.random.Generator) -> list[CacheConfig]:
    """A direct-mapped, a 2-way and a victim configuration, tiny enough
    that random traces actually conflict."""
    line_bytes = int(rng.choice((16, 32, 64)))
    sets = int(rng.choice((4, 8, 16, 32)))
    victim_lines = int(rng.choice((1, 4, 16)))
    return [
        CacheConfig(size_bytes=sets * line_bytes, line_bytes=line_bytes),
        CacheConfig(size_bytes=2 * sets * line_bytes, line_bytes=line_bytes, associativity=2),
        CacheConfig(size_bytes=sets * line_bytes, line_bytes=line_bytes, victim_lines=victim_lines),
    ]


def random_trace_cache_config(rng: np.random.Generator) -> TraceCacheConfig:
    """A tiny trace cache so random traces see evictions and stale hits."""
    return TraceCacheConfig(
        n_entries=int(rng.choice((4, 8, 16, 64))),
        trace_instructions=int(rng.choice((8, 16))),
        branch_limit=int(rng.choice((2, 3))),
    )


@dataclass
class GeneratedCase:
    """One full differential test case."""

    seed: int
    program: Program
    layout: Layout
    trace: BlockTrace
    chunk_events: int
    cache_configs: list[CacheConfig]
    tc_config: TraceCacheConfig

    def describe(self) -> dict:
        """JSON-serializable reproduction recipe for the report."""
        return {
            "seed": self.seed,
            "n_blocks": self.program.n_blocks,
            "n_events": len(self.trace),
            "chunk_events": self.chunk_events,
            "layout_mode": self.layout.name,
            "tc_entries": self.tc_config.n_entries,
        }


def random_case(seed: int) -> GeneratedCase:
    """Build the full differential case for ``seed`` (deterministic)."""
    rng = np.random.default_rng(seed)
    program = random_program(rng)
    layout = random_layout(rng, program)
    trace = random_trace(rng, program)
    chunk_events = int(rng.choice(CHUNK_EVENT_CHOICES))
    return GeneratedCase(
        seed=seed,
        program=program,
        layout=layout,
        trace=trace,
        chunk_events=chunk_events,
        cache_configs=random_cache_configs(rng),
        tc_config=random_trace_cache_config(rng),
    )
