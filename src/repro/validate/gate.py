"""The machine-checked paper-shape gate.

EXPERIMENTS.md states the qualitative claims the reproduction makes about
Ramírez et al.'s tables and figures; this module turns each into an
executable check over a small fixed-seed workload:

* **Figure 3** — the trace builder reproduces the paper's worked example
  *exactly*: main trace ``A1 A2 A3 A4 C1 C2 C3 C4 A7 A8``, secondary
  ``[A5]``, discarded ``A6, B1, C5``;
* **Table 1** — a small fraction of the static program executes (bounds,
  not point values: the kernel model is scale-dependent);
* **Table 2** — fall-through/call/return blocks are fully predictable,
  branches dominate the dynamic mix, overall predictability is high;
* **Figure 2** — references concentrate in few blocks (monotone curve,
  ≥ 70 % in the 1000 hottest);
* **Table 3** — every profile-guided layout (P&H, Torr, auto, ops) beats
  the original layout's miss rate at every grid row, and the hardware
  alternatives (2-way, victim) beat the original direct-mapped cache;
* **Table 4** — every profile-guided layout beats the original layout's
  fetch bandwidth; the combined STC+trace-cache beats both the trace
  cache alone and the STC layout alone at every row, and is the best
  configuration outright at the largest cache of the gate grid.

The checks run on the gate workload (scale 0.0005 by default — small
enough for CI, large enough that every ordering above holds with margin)
and produce a JSON-serializable claim list;
:func:`run_validation` bundles them with the differential and metamorphic
results into the conformance report that ``python -m repro.validate``
writes and CI archives.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.cfg.blocks import BlockKind

__all__ = [
    "Claim",
    "GATE_GRID",
    "GATE_SCALE",
    "check_figure3",
    "check_paper_shape",
    "run_validation",
]

#: Gate workload: small and fixed-seed (WorkloadSettings defaults for the
#: seeds), sized so the full suite runs in well under a minute in CI.
GATE_SCALE = 0.0005
#: One row per cache size; (32, 4) doubles as the "largest cache" row for
#: the combined-best claim.
GATE_GRID = ((8, 2), (16, 4), (32, 4))

#: Figure 3's expected output (paper Section 5.2 worked example).
FIGURE3_MAIN = ["A1", "A2", "A3", "A4", "C1", "C2", "C3", "C4", "A7", "A8"]
FIGURE3_SECONDARY = [["A5"]]
FIGURE3_DISCARDED = {"A6", "B1", "C5"}


@dataclass
class Claim:
    """One machine-checked qualitative claim from EXPERIMENTS.md."""

    claim_id: str
    description: str
    passed: bool
    detail: str


def _claim(claims: list[Claim], claim_id: str, description: str, passed: bool, detail: str) -> None:
    claims.append(Claim(claim_id=claim_id, description=description, passed=bool(passed), detail=detail))


def check_figure3() -> list[Claim]:
    """Figure 3: the trace-building worked example, matched exactly."""
    from repro.experiments import figure3

    sequences, discarded = figure3.compute()
    claims: list[Claim] = []
    main = sequences[0] if sequences else []
    _claim(
        claims,
        "figure3.main_trace",
        "main trace is exactly A1 A2 A3 A4 C1 C2 C3 C4 A7 A8",
        main == FIGURE3_MAIN,
        f"got {' '.join(main) or '(empty)'}",
    )
    _claim(
        claims,
        "figure3.secondary",
        "the only secondary trace is [A5]",
        sequences[1:] == FIGURE3_SECONDARY,
        f"got {sequences[1:]}",
    )
    _claim(
        claims,
        "figure3.discarded",
        "A6, B1 and C5 fall below the thresholds and are discarded",
        set(discarded) == FIGURE3_DISCARDED,
        f"got {sorted(discarded)}",
    )
    return claims


def _check_table1(workload) -> list[Claim]:
    from repro.experiments import table1

    rows = table1.compute(workload)
    claims: list[Claim] = []
    for element, (total, executed, pct) in rows.items():
        _claim(
            claims,
            f"table1.fraction[{element}]",
            f"only a small fraction of {element} executes (0 < executed < total, 1-60%)",
            0 < executed < total and 1.0 <= pct <= 60.0,
            f"{executed}/{total} = {pct:.1f}%",
        )
    return claims


def _check_table2(workload) -> list[Claim]:
    from repro.experiments import table2

    mix, determinism = table2.compute(workload)
    claims: list[Claim] = []
    for kind in (BlockKind.FALL_THROUGH, BlockKind.CALL, BlockKind.RETURN):
        _claim(
            claims,
            f"table2.fully_predictable[{kind.name}]",
            f"{kind.name} blocks have exactly one dynamic successor",
            mix.predictable[kind] == 1.0,
            f"predictable = {100 * mix.predictable[kind]:.1f}%",
        )
    branch_share = mix.dynamic[BlockKind.BRANCH]
    _claim(
        claims,
        "table2.branches_dominate",
        "branch blocks dominate the dynamic mix",
        branch_share == max(mix.dynamic.values()),
        f"dynamic branch share = {100 * branch_share:.1f}%",
    )
    _claim(
        claims,
        "table2.overall_predictable",
        "most transitions are predictable (>= 60%, paper ~80%)",
        mix.overall_predictable >= 0.6,
        f"overall = {100 * mix.overall_predictable:.1f}%",
    )
    _claim(
        claims,
        "table2.determinism",
        "execution-weighted transition determinism is high (50-100%)",
        0.5 <= determinism <= 1.0,
        f"determinism = {100 * determinism:.1f}%",
    )
    return claims


def _check_figure2(workload) -> list[Claim]:
    from repro.experiments import figure2

    data = figure2.compute(workload)
    claims: list[Claim] = []
    fractions = [fraction for _, fraction in data.curve_samples]
    _claim(
        claims,
        "figure2.monotone",
        "the cumulative reference curve is nondecreasing",
        all(b >= a for a, b in zip(fractions, fractions[1:])),
        f"samples = {[(n, round(f, 4)) for n, f in data.curve_samples]}",
    )
    at_1000 = dict(data.curve_samples).get(1000, 0.0)
    _claim(
        claims,
        "figure2.concentration",
        "the 1000 hottest blocks capture most references (>= 70%, paper ~90%)",
        at_1000 >= 0.70,
        f"hottest 1000 capture {100 * at_1000:.1f}%",
    )
    _claim(
        claims,
        "figure2.coverage_order",
        "90% coverage needs no more blocks than 99% coverage",
        0 < data.blocks_for_90 <= data.blocks_for_99,
        f"blocks_for_90 = {data.blocks_for_90}, blocks_for_99 = {data.blocks_for_99}",
    )
    _claim(
        claims,
        "figure2.reuse_window_order",
        "reuse within 100 instructions implies reuse within 250",
        0.0 <= data.reuse_within_100 <= data.reuse_within_250 <= 1.0,
        f"P(<100) = {data.reuse_within_100:.3f}, P(<250) = {data.reuse_within_250:.3f}",
    )
    return claims


_STC_FAMILY = ("P&H", "Torr", "auto", "ops")


def _check_table3(suite, grid) -> list[Claim]:
    claims: list[Claim] = []
    for row in grid:
        cells = suite.cells[row]
        orig = cells["orig"].miss_rate
        worst = max(cells[name].miss_rate for name in _STC_FAMILY)
        _claim(
            claims,
            f"table3.stc_beats_orig[{row[0]},{row[1]}]",
            f"every profile-guided layout beats orig's miss rate at {row[0]}K/{row[1]}K",
            worst < orig,
            "orig = {:.3f}%, ".format(orig)
            + ", ".join(f"{name} = {cells[name].miss_rate:.3f}%" for name in _STC_FAMILY),
        )
    for cache_kb in sorted({c for c, _ in grid}):
        row = next(r for r in grid if r[0] == cache_kb)
        orig = suite.cells[row]["orig"].miss_rate
        _claim(
            claims,
            f"table3.hardware_helps[{cache_kb}]",
            f"2-way and victim caches beat the direct-mapped orig at {cache_kb}K",
            suite.assoc_miss[cache_kb] < orig and suite.victim_miss[cache_kb] < orig,
            f"orig = {orig:.3f}%, 2-way = {suite.assoc_miss[cache_kb]:.3f}%, "
            f"victim = {suite.victim_miss[cache_kb]:.3f}%",
        )
    return claims


def _check_table4(suite, grid) -> list[Claim]:
    claims: list[Claim] = []
    for row in grid:
        cells = suite.cells[row]
        orig = cells["orig"].ipc
        worst = min(cells[name].ipc for name in _STC_FAMILY)
        _claim(
            claims,
            f"table4.stc_beats_orig[{row[0]},{row[1]}]",
            f"every profile-guided layout beats orig's fetch bandwidth at {row[0]}K/{row[1]}K",
            worst > orig,
            "orig = {:.2f}, ".format(orig)
            + ", ".join(f"{name} = {cells[name].ipc:.2f}" for name in _STC_FAMILY),
        )
        combined = suite.tc_ops_ipc[row]
        tc_alone = suite.tc_ipc[row[0]]
        ops_alone = cells["ops"].ipc
        _claim(
            claims,
            f"table4.combined_beats_parts[{row[0]},{row[1]}]",
            "STC+trace-cache beats the trace cache alone and the STC layout "
            f"alone at {row[0]}K/{row[1]}K",
            combined > tc_alone and combined > ops_alone,
            f"TC+ops = {combined:.2f}, TC = {tc_alone:.2f}, ops = {ops_alone:.2f}",
        )
    largest = max(grid)
    best_layout = max(suite.cells[largest][name].ipc for name in ("orig",) + _STC_FAMILY)
    _claim(
        claims,
        f"table4.combined_best[{largest[0]},{largest[1]}]",
        "the combined STC+trace-cache is the best configuration at the largest cache",
        suite.tc_ops_ipc[largest] > best_layout
        and suite.tc_ops_ipc[largest] > suite.tc_ipc[largest[0]],
        f"TC+ops = {suite.tc_ops_ipc[largest]:.2f}, best layout = {best_layout:.2f}, "
        f"TC = {suite.tc_ipc[largest[0]]:.2f}",
    )
    _claim(
        claims,
        "table4.ipc_sanity",
        "no layout exceeds its own perfect-cache bandwidth",
        all(
            cell.ipc <= cell.ideal_ipc + 1e-9
            for row in grid
            for cell in suite.cells[row].values()
        ),
        "checked every (row, layout) cell",
    )
    return claims


def check_paper_shape(
    scale: float = GATE_SCALE,
    grid: tuple[tuple[int, int], ...] = GATE_GRID,
    *,
    jobs: int = 1,
) -> tuple[list[Claim], dict]:
    """Run the gate workload and evaluate every table/figure claim."""
    from repro.experiments.harness import WorkloadSettings, get_workload
    from repro.experiments.suite import get_suite

    settings = WorkloadSettings(scale=scale)
    workload = get_workload(settings)
    suite = get_suite(workload, grid, jobs=jobs)

    claims = check_figure3()
    claims += _check_table1(workload)
    claims += _check_table2(workload)
    claims += _check_figure2(workload)
    claims += _check_table3(suite, grid)
    claims += _check_table4(suite, grid)
    meta = {
        "scale": settings.scale,
        "seed": settings.seed,
        "kernel_seed": settings.kernel_seed,
        "grid": [list(row) for row in grid],
        "n_instructions": suite.n_instructions,
    }
    return claims, meta


def run_validation(
    seed: int = 0,
    *,
    cases: int = 200,
    law_rounds: int = 12,
    scale: float = GATE_SCALE,
    jobs: int = 1,
    paper_shape: bool = True,
) -> dict:
    """Run all three validation layers; returns the conformance report.

    The report is JSON-serializable; ``report["passed"]`` is the overall
    verdict (zero divergences, zero law violations, every claim true).
    """
    from repro.validate.differential import run_differential
    from repro.validate.laws import run_laws

    n_diff, divergences = run_differential(seed, cases)
    n_laws, violations = run_laws(seed, rounds=law_rounds)
    report: dict = {
        "schema_version": 1,
        "generated_by": "repro.validate",
        "seed": seed,
        "differential": {
            "cases": n_diff,
            "divergences": [d.to_json() for d in divergences],
        },
        "laws": {
            "cases": n_laws,
            "violations": violations,
        },
    }
    passed = not divergences and not violations
    if paper_shape:
        claims, meta = check_paper_shape(scale, jobs=jobs)
        report["paper_shape"] = {
            "settings": meta,
            "claims": [asdict(claim) for claim in claims],
            "failed": [claim.claim_id for claim in claims if not claim.passed],
        }
        passed = passed and all(claim.passed for claim in claims)
    report["passed"] = passed
    return report
