"""Differential harness: production simulators vs. loop-literal oracles.

For every generated case the harness runs the production code through
*all three* of its entry points — the one-shot simulators
(:func:`~repro.simulators.fetch.simulate_fetch`,
:func:`~repro.simulators.tracecache.simulate_trace_cache`), the fused
streaming driver (:func:`~repro.simulators.fused.run_fused` feeding
incremental streams with attached i-cache miss counters), and the
shard-parallel driver (:func:`~repro.simulators.sharded.run_sharded`,
with a shard count derived from the case seed so coverage spans 1..n
window partitions) — and the oracles of :mod:`repro.validate.oracles`,
then compares every counter exactly: instruction/fetch/taken counts, the
full line-access stream, and the miss count of each cache organization
(batched, one-shot scalar, and oracle). Any mismatch becomes a
:class:`Divergence` carrying the case's reproduction seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulators.fetch import FetchStream, simulate_fetch
from repro.simulators.fused import run_fused
from repro.simulators.icache import CacheConfig, count_misses, miss_counter, simulate_victim_cache
from repro.simulators.sharded import run_sharded
from repro.simulators.tracecache import TraceCacheStream, simulate_trace_cache
from repro.validate.generators import GeneratedCase, random_case
from repro.validate.oracles import (
    oracle_direct_mapped,
    oracle_fetch,
    oracle_trace_cache,
    oracle_two_way_lru,
    oracle_victim,
)

__all__ = ["Divergence", "diff_fetch_case", "diff_trace_cache_case", "run_differential"]


@dataclass
class Divergence:
    """One counter on which production and oracle disagree."""

    case: dict
    counter: str
    production: object
    oracle: object

    def to_json(self) -> dict:
        return {
            "case": self.case,
            "counter": self.counter,
            "production": repr(self.production),
            "oracle": repr(self.oracle),
        }


def _config_label(config: CacheConfig) -> str:
    return (
        f"{config.size_bytes}B/L{config.line_bytes}"
        f"/A{config.associativity}/V{config.victim_lines}"
    )


def _oracle_misses(lines, config: CacheConfig) -> int:
    if config.victim_lines:
        return oracle_victim(lines, config)
    if config.associativity == 2:
        return oracle_two_way_lru(lines, config)
    return oracle_direct_mapped(lines, config)


def _concat(chunks) -> list:
    if not chunks:
        return []
    return np.concatenate(chunks).tolist() if len(chunks) > 1 else chunks[0].tolist()


def _case_shards(case: GeneratedCase) -> int:
    """Deterministic per-case shard count in 2..4 (the plan clamps to the
    window count, so degenerate single-window cases are covered too)."""
    return 2 + case.seed % 3


def diff_fetch_case(case: GeneratedCase) -> list[Divergence]:
    """Diff the SEQ.3 fetch unit + i-cache models on one case."""
    line_bytes = case.cache_configs[0].line_bytes
    kwargs = dict(line_bytes=line_bytes, chunk_events=case.chunk_events)
    ora = oracle_fetch(case.trace, case.program, case.layout, **kwargs)

    one_shot = simulate_fetch(case.trace, case.program, case.layout, **kwargs)
    counters = [miss_counter(config) for config in case.cache_configs]
    fused_stream = FetchStream(
        case.layout.name, line_bytes=line_bytes, consumers=counters, collect_lines=True
    )
    run_fused(
        case.trace,
        case.program,
        [(case.layout, fused_stream)],
        chunk_events=case.chunk_events,
    )
    sharded_counters = [miss_counter(config) for config in case.cache_configs]
    sharded_stream = FetchStream(
        case.layout.name, line_bytes=line_bytes, consumers=sharded_counters, collect_lines=True
    )
    run_sharded(
        case.trace,
        case.program,
        [(case.layout, sharded_stream)],
        chunk_events=case.chunk_events,
        shards=_case_shards(case),
    )

    info = case.describe()
    out: list[Divergence] = []

    def check(counter: str, production, oracle) -> None:
        if production != oracle:
            out.append(Divergence(case=info, counter=counter, production=production, oracle=oracle))

    for path, result in (
        ("one_shot", one_shot), ("fused", fused_stream), ("sharded", sharded_stream)
    ):
        check(f"fetch.{path}.n_instructions", result.n_instructions, ora.n_instructions)
        check(f"fetch.{path}.n_fetches", result.n_fetches, ora.n_fetches)
        check(f"fetch.{path}.n_taken", result.n_taken, ora.n_taken)
    check("fetch.one_shot.lines", _concat(one_shot.line_chunks), ora.lines)
    check("fetch.fused.lines", _concat(fused_stream.line_chunks), ora.lines)
    check("fetch.sharded.lines", _concat(sharded_stream.line_chunks), ora.lines)

    for config, counter, sharded in zip(case.cache_configs, counters, sharded_counters):
        label = _config_label(config)
        expected = _oracle_misses(ora.lines, config)
        check(f"icache.fused.{label}", counter.misses, expected)
        check(f"icache.sharded.{label}", sharded.misses, expected)
        check(f"icache.batched.{label}", count_misses(one_shot.line_chunks, config), expected)
        if config.victim_lines:
            all_lines = np.asarray(ora.lines, dtype=np.int64)
            check(f"icache.scalar.{label}", simulate_victim_cache(all_lines, config), expected)
    return out


def diff_trace_cache_case(case: GeneratedCase) -> list[Divergence]:
    """Diff the trace-cache simulation on one case."""
    line_bytes = case.cache_configs[0].line_bytes
    kwargs = dict(line_bytes=line_bytes, chunk_events=case.chunk_events)
    ora = oracle_trace_cache(case.trace, case.program, case.layout, case.tc_config, **kwargs)

    one_shot = simulate_trace_cache(
        case.trace, case.program, case.layout, case.tc_config, **kwargs
    )
    counters = [miss_counter(config) for config in case.cache_configs]
    fused_stream = TraceCacheStream(
        case.layout.name,
        case.tc_config,
        line_bytes=line_bytes,
        consumers=counters,
        collect_lines=True,
    )
    run_fused(
        case.trace,
        case.program,
        [(case.layout, fused_stream)],
        chunk_events=case.chunk_events,
    )
    sharded_counters = [miss_counter(config) for config in case.cache_configs]
    sharded_stream = TraceCacheStream(
        case.layout.name,
        case.tc_config,
        line_bytes=line_bytes,
        consumers=sharded_counters,
        collect_lines=True,
    )
    run_sharded(
        case.trace,
        case.program,
        [(case.layout, sharded_stream)],
        chunk_events=case.chunk_events,
        shards=_case_shards(case),
    )

    info = case.describe()
    out: list[Divergence] = []

    def check(counter: str, production, oracle) -> None:
        if production != oracle:
            out.append(Divergence(case=info, counter=counter, production=production, oracle=oracle))

    for path, result in (
        ("one_shot", one_shot), ("fused", fused_stream), ("sharded", sharded_stream)
    ):
        check(f"tc.{path}.n_instructions", result.n_instructions, ora.n_instructions)
        check(f"tc.{path}.n_hits", result.n_hits, ora.n_hits)
        check(f"tc.{path}.n_misses", result.n_misses, ora.n_misses)
        check(f"tc.{path}.n_taken", result.n_taken, ora.n_taken)
    check("tc.one_shot.miss_lines", _concat(one_shot.miss_line_chunks), ora.miss_lines)
    check("tc.fused.miss_lines", _concat(fused_stream.miss_line_chunks), ora.miss_lines)
    check("tc.sharded.miss_lines", _concat(sharded_stream.miss_line_chunks), ora.miss_lines)

    for config, counter, sharded in zip(case.cache_configs, counters, sharded_counters):
        label = _config_label(config)
        expected = _oracle_misses(ora.miss_lines, config)
        check(f"tc.icache.fused.{label}", counter.misses, expected)
        check(f"tc.icache.sharded.{label}", sharded.misses, expected)
        check(
            f"tc.icache.batched.{label}",
            count_misses(one_shot.miss_line_chunks, config),
            expected,
        )
    return out


def run_differential(seed: int, n_cases: int) -> tuple[int, list[Divergence]]:
    """Run ``n_cases`` generated cases; returns (cases run, divergences).

    Per-case seeds are spawned from ``seed`` via ``SeedSequence`` so each
    reported divergence reproduces standalone with
    ``random_case(case_seed)``.
    """
    case_seeds = np.random.SeedSequence(seed).generate_state(n_cases)
    divergences: list[Divergence] = []
    for case_seed in case_seeds.tolist():
        case = random_case(int(case_seed))
        divergences.extend(diff_fetch_case(case))
        divergences.extend(diff_trace_cache_case(case))
    return n_cases, divergences
