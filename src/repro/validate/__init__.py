"""Conformance & differential-validation subsystem.

Three layers keep the aggressively optimized production simulators honest:

* :mod:`repro.validate.oracles` — deliberately slow, loop-literal
  reference implementations of the SEQ.3 fetch unit, the i-cache models
  and the trace cache (pure Python, no NumPy tricks);
* :mod:`repro.validate.differential` + :mod:`repro.validate.laws` — a
  harness that drives the production vectorized/fused paths and the
  oracles over the same generated inputs and diffs every counter, plus
  metamorphic laws (store round-trip, cold-block permutation, CFA
  conflict-freedom, fused group splits);
* :mod:`repro.validate.gate` — the machine-checked paper-shape gate:
  ``python -m repro.validate`` runs a small fixed-seed workload and
  asserts the qualitative claims of EXPERIMENTS.md, emitting a JSON
  conformance report.
"""

from repro.validate.differential import (
    Divergence,
    diff_fetch_case,
    diff_trace_cache_case,
    run_differential,
)
from repro.validate.gate import run_validation
from repro.validate.oracles import (
    OracleFetchResult,
    OracleTraceCacheResult,
    oracle_direct_mapped,
    oracle_fetch,
    oracle_trace_cache,
    oracle_two_way_lru,
    oracle_victim,
)

__all__ = [
    "Divergence",
    "OracleFetchResult",
    "OracleTraceCacheResult",
    "diff_fetch_case",
    "diff_trace_cache_case",
    "oracle_direct_mapped",
    "oracle_fetch",
    "oracle_trace_cache",
    "oracle_two_way_lru",
    "oracle_victim",
    "run_differential",
    "run_validation",
]
