"""Loop-literal reference simulators ("oracles").

Every function here is written for obviousness, not speed: plain Python
loops over plain Python ints, mirroring the prose of the paper (SEQ.3
fetch, Section 7.1; i-cache organizations, Table 3; trace cache, Section
7.3) one rule at a time. The production simulators in
:mod:`repro.simulators` are aggressively vectorized and fused; the
differential harness (:mod:`repro.validate.differential`) asserts the two
agree *exactly* — counter for counter, line for line — on generated
inputs.

Chunk semantics are part of the contract: production truncates fetch and
fill windows at chunk boundaries (results at a given ``chunk_events`` are
bit-identical whether the trace is in memory or streamed from disk), so
the oracles window the trace through the very same
``trace.iter_events(chunk_events)`` iterator and restart their scalar
walks per window.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.cfg.blocks import INSTR_BYTES, BlockKind
from repro.cfg.layout import Layout
from repro.cfg.program import Program
from repro.profiling.trace import SEPARATOR
from repro.simulators.fetch import BRANCH_LIMIT, FETCH_WIDTH
from repro.simulators.icache import CacheConfig
from repro.simulators.tracecache import TraceCacheConfig

__all__ = [
    "OracleFetchResult",
    "OracleTraceCacheResult",
    "OracleWindow",
    "oracle_direct_mapped",
    "oracle_fetch",
    "oracle_trace_cache",
    "oracle_two_way_lru",
    "oracle_victim",
    "oracle_windows",
    "seq3_fetch_length",
]

_BRANCHY_KINDS = (int(BlockKind.BRANCH), int(BlockKind.CALL), int(BlockKind.RETURN))


@dataclass
class OracleWindow:
    """One window of the trace expanded to instruction granularity."""

    addr: list  # byte address per instruction
    is_branch: list  # bool per instruction
    is_taken: list  # bool per instruction


def oracle_windows(
    trace,
    program: Program,
    layout: Layout,
    chunk_events: int,
) -> Iterator[OracleWindow]:
    """Expand the trace window by window, the slow and obvious way.

    Mirrors ``iter_chunk_contexts`` + ``expand_chunk``: separators are
    dropped; a window of only separators contributes nothing; a
    transition is sequential when the successor starts exactly where the
    predecessor ends *and* no separator sits between them; the last event
    of a window checks sequentiality against the first event beyond the
    window (none at end of trace, or when a separator follows).
    """
    sizes = program.block_size
    kinds = program.block_kind
    addresses = layout.address
    for window, next_event in trace.iter_events(chunk_events):
        valid: list[tuple[int, int]] = []  # (position in window, block id)
        for pos, event in enumerate(window.tolist()):
            if event != SEPARATOR:
                valid.append((pos, event))
        if not valid:
            continue
        if next_event is not None and next_event != SEPARATOR:
            next_id = int(next_event)
        else:
            next_id = None

        addr: list = []
        is_branch: list = []
        is_taken: list = []
        for j, (pos, block) in enumerate(valid):
            start = int(addresses[block])
            size = int(sizes[block])
            end = start + size * INSTR_BYTES
            if j + 1 < len(valid):
                nxt_pos, nxt_block = valid[j + 1]
                sequential = (pos + 1 == nxt_pos) and int(addresses[nxt_block]) == end
            elif next_id is not None:
                sequential = int(addresses[next_id]) == end
            else:
                sequential = False
            for offset in range(size):
                addr.append(start + offset * INSTR_BYTES)
                last = offset == size - 1
                branchy = int(kinds[block]) in _BRANCHY_KINDS
                is_branch.append(last and (branchy or not sequential))
                is_taken.append(last and not sequential)
        yield OracleWindow(addr=addr, is_branch=is_branch, is_taken=is_taken)


def seq3_fetch_length(window: OracleWindow, p: int, line_instrs: int) -> int:
    """SEQ.3 fetch length from position ``p``: walk instruction by
    instruction, stopping after the first taken branch, after the third
    branch of any kind, at the end of the two cache lines reached from
    the fetch address, at 16 instructions, or at the window end."""
    cap = 2 * line_instrs - (window.addr[p] // INSTR_BYTES) % line_instrs
    if cap > FETCH_WIDTH:
        cap = FETCH_WIDTH
    n = len(window.addr)
    length = 0
    branches = 0
    q = p
    while q < n and length < cap:
        length += 1
        if window.is_branch[q]:
            branches += 1
        if window.is_taken[q] or branches >= BRANCH_LIMIT:
            break
        q += 1
    return max(length, 1)


@dataclass
class OracleFetchResult:
    """Reference SEQ.3 output: counters plus the full line-access stream."""

    n_instructions: int = 0
    n_fetches: int = 0
    n_taken: int = 0
    lines: list = field(default_factory=list)


def oracle_fetch(
    trace,
    program: Program,
    layout: Layout,
    *,
    line_bytes: int = 32,
    chunk_events: int = 2_000_000,
) -> OracleFetchResult:
    """Reference SEQ.3 fetch simulation (scalar walk per window)."""
    line_instrs = line_bytes // INSTR_BYTES
    out = OracleFetchResult()
    for window in oracle_windows(trace, program, layout, chunk_events):
        n = len(window.addr)
        out.n_instructions += n
        out.n_taken += sum(1 for t in window.is_taken if t)
        p = 0
        while p < n:
            out.n_fetches += 1
            line = window.addr[p] // line_bytes
            out.lines.append(line)
            out.lines.append(line + 1)
            p += seq3_fetch_length(window, p, line_instrs)
    return out


# -- i-cache oracles -------------------------------------------------------


def oracle_direct_mapped(
    lines: Iterable[int],
    config: CacheConfig,
    *,
    per_line: bool = False,
):
    """Cold-start misses of a direct-mapped cache, one access at a time.

    With ``per_line=True`` also returns ``{line: miss count}`` — the CFA
    conflict-freedom law uses it to assert each conflict-free line misses
    exactly once.
    """
    n_sets = config.n_sets
    tags: dict[int, int] = {}
    misses = 0
    counts: dict[int, int] = {}
    for line in lines:
        s = line % n_sets
        if tags.get(s) != line:
            misses += 1
            tags[s] = line
            if per_line:
                counts[line] = counts.get(line, 0) + 1
    if per_line:
        return misses, counts
    return misses


def oracle_two_way_lru(lines: Iterable[int], config: CacheConfig) -> int:
    """Cold-start misses of a 2-way set-associative LRU cache."""
    n_sets = config.n_sets
    ways: dict[int, list] = {}
    misses = 0
    for line in lines:
        s = line % n_sets
        content = ways.setdefault(s, [])
        if line in content:
            content.remove(line)
            content.insert(0, line)
        else:
            misses += 1
            content.insert(0, line)
            del content[2:]
    return misses


def oracle_victim(lines: Iterable[int], config: CacheConfig) -> int:
    """Direct-mapped cache + fully associative LRU victim buffer (Jouppi).

    A primary miss that hits the buffer swaps the two lines and counts as
    a hit; a real miss pushes the evicted resident into the buffer.
    """
    n_sets = config.n_sets
    capacity = config.victim_lines
    primary: dict[int, int] = {}
    victim: OrderedDict[int, None] = OrderedDict()
    misses = 0
    for line in lines:
        s = line % n_sets
        resident = primary.get(s, -1)
        if resident == line:
            continue
        if line in victim:
            del victim[line]
            if resident >= 0:
                victim[resident] = None
                while len(victim) > capacity:
                    victim.popitem(last=False)
            primary[s] = line
            continue
        misses += 1
        if resident >= 0:
            victim[resident] = None
            victim.move_to_end(resident)
            while len(victim) > capacity:
                victim.popitem(last=False)
        primary[s] = line
    return misses


# -- trace cache oracle ----------------------------------------------------


@dataclass
class OracleTraceCacheResult:
    n_instructions: int = 0
    n_hits: int = 0
    n_misses: int = 0
    n_taken: int = 0
    miss_lines: list = field(default_factory=list)


def oracle_trace_cache(
    trace,
    program: Program,
    layout: Layout,
    config: TraceCacheConfig = TraceCacheConfig(),
    *,
    line_bytes: int = 32,
    chunk_events: int = 2_000_000,
) -> OracleTraceCacheResult:
    """Reference trace-cache + SEQ.3 simulation.

    Entries persist across windows (the hardware does not know about our
    streaming chunks); the fill window truncates at the window end, as in
    production.
    """
    width = config.trace_instructions
    blimit = config.branch_limit
    n_entries = config.n_entries
    line_instrs = line_bytes // INSTR_BYTES
    # entry: index -> (start address, outcome bitmask, n_branches, n_instr)
    entries: dict[int, tuple[int, int, int, int]] = {}
    out = OracleTraceCacheResult()

    for window in oracle_windows(trace, program, layout, chunk_events):
        n = len(window.addr)
        out.n_instructions += n
        out.n_taken += sum(1 for t in window.is_taken if t)

        branch_pos = [i for i in range(n) if window.is_branch[i]]
        nb = len(branch_pos)
        # first-branch index at or after each position (fb[n] == nb)
        fb = [0] * (n + 1)
        count = 0
        for i in range(n):
            fb[i] = count
            if window.is_branch[i]:
                count += 1
        fb[n] = nb

        def mask_of(fbi: int) -> int:
            mask = 0
            for j in range(blimit):
                if fbi + j < nb and window.is_taken[branch_pos[fbi + j]]:
                    mask |= 1 << j
            return mask

        p = 0
        while p < n:
            a = window.addr[p]
            index = (a >> 4) % n_entries
            fbp = fb[p]
            entry = entries.get(index)
            if entry is not None and entry[0] == a:
                _, mask, k, length = entry
                if (
                    fbp + k <= nb
                    and mask_of(fbp) & ((1 << k) - 1) == mask
                    and p + length <= n
                ):
                    out.n_hits += 1
                    p += length
                    continue
            out.n_misses += 1
            line = a // line_bytes
            out.miss_lines.append(line)
            out.miss_lines.append(line + 1)
            # fill unit: up to `width` instructions or `blimit` branches,
            # crossing taken branches, truncated at the window end
            if fbp + blimit - 1 < nb:
                until_third = branch_pos[fbp + blimit - 1] - p + 1
            else:
                until_third = n + width  # no third branch: width-limited
            length = min(until_third, width, n - p)
            k = min(fb[p + length] - fbp, blimit)
            entries[index] = (a, mask_of(fbp) & ((1 << k) - 1), k, length)
            p += seq3_fetch_length(window, p, line_instrs)
    return out
