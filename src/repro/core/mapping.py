"""Sequence mapping with a Conflict Free Area (paper Section 5.3, Figure 4).

The address space is viewed as a logical array of caches, each the size and
alignment of the physical i-cache. The most popular sequences are packed —
whole, never split — into the start of the first logical cache: the
Conflict Free Area. That address range is kept free of code in every other
logical cache, so nothing can ever evict the CFA's contents. The remaining
sequences fill the non-CFA area of successive logical caches, and the cold
remainder of the program then fills the entire address space, including the
reserved ranges ("this rarely executed code is expected not to produce many
conflicts with the sequences placed in the CFA").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cfg.blocks import INSTR_BYTES
from repro.cfg.layout import Layout
from repro.cfg.program import Program

__all__ = ["CacheGeometry", "map_sequences"]


@dataclass(frozen=True)
class CacheGeometry:
    """Physical i-cache size and the CFA carved out of it (bytes)."""

    cache_bytes: int
    cfa_bytes: int
    line_bytes: int = 32

    def __post_init__(self) -> None:
        if self.cache_bytes <= 0 or self.cache_bytes % self.line_bytes:
            raise ValueError("cache size must be a positive multiple of the line size")
        if not 0 <= self.cfa_bytes < self.cache_bytes:
            raise ValueError("CFA must be smaller than the cache")


class _Allocator:
    """Byte allocator over the logical cache array with a forbidden window.

    While ``protecting`` is on, the CFA window ``[k*C + base, k*C + limit)``
    of every logical cache ``k >= 1`` is skipped (the window of cache 0 is
    where the protected sequences themselves live).
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.cursor = 0
        self.protecting = geometry.cfa_bytes > 0
        self.gaps: list[tuple[int, int]] = []  # skipped [start, end) ranges

    def _window_clash(self, start: int, size: int) -> int | None:
        """Next allowed start if [start, start+size) enters a CFA window."""
        if not self.protecting:
            return None
        cache = self.geometry.cache_bytes
        cfa = self.geometry.cfa_bytes
        end = start + size
        # check the windows of the caches this range touches
        for k in range(start // cache, end // cache + 1):
            if k == 0:
                continue
            w_start, w_end = k * cache, k * cache + cfa
            if start < w_end and end > w_start:
                return w_end
        return None

    def place(self, size: int) -> int:
        """Allocate ``size`` contiguous bytes; returns the start address.

        An allocation larger than a logical cache's free area can never fit
        between two reserved windows: it is placed straddling the window
        (self-conflict is unavoidable for such a block anyway).
        """
        start = self.cursor
        if self.protecting and size > self.geometry.cache_bytes - self.geometry.cfa_bytes:
            self.cursor = start + size
            return start
        while True:
            bump = self._window_clash(start, size)
            if bump is None:
                break
            self.gaps.append((start, bump))
            start = bump
        self.cursor = start + size
        return start


def map_sequences(
    program: Program,
    sequences: list[list[int]],
    geometry: CacheGeometry,
    *,
    name: str,
    cfa_sequences: list[list[int]] | None = None,
    cfa_blocks: list[int] | None = None,
    cfa_whole_sequences: bool = True,
) -> Layout:
    """Produce a layout from ordered sequences and a cache geometry.

    CFA policy (pick one):

    * ``cfa_sequences`` — the paper's multi-pass STC mapping: the first
      pass's sequences are admitted to the CFA whole, in order; any that do
      not fit join the front of the regular sequence stream.
    * ``cfa_blocks`` (Torrellas baseline) — pin the given individual blocks
      into the CFA, pulling them out of their sequences.
    * ``cfa_whole_sequences=True`` (default) — single-pass form: the main
      ``sequences`` themselves are the CFA candidates.
    """
    sizes = program.block_size.astype(np.int64) * INSTR_BYTES
    placed: dict[int, int] = {}
    alloc = _Allocator(geometry)

    # -- fill the CFA -------------------------------------------------------
    in_cfa: set[int] = set()
    if cfa_blocks is not None:
        budget = geometry.cfa_bytes
        for block in cfa_blocks:
            if sizes[block] <= budget:
                placed[block] = alloc.place(int(sizes[block]))
                budget -= int(sizes[block])
                in_cfa.add(block)
    else:
        if cfa_sequences is not None:
            candidates = cfa_sequences
            overflow: list[list[int]] = []
        elif cfa_whole_sequences and geometry.cfa_bytes:
            candidates = sequences
            overflow = None
        else:
            candidates = []
            overflow = None
        budget = geometry.cfa_bytes
        for seq in candidates:
            seq_size = int(sizes[list(seq)].sum())
            if seq_size <= budget:
                for block in seq:
                    placed[block] = alloc.place(int(sizes[block]))
                    in_cfa.add(block)
                budget -= seq_size
            elif overflow is not None:
                overflow.append(seq)
        if cfa_sequences is not None:
            sequences = overflow + sequences

    # -- the remaining sequences around the protected window ----------------
    if alloc.cursor < geometry.cfa_bytes:
        alloc.cursor = geometry.cfa_bytes  # do not mix sequences into the CFA
    for seq in sequences:
        rest = [b for b in seq if b not in in_cfa]
        if not rest:
            continue
        seq_size = int(sizes[rest].sum())
        if seq_size <= geometry.cache_bytes - geometry.cfa_bytes or not alloc.protecting:
            start = alloc.place(seq_size)
            for block in rest:
                placed[block] = start
                start += int(sizes[block])
        else:
            # longer than a logical cache's free area: place block by block,
            # breaking only where the protected window forces a jump
            for block in rest:
                placed[block] = alloc.place(int(sizes[block]))

    # -- cold remainder fills the entire address space ----------------------
    alloc.protecting = False
    gaps = alloc.gaps
    gap_idx = 0
    gap_pos = gaps[0][0] if gaps else None
    for block in range(program.n_blocks):
        if block in placed:
            continue
        size = int(sizes[block])
        addr = None
        while gap_idx < len(gaps):
            g_start, g_end = gaps[gap_idx]
            pos = max(gap_pos if gap_pos is not None else g_start, g_start)
            if pos + size <= g_end:
                addr = pos
                gap_pos = pos + size
                break
            gap_idx += 1
            gap_pos = gaps[gap_idx][0] if gap_idx < len(gaps) else None
        if addr is None:
            addr = alloc.place(size)
        placed[block] = addr

    return Layout.from_placements(program, placed, name=name)
