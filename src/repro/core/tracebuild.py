"""Greedy sequence building (paper Section 5.2, Figure 3).

Starting from each seed, follow the most frequently executed path out of
each basic block — visiting called subroutines inline, since a call block's
hottest successor is the callee's entry. A transition is *valid* when the
successor is unvisited, its execution weight reaches the Exec Threshold,
and the transition probability reaches the Branch Threshold. Valid
transitions that are not taken are noted and later seed secondary traces;
invalid ones are discarded.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass

from repro.cfg.weighted import WeightedCFG

__all__ = ["TraceParams", "build_sequences"]


@dataclass(frozen=True)
class TraceParams:
    """The two thresholds of the sequence builder.

    ``exec_threshold`` is an absolute execution count (the paper's
    ExecThresh; Figure 3 uses 4). ``branch_threshold`` is the minimum
    transition probability (Figure 3 uses 0.4).
    """

    exec_threshold: int = 4
    branch_threshold: float = 0.4

    def __post_init__(self) -> None:
        if self.exec_threshold < 0:
            raise ValueError("exec_threshold must be >= 0")
        if not 0.0 <= self.branch_threshold <= 1.0:
            raise ValueError("branch_threshold must be in [0, 1]")


def build_sequences(
    cfg: WeightedCFG,
    seeds: Iterable[int],
    params: TraceParams = TraceParams(),
    visited: set[int] | None = None,
    *,
    explore_from_visited: bool = False,
) -> list[list[int]]:
    """Build main and secondary sequences from the seeds, in order.

    ``visited`` carries state across calls (multi-pass builds reuse it so a
    block is placed exactly once); it is updated in place when given.

    ``explore_from_visited`` is used by the later passes of the multi-pass
    STC build: a seed placed by an earlier (tighter-threshold) pass is not
    re-placed, but the exploration walks through already-placed blocks to
    find the valid transitions the earlier pass rejected, and grows this
    pass's sequences from those.
    """
    visited = visited if visited is not None else set()
    sequences: list[list[int]] = []

    for seed in seeds:
        seed = int(seed)
        pending: deque[int] = deque()
        if seed in visited:
            if explore_from_visited:
                _note_frontier(cfg, seed, params, visited, pending)
            else:
                continue
        elif cfg.block_count[seed] < params.exec_threshold:
            continue
        else:
            pending.append(seed)
        while pending:
            start = pending.popleft()
            if start in visited:
                continue
            sequence = _grow(cfg, start, params, visited, pending)
            if sequence:
                sequences.append(sequence)
    return sequences


def _note_frontier(
    cfg: WeightedCFG,
    seed: int,
    params: TraceParams,
    visited: set[int],
    pending: deque[int],
) -> None:
    """Walk already-placed blocks reachable from ``seed``, noting every
    valid transition into unplaced territory."""
    frontier = [seed]
    walked = {seed}
    while frontier:
        block = frontier.pop()
        out_weight = cfg.out_weight(block)
        if out_weight == 0:
            continue
        for succ, count in cfg.successors(block):
            if succ in visited:
                if succ not in walked:
                    walked.add(succ)
                    frontier.append(succ)
                continue
            if (
                cfg.block_count[succ] >= params.exec_threshold
                and count / out_weight >= params.branch_threshold
            ):
                pending.append(succ)


def _grow(
    cfg: WeightedCFG,
    start: int,
    params: TraceParams,
    visited: set[int],
    pending: deque[int],
) -> list[int]:
    """Grow one sequence greedily; note untaken valid transitions."""
    sequence = [start]
    visited.add(start)
    current = start
    while True:
        successors = cfg.successors(current)
        out_weight = cfg.out_weight(current)
        if out_weight == 0:
            break
        chosen = None
        for succ, count in successors:
            if succ in visited:
                continue
            if cfg.block_count[succ] < params.exec_threshold:
                continue
            if count / out_weight < params.branch_threshold:
                continue
            if chosen is None:
                chosen = succ
            else:
                pending.append(succ)  # noted for a secondary trace
        if chosen is None:
            break
        sequence.append(chosen)
        visited.add(chosen)
        current = chosen
    return sequence
