"""The Software Trace Cache: the paper's primary contribution (Section 5).

Three stages:

1. **Seed selection** (:mod:`repro.core.seeds`) — *auto*: entry points of
   all functions in decreasing popularity; *ops*: entry points of the
   Executor operations (knowledge-based).
2. **Sequence building** (:mod:`repro.core.tracebuild`) — greedy traces
   through the weighted CFG, gated by the Exec and Branch thresholds, with
   secondary traces from the noted transitions (Figure 3).
3. **Sequence mapping** (:mod:`repro.core.mapping`) — whole sequences
   packed into the Conflict Free Area of a logical cache array, remaining
   sequences around it, cold code filling the rest (Figure 4).

:func:`repro.core.stc.stc_layout` runs the full pipeline.
"""

from repro.core.seeds import auto_seeds, ops_seeds
from repro.core.tracebuild import TraceParams, build_sequences
from repro.core.mapping import CacheGeometry, map_sequences
from repro.core.stc import STCParams, stc_layout

__all__ = [
    "auto_seeds",
    "ops_seeds",
    "TraceParams",
    "build_sequences",
    "CacheGeometry",
    "map_sequences",
    "STCParams",
    "stc_layout",
]
