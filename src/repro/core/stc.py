"""The full Software Trace Cache pipeline.

Profile -> seeds -> greedy sequences -> CFA mapping, in one call. This is
the ``auto`` / ``ops`` layout of the paper's evaluation (Tables 3 and 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.layout import Layout
from repro.cfg.program import Program
from repro.cfg.weighted import WeightedCFG
from repro.core.mapping import CacheGeometry, map_sequences
from repro.core.seeds import auto_seeds, ops_seeds
from repro.core.tracebuild import TraceParams, build_sequences

__all__ = ["STCParams", "stc_layout"]


@dataclass(frozen=True)
class STCParams:
    """Pipeline parameters.

    ``exec_fraction`` expresses the Exec Threshold as a fraction of the
    total dynamic block count, so the same parameters work across trace
    lengths; set ``exec_threshold`` for the paper's absolute form. The
    paper plans to automate threshold selection (Section 8) — the
    relative form is this implementation's small step in that direction.
    """

    #: The paper's Figure 3 example uses BranchThresh 0.4 on a kernel whose
    #: branches are overwhelmingly two-way. minidb's kernel (like modern
    #: DBMS code) is full of multiway dispatch switches whose secondary
    #: cases carry 5-25 % each; a lower default keeps those cases eligible
    #: for secondary traces instead of dumping them into cold code. The
    #: threshold-sweep ablation bench explores this choice.
    seed_mode: str = "auto"  # "auto" or "ops"
    branch_threshold: float = 0.08
    exec_threshold: int | None = None
    exec_fraction: float = 1e-5
    #: First-pass (CFA) thresholds: "the size of this CFA is determined by
    #: the Exec and Branch Thresholds used for the first pass" (Section
    #: 5.3). By default the first pass's Exec threshold is *auto-fitted* to
    #: the CFA budget (bisection over the threshold until the pass's
    #: sequences just fill the CFA) — the threshold-selection automation the
    #: paper lists as future work in Section 8. Set ``cfa_exec_threshold``
    #: to pin it manually.
    cfa_branch_threshold: float = 0.30
    cfa_exec_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.seed_mode not in ("auto", "ops"):
            raise ValueError(f"unknown seed mode {self.seed_mode!r}")

    def resolve_exec_threshold(self, cfg: WeightedCFG) -> int:
        if self.exec_threshold is not None:
            return self.exec_threshold
        return max(1, int(self.exec_fraction * int(cfg.block_count.sum())))


def stc_layout(
    program: Program,
    cfg: WeightedCFG,
    geometry: CacheGeometry,
    params: STCParams = STCParams(),
) -> Layout:
    """Compute the STC layout for a profile and cache geometry.

    Two passes, as in the paper: a tight-threshold pass whose sequences
    fill the Conflict Free Area whole, then a relaxed pass (continuing the
    first pass's visited state) whose sequences fill the non-CFA areas of
    the logical cache array; cold code fills the remaining address space.
    """
    seeds = auto_seeds(program, cfg) if params.seed_mode == "auto" else ops_seeds(program, cfg)
    pass1, visited = _fit_first_pass(program, cfg, seeds, geometry, params)
    # the relaxed pass places "the rest of the sequences": beyond the chosen
    # seeds it may start from any executed function entry, so code the ops
    # seeds cannot reach (the paper's stated ops weakness) still gets
    # sequenced instead of falling into the cold remainder
    pass2_seeds = list(dict.fromkeys(list(seeds) + auto_seeds(program, cfg)))
    pass2 = build_sequences(
        cfg,
        pass2_seeds,
        TraceParams(
            exec_threshold=params.resolve_exec_threshold(cfg),
            branch_threshold=params.branch_threshold,
        ),
        visited,
        explore_from_visited=True,
    )
    return map_sequences(
        program,
        pass2,
        geometry,
        name=params.seed_mode,
        cfa_sequences=pass1,
    )


def _fit_first_pass(
    program: Program,
    cfg: WeightedCFG,
    seeds: list[int],
    geometry: CacheGeometry,
    params: STCParams,
) -> tuple[list[list[int]], set[int]]:
    """Build the CFA pass, fitting its Exec threshold to the CFA budget.

    The sequence footprint shrinks monotonically as the Exec threshold
    rises, so a log-scale bisection finds the loosest threshold whose
    sequences total at most the CFA size (i.e. the fullest CFA whose
    contents are all admitted whole).
    """
    budget = geometry.cfa_bytes
    if budget == 0:
        return [], set()

    from repro.cfg.blocks import INSTR_BYTES

    sizes = program.block_size

    def attempt(threshold: int) -> tuple[list[list[int]], set[int], int]:
        visited: set[int] = set()
        seqs = build_sequences(
            cfg,
            seeds,
            TraceParams(exec_threshold=threshold, branch_threshold=params.cfa_branch_threshold),
            visited,
        )
        total = sum(int(sizes[b]) * INSTR_BYTES for seq in seqs for b in seq)
        return seqs, visited, total

    if params.cfa_exec_threshold is not None:
        seqs, visited, _total = attempt(params.cfa_exec_threshold)
        return seqs, visited

    total_events = max(1, int(cfg.block_count.sum()))
    lo, hi = 1, total_events  # lo may overflow the budget, hi never does
    best = attempt(hi)[:2]
    for _ in range(24):
        if lo >= hi:
            break
        mid = int((lo * hi) ** 0.5)
        seqs, visited, total = attempt(mid)
        if total <= budget:
            best = (seqs, visited)
            hi = mid
        else:
            lo = mid + 1
    return best
