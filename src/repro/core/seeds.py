"""Seed selection (paper Section 5.1).

Seeds are the starting blocks for sequence building. The *auto* selection
exposes maximum temporal locality (most popular function entries first);
the *ops* selection starts only from the Executor operations, yielding
longer sequences that inline the helper functions they call, at the cost of
including less popular blocks around the hot ones.
"""

from __future__ import annotations

from repro.cfg.program import Program
from repro.cfg.weighted import WeightedCFG

__all__ = ["auto_seeds", "ops_seeds"]


def auto_seeds(program: Program, cfg: WeightedCFG) -> list[int]:
    """Entry points of all executed functions, most popular first."""
    entries = [(int(cfg.block_count[p.entry]), p.entry) for p in program.procedures]
    entries = [(count, entry) for count, entry in entries if count > 0]
    entries.sort(key=lambda item: (-item[0], item[1]))
    return [entry for _count, entry in entries]


def ops_seeds(program: Program, cfg: WeightedCFG) -> list[int]:
    """Entry points of the Executor operations, most popular first.

    This is the knowledge-based selection: minidb marks the executor
    operation entry points (Sequential Scan, Index Scan, the joins, Sort,
    Aggregate, Group — the operations Section 2.1 lists) with ``op=True``.
    """
    entries = [
        (int(cfg.block_count[p.entry]), p.entry)
        for p in program.procedures
        if p.is_operation
    ]
    entries = [(count, entry) for count, entry in entries if count > 0]
    entries.sort(key=lambda item: (-item[0], item[1]))
    return [entry for _count, entry in entries]
