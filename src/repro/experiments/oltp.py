"""OLTP extension study (paper Section 8 future work).

Question: does a layout trained on the DSS profile still help when the
same binary executes an OLTP transaction mix? Three layouts are evaluated
on the OLTP trace:

* ``orig`` — original code layout;
* ``dss-trained`` — STC layout built from the DSS Training-set profile;
* ``oltp-trained`` — STC layout built from (a disjoint prefix of) the OLTP
  execution itself, as the self-trained upper reference.

Run: ``python -m repro.experiments.oltp``
"""

from __future__ import annotations

import argparse

from repro.baselines import original_layout
from repro.core import CacheGeometry, STCParams, stc_layout
from repro.experiments.config import KB
from repro.oltp.workload import OLTPWorkload
from repro.profiling import profile_trace
from repro.simulators import CacheConfig, count_misses, simulate_fetch
from repro.simulators.fetch import MISS_PENALTY_CYCLES
from repro.util.fmt import format_table

__all__ = ["compute", "render", "main"]


def compute(
    workload: OLTPWorkload,
    cache_kb: int = 32,
    cfa_kb: int = 8,
) -> list[list]:
    program = workload.program
    geometry = CacheGeometry(cache_bytes=cache_kb * KB, cfa_bytes=cfa_kb * KB)

    dss_profile = profile_trace(workload.dss_training_trace, program.n_blocks)
    oltp_profile = profile_trace(workload.oltp_trace, program.n_blocks)

    layouts = {
        "orig": original_layout(program),
        "dss-trained": stc_layout(program, dss_profile, geometry, STCParams(seed_mode="auto")),
        "oltp-trained": stc_layout(program, oltp_profile, geometry, STCParams(seed_mode="auto")),
    }
    rows = []
    for name, layout in layouts.items():
        fr = simulate_fetch(workload.oltp_trace, program, layout)
        misses = count_misses(fr.line_chunks, CacheConfig(size_bytes=cache_kb * KB))
        rows.append(
            [
                name,
                100.0 * misses / fr.n_instructions,
                fr.n_instructions / (fr.n_fetches + MISS_PENALTY_CYCLES * misses),
                fr.instructions_between_taken,
            ]
        )
    return rows


def render(rows: list[list]) -> str:
    return format_table(
        ["layout", "miss %", "IPC", "instr/taken"],
        rows,
        title="OLTP extension: layouts evaluated on the OLTP transaction mix (32KB/8KB CFA)",
    )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dss-scale", type=float, default=0.002)
    parser.add_argument("--warehouses", type=int, default=2)
    parser.add_argument("--transactions", type=int, default=400)
    args = parser.parse_args(argv)
    workload = OLTPWorkload.build(
        dss_scale=args.dss_scale,
        warehouses=args.warehouses,
        n_transactions=args.transactions,
    )
    print(render(compute(workload)))


if __name__ == "__main__":
    main()
