"""Shared experiment plumbing: cached workloads, layout builders, CLI."""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.baselines import original_layout, pettis_hansen_layout, torrellas_layout
from repro.cfg.layout import Layout
from repro.cfg.weighted import WeightedCFG
from repro.core import CacheGeometry, STCParams, stc_layout
from repro.experiments.config import KB
from repro.profiling import profile_trace
from repro.tpcd.workload import Workload

__all__ = ["WorkloadSettings", "get_workload", "training_profile", "layouts_for", "standard_parser"]


@dataclass(frozen=True)
class WorkloadSettings:
    """Reproducible workload identity (the cache key)."""

    scale: float = 0.005
    seed: int = 7
    kernel_seed: int = 2029

    def build(self) -> Workload:
        return Workload.build(self.scale, seed=self.seed, kernel_seed=self.kernel_seed)


_WORKLOADS: dict[WorkloadSettings, Workload] = {}
_PROFILES: dict[int, WeightedCFG] = {}


def get_workload(settings: WorkloadSettings = WorkloadSettings()) -> Workload:
    """Build (once per process) and cache the workload for these settings."""
    if settings not in _WORKLOADS:
        _WORKLOADS[settings] = settings.build()
    return _WORKLOADS[settings]


def training_profile(workload: Workload) -> WeightedCFG:
    """The weighted CFG profiled from the Training set (cached)."""
    key = id(workload)
    if key not in _PROFILES:
        _PROFILES[key] = profile_trace(workload.training_trace, workload.program.n_blocks)
    return _PROFILES[key]


def layouts_for(
    workload: Workload,
    cache_kb: int,
    cfa_kb: int,
    *,
    names: tuple[str, ...] = ("orig", "P&H", "Torr", "auto", "ops"),
) -> dict[str, Layout]:
    """Build the evaluation layouts for one cache/CFA geometry.

    ``orig`` and ``P&H`` ignore the geometry (the paper notes P&H does not
    consider the target cache); ``Torr``/``auto``/``ops`` are geometry-
    dependent.
    """
    program = workload.program
    cfg = training_profile(workload)
    geometry = CacheGeometry(cache_bytes=cache_kb * KB, cfa_bytes=cfa_kb * KB)
    builders = {
        "orig": lambda: original_layout(program),
        "P&H": lambda: pettis_hansen_layout(program, cfg),
        "Torr": lambda: torrellas_layout(program, cfg, geometry),
        "auto": lambda: stc_layout(program, cfg, geometry, STCParams(seed_mode="auto")),
        "ops": lambda: stc_layout(program, cfg, geometry, STCParams(seed_mode="ops")),
    }
    return {name: builders[name]() for name in names}


def standard_parser(description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--scale", type=float, default=0.005, help="TPC-D scale factor (default 0.005)")
    parser.add_argument("--seed", type=int, default=7, help="data generator seed")
    parser.add_argument("--kernel-seed", type=int, default=2029, help="kernel model seed")
    return parser


def settings_from_args(args) -> WorkloadSettings:
    return WorkloadSettings(scale=args.scale, seed=args.seed, kernel_seed=args.kernel_seed)
