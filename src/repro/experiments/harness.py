"""Shared experiment plumbing: cached workloads, layout builders, CLI."""

from __future__ import annotations

import argparse
import os
import weakref

from repro.baselines import original_layout, pettis_hansen_layout, torrellas_layout
from repro.cache import default_cache
from repro.cfg.layout import Layout
from repro.cfg.weighted import WeightedCFG
from repro.core import CacheGeometry, STCParams, stc_layout
from repro.experiments.config import KB
from repro.profiling import profile_trace
from repro.profiling.tracestore import TraceFormatError, TraceStore
from repro.tpcd.workload import Workload, WorkloadSettings

__all__ = [
    "WorkloadSettings",
    "get_workload",
    "training_profile",
    "layouts_for",
    "standard_parser",
    "settings_from_args",
    "suite_options_from_args",
    "resolve_jobs",
]


_WORKLOADS: dict[WorkloadSettings, Workload] = {}
#: Training profiles for settings-stamped workloads, keyed by the settings
#: (never by ``id()`` — object ids are reused after garbage collection and
#: would silently alias a stale profile to a different workload).
_PROFILES: dict[WorkloadSettings, WeightedCFG] = {}
#: Profiles for ad-hoc workloads, keyed by the live instance itself.
_PROFILES_ADHOC: "weakref.WeakKeyDictionary[Workload, WeightedCFG]" = weakref.WeakKeyDictionary()


def _stored_traces_ok(workload: Workload) -> bool:
    """A cached workload is only usable if its trace files still read.

    Workloads persist with :class:`TraceStore` handles into the cache
    directory; if those files were deleted or damaged since, the pickle
    hit must be treated as a miss so the workload (and its traces) are
    rebuilt.
    """
    for trace in (workload.training_trace, workload.test_trace):
        if isinstance(trace, TraceStore):
            try:
                trace.verify()
            except TraceFormatError:
                return False
    return True


def get_workload(settings: WorkloadSettings = WorkloadSettings()) -> Workload:
    """Build (once per process) and cache the workload for these settings.

    Built workloads are also persisted to the artifact cache, so a second
    run at the same settings — in any process — skips database generation
    and trace capture entirely.
    """
    if settings not in _WORKLOADS:
        cache = default_cache()
        workload = cache.load("workload", settings)
        if not isinstance(workload, Workload) or not _stored_traces_ok(workload):
            workload = settings.build()
            cache.store("workload", settings, workload)
        workload.settings = settings
        _WORKLOADS[settings] = workload
    return _WORKLOADS[settings]


def training_profile(workload: Workload) -> WeightedCFG:
    """The weighted CFG profiled from the Training set (cached)."""
    settings = workload.settings
    if settings is None:
        profile = _PROFILES_ADHOC.get(workload)
        if profile is None:
            profile = profile_trace(workload.training_trace, workload.program.n_blocks)
            _PROFILES_ADHOC[workload] = profile
        return profile
    if settings not in _PROFILES:
        cache = default_cache()
        profile = cache.load("profile", settings)
        if not isinstance(profile, WeightedCFG):
            profile = profile_trace(workload.training_trace, workload.program.n_blocks)
            cache.store("profile", settings, profile)
        _PROFILES[settings] = profile
    return _PROFILES[settings]


def layouts_for(
    workload: Workload,
    cache_kb: int,
    cfa_kb: int,
    *,
    names: tuple[str, ...] = ("orig", "P&H", "Torr", "auto", "ops"),
) -> dict[str, Layout]:
    """Build the evaluation layouts for one cache/CFA geometry.

    ``orig`` and ``P&H`` ignore the geometry (the paper notes P&H does not
    consider the target cache); ``Torr``/``auto``/``ops`` are geometry-
    dependent.
    """
    program = workload.program
    cfg = training_profile(workload)
    geometry = CacheGeometry(cache_bytes=cache_kb * KB, cfa_bytes=cfa_kb * KB)
    builders = {
        "orig": lambda: original_layout(program),
        "P&H": lambda: pettis_hansen_layout(program, cfg),
        "Torr": lambda: torrellas_layout(program, cfg, geometry),
        "auto": lambda: stc_layout(program, cfg, geometry, STCParams(seed_mode="auto")),
        "ops": lambda: stc_layout(program, cfg, geometry, STCParams(seed_mode="ops")),
    }
    return {name: builders[name]() for name in names}


def standard_parser(description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--scale", type=float, default=0.005, help="TPC-D scale factor (default 0.005)")
    parser.add_argument("--seed", type=int, default=7, help="data generator seed")
    parser.add_argument("--kernel-seed", type=int, default=2029, help="kernel model seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the evaluation suite (0 = all cores, default 1)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition the trace into this many shard spans and run the suite "
        "shard-parallel (bit-identical to the fused pass; shards become the "
        "checkpoint/resume unit; default: off)",
    )
    parser.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="checkpoint each completed suite task and resume interrupted runs "
        "from the checkpoints (--no-resume recomputes everything)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abort a parallel suite run if no task completes for this long",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="write a JSON run manifest (settings, git rev, per-task timing, "
        "cache hit/miss counters, retries and failures)",
    )
    return parser


def suite_options_from_args(args) -> dict:
    """Fault-tolerance/observability kwargs threaded into the suite."""
    return {
        "shards": args.shards,
        "resume": args.resume,
        "task_timeout": args.task_timeout,
        "manifest": args.manifest,
    }


def resolve_jobs(jobs: int | None) -> int:
    """Map the ``--jobs`` flag to a worker count (0/negative = all cores)."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def settings_from_args(args) -> WorkloadSettings:
    return WorkloadSettings(scale=args.scale, seed=args.seed, kernel_seed=args.kernel_seed)
