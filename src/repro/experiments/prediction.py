"""Branch-prediction extension: does the layout help a real predictor?

The paper isolates layout effects with perfect prediction (Section 7.1)
while listing prediction accuracy among the three fetch-limiting factors
(Section 1). Here a bimodal predictor runs over the same traces under each
layout: reordering turns most dynamic branches into not-taken fall-
throughs, which 2-bit counters learn easily, so the layout buys prediction
accuracy on top of cache behaviour.

Run: ``python -m repro.experiments.prediction``
"""

from __future__ import annotations

from repro.experiments.harness import (
    get_workload,
    layouts_for,
    settings_from_args,
    standard_parser,
)
from repro.simulators.branchpred import evaluate_prediction
from repro.tpcd.workload import Workload
from repro.util.fmt import format_table

__all__ = ["compute", "render", "main"]

#: cap the per-branch simulation (the predictor loop is sequential Python)
DEFAULT_MAX_EVENTS = 3_000_000


def compute(
    workload: Workload,
    cache_kb: int = 32,
    cfa_kb: int = 8,
    *,
    max_events: int | None = DEFAULT_MAX_EVENTS,
) -> list[list]:
    layouts = layouts_for(workload, cache_kb, cfa_kb)
    rows = []
    for name, layout in layouts.items():
        r = evaluate_prediction(
            workload.test_trace, workload.program, layout, max_events=max_events
        )
        rows.append([name, 100.0 * r.taken_fraction, 100.0 * r.accuracy])
    return rows


def render(rows: list[list]) -> str:
    return format_table(
        ["layout", "taken branches %", "bimodal accuracy %"],
        rows,
        title="Branch-prediction extension: bimodal (2K-entry) accuracy per layout",
    )


def main(argv=None) -> None:
    args = standard_parser(__doc__.splitlines()[0]).parse_args(argv)
    workload = get_workload(settings_from_args(args))
    print(render(compute(workload)))


if __name__ == "__main__":
    main()
