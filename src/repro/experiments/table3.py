"""Table 3 — instruction cache miss rate per layout, cache and CFA size.

Run: ``python -m repro.experiments.table3 [--scale 0.005] [--quick]``
"""

from __future__ import annotations

from repro.experiments.config import CACHE_CFA_GRID, PAPER_TABLE3, PRIMARY_ROWS
from repro.experiments.harness import (
    resolve_jobs,
    settings_from_args,
    standard_parser,
    suite_options_from_args,
)
from repro.experiments.suite import SuiteResults, get_suite, suite_for
from repro.tpcd.workload import Workload
from repro.util.fmt import format_table

__all__ = ["compute", "render", "main"]


def compute(
    workload: Workload,
    grid: tuple[tuple[int, int], ...] = CACHE_CFA_GRID,
    *,
    progress: bool = False,
    jobs: int = 1,
    **suite_options,
) -> SuiteResults:
    return get_suite(workload, grid, progress=progress, jobs=jobs, **suite_options)


def render(suite: SuiteResults, grid: tuple[tuple[int, int], ...] = CACHE_CFA_GRID) -> str:
    rows = []
    for row in grid:
        cache_kb, cfa_kb = row
        cells = suite.cells[row]
        primary = row in PRIMARY_ROWS
        paper = PAPER_TABLE3.get(row, {})
        rows.append(
            [
                f"{cache_kb}/{cfa_kb}",
                cells["orig"].miss_rate if primary else None,
                cells["P&H"].miss_rate if primary else None,
                cells["Torr"].miss_rate,
                cells["auto"].miss_rate,
                cells["ops"].miss_rate,
                suite.assoc_miss[cache_kb] if primary else None,
                suite.victim_miss[cache_kb] if primary else None,
                "/".join(str(paper.get(k, "-")) for k in ("orig", "Torr", "ops")),
            ]
        )
    return format_table(
        ["cache/CFA KB", "orig", "P&H", "Torr", "auto", "ops", "2-way", "victim", "paper o/T/ops"],
        rows,
        title="Table 3: i-cache miss rate (% misses per instruction), Test set",
    )


def main(argv=None) -> None:
    parser = standard_parser(__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="primary rows only")
    args = parser.parse_args(argv)
    grid = PRIMARY_ROWS if args.quick else CACHE_CFA_GRID
    suite = suite_for(
        settings_from_args(args),
        grid,
        progress=True,
        jobs=resolve_jobs(args.jobs),
        **suite_options_from_args(args),
    )
    print(render(suite, grid))


if __name__ == "__main__":
    main()
