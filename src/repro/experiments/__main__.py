"""Run every experiment in sequence: ``python -m repro.experiments``.

Accepts the standard ``--scale/--seed/--kernel-seed`` flags plus
``--skip-extensions`` to run only the paper's own tables and figures.
"""

from __future__ import annotations

from repro.experiments import figure2, figure3, headline, table1, table2, table3, table4
from repro.experiments.config import CACHE_CFA_GRID
from repro.experiments.harness import (
    get_workload,
    resolve_jobs,
    settings_from_args,
    standard_parser,
    suite_options_from_args,
)
from repro.experiments.suite import get_suite


def main(argv=None) -> None:
    parser = standard_parser("Run the full reproduction: every table and figure.")
    parser.add_argument("--skip-extensions", action="store_true")
    args = parser.parse_args(argv)
    workload = get_workload(settings_from_args(args))

    print(figure3.render(figure3.compute()))
    print()
    print(table1.render(table1.compute(workload)))
    print()
    print(table2.render(table2.compute(workload)))
    print()
    print(figure2.render(figure2.compute(workload)))
    print()
    suite = get_suite(
        workload,
        CACHE_CFA_GRID,
        progress=True,
        jobs=resolve_jobs(args.jobs),
        **suite_options_from_args(args),
    )
    print(table3.render(suite, CACHE_CFA_GRID))
    print()
    print(table4.render(suite, CACHE_CFA_GRID))
    print()
    print(headline.render(headline.compute(workload, CACHE_CFA_GRID)))

    if not args.skip_extensions:
        from repro.experiments import ablations, inlining, prediction

        print()
        print(ablations.render(ablations.cfa_sweep(workload), "Ablation: CFA size sweep"))
        print()
        print(prediction.render(prediction.compute(workload)))
        print()
        print(inlining.render(inlining.compute(workload)))


if __name__ == "__main__":
    main()
