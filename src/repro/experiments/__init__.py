"""Experiment harness: one module per paper table/figure.

Each module exposes ``compute(workload, ...) -> rows`` returning the
table's data, ``render(rows) -> str`` producing the paper-shaped ASCII
table, and a ``main()`` CLI entry point (``python -m
repro.experiments.table3 --scale 0.005``). The benchmark suite under
``benchmarks/`` drives the same ``compute`` functions at a reduced scale.

See DESIGN.md section 4 for the experiment index and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.experiments.harness import get_workload, layouts_for, WorkloadSettings

__all__ = ["get_workload", "layouts_for", "WorkloadSettings"]
