"""Structured run manifests: what a suite run did, task by task.

Every :func:`repro.experiments.suite.compute_suite` invocation can record
a machine-readable manifest — the workload settings, git revision,
per-task wall-clock and attempt counts, checkpoint provenance
(``computed`` vs ``checkpoint``), retry/failure/stall events, and the
artifact-cache counter deltas for the run. Long sweeps become observable
and post-mortems after a crash need no log archaeology: the manifest says
exactly which tasks finished, which were resumed from checkpoints, and
what failed with which error.

Schema (``schema_version`` 1): a single JSON object with

* run identity: ``label``, ``git_revision``, ``python``, ``settings``,
  ``jobs``, ``resume``, ``task_timeout``, ``retries``, ``started_at``;
* ``status`` — ``running`` / ``completed`` / ``cached`` / ``failed``,
  plus ``error`` and ``wall_seconds`` once finished;
* ``tasks`` — one record per finished task: ``label``, ``kind``,
  ``status``, ``source``, ``seconds``, ``attempts`` (and ``error`` for
  failures);
* ``events`` — ordered retry / failure / stall / pool-degradation
  records;
* ``cache`` — :class:`repro.cache.CacheStats` deltas over the run.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from repro.cache import ArtifactCache

__all__ = ["MANIFEST_SCHEMA_VERSION", "RunLog", "git_revision"]

MANIFEST_SCHEMA_VERSION = 1


def git_revision() -> str | None:
    """The current source revision, or ``None`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


class RunLog:
    """Accumulates per-task records and events for one suite run.

    The log is cheap enough to keep unconditionally; serialization to a
    manifest file only happens when the caller asks for one.
    """

    def __init__(
        self,
        label: str,
        *,
        settings: Any = None,
        jobs: int = 1,
        resume: bool = True,
        task_timeout: float | None = None,
        retries: int = 0,
        n_tasks: int = 0,
        cache: ArtifactCache | None = None,
        clock=time.perf_counter,
    ) -> None:
        self._clock = clock
        self._t0 = clock()
        self._cache = cache
        self._stats0 = cache.stats.snapshot() if cache is not None else None
        self.data: dict[str, Any] = {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "label": label,
            "started_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "git_revision": git_revision(),
            "python": platform.python_version(),
            "settings": dataclasses.asdict(settings) if settings is not None else None,
            "jobs": jobs,
            "resume": resume,
            "task_timeout": task_timeout,
            "retries": retries,
            "n_tasks": n_tasks,
            "status": "running",
            "tasks": [],
            "events": [],
        }

    # -- recording ---------------------------------------------------------

    def task_done(
        self, label: str, kind: str, *, seconds: float, attempts: int, source: str
    ) -> None:
        """One task finished; ``source`` is ``computed`` or ``checkpoint``."""
        self.data["tasks"].append(
            {
                "label": label,
                "kind": kind,
                "status": "completed",
                "source": source,
                "seconds": round(seconds, 6),
                "attempts": attempts,
            }
        )

    def task_failed(self, label: str, kind: str, error: BaseException, attempts: int) -> None:
        self.data["tasks"].append(
            {
                "label": label,
                "kind": kind,
                "status": "failed",
                "attempts": attempts,
                "error": repr(error),
            }
        )
        self.event("failure", task=label, error=repr(error))

    def task_retry(self, label: str, error: BaseException, attempt: int) -> None:
        self.event("retry", task=label, attempt=attempt, error=repr(error))

    def event(self, kind: str, **fields: Any) -> None:
        self.data["events"].append({"type": kind, **fields})

    # -- serialization -----------------------------------------------------

    @property
    def retry_count(self) -> int:
        return sum(1 for e in self.data["events"] if e["type"] == "retry")

    def finish(self, status: str = "completed", error: str | None = None) -> None:
        self.data["status"] = status
        if error is not None:
            self.data["error"] = error
        self.data["wall_seconds"] = round(self._clock() - self._t0, 6)
        if self._cache is not None and self._stats0 is not None:
            self.data["cache"] = self._cache.stats.delta(self._stats0)

    def write(self, path: Path | str) -> Path:
        """Serialize the manifest as JSON; parent directories are created."""
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.data, indent=2, default=str) + "\n")
        return path
