"""Shared experiment configuration: the paper's evaluation grid."""

from __future__ import annotations

KB = 1024

#: Table 3 / Table 4 (cache KB, CFA KB) grid, in the paper's row order.
CACHE_CFA_GRID: tuple[tuple[int, int], ...] = (
    (8, 2),
    (8, 4),
    (8, 6),
    (16, 4),
    (16, 8),
    (16, 12),
    (32, 4),
    (32, 8),
    (32, 16),
    (32, 24),
    (64, 8),
    (64, 16),
    (64, 24),
)

#: The grid rows on which the paper reports orig/P&H/2-way/victim numbers
#: (the first row of each cache size).
PRIMARY_ROWS: tuple[tuple[int, int], ...] = ((8, 2), (16, 4), (32, 4), (64, 8))

#: Layout columns of Tables 3 and 4, in order.
LAYOUT_COLUMNS: tuple[str, ...] = ("orig", "P&H", "Torr", "auto", "ops")

#: Paper values for side-by-side reporting (miss rate %, Table 3).
PAPER_TABLE3 = {
    (8, 2): {"orig": 6.5, "P&H": 3.0, "Torr": 2.3, "auto": 2.2, "ops": 2.1, "2-way": 6.1, "victim": 5.6},
    (8, 4): {"Torr": 2.9, "auto": 4.2, "ops": 2.9},
    (8, 6): {"Torr": 3.1, "auto": 2.3, "ops": 5.2},
    (16, 4): {"orig": 4.0, "P&H": 1.1, "Torr": 0.9, "auto": 0.8, "ops": 0.7, "2-way": 2.6, "victim": 3.4},
    (16, 8): {"Torr": 0.7, "auto": 0.8, "ops": 0.6},
    (16, 12): {"Torr": 0.8, "auto": 0.8, "ops": 1.0},
    (32, 4): {"orig": 2.7, "P&H": 0.3, "Torr": 0.2, "auto": 0.3, "ops": 0.2, "2-way": 1.2, "victim": 1.6},
    (32, 8): {"Torr": 0.2, "auto": 0.4, "ops": 0.2},
    (32, 16): {"Torr": 0.3, "auto": 0.2, "ops": 0.1},
    (32, 24): {"Torr": 0.2, "auto": 0.3, "ops": 0.2},
    (64, 8): {"orig": 1.4, "P&H": 0.09, "Torr": 0.05, "auto": 0.07, "ops": 0.04, "2-way": 0.3, "victim": 0.4},
    (64, 16): {"Torr": 0.14, "auto": 0.08, "ops": 0.05},
    (64, 24): {"Torr": 0.02, "auto": 0.03, "ops": 0.03},
}

#: Paper values for Table 4 (fetch bandwidth, IPC).
PAPER_TABLE4 = {
    "Ideal": {"orig": 7.6, "P&H": 9.6, "Torr": 9.9, "auto": 9.9, "ops": 10.7, "TC": 10.3, "TC+ops": 12.2},
    (8, 2): {"orig": 3.1, "P&H": 5.2, "Torr": 5.6, "auto": 6.0, "ops": 6.2, "TC": 5.1, "TC+ops": 8.4},
    (8, 4): {"Torr": 5.0, "auto": 5.3, "ops": 6.6, "TC+ops": 8.7},
    (8, 6): {"Torr": 4.9, "auto": 5.8, "ops": 5.6, "TC+ops": 8.1},
    (16, 4): {"orig": 4.0, "P&H": 7.3, "Torr": 7.4, "auto": 8.1, "ops": 8.8, "TC": 6.2, "TC+ops": 10.3},
    (16, 8): {"Torr": 7.4, "auto": 8.1, "ops": 9.0, "TC+ops": 10.4},
    (16, 12): {"Torr": 7.3, "auto": 7.9, "ops": 8.1, "TC+ops": 10.2},
    (32, 4): {"orig": 4.7, "P&H": 8.8, "Torr": 8.9, "auto": 9.2, "ops": 10.0, "TC": 7.2, "TC+ops": 11.5},
    (32, 8): {"Torr": 8.4, "auto": 8.8, "ops": 10.1, "TC+ops": 11.5},
    (32, 16): {"Torr": 8.0, "auto": 9.3, "ops": 10.3, "TC+ops": 11.8},
    (32, 24): {"Torr": 8.2, "auto": 9.2, "ops": 10.1, "TC+ops": 11.6},
    (64, 8): {"orig": 5.8, "P&H": 9.3, "Torr": 8.8, "auto": 9.8, "ops": 10.6, "TC": 8.6, "TC+ops": 12.0},
    (64, 16): {"Torr": 8.4, "auto": 9.7, "ops": 10.5, "TC+ops": 12.1},
    (64, 24): {"Torr": 8.5, "auto": 9.8, "ops": 10.6, "TC+ops": 12.1},
}

#: Paper Table 1 (static vs executed).
PAPER_TABLE1 = {
    "procedures": (6813, 1340, 19.7),
    "basic blocks": (127426, 15415, 12.1),
    "instructions": (593884, 75183, 12.7),
}

#: Paper Table 2 (percent; static, dynamic, predictable).
PAPER_TABLE2 = {
    "Fall-through": (24.4, 22.4, 100.0),
    "Branch": (42.4, 50.2, 59.0),
    "Subroutine call": (8.0, 13.7, 100.0),
    "Subroutine return": (25.2, 13.7, 100.0),
}

#: Section 8 headline numbers.
PAPER_HEADLINE = {
    "instructions between taken branches (orig)": 8.9,
    "instructions between taken branches (ops)": 22.4,
    "fetch bandwidth 64KB orig": 5.8,
    "fetch bandwidth 64KB ops": 10.6,
    "trace cache alone": 8.6,
    "trace cache + ops": 12.1,
}
