"""Table 1 — static program elements vs. the fraction actually executed.

Run: ``python -m repro.experiments.table1 [--scale 0.005]``
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import PAPER_TABLE1
from repro.experiments.harness import (
    WorkloadSettings,
    get_workload,
    settings_from_args,
    standard_parser,
    training_profile,
)
from repro.tpcd.workload import Workload
from repro.util.fmt import format_table

__all__ = ["compute", "render", "main"]


def compute(workload: Workload) -> dict[str, tuple[int, int, float]]:
    """``element -> (total, executed, percent executed)`` from the Training set."""
    program = workload.program
    cfg = training_profile(workload)
    executed_blocks = cfg.executed_blocks()
    executed_procs = np.unique(program.block_proc[executed_blocks])
    executed_instr = int(program.block_size[executed_blocks].sum())
    rows = {
        "procedures": (program.n_procedures, int(executed_procs.size)),
        "basic blocks": (program.n_blocks, int(executed_blocks.size)),
        "instructions": (program.n_instructions, executed_instr),
    }
    return {k: (t, e, 100.0 * e / t) for k, (t, e) in rows.items()}


def render(rows: dict[str, tuple[int, int, float]]) -> str:
    table = []
    for element, (total, executed, pct) in rows.items():
        p_total, p_exec, p_pct = PAPER_TABLE1[element]
        table.append([element, total, executed, pct, f"{p_pct}%"])
    return format_table(
        ["element", "total", "executed", "executed %", "paper %"],
        table,
        title="Table 1: static program elements and the fraction actually used (Training set)",
    )


def main(argv=None) -> None:
    args = standard_parser(__doc__.splitlines()[0]).parse_args(argv)
    workload = get_workload(settings_from_args(args))
    print(render(compute(workload)))


if __name__ == "__main__":
    main()
