"""Function cloning / inlining study (paper Section 8 future work).

Measures whether profile-guided code replication raises the sequential
fetch unit's bandwidth while "keeping the miss rate under control":

1. Build the base workload; profile the Training set.
2. Choose clone pairs from the profile's call graph
   (:func:`repro.kernel.inline.plan_inlining`).
3. Rebuild the kernel image with per-caller clones, re-trace the Test set
   (the tracer routes calls to the clones), and lay out with the STC.
4. Compare bandwidth, run length, miss rate, and static code growth.

Run: ``python -m repro.experiments.inlining``
"""

from __future__ import annotations

from repro.core import CacheGeometry, STCParams, stc_layout
from repro.experiments.config import KB
from repro.experiments.harness import (
    get_workload,
    settings_from_args,
    standard_parser,
    training_profile,
)
from repro.kernel.inline import plan_inlining
from repro.profiling import profile_trace
from repro.simulators import CacheConfig, count_misses, simulate_fetch
from repro.simulators.fetch import MISS_PENALTY_CYCLES
from repro.tpcd.workload import TEST_QUERIES, TRAINING_QUERIES, Workload, capture_trace
from repro.util.fmt import format_table

__all__ = ["compute", "render", "main"]


def compute(
    workload: Workload,
    cache_kb: int = 32,
    cfa_kb: int = 8,
    *,
    max_clones: int = 24,
) -> tuple[list[list], int]:
    """Rows: [variant, static KB, miss %, IPC, ideal IPC, instr/taken]."""
    geometry = CacheGeometry(cache_bytes=cache_kb * KB, cfa_bytes=cfa_kb * KB)
    cache = CacheConfig(size_bytes=cache_kb * KB)

    def evaluate(program, profile, trace, label):
        layout = stc_layout(program, profile, geometry, STCParams(seed_mode="ops"))
        fr = simulate_fetch(trace, program, layout)
        misses = count_misses(fr.line_chunks, cache)
        return [
            label,
            program.image_bytes / KB,
            100.0 * misses / fr.n_instructions,
            fr.n_instructions / (fr.n_fetches + MISS_PENALTY_CYCLES * misses),
            fr.ideal_ipc,
            fr.instructions_between_taken,
        ]

    base_profile = training_profile(workload)
    rows = [evaluate(workload.program, base_profile, workload.test_trace, "base (ops)")]

    plan = plan_inlining(workload.program, base_profile, max_clones=max_clones)
    inlined_model = workload.db.kernel_model(clones=plan.pairs)
    inlined_training = capture_trace(workload.db, inlined_model, TRAINING_QUERIES, ("btree",))
    inlined_test = capture_trace(workload.db, inlined_model, TEST_QUERIES, ("btree", "hash"))
    inlined_profile = profile_trace(inlined_training, inlined_model.program.n_blocks)
    rows.append(
        evaluate(inlined_model.program, inlined_profile, inlined_test, f"+{plan.n_clones} clones (ops)")
    )
    return rows, plan.n_clones


def render(result: tuple[list[list], int]) -> str:
    rows, n_clones = result
    return format_table(
        ["variant", "static KB", "miss %", "IPC", "ideal IPC", "instr/taken"],
        rows,
        title=f"Inlining/code-replication study ({n_clones} profile-guided clones, 32KB/8KB CFA)",
    )


def main(argv=None) -> None:
    parser = standard_parser(__doc__.splitlines()[0])
    parser.add_argument("--max-clones", type=int, default=24)
    args = parser.parse_args(argv)
    workload = get_workload(settings_from_args(args))
    print(render(compute(workload, max_clones=args.max_clones)))


if __name__ == "__main__":
    main()
