"""Ablations over the STC's design choices.

The paper motivates three knobs this module sweeps:

* **CFA size** (Section 7.2): a larger CFA shields more code from
  interference but leaves less room for everything else — the effect
  reverses past a sweet spot.
* **Thresholds** (Sections 5.2, 8): the Exec/Branch thresholds control how
  much code the sequences cover; the paper lists automating their
  selection as future work.
* **Seed selection** (Section 5.1): auto (popularity) vs ops
  (knowledge-based) — fewer, longer sequences with more potential
  bandwidth.

Run: ``python -m repro.experiments.ablations``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import CacheGeometry, STCParams, stc_layout
from repro.experiments.config import KB
from repro.experiments.harness import (
    get_workload,
    settings_from_args,
    standard_parser,
    training_profile,
)
from repro.simulators import CacheConfig, count_misses, simulate_fetch
from repro.simulators.fetch import MISS_PENALTY_CYCLES
from repro.tpcd.workload import Workload
from repro.util.fmt import format_table

__all__ = ["cfa_sweep", "threshold_sweep", "seed_comparison", "main"]


@dataclass
class AblationPoint:
    label: str
    miss_rate: float
    ipc: float
    run_length: float


def _evaluate(workload: Workload, layout, cache_kb: int) -> tuple[float, float, float]:
    fr = simulate_fetch(workload.test_trace, workload.program, layout)
    misses = count_misses(fr.line_chunks, CacheConfig(size_bytes=cache_kb * KB))
    n = fr.n_instructions
    ipc = n / (fr.n_fetches + MISS_PENALTY_CYCLES * misses)
    return 100.0 * misses / n, ipc, fr.instructions_between_taken


def cfa_sweep(
    workload: Workload,
    cache_kb: int = 32,
    cfa_kbs: tuple[int, ...] = (0, 2, 4, 8, 16, 24, 28),
    seed_mode: str = "ops",
) -> list[AblationPoint]:
    """Miss rate / bandwidth across CFA sizes at a fixed cache size."""
    cfg = training_profile(workload)
    out = []
    for cfa_kb in cfa_kbs:
        layout = stc_layout(
            workload.program,
            cfg,
            CacheGeometry(cache_bytes=cache_kb * KB, cfa_bytes=cfa_kb * KB),
            STCParams(seed_mode=seed_mode),
        )
        miss, ipc, run = _evaluate(workload, layout, cache_kb)
        out.append(AblationPoint(f"{cache_kb}/{cfa_kb}", miss, ipc, run))
    return out


def threshold_sweep(
    workload: Workload,
    cache_kb: int = 32,
    cfa_kb: int = 16,
    branch_thresholds: tuple[float, ...] = (0.02, 0.08, 0.2, 0.4, 0.6),
    exec_fractions: tuple[float, ...] = (1e-6, 1e-5, 1e-4, 1e-3),
) -> list[AblationPoint]:
    """Sensitivity to the sequence builder's two thresholds (ops seeds)."""
    cfg = training_profile(workload)
    geometry = CacheGeometry(cache_bytes=cache_kb * KB, cfa_bytes=cfa_kb * KB)
    out = []
    for bt in branch_thresholds:
        layout = stc_layout(
            workload.program, cfg, geometry, STCParams(seed_mode="ops", branch_threshold=bt)
        )
        miss, ipc, run = _evaluate(workload, layout, cache_kb)
        out.append(AblationPoint(f"branch={bt}", miss, ipc, run))
    for ef in exec_fractions:
        layout = stc_layout(
            workload.program, cfg, geometry, STCParams(seed_mode="ops", exec_fraction=ef)
        )
        miss, ipc, run = _evaluate(workload, layout, cache_kb)
        out.append(AblationPoint(f"exec={ef:g}", miss, ipc, run))
    return out


def seed_comparison(
    workload: Workload,
    cache_kb: int = 32,
    cfa_kb: int = 16,
) -> list[AblationPoint]:
    """auto vs ops seed selection at one geometry, plus sequence statistics."""
    from repro.core.seeds import auto_seeds, ops_seeds
    from repro.core.tracebuild import TraceParams, build_sequences

    cfg = training_profile(workload)
    geometry = CacheGeometry(cache_bytes=cache_kb * KB, cfa_bytes=cfa_kb * KB)
    out = []
    for mode in ("auto", "ops"):
        layout = stc_layout(workload.program, cfg, geometry, STCParams(seed_mode=mode))
        miss, ipc, run = _evaluate(workload, layout, cache_kb)
        seeds = auto_seeds(workload.program, cfg) if mode == "auto" else ops_seeds(workload.program, cfg)
        sequences = build_sequences(cfg, seeds, TraceParams(exec_threshold=4, branch_threshold=0.08))
        mean_len = sum(map(len, sequences)) / len(sequences) if sequences else 0.0
        out.append(
            AblationPoint(
                f"{mode} ({len(seeds)} seeds, {len(sequences)} seqs, mean {mean_len:.1f} blocks)",
                miss,
                ipc,
                run,
            )
        )
    return out


def render(points: list[AblationPoint], title: str) -> str:
    return format_table(
        ["configuration", "miss %", "IPC", "instr/taken"],
        [[p.label, p.miss_rate, p.ipc, p.run_length] for p in points],
        title=title,
    )


def main(argv=None) -> None:
    args = standard_parser(__doc__.splitlines()[0]).parse_args(argv)
    workload = get_workload(settings_from_args(args))
    print(render(cfa_sweep(workload), "Ablation: CFA size sweep (32KB cache, ops layout)"))
    print()
    print(render(threshold_sweep(workload), "Ablation: threshold sensitivity (32/16, ops)"))
    print()
    print(render(seed_comparison(workload), "Ablation: seed selection (32/16)"))


if __name__ == "__main__":
    main()
