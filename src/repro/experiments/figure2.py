"""Figure 2 — reference concentration, plus Section 4.1 temporal locality.

Reports the cumulative fraction of dynamic basic-block references captured
by the N most popular blocks (the paper's curve: ~90 % at 1000 blocks,
~99 % at 2500) and the reuse-distance probabilities of the blocks holding
75 % of the references (paper: 33 % re-executed within 250 instructions,
19 % within 100).

Run: ``python -m repro.experiments.figure2``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import (
    get_workload,
    settings_from_args,
    standard_parser,
    training_profile,
)
from repro.profiling import (
    blocks_for_coverage,
    cumulative_reference_curve,
    fraction_reexecuted_within,
    hottest_blocks_for_coverage,
    reuse_distances,
)
from repro.tpcd.workload import Workload
from repro.util.fmt import format_table

__all__ = ["compute", "render", "main", "Figure2Data"]


@dataclass
class Figure2Data:
    #: (n blocks, cumulative fraction) samples of the Figure 2 curve
    curve_samples: list[tuple[int, float]]
    blocks_for_90: int
    blocks_for_99: int
    reuse_within_100: float
    reuse_within_250: float


def compute(workload: Workload, sample_points: tuple[int, ...] = (100, 250, 500, 1000, 1500, 2500)) -> Figure2Data:
    program = workload.program
    cfg = training_profile(workload)
    curve = cumulative_reference_curve(cfg.block_count)
    samples = [(n, float(curve[min(n, curve.size) - 1])) for n in sample_points if curve.size]
    hot75 = hottest_blocks_for_coverage(cfg.block_count, 0.75)
    distances = reuse_distances(workload.training_trace, program.block_size, subset=hot75)
    return Figure2Data(
        curve_samples=samples,
        blocks_for_90=blocks_for_coverage(cfg.block_count, 0.90),
        blocks_for_99=blocks_for_coverage(cfg.block_count, 0.99),
        reuse_within_100=fraction_reexecuted_within(distances, 100),
        reuse_within_250=fraction_reexecuted_within(distances, 250),
    )


def render(data: Figure2Data) -> str:
    from repro.util.ascii_chart import ascii_curve

    curve = format_table(
        ["most popular blocks", "cumulative references %"],
        [[n, 100.0 * f] for n, f in data.curve_samples],
        title="Figure 2: accumulated basic-block references",
    )
    if len(data.curve_samples) >= 2:
        chart = ascii_curve(
            [(n, 100.0 * f) for n, f in data.curve_samples],
            x_label="number of basic blocks",
            y_label="accumulated references (%)",
        )
        curve = curve + "\n\n" + chart
    claims = format_table(
        ["claim", "measured", "paper"],
        [
            ["blocks capturing 90% of references", data.blocks_for_90, "~1000"],
            ["blocks capturing 99% of references", data.blocks_for_99, "~2500"],
            ["P(re-exec < 250 instr), 75% set", f"{100 * data.reuse_within_250:.0f}%", "33%"],
            ["P(re-exec < 100 instr), 75% set", f"{100 * data.reuse_within_100:.0f}%", "19%"],
        ],
        title="Section 4.1 temporal locality",
    )
    return curve + "\n\n" + claims


def main(argv=None) -> None:
    args = standard_parser(__doc__.splitlines()[0]).parse_args(argv)
    workload = get_workload(settings_from_args(args))
    print(render(compute(workload)))


if __name__ == "__main__":
    main()
