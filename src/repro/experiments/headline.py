"""Section 8 headline numbers: the paper's summary claims, measured.

* instructions between taken branches: 8.9 (orig) -> 22.4 (ops)
* miss-rate reduction of 60-98 % across realistic cache sizes
* 64 KB fetch bandwidth: 5.8 (orig) -> 10.6 (ops)
* trace cache: 8.6 alone -> 12.1 combined with the ops layout

Run: ``python -m repro.experiments.headline``
"""

from __future__ import annotations

from repro.experiments.config import CACHE_CFA_GRID, PAPER_HEADLINE, PRIMARY_ROWS
from repro.experiments.harness import (
    get_workload,
    resolve_jobs,
    settings_from_args,
    standard_parser,
    suite_options_from_args,
)
from repro.experiments.suite import get_suite, suite_for
from repro.tpcd.workload import Workload
from repro.util.fmt import format_table

__all__ = ["compute", "render", "main"]


def compute(
    workload: Workload,
    grid: tuple[tuple[int, int], ...] = CACHE_CFA_GRID,
    *,
    progress: bool = False,
    jobs: int = 1,
    **suite_options,
) -> dict[str, tuple[float, float]]:
    """``claim -> (measured, paper)``; reductions in percent."""
    suite = get_suite(workload, grid, progress=progress, jobs=jobs, **suite_options)
    ref_row = (64, 16) if (64, 16) in suite.cells else grid[-1]
    big_row = next(row for row in reversed(grid) if row in suite.cells)
    cache64 = next((row for row in grid if row[0] == 64), big_row)

    out: dict[str, tuple[float, float]] = {}
    out["instructions between taken branches (orig)"] = (
        suite.cells[ref_row]["orig"].run_length,
        PAPER_HEADLINE["instructions between taken branches (orig)"],
    )
    out["instructions between taken branches (ops)"] = (
        suite.cells[ref_row]["ops"].run_length,
        PAPER_HEADLINE["instructions between taken branches (ops)"],
    )
    out["fetch bandwidth 64KB orig"] = (
        suite.cells[cache64]["orig"].ipc,
        PAPER_HEADLINE["fetch bandwidth 64KB orig"],
    )
    out["fetch bandwidth 64KB ops"] = (
        suite.cells[cache64]["ops"].ipc,
        PAPER_HEADLINE["fetch bandwidth 64KB ops"],
    )
    out["trace cache alone"] = (
        suite.tc_ipc[cache64[0]],
        PAPER_HEADLINE["trace cache alone"],
    )
    if suite.tc_ops_ipc:
        best_row = max(suite.tc_ops_ipc, key=suite.tc_ops_ipc.get)
        out["trace cache + ops"] = (
            suite.tc_ops_ipc[best_row],
            PAPER_HEADLINE["trace cache + ops"],
        )
    # miss-rate reductions per cache size (paper: 60-98 %)
    for row in PRIMARY_ROWS:
        if row not in suite.cells:
            continue
        orig = suite.cells[row]["orig"].miss_rate
        ops = suite.cells[row]["ops"].miss_rate
        reduction = 100.0 * (1 - ops / orig) if orig else 0.0
        out[f"miss reduction at {row[0]}KB (%)"] = (reduction, float("nan"))
    return out


def render(rows: dict[str, tuple[float, float]]) -> str:
    table = [[k, f"{v:.1f}", "-" if p != p else f"{p}"] for k, (v, p) in rows.items()]
    return format_table(
        ["claim", "measured", "paper"],
        table,
        title="Section 8 headline numbers (paper's miss-reduction claim: 60-98%)",
    )


def main(argv=None) -> None:
    args = standard_parser(__doc__.splitlines()[0]).parse_args(argv)
    # warm the suite via the disk-first path (skips the workload build on a
    # warm artifact cache), then reuse it through the in-memory layer
    suite_for(
        settings_from_args(args),
        progress=True,
        jobs=resolve_jobs(args.jobs),
        **suite_options_from_args(args),
    )
    workload = get_workload(settings_from_args(args))
    print(render(compute(workload, progress=True)))


if __name__ == "__main__":
    main()
