"""The Table 3 / Table 4 evaluation suite.

One pass over (layout x geometry) computes everything both tables need:
fetch simulation per layout, vectorized miss counting per cache
configuration, trace-cache simulations for the TC columns. Results are
scalars, cached per workload settings — in memory and in the persistent
artifact cache — so Table 3, Table 4 and the headline module share the
work within and across processes.

The suite is decomposed into self-contained (layout x geometry) tasks.
With ``jobs > 1`` the tasks fan out over a fork-based
:class:`~concurrent.futures.ProcessPoolExecutor` — the workload's trace
arrays are shared copy-on-write, each worker returns only scalar metrics,
and assembly is deterministic, so parallel output is bit-identical to
serial. Platforms without ``fork`` (and ``jobs=1``) run the same tasks
serially.
"""

from __future__ import annotations

import multiprocessing
import weakref
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from repro.cache import default_cache
from repro.experiments.config import CACHE_CFA_GRID, KB
from repro.experiments.harness import get_workload, layouts_for, training_profile
from repro.simulators import (
    CacheConfig,
    count_misses,
    simulate_fetch,
    simulate_trace_cache,
)
from repro.simulators.fetch import MISS_PENALTY_CYCLES
from repro.tpcd.workload import Workload, WorkloadSettings
from repro.util.progress import Progress

__all__ = ["CellMetrics", "SuiteResults", "compute_suite", "get_suite", "suite_for"]


@dataclass
class CellMetrics:
    """One (geometry, layout) cell shared by Tables 3 and 4."""

    miss_rate: float  # misses per instruction, percent
    ipc: float  # fetch bandwidth with the 5-cycle miss penalty
    ideal_ipc: float
    run_length: float  # instructions between taken branches


@dataclass
class SuiteResults:
    n_instructions: int = 0
    #: (cache KB, CFA KB) -> layout name -> metrics
    cells: dict[tuple[int, int], dict[str, CellMetrics]] = field(default_factory=dict)
    #: cache KB -> miss rate % for the 2-way and victim variants (orig layout)
    assoc_miss: dict[int, float] = field(default_factory=dict)
    victim_miss: dict[int, float] = field(default_factory=dict)
    #: cache KB -> IPC for the 16 KB trace cache over the orig layout
    tc_ipc: dict[int, float] = field(default_factory=dict)
    tc_ideal: float = 0.0
    tc_hit_rate: float = 0.0
    #: (cache KB, CFA KB) -> IPC for trace cache + ops layout
    tc_ops_ipc: dict[tuple[int, int], float] = field(default_factory=dict)
    tc_ops_ideal: dict[tuple[int, int], float] = field(default_factory=dict)

    def ideal_range(self, layout: str) -> tuple[float, float]:
        values = [m[layout].ideal_ipc for m in self.cells.values() if layout in m]
        return (min(values), max(values)) if values else (0.0, 0.0)

    def run_length_of(self, layout: str, row: tuple[int, int] = (64, 16)) -> float:
        return self.cells[row][layout].run_length


def _metrics(fetch_result, cache_kb: int) -> CellMetrics:
    misses = count_misses(fetch_result.line_chunks, CacheConfig(size_bytes=cache_kb * KB))
    n = fetch_result.n_instructions
    cycles = fetch_result.n_fetches + MISS_PENALTY_CYCLES * misses
    return CellMetrics(
        miss_rate=100.0 * misses / n if n else 0.0,
        ipc=n / cycles if cycles else 0.0,
        ideal_ipc=fetch_result.ideal_ipc,
        run_length=fetch_result.instructions_between_taken,
    )


# -- task decomposition --------------------------------------------------
#
# A task is a self-contained simulation returning a small scalar payload:
#   ("base", name)  — fetch simulation of a geometry-independent layout,
#                     metrics per cache size (+ 2-way/victim for "orig")
#   ("tc", "orig")  — trace cache over the original layout
#   ("row", row)    — Torr/auto/ops fetch simulations for one grid row
#   ("tc_ops", row) — trace cache over the ops layout for one grid row

_Task = tuple[str, object]


def _suite_tasks(grid, tc_rows) -> list[_Task]:
    tasks: list[_Task] = [("base", "orig"), ("base", "P&H"), ("tc", "orig")]
    tasks.extend(("row", row) for row in grid)
    tasks.extend(("tc_ops", row) for row in tc_rows)
    return tasks


def _task_label(task: _Task) -> str:
    kind, arg = task
    if kind == "base":
        return f"fetch simulation: {arg}"
    if kind == "tc":
        return "trace cache: orig layout"
    if kind == "row":
        return "fetch simulations: Torr/auto/ops {}/{}".format(*arg)
    return "trace cache: ops layout {}/{}".format(*arg)


def _task_payload(workload: Workload, task: _Task, grid, cache_sizes) -> dict:
    kind, arg = task
    trace = workload.test_trace
    program = workload.program
    if kind == "base":
        layout = layouts_for(workload, grid[0][0], grid[0][1], names=(arg,))[arg]
        fr = simulate_fetch(trace, program, layout)
        payload = {
            "n_instructions": fr.n_instructions,
            "per_cache": {c: _metrics(fr, c) for c in cache_sizes},
        }
        if arg == "orig":
            n = fr.n_instructions
            assoc: dict[int, float] = {}
            victim: dict[int, float] = {}
            for c in cache_sizes:
                a = count_misses(fr.line_chunks, CacheConfig(size_bytes=c * KB, associativity=2))
                v = count_misses(fr.line_chunks, CacheConfig(size_bytes=c * KB, victim_lines=16))
                assoc[c] = 100.0 * a / n
                victim[c] = 100.0 * v / n
            payload["assoc"] = assoc
            payload["victim"] = victim
        return payload
    if kind == "tc":
        layout = layouts_for(workload, grid[0][0], grid[0][1], names=("orig",))["orig"]
        tc = simulate_trace_cache(trace, program, layout)
        return {
            "ideal": tc.bandwidth(None),
            "hit_rate": tc.hit_rate,
            "ipc": {c: tc.bandwidth(CacheConfig(size_bytes=c * KB)) for c in cache_sizes},
        }
    if kind == "row":
        cache_kb, cfa_kb = arg
        layouts = layouts_for(workload, cache_kb, cfa_kb, names=("Torr", "auto", "ops"))
        cells: dict[str, CellMetrics] = {}
        for name in ("Torr", "auto", "ops"):
            fr = simulate_fetch(trace, program, layouts[name])
            cells[name] = _metrics(fr, cache_kb)
            del fr
        return cells
    if kind == "tc_ops":
        cache_kb, cfa_kb = arg
        layout = layouts_for(workload, cache_kb, cfa_kb, names=("ops",))["ops"]
        tc = simulate_trace_cache(trace, program, layout)
        return {
            "ipc": tc.bandwidth(CacheConfig(size_bytes=cache_kb * KB)),
            "ideal": tc.bandwidth(None),
        }
    raise ValueError(f"unknown suite task {task!r}")


def _assemble(grid, tc_rows, results: dict[_Task, dict]) -> SuiteResults:
    """Deterministic assembly: iterates tasks in canonical order, so the
    result is independent of parallel completion order."""
    res = SuiteResults()
    base_orig = results[("base", "orig")]
    res.n_instructions = base_orig["n_instructions"]
    for name in ("orig", "P&H"):
        per_cache = results[("base", name)]["per_cache"]
        for row in grid:
            res.cells.setdefault(row, {})[name] = per_cache[row[0]]
    res.assoc_miss = dict(base_orig["assoc"])
    res.victim_miss = dict(base_orig["victim"])
    tc = results[("tc", "orig")]
    res.tc_ideal = tc["ideal"]
    res.tc_hit_rate = tc["hit_rate"]
    res.tc_ipc = dict(tc["ipc"])
    for row in grid:
        for name, cell in results[("row", row)].items():
            res.cells.setdefault(row, {})[name] = cell
    for row in tc_rows:
        payload = results[("tc_ops", row)]
        res.tc_ops_ipc[row] = payload["ipc"]
        res.tc_ops_ideal[row] = payload["ideal"]
    return res


# Worker context for fork-based pools: set in the parent immediately before
# the fork so children inherit the workload (and its trace arrays)
# copy-on-write instead of receiving pickled copies.
_WORKER_CTX: tuple | None = None


def _worker_run(task: _Task):
    workload, grid, cache_sizes = _WORKER_CTX
    return task, _task_payload(workload, task, grid, cache_sizes)


def _run_parallel(workload, grid, cache_sizes, tasks, n_workers, prog) -> dict[_Task, dict]:
    global _WORKER_CTX
    _WORKER_CTX = (workload, grid, cache_sizes)
    try:
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx) as pool:
            futures = [pool.submit(_worker_run, task) for task in tasks]
            results: dict[_Task, dict] = {}
            for future in as_completed(futures):
                task, payload = future.result()
                results[task] = payload
                prog.step(_task_label(task))
    finally:
        _WORKER_CTX = None
    return results


def compute_suite(
    workload: Workload,
    grid: tuple[tuple[int, int], ...] = CACHE_CFA_GRID,
    *,
    tc_rows: tuple[tuple[int, int], ...] | None = None,
    progress: bool = False,
    jobs: int = 1,
) -> SuiteResults:
    """Evaluate all layouts over the grid on the Test-set trace.

    ``jobs > 1`` fans the (layout x geometry) tasks out over worker
    processes (fork platforms only); results are bit-identical to serial.
    """
    tc_rows = grid if tc_rows is None else tc_rows
    cache_sizes = sorted({c for c, _ in grid})
    tasks = _suite_tasks(grid, tc_rows)
    n_workers = min(max(1, jobs), len(tasks))
    prog = Progress("suite", total=len(tasks), enabled=progress)

    # profile once in the parent: workers inherit it copy-on-write
    training_profile(workload)

    if n_workers > 1 and "fork" in multiprocessing.get_all_start_methods():
        results = _run_parallel(workload, grid, cache_sizes, tasks, n_workers, prog)
    else:
        results = {}
        for task in tasks:
            results[task] = _task_payload(workload, task, grid, cache_sizes)
            prog.step(_task_label(task))
    prog.done()
    return _assemble(grid, tc_rows, results)


# -- caching -------------------------------------------------------------

_SUITES: dict[tuple, SuiteResults] = {}
_SUITES_ADHOC: "weakref.WeakKeyDictionary[Workload, dict]" = weakref.WeakKeyDictionary()


def _suite_key(settings: WorkloadSettings, grid, tc_rows) -> tuple:
    return (settings, grid, tc_rows)


def get_suite(
    workload: Workload,
    grid: tuple[tuple[int, int], ...] = CACHE_CFA_GRID,
    *,
    tc_rows: tuple[tuple[int, int], ...] | None = None,
    progress: bool = False,
    jobs: int = 1,
) -> SuiteResults:
    """Cached :func:`compute_suite`.

    Settings-stamped workloads key by their :class:`WorkloadSettings` (in
    memory and in the artifact cache); ad-hoc workloads key by instance —
    never by ``id()``, which the garbage collector reuses.
    """
    tc_rows = grid if tc_rows is None else tc_rows
    settings = workload.settings
    if settings is None:
        per_workload = _SUITES_ADHOC.setdefault(workload, {})
        key = (grid, tc_rows)
        if key not in per_workload:
            per_workload[key] = compute_suite(
                workload, grid, tc_rows=tc_rows, progress=progress, jobs=jobs
            )
        return per_workload[key]

    key = _suite_key(settings, grid, tc_rows)
    if key not in _SUITES:
        cache = default_cache()
        suite = cache.load("suite", key)
        if not isinstance(suite, SuiteResults):
            suite = compute_suite(workload, grid, tc_rows=tc_rows, progress=progress, jobs=jobs)
            cache.store("suite", key, suite)
        _SUITES[key] = suite
    return _SUITES[key]


def suite_for(
    settings: WorkloadSettings,
    grid: tuple[tuple[int, int], ...] = CACHE_CFA_GRID,
    *,
    tc_rows: tuple[tuple[int, int], ...] | None = None,
    progress: bool = False,
    jobs: int = 1,
) -> SuiteResults:
    """Disk-first suite lookup: a warm artifact-cache hit returns without
    building the workload at all."""
    tc_rows_n = grid if tc_rows is None else tc_rows
    key = _suite_key(settings, grid, tc_rows_n)
    if key in _SUITES:
        return _SUITES[key]
    suite = default_cache().load("suite", key)
    if isinstance(suite, SuiteResults):
        _SUITES[key] = suite
        return suite
    workload = get_workload(settings)
    return get_suite(workload, grid, tc_rows=tc_rows, progress=progress, jobs=jobs)
