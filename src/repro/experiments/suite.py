"""The Table 3 / Table 4 evaluation suite.

One pass over (layout x geometry) computes everything both tables need:
fetch simulation per layout, vectorized miss counting per cache
configuration, trace-cache simulations for the TC columns. Results are
scalars, cached per workload so Table 3, Table 4 and the headline module
share the work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import CACHE_CFA_GRID, KB, PRIMARY_ROWS
from repro.experiments.harness import layouts_for
from repro.simulators import (
    CacheConfig,
    count_misses,
    simulate_fetch,
    simulate_trace_cache,
)
from repro.simulators.fetch import MISS_PENALTY_CYCLES
from repro.tpcd.workload import Workload

__all__ = ["CellMetrics", "SuiteResults", "compute_suite", "get_suite"]


@dataclass
class CellMetrics:
    """One (geometry, layout) cell shared by Tables 3 and 4."""

    miss_rate: float  # misses per instruction, percent
    ipc: float  # fetch bandwidth with the 5-cycle miss penalty
    ideal_ipc: float
    run_length: float  # instructions between taken branches


@dataclass
class SuiteResults:
    n_instructions: int = 0
    #: (cache KB, CFA KB) -> layout name -> metrics
    cells: dict[tuple[int, int], dict[str, CellMetrics]] = field(default_factory=dict)
    #: cache KB -> miss rate % for the 2-way and victim variants (orig layout)
    assoc_miss: dict[int, float] = field(default_factory=dict)
    victim_miss: dict[int, float] = field(default_factory=dict)
    #: cache KB -> IPC for the 16 KB trace cache over the orig layout
    tc_ipc: dict[int, float] = field(default_factory=dict)
    tc_ideal: float = 0.0
    tc_hit_rate: float = 0.0
    #: (cache KB, CFA KB) -> IPC for trace cache + ops layout
    tc_ops_ipc: dict[tuple[int, int], float] = field(default_factory=dict)
    tc_ops_ideal: dict[tuple[int, int], float] = field(default_factory=dict)

    def ideal_range(self, layout: str) -> tuple[float, float]:
        values = [m[layout].ideal_ipc for m in self.cells.values() if layout in m]
        return (min(values), max(values)) if values else (0.0, 0.0)

    def run_length_of(self, layout: str, row: tuple[int, int] = (64, 16)) -> float:
        return self.cells[row][layout].run_length


def _metrics(fetch_result, cache_kb: int) -> CellMetrics:
    misses = count_misses(fetch_result.line_chunks, CacheConfig(size_bytes=cache_kb * KB))
    n = fetch_result.n_instructions
    cycles = fetch_result.n_fetches + MISS_PENALTY_CYCLES * misses
    return CellMetrics(
        miss_rate=100.0 * misses / n if n else 0.0,
        ipc=n / cycles if cycles else 0.0,
        ideal_ipc=fetch_result.ideal_ipc,
        run_length=fetch_result.instructions_between_taken,
    )


def compute_suite(
    workload: Workload,
    grid: tuple[tuple[int, int], ...] = CACHE_CFA_GRID,
    *,
    tc_rows: tuple[tuple[int, int], ...] | None = None,
    progress: bool = False,
) -> SuiteResults:
    """Evaluate all layouts over the grid on the Test-set trace."""
    program = workload.program
    trace = workload.test_trace
    tc_rows = grid if tc_rows is None else tc_rows
    cache_sizes = sorted({c for c, _ in grid})
    res = SuiteResults()

    def log(msg: str) -> None:
        if progress:
            print(f"  [suite] {msg}", flush=True)

    # geometry-independent layouts: one fetch simulation each
    base = layouts_for(workload, grid[0][0], grid[0][1], names=("orig", "P&H"))
    for name in ("orig", "P&H"):
        log(f"fetch simulation: {name}")
        fr = simulate_fetch(trace, program, base[name])
        res.n_instructions = fr.n_instructions
        per_cache = {c: _metrics(fr, c) for c in cache_sizes}
        for row in grid:
            res.cells.setdefault(row, {})[name] = per_cache[row[0]]
        if name == "orig":
            for c in cache_sizes:
                n = fr.n_instructions
                assoc = count_misses(fr.line_chunks, CacheConfig(size_bytes=c * KB, associativity=2))
                victim = count_misses(
                    fr.line_chunks, CacheConfig(size_bytes=c * KB, victim_lines=16)
                )
                res.assoc_miss[c] = 100.0 * assoc / n
                res.victim_miss[c] = 100.0 * victim / n
            log("trace cache: orig layout")
            tc = simulate_trace_cache(trace, program, base["orig"])
            res.tc_ideal = tc.bandwidth(None)
            res.tc_hit_rate = tc.hit_rate
            for c in cache_sizes:
                res.tc_ipc[c] = tc.bandwidth(CacheConfig(size_bytes=c * KB))

    # geometry-dependent layouts
    for row in grid:
        cache_kb, cfa_kb = row
        layouts = layouts_for(workload, cache_kb, cfa_kb, names=("Torr", "auto", "ops"))
        for name in ("Torr", "auto", "ops"):
            log(f"fetch simulation: {name} {cache_kb}/{cfa_kb}")
            fr = simulate_fetch(trace, program, layouts[name])
            res.cells.setdefault(row, {})[name] = _metrics(fr, cache_kb)
            del fr
        if row in tc_rows:
            log(f"trace cache: ops layout {cache_kb}/{cfa_kb}")
            tc = simulate_trace_cache(trace, program, layouts["ops"])
            res.tc_ops_ipc[row] = tc.bandwidth(CacheConfig(size_bytes=cache_kb * KB))
            res.tc_ops_ideal[row] = tc.bandwidth(None)
    return res


_SUITES: dict[tuple[int, tuple], SuiteResults] = {}


def get_suite(
    workload: Workload,
    grid: tuple[tuple[int, int], ...] = CACHE_CFA_GRID,
    *,
    tc_rows: tuple[tuple[int, int], ...] | None = None,
    progress: bool = False,
) -> SuiteResults:
    """Cached :func:`compute_suite` (keyed by workload identity and grid)."""
    key = (id(workload), grid, tc_rows)
    if key not in _SUITES:
        _SUITES[key] = compute_suite(workload, grid, tc_rows=tc_rows, progress=progress)
    return _SUITES[key]
