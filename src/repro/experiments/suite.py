"""The Table 3 / Table 4 evaluation suite.

One pass over (layout x geometry) computes everything both tables need:
fetch simulation per layout, vectorized miss counting per cache
configuration, trace-cache simulations for the TC columns. Results are
scalars, cached per workload settings — in memory and in the persistent
artifact cache — so Table 3, Table 4 and the headline module share the
work within and across processes.

The suite is decomposed into self-contained (layout x geometry) tasks,
and the engine executes them *fused*: tasks are grouped (at most
``_FUSE_LIMIT`` per group) and each group makes a single streaming pass
over the trace (:func:`repro.simulators.run_fused`) feeding every task's
incremental fetch/trace-cache streams and attached i-cache miss counters
at once — the trace is decoded and expanded once per group instead of
once per simulation, and peak memory stays one window regardless of group
size. With ``jobs > 1`` the groups fan out over a fork-based
:class:`~concurrent.futures.ProcessPoolExecutor` — the workload's trace
handles are shared copy-on-write, each worker returns only scalar
metrics, and assembly is deterministic, so parallel output is
bit-identical to serial (and to the unfused reference
:func:`_task_payload`). Platforms without ``fork`` (and ``jobs=1``) run
the same groups in-parent.

The engine is fault-tolerant and resumable:

* every completed task's payload is checkpointed through the artifact
  cache (kind ``suite-task``, keyed by the workload settings and task),
  so a crashed, killed, or partially-failed run resumes by recomputing
  only the missing tasks — and produces bit-identical results;
* transient worker failures (fork OOM, cache I/O) are retried with
  exponential backoff, bounded by ``retries``;
* a permanent task failure names the task (:class:`SuiteTaskError`),
  cancels pending work, and leaves every completed task checkpointed;
* ``task_timeout`` bounds how long a parallel run may go with no task
  completing — a stall raises :class:`SuiteTimeoutError` naming the
  still-running tasks instead of hanging forever;
* if the worker pool itself dies, the run degrades to in-parent serial
  execution of the remaining tasks;
* a :class:`~repro.experiments.runlog.RunLog` manifest records per-task
  timing, checkpoint provenance, retries, failures and cache counters.
"""

from __future__ import annotations

import multiprocessing
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

from repro.cache import cache_enabled, default_cache
from repro.experiments.config import CACHE_CFA_GRID, KB
from repro.experiments.harness import get_workload, layouts_for, training_profile
from repro.experiments.runlog import RunLog
from repro.simulators import (
    CacheConfig,
    FetchStream,
    TraceCacheStream,
    count_misses,
    miss_counter,
    run_fused,
    simulate_fetch,
    simulate_trace_cache,
)
from repro.simulators.fetch import MISS_PENALTY_CYCLES
from repro.simulators.sharded import (
    ShardError,
    ShardTimeoutError,
    plan_shards,
    run_sharded,
)
from repro.tpcd.workload import Workload, WorkloadSettings
from repro.util.progress import Progress

__all__ = [
    "CellMetrics",
    "SuiteResults",
    "SuiteTaskError",
    "SuiteTimeoutError",
    "compute_suite",
    "get_suite",
    "suite_cache_key",
    "suite_for",
]


@dataclass
class CellMetrics:
    """One (geometry, layout) cell shared by Tables 3 and 4."""

    miss_rate: float  # misses per instruction, percent
    ipc: float  # fetch bandwidth with the 5-cycle miss penalty
    ideal_ipc: float
    run_length: float  # instructions between taken branches


@dataclass
class SuiteResults:
    n_instructions: int = 0
    #: (cache KB, CFA KB) -> layout name -> metrics
    cells: dict[tuple[int, int], dict[str, CellMetrics]] = field(default_factory=dict)
    #: cache KB -> miss rate % for the 2-way and victim variants (orig layout)
    assoc_miss: dict[int, float] = field(default_factory=dict)
    victim_miss: dict[int, float] = field(default_factory=dict)
    #: cache KB -> IPC for the 16 KB trace cache over the orig layout
    tc_ipc: dict[int, float] = field(default_factory=dict)
    tc_ideal: float = 0.0
    tc_hit_rate: float = 0.0
    #: (cache KB, CFA KB) -> IPC for trace cache + ops layout
    tc_ops_ipc: dict[tuple[int, int], float] = field(default_factory=dict)
    tc_ops_ideal: dict[tuple[int, int], float] = field(default_factory=dict)

    def ideal_range(self, layout: str) -> tuple[float, float]:
        values = [m[layout].ideal_ipc for m in self.cells.values() if layout in m]
        return (min(values), max(values)) if values else (0.0, 0.0)

    def run_length_of(self, layout: str, row: tuple[int, int] = (64, 16)) -> float:
        return self.cells[row][layout].run_length


def _cell(n: int, n_fetches: int, ideal_ipc: float, run_length: float, misses: int) -> CellMetrics:
    """Shared metric arithmetic for the per-config and fused paths."""
    cycles = n_fetches + MISS_PENALTY_CYCLES * misses
    return CellMetrics(
        miss_rate=100.0 * misses / n if n else 0.0,
        ipc=n / cycles if cycles else 0.0,
        ideal_ipc=ideal_ipc,
        run_length=run_length,
    )


def _metrics(fetch_result, cache_kb: int) -> CellMetrics:
    misses = count_misses(fetch_result.line_chunks, CacheConfig(size_bytes=cache_kb * KB))
    return _cell(
        fetch_result.n_instructions,
        fetch_result.n_fetches,
        fetch_result.ideal_ipc,
        fetch_result.instructions_between_taken,
        misses,
    )


def _tc_bandwidth(n_instructions: int, n_cycles_base: int, misses: int = 0) -> float:
    cycles = n_cycles_base + MISS_PENALTY_CYCLES * misses
    return n_instructions / cycles if cycles else 0.0


# -- task decomposition --------------------------------------------------
#
# A task is a self-contained simulation returning a small scalar payload:
#   ("base", name)  — fetch simulation of a geometry-independent layout,
#                     metrics per cache size (+ 2-way/victim for "orig")
#   ("tc", "orig")  — trace cache over the original layout
#   ("row", row)    — Torr/auto/ops fetch simulations for one grid row
#   ("tc_ops", row) — trace cache over the ops layout for one grid row

_Task = tuple[str, object]


def _suite_tasks(grid, tc_rows) -> list[_Task]:
    """Canonical task order, arranged so that tasks sharing a layout
    (base/tc over ``orig``, row/tc_ops over one geometry) sit next to
    each other — the fused engine groups contiguous tasks, and adjacent
    tasks of one layout share its per-window expansion."""
    if not grid:  # empty grid: nothing to simulate, not even the bases
        return []
    tasks: list[_Task] = [("base", "orig"), ("tc", "orig"), ("base", "P&H")]
    tc_set = set(tc_rows)
    for row in grid:
        tasks.append(("row", row))
        if row in tc_set:
            tasks.append(("tc_ops", row))
    grid_set = set(grid)
    tasks.extend(("tc_ops", row) for row in tc_rows if row not in grid_set)
    return tasks


def _task_label(task: _Task) -> str:
    kind, arg = task
    if kind == "base":
        return f"fetch simulation: {arg}"
    if kind == "tc":
        return "trace cache: orig layout"
    if kind == "row":
        return "fetch simulations: Torr/auto/ops {}/{}".format(*arg)
    return "trace cache: ops layout {}/{}".format(*arg)


def _task_payload(workload: Workload, task: _Task, grid, cache_sizes) -> dict:
    kind, arg = task
    trace = workload.test_trace
    program = workload.program
    if kind == "base":
        layout = layouts_for(workload, grid[0][0], grid[0][1], names=(arg,))[arg]
        fr = simulate_fetch(trace, program, layout)
        payload = {
            "n_instructions": fr.n_instructions,
            "per_cache": {c: _metrics(fr, c) for c in cache_sizes},
        }
        if arg == "orig":
            n = fr.n_instructions
            assoc: dict[int, float] = {}
            victim: dict[int, float] = {}
            for c in cache_sizes:
                a = count_misses(fr.line_chunks, CacheConfig(size_bytes=c * KB, associativity=2))
                v = count_misses(fr.line_chunks, CacheConfig(size_bytes=c * KB, victim_lines=16))
                assoc[c] = 100.0 * a / n
                victim[c] = 100.0 * v / n
            payload["assoc"] = assoc
            payload["victim"] = victim
        return payload
    if kind == "tc":
        layout = layouts_for(workload, grid[0][0], grid[0][1], names=("orig",))["orig"]
        tc = simulate_trace_cache(trace, program, layout)
        return {
            "ideal": tc.bandwidth(None),
            "hit_rate": tc.hit_rate,
            "ipc": {c: tc.bandwidth(CacheConfig(size_bytes=c * KB)) for c in cache_sizes},
        }
    if kind == "row":
        cache_kb, cfa_kb = arg
        layouts = layouts_for(workload, cache_kb, cfa_kb, names=("Torr", "auto", "ops"))
        cells: dict[str, CellMetrics] = {}
        for name in ("Torr", "auto", "ops"):
            fr = simulate_fetch(trace, program, layouts[name])
            cells[name] = _metrics(fr, cache_kb)
            del fr
        return cells
    if kind == "tc_ops":
        cache_kb, cfa_kb = arg
        layout = layouts_for(workload, cache_kb, cfa_kb, names=("ops",))["ops"]
        tc = simulate_trace_cache(trace, program, layout)
        return {
            "ipc": tc.bandwidth(CacheConfig(size_bytes=cache_kb * KB)),
            "ideal": tc.bandwidth(None),
        }
    raise ValueError(f"unknown suite task {task!r}")


# -- fused execution -----------------------------------------------------
#
# The engine does not run tasks one simulation at a time: tasks are
# grouped and each group makes a *single* pass over the trace
# (repro.simulators.run_fused), with every task contributing incremental
# streams whose i-cache configurations are attached miss counters. The
# per-task payloads are assembled from the stream counters with the same
# arithmetic as _task_payload, so they are bit-identical to the
# one-simulation-per-task path (which remains above as the reference
# implementation, exercised by the equivalence tests).

#: Upper bound on tasks fused into one trace pass. Groups stay small so
#: retry, stall detection and checkpointing keep useful granularity.
_FUSE_LIMIT = 8


def _unit_for(workload: Workload, task: _Task, grid, cache_sizes, layout_memo=None):
    """Build one task's fused streams and payload finalizer.

    Returns ``(pairs, finalize)``: ``pairs`` are the ``(layout, stream)``
    contributions to the fused pass, ``finalize()`` assembles the task
    payload from the stream counters afterwards. ``layout_memo`` shares
    layout objects across the units of one group, which lets the fused
    driver share their per-window expansion as well.
    """
    kind, arg = task
    memo = layout_memo if layout_memo is not None else {}

    def layout_of(name: str, cache_kb: int, cfa_kb: int):
        key = (name, cache_kb, cfa_kb)
        if key not in memo:
            memo[key] = layouts_for(workload, cache_kb, cfa_kb, names=(name,))[name]
        return memo[key]

    if kind == "base":
        layout = layout_of(arg, grid[0][0], grid[0][1])
        counters = {c: miss_counter(CacheConfig(size_bytes=c * KB)) for c in cache_sizes}
        consumers = list(counters.values())
        if arg == "orig":
            assoc = {
                c: miss_counter(CacheConfig(size_bytes=c * KB, associativity=2))
                for c in cache_sizes
            }
            victim = {
                c: miss_counter(CacheConfig(size_bytes=c * KB, victim_lines=16))
                for c in cache_sizes
            }
            consumers += list(assoc.values()) + list(victim.values())
        stream = FetchStream(layout.name, consumers=consumers)

        def finalize() -> dict:
            n = stream.n_instructions
            fetches = stream.n_fetches
            ideal = n / fetches if fetches else 0.0
            run_length = n / stream.n_taken if stream.n_taken else float("inf")
            payload = {
                "n_instructions": n,
                "per_cache": {
                    c: _cell(n, fetches, ideal, run_length, counters[c].misses)
                    for c in cache_sizes
                },
            }
            if arg == "orig":
                payload["assoc"] = {c: 100.0 * assoc[c].misses / n for c in cache_sizes}
                payload["victim"] = {c: 100.0 * victim[c].misses / n for c in cache_sizes}
            return payload

        return [(layout, stream)], finalize

    if kind == "tc":
        layout = layout_of("orig", grid[0][0], grid[0][1])
        counters = {c: miss_counter(CacheConfig(size_bytes=c * KB)) for c in cache_sizes}
        stream = TraceCacheStream(layout.name, consumers=list(counters.values()))

        def finalize() -> dict:
            n = stream.n_instructions
            attempts = stream.n_hits + stream.n_misses
            return {
                "ideal": _tc_bandwidth(n, stream.n_cycles_base),
                "hit_rate": stream.n_hits / attempts if attempts else 0.0,
                "ipc": {
                    c: _tc_bandwidth(n, stream.n_cycles_base, counters[c].misses)
                    for c in cache_sizes
                },
            }

        return [(layout, stream)], finalize

    if kind == "row":
        cache_kb, cfa_kb = arg
        streams: dict[str, tuple[FetchStream, object]] = {}
        pairs = []
        for name in ("Torr", "auto", "ops"):
            layout = layout_of(name, cache_kb, cfa_kb)
            counter = miss_counter(CacheConfig(size_bytes=cache_kb * KB))
            stream = FetchStream(layout.name, consumers=[counter])
            streams[name] = (stream, counter)
            pairs.append((layout, stream))

        def finalize() -> dict:
            cells: dict[str, CellMetrics] = {}
            for name, (stream, counter) in streams.items():
                n = stream.n_instructions
                fetches = stream.n_fetches
                ideal = n / fetches if fetches else 0.0
                run_length = n / stream.n_taken if stream.n_taken else float("inf")
                cells[name] = _cell(n, fetches, ideal, run_length, counter.misses)
            return cells

        return pairs, finalize

    if kind == "tc_ops":
        cache_kb, cfa_kb = arg
        layout = layout_of("ops", cache_kb, cfa_kb)
        counter = miss_counter(CacheConfig(size_bytes=cache_kb * KB))
        stream = TraceCacheStream(layout.name, consumers=[counter])

        def finalize() -> dict:
            n = stream.n_instructions
            return {
                "ipc": _tc_bandwidth(n, stream.n_cycles_base, counter.misses),
                "ideal": _tc_bandwidth(n, stream.n_cycles_base),
            }

        return [(layout, stream)], finalize

    raise ValueError(f"unknown suite task {task!r}")


def _run_group(workload: Workload, group, grid, cache_sizes):
    """One fused pass over the trace for a group of tasks.

    Returns ``(payloads, errors)`` keyed by task. A failure while
    building one task's unit (layout construction) is isolated to that
    task; a failure during the shared trace pass fails every task whose
    unit made it into the pass (none of their streams can be trusted).
    """
    payloads: dict[_Task, dict] = {}
    errors: dict[_Task, BaseException] = {}
    memo: dict = {}
    units = []
    for task in group:
        try:
            pairs, finalize = _unit_for(workload, task, grid, cache_sizes, memo)
        except Exception as exc:
            errors[task] = exc
            continue
        units.append((task, pairs, finalize))
    if units:
        try:
            run_fused(
                workload.test_trace,
                workload.program,
                [pair for _, pairs, _ in units for pair in pairs],
            )
        except Exception as exc:
            for task, _, _ in units:
                errors[task] = exc
            return payloads, errors
    for task, _, finalize in units:
        try:
            payloads[task] = finalize()
        except Exception as exc:
            errors[task] = exc
    return payloads, errors


def _split_groups(tasks, n_groups: int):
    """Contiguous, near-even split of the canonical task order."""
    n = len(tasks)
    n_groups = max(1, min(n_groups, n))
    base, rem = divmod(n, n_groups)
    out, start = [], 0
    for g in range(n_groups):
        size = base + (1 if g < rem else 0)
        out.append(list(tasks[start : start + size]))
        start += size
    return out


def _assemble(grid, tc_rows, results: dict[_Task, dict]) -> SuiteResults:
    """Deterministic assembly: iterates tasks in canonical order, so the
    result is independent of parallel completion order."""
    res = SuiteResults()
    if not results:
        return res
    base_orig = results[("base", "orig")]
    res.n_instructions = base_orig["n_instructions"]
    for name in ("orig", "P&H"):
        per_cache = results[("base", name)]["per_cache"]
        for row in grid:
            res.cells.setdefault(row, {})[name] = per_cache[row[0]]
    res.assoc_miss = dict(base_orig["assoc"])
    res.victim_miss = dict(base_orig["victim"])
    tc = results[("tc", "orig")]
    res.tc_ideal = tc["ideal"]
    res.tc_hit_rate = tc["hit_rate"]
    res.tc_ipc = dict(tc["ipc"])
    for row in grid:
        for name, cell in results[("row", row)].items():
            res.cells.setdefault(row, {})[name] = cell
    for row in tc_rows:
        payload = results[("tc_ops", row)]
        res.tc_ops_ipc[row] = payload["ipc"]
        res.tc_ops_ideal[row] = payload["ideal"]
    return res


# -- fault tolerance -----------------------------------------------------

class SuiteTaskError(RuntimeError):
    """A suite task failed permanently.

    Completed tasks remain checkpointed in the artifact cache, so a
    re-run with ``resume=True`` recomputes only what is missing.
    """

    def __init__(self, task: _Task, label: str, cause: BaseException) -> None:
        super().__init__(f"suite task failed: {label}: {cause!r}")
        self.task = task
        self.label = label
        self.cause = cause


class SuiteTimeoutError(RuntimeError):
    """No task completed within ``task_timeout`` seconds of the last one."""

    def __init__(self, labels: list[str], timeout: float) -> None:
        super().__init__(
            f"no suite task completed in {timeout:.1f}s; still running: {', '.join(labels)}"
        )
        self.labels = labels
        self.timeout = timeout


#: Failure classes worth retrying: environmental pressure (fork OOM,
#: cache/trace I/O hiccups) rather than deterministic bugs in a task.
_TRANSIENT_EXCEPTIONS = (OSError, MemoryError, EOFError)

_RETRY_BACKOFF_SECONDS = 0.05


def _is_transient(exc: BaseException) -> bool:
    return isinstance(exc, _TRANSIENT_EXCEPTIONS)


def _backoff(attempt: int) -> float:
    return _RETRY_BACKOFF_SECONDS * (2 ** (attempt - 1))


def _task_key(settings: WorkloadSettings, cache_sizes, task: _Task) -> tuple:
    """Checkpoint address of one task's payload.

    ``row``/``tc_ops`` payloads depend only on their own grid row, so
    their checkpoints are shared across grids (a ``--quick`` run seeds
    the full-grid run). ``base``/``tc`` payloads carry per-cache-size
    tables and key on the grid's cache sizes as well.
    """
    if task[0] in ("base", "tc"):
        return (settings, tuple(cache_sizes), task)
    return (settings, task)


# Worker context for fork-based pools: set in the parent immediately before
# the fork so children inherit the workload (and its trace arrays)
# copy-on-write instead of receiving pickled copies.
_WORKER_CTX: tuple | None = None


def _worker_run_group(group):
    workload, grid, cache_sizes = _WORKER_CTX
    payloads, errors = _run_group(workload, group, grid, cache_sizes)
    return payloads, list(errors.items())


def _run_serial(workload, grid, cache_sizes, tasks, retries, on_done, runlog, prog) -> None:
    """In-parent fused execution with bounded retry for transient failures.

    Tasks run in groups of at most ``_FUSE_LIMIT``, each group one pass
    over the trace. Tasks that fail transiently are re-run together as a
    follow-up group; a permanent failure raises after the group's
    successful tasks have been delivered (and checkpointed).
    """
    attempts = {task: 0 for task in tasks}
    queue = [list(tasks[i : i + _FUSE_LIMIT]) for i in range(0, len(tasks), _FUSE_LIMIT)]
    while queue:
        group = queue.pop(0)
        for task in group:
            attempts[task] += 1
        t0 = time.perf_counter()
        payloads, errors = _run_group(workload, group, grid, cache_sizes)
        share = (time.perf_counter() - t0) / max(1, len(group))
        for task in group:
            if task in payloads:
                on_done(task, payloads[task], share, attempts[task])
        retry_group = []
        for task, exc in errors.items():
            label = _task_label(task)
            if attempts[task] <= retries and _is_transient(exc):
                runlog.task_retry(label, exc, attempts[task])
                prog.fail(f"{label}: {exc!r} (attempt {attempts[task]}, retrying)")
                retry_group.append(task)
            else:
                runlog.task_failed(label, task[0], exc, attempts[task])
                prog.fail(f"{label}: {exc!r}")
                raise SuiteTaskError(task, label, exc) from exc
        if retry_group:
            time.sleep(_backoff(max(attempts[task] for task in retry_group)))
            queue.insert(0, retry_group)


def _run_parallel(
    workload, grid, cache_sizes, tasks, n_workers, task_timeout, retries, on_done, runlog, prog
) -> list[_Task]:
    """Fan fused task groups over a fork pool; returns tasks left undone
    by pool death.

    The canonical task order is split contiguously into at least
    ``n_workers`` groups (and enough that no group exceeds
    ``_FUSE_LIMIT``); each worker runs its group as one fused pass.
    A permanent task failure cancels everything pending and raises
    :class:`SuiteTaskError`; transient failures are resubmitted with
    backoff as single-task groups. ``task_timeout`` is a stall bound: if
    *no* group completes for that long, the pending work is cancelled and
    :class:`SuiteTimeoutError` names the still-running tasks. If the pool
    itself breaks (a worker died hard), the unfinished tasks are returned
    for in-parent serial execution instead of failing the run.
    """
    global _WORKER_CTX
    _WORKER_CTX = (workload, grid, cache_sizes)
    completed: set[_Task] = set()
    ctx = multiprocessing.get_context("fork")
    pool = ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx)
    try:
        n_groups = max(n_workers, -(-len(tasks) // _FUSE_LIMIT))
        group_of = {
            pool.submit(_worker_run_group, group): group
            for group in _split_groups(tasks, n_groups)
        }
        attempts = {task: 1 for task in tasks}
        started = {task: time.perf_counter() for task in tasks}
        pending = set(group_of)
        while pending:
            done, not_done = wait(pending, timeout=task_timeout, return_when=FIRST_COMPLETED)
            if not done:  # stalled: nothing finished within the budget
                labels = sorted(
                    _task_label(task) for f in not_done for task in group_of[f]
                )
                for f in not_done:
                    f.cancel()
                runlog.event("stall", tasks=labels, timeout=task_timeout)
                prog.fail(f"stalled {task_timeout:.1f}s waiting on: {', '.join(labels)}")
                raise SuiteTimeoutError(labels, task_timeout)
            for future in done:
                pending.discard(future)
                group = group_of.pop(future)
                try:
                    payloads, errors = future.result()
                except Exception as exc:
                    if isinstance(exc, BrokenProcessPool):
                        raise  # pool is gone: degrade to serial below
                    # the whole group failed in transit (e.g. the result
                    # did not unpickle): treat every task as errored
                    payloads, errors = {}, [(task, exc) for task in group]
                for task in group:
                    if task in payloads:
                        completed.add(task)
                        on_done(
                            task,
                            payloads[task],
                            time.perf_counter() - started[task],
                            attempts[task],
                        )
                for task, exc in errors:
                    label = _task_label(task)
                    if attempts[task] <= retries and _is_transient(exc):
                        runlog.task_retry(label, exc, attempts[task])
                        prog.fail(f"{label}: {exc!r} (attempt {attempts[task]}, retrying)")
                        time.sleep(_backoff(attempts[task]))
                        attempts[task] += 1
                        started[task] = time.perf_counter()
                        retry = pool.submit(_worker_run_group, [task])
                        group_of[retry] = [task]
                        pending.add(retry)
                    else:
                        for f in pending:
                            f.cancel()
                        runlog.task_failed(label, task[0], exc, attempts[task])
                        prog.fail(f"{label}: {exc!r}")
                        raise SuiteTaskError(task, label, exc) from exc
        return []
    except BrokenProcessPool as exc:
        remaining = [t for t in tasks if t not in completed]
        runlog.event("pool-broken", error=repr(exc), remaining=len(remaining))
        prog.fail(f"worker pool died ({exc!r}); running {len(remaining)} tasks serially")
        return remaining
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
        _WORKER_CTX = None


class _ShardCheckpoint:
    """Adapter scoping :func:`run_sharded` job checkpoints into the
    artifact cache (kind ``suite-shard``).

    The prefix pins everything a shard payload depends on — workload
    settings, cache sizes, the exact task set (stream composition; suite
    streams always start cold) and the shard plan — so resumed runs only
    ever reuse payloads that are bit-identical to a fresh computation.
    """

    def __init__(self, cache, prefix: tuple) -> None:
        self._cache = cache
        self._prefix = prefix

    def load(self, key: tuple):
        return self._cache.load("suite-shard", self._prefix + (key,))

    def store(self, key: tuple, payload) -> None:
        self._cache.store("suite-shard", self._prefix + (key,), payload)


def _run_sharded_suite(
    workload, grid, cache_sizes, tasks, settings, shards, jobs,
    task_timeout, retries, on_done, runlog, prog, cache,
):
    """Run every missing task in one shard-parallel pass over the trace.

    All tasks' fused streams join a single :func:`run_sharded` call, so
    the checkpoint/retry/resume unit is the *shard job* rather than the
    task: an interrupted run recomputes only the missing shard jobs and
    relay steps. Payloads are finalized from the stitched streams with
    the same arithmetic as the fused path, so results are bit-identical
    for any shard/worker combination.
    """
    trace = workload.test_trace
    memo: dict = {}
    units = []
    for task in tasks:
        try:
            pairs, finalize = _unit_for(workload, task, grid, cache_sizes, memo)
        except Exception as exc:
            label = _task_label(task)
            runlog.task_failed(label, task[0], exc, 1)
            prog.fail(f"{label}: {exc!r}")
            raise SuiteTaskError(task, label, exc) from exc
        units.append((task, pairs, finalize))
    all_pairs = [pair for _, pairs, _ in units for pair in pairs]
    plan = plan_shards(len(trace), shards=shards)
    runlog.event(
        "shard-plan",
        shards=plan.n_shards,
        chunk_events=plan.chunk_events,
        bounds=list(plan.bounds),
    )
    checkpoint = None
    if cache is not None:
        prefix = (settings, tuple(cache_sizes), tuple(tasks), plan.signature())
        checkpoint = _ShardCheckpoint(cache, prefix)

    def on_job(key: tuple, source: str) -> None:
        runlog.event("shard-job", job=list(key), source=source)

    t0 = time.perf_counter()
    try:
        report = run_sharded(
            trace, workload.program, all_pairs,
            shards=plan, jobs=jobs, retries=retries,
            task_timeout=task_timeout, checkpoint=checkpoint, on_job=on_job,
        )
    except ShardTimeoutError as exc:
        labels = [repr(key) for key in exc.keys]
        runlog.event("stall", tasks=labels, timeout=exc.timeout)
        prog.fail(f"stalled {exc.timeout:.1f}s waiting on: {', '.join(labels)}")
        raise SuiteTimeoutError(labels, exc.timeout) from exc
    except ShardError as exc:
        label = f"shard job {exc.key!r}"
        runlog.task_failed(label, "shard", exc.cause, 1)
        prog.fail(f"{label}: {exc.cause!r}")
        raise SuiteTaskError(("shard", exc.key), label, exc.cause) from exc
    if report.degraded:
        runlog.event("pool-broken", remaining=0)
    share = (time.perf_counter() - t0) / max(1, len(units))
    for task, _, finalize in units:
        on_done(task, finalize(), share, 1)
    return report


def compute_suite(
    workload: Workload,
    grid: tuple[tuple[int, int], ...] = CACHE_CFA_GRID,
    *,
    tc_rows: tuple[tuple[int, int], ...] | None = None,
    progress: bool = False,
    jobs: int = 1,
    shards: int | None = None,
    resume: bool = True,
    task_timeout: float | None = None,
    retries: int = 2,
    manifest: Path | str | None = None,
) -> SuiteResults:
    """Evaluate all layouts over the grid on the Test-set trace.

    ``jobs > 1`` fans the (layout x geometry) tasks out over worker
    processes (fork platforms only); results are bit-identical to serial.
    ``shards > 1`` switches the axis of parallelism from tasks to *trace
    spans*: every missing task joins one shard-parallel pass
    (:func:`repro.simulators.run_sharded`) whose shard jobs fan out over
    ``jobs`` workers — still bit-identical, and the checkpoint/retry/
    resume unit becomes the shard job instead of the task.

    With ``resume=True`` (the default) each completed task is
    checkpointed in the artifact cache and an interrupted or failed run
    picks up where it left off; ``retries`` bounds per-task retry of
    transient failures, ``task_timeout`` bounds how long a parallel run
    may sit with no task completing, and ``manifest`` names a JSON file
    to receive the structured run log (written on success *and* failure).
    """
    tc_rows = grid if tc_rows is None else tc_rows
    cache_sizes = sorted({c for c, _ in grid})
    tasks = _suite_tasks(grid, tc_rows)
    settings = workload.settings
    cache = default_cache()
    checkpointing = resume and settings is not None and cache_enabled()
    prog = Progress("suite", total=len(tasks), enabled=progress)
    runlog = RunLog(
        "suite",
        settings=settings,
        jobs=jobs,
        resume=resume,
        task_timeout=task_timeout,
        retries=retries,
        n_tasks=len(tasks),
        cache=cache,
    )

    results: dict[_Task, dict] = {}
    if checkpointing:
        for task in tasks:
            payload = cache.load("suite-task", _task_key(settings, cache_sizes, task))
            if payload is not None:
                results[task] = payload
                runlog.task_done(
                    _task_label(task), task[0], seconds=0.0, attempts=0, source="checkpoint"
                )
                prog.step(f"{_task_label(task)} [checkpoint]")

    def on_done(task: _Task, payload: dict, seconds: float, attempts: int) -> None:
        results[task] = payload
        if checkpointing:
            cache.store("suite-task", _task_key(settings, cache_sizes, task), payload)
        runlog.task_done(
            _task_label(task), task[0], seconds=seconds, attempts=attempts, source="computed"
        )
        prog.step(_task_label(task))

    missing = [t for t in tasks if t not in results]
    try:
        if missing:
            # profile once in the parent: workers inherit it copy-on-write
            training_profile(workload)
            if shards is not None and shards > 1:
                _run_sharded_suite(
                    workload, grid, cache_sizes, missing, settings, shards, jobs,
                    task_timeout, retries, on_done, runlog, prog,
                    cache if checkpointing else None,
                )
            elif (
                min(max(1, jobs), len(missing)) > 1
                and "fork" in multiprocessing.get_all_start_methods()
            ):
                n_workers = min(max(1, jobs), len(missing))
                remaining = _run_parallel(
                    workload, grid, cache_sizes, missing, n_workers,
                    task_timeout, retries, on_done, runlog, prog,
                )
                if remaining:  # pool died: finish in-parent
                    _run_serial(
                        workload, grid, cache_sizes, remaining, retries, on_done, runlog, prog
                    )
            else:
                _run_serial(
                    workload, grid, cache_sizes, missing, retries, on_done, runlog, prog
                )
    except BaseException as exc:
        runlog.finish(status="failed", error=repr(exc))
        if manifest is not None:
            runlog.write(manifest)
        raise
    prog.done()
    runlog.finish(status="completed")
    if manifest is not None:
        runlog.write(manifest)
    return _assemble(grid, tc_rows, results)


# -- caching -------------------------------------------------------------

_SUITES: dict[tuple, SuiteResults] = {}
_SUITES_ADHOC: "weakref.WeakKeyDictionary[Workload, dict]" = weakref.WeakKeyDictionary()


def suite_cache_key(settings: WorkloadSettings, grid, tc_rows=None) -> tuple:
    """The artifact-cache address of a full suite result.

    Public so other consumers of the engine (``repro.serve`` job dedupe)
    can probe for finished suites at exactly the address this module
    stores them under — a batch CLI run warms the service and vice versa.
    """
    return (settings, tuple(grid), tuple(grid if tc_rows is None else tc_rows))


def _suite_key(settings: WorkloadSettings, grid, tc_rows) -> tuple:
    return suite_cache_key(settings, grid, tc_rows)


def _write_cached_manifest(manifest: Path | str, settings, source: str) -> None:
    """A full-suite cache hit still documents the run when asked to."""
    runlog = RunLog("suite", settings=settings, n_tasks=0, cache=default_cache())
    runlog.event("suite-cache-hit", source=source)
    runlog.finish(status="cached")
    runlog.write(manifest)


def get_suite(
    workload: Workload,
    grid: tuple[tuple[int, int], ...] = CACHE_CFA_GRID,
    *,
    tc_rows: tuple[tuple[int, int], ...] | None = None,
    progress: bool = False,
    jobs: int = 1,
    shards: int | None = None,
    resume: bool = True,
    task_timeout: float | None = None,
    retries: int = 2,
    manifest: Path | str | None = None,
) -> SuiteResults:
    """Cached :func:`compute_suite`.

    Settings-stamped workloads key by their :class:`WorkloadSettings` (in
    memory and in the artifact cache); ad-hoc workloads key by instance —
    never by ``id()``, which the garbage collector reuses. ``shards`` and
    ``jobs`` only affect how a miss is computed, never the cache key:
    sharded results are bit-identical to fused ones.
    """
    tc_rows = grid if tc_rows is None else tc_rows
    settings = workload.settings
    fault_kwargs = dict(
        shards=shards, resume=resume, task_timeout=task_timeout, retries=retries
    )
    if settings is None:
        per_workload = _SUITES_ADHOC.setdefault(workload, {})
        key = (grid, tc_rows)
        if key not in per_workload:
            per_workload[key] = compute_suite(
                workload, grid, tc_rows=tc_rows, progress=progress, jobs=jobs,
                manifest=manifest, **fault_kwargs,
            )
        return per_workload[key]

    key = _suite_key(settings, grid, tc_rows)
    if key not in _SUITES:
        cache = default_cache()
        suite = cache.load("suite", key)
        if not isinstance(suite, SuiteResults):
            suite = compute_suite(
                workload, grid, tc_rows=tc_rows, progress=progress, jobs=jobs,
                manifest=manifest, **fault_kwargs,
            )
            cache.store("suite", key, suite)
        elif manifest is not None:
            _write_cached_manifest(manifest, settings, "disk")
        _SUITES[key] = suite
    elif manifest is not None:
        _write_cached_manifest(manifest, settings, "memory")
    return _SUITES[key]


def suite_for(
    settings: WorkloadSettings,
    grid: tuple[tuple[int, int], ...] = CACHE_CFA_GRID,
    *,
    tc_rows: tuple[tuple[int, int], ...] | None = None,
    progress: bool = False,
    jobs: int = 1,
    shards: int | None = None,
    resume: bool = True,
    task_timeout: float | None = None,
    retries: int = 2,
    manifest: Path | str | None = None,
) -> SuiteResults:
    """Disk-first suite lookup: a warm artifact-cache hit returns without
    building the workload at all."""
    tc_rows_n = grid if tc_rows is None else tc_rows
    key = _suite_key(settings, grid, tc_rows_n)
    if key in _SUITES:
        if manifest is not None:
            _write_cached_manifest(manifest, settings, "memory")
        return _SUITES[key]
    suite = default_cache().load("suite", key)
    if isinstance(suite, SuiteResults):
        _SUITES[key] = suite
        if manifest is not None:
            _write_cached_manifest(manifest, settings, "disk")
        return suite
    workload = get_workload(settings)
    return get_suite(
        workload, grid, tc_rows=tc_rows, progress=progress, jobs=jobs,
        shards=shards, resume=resume, task_timeout=task_timeout,
        retries=retries, manifest=manifest,
    )
