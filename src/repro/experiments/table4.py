"""Table 4 — fetch bandwidth (IPC) per layout, cache/CFA size and trace cache.

Run: ``python -m repro.experiments.table4 [--scale 0.005] [--quick]``
"""

from __future__ import annotations

from repro.experiments.config import CACHE_CFA_GRID, PAPER_TABLE4, PRIMARY_ROWS
from repro.experiments.harness import (
    resolve_jobs,
    settings_from_args,
    standard_parser,
    suite_options_from_args,
)
from repro.experiments.suite import SuiteResults, get_suite, suite_for
from repro.tpcd.workload import Workload
from repro.util.fmt import format_table

__all__ = ["compute", "render", "main"]


def compute(
    workload: Workload,
    grid: tuple[tuple[int, int], ...] = CACHE_CFA_GRID,
    *,
    progress: bool = False,
    jobs: int = 1,
    **suite_options,
) -> SuiteResults:
    return get_suite(workload, grid, progress=progress, jobs=jobs, **suite_options)


def _fmt_range(lo: float, hi: float) -> str:
    if hi - lo < 0.05:
        return f"{hi:.1f}"
    return f"{lo:.1f}-{hi:.1f}"


def render(suite: SuiteResults, grid: tuple[tuple[int, int], ...] = CACHE_CFA_GRID) -> str:
    headers = ["cache/CFA KB", "orig", "P&H", "Torr", "auto", "ops", "TC 16KB", "TC+ops", "paper o/ops/TC+ops"]
    first = grid[0]
    ideal_paper = PAPER_TABLE4["Ideal"]
    ideal_row = [
        "Ideal",
        f"{suite.cells[first]['orig'].ideal_ipc:.1f}",
        f"{suite.cells[first]['P&H'].ideal_ipc:.1f}",
        _fmt_range(*suite.ideal_range("Torr")),
        _fmt_range(*suite.ideal_range("auto")),
        _fmt_range(*suite.ideal_range("ops")),
        f"{suite.tc_ideal:.1f}",
        _fmt_range(min(suite.tc_ops_ideal.values()), max(suite.tc_ops_ideal.values()))
        if suite.tc_ops_ideal
        else "-",
        f"{ideal_paper['orig']}/{ideal_paper['ops']}/{ideal_paper['TC+ops']}",
    ]
    rows: list[list] = [ideal_row]
    for row in grid:
        cache_kb, cfa_kb = row
        cells = suite.cells[row]
        primary = row in PRIMARY_ROWS
        paper = PAPER_TABLE4.get(row, {})
        rows.append(
            [
                f"{cache_kb}/{cfa_kb}",
                cells["orig"].ipc if primary else None,
                cells["P&H"].ipc if primary else None,
                cells["Torr"].ipc,
                cells["auto"].ipc,
                cells["ops"].ipc,
                suite.tc_ipc[cache_kb] if primary else None,
                suite.tc_ops_ipc.get(row),
                "/".join(str(paper.get(k, "-")) for k in ("orig", "ops", "TC+ops")),
            ]
        )
    return format_table(
        headers,
        rows,
        title="Table 4: fetch bandwidth (instructions/cycle), 5-cycle miss penalty, Test set",
        floatfmt=".1f",
    )


def main(argv=None) -> None:
    parser = standard_parser(__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="primary rows only")
    args = parser.parse_args(argv)
    grid = PRIMARY_ROWS if args.quick else CACHE_CFA_GRID
    suite = suite_for(
        settings_from_args(args),
        grid,
        progress=True,
        jobs=resolve_jobs(args.jobs),
        **suite_options_from_args(args),
    )
    print(render(suite, grid))


if __name__ == "__main__":
    main()
