"""Table 2 — basic-block kind mix and control-flow determinism.

Run: ``python -m repro.experiments.table2``
"""

from __future__ import annotations

from repro.cfg.blocks import BlockKind
from repro.experiments.config import PAPER_TABLE2
from repro.experiments.harness import (
    get_workload,
    settings_from_args,
    standard_parser,
    training_profile,
)
from repro.profiling import BlockKindMix, kind_mix, transition_determinism
from repro.tpcd.workload import Workload
from repro.util.fmt import format_table

__all__ = ["compute", "render", "main"]

_LABELS = {
    BlockKind.FALL_THROUGH: "Fall-through",
    BlockKind.BRANCH: "Branch",
    BlockKind.CALL: "Subroutine call",
    BlockKind.RETURN: "Subroutine return",
}


def compute(workload: Workload) -> tuple[BlockKindMix, float]:
    cfg = training_profile(workload)
    mix = kind_mix(workload.program, cfg)
    return mix, transition_determinism(cfg)


def render(result: tuple[BlockKindMix, float]) -> str:
    mix, determinism = result
    rows = []
    for kind in BlockKind:
        label = _LABELS[kind]
        p_static, p_dyn, p_pred = PAPER_TABLE2[label]
        rows.append(
            [
                label,
                100.0 * mix.static[kind],
                100.0 * mix.dynamic[kind],
                100.0 * mix.predictable[kind],
                f"{p_static}/{p_dyn}/{p_pred}",
            ]
        )
    table = format_table(
        ["BB type", "static %", "dynamic %", "predictable %", "paper (s/d/p)"],
        rows,
        title="Table 2: basic blocks by type (Training set)",
        floatfmt=".1f",
    )
    summary = (
        f"\noverall predictable transitions: {100 * mix.overall_predictable:.1f}% "
        f"(paper: ~80%)\nexecution-weighted transition determinism: {100 * determinism:.1f}%"
    )
    return table + summary


def main(argv=None) -> None:
    args = standard_parser(__doc__.splitlines()[0]).parse_args(argv)
    workload = get_workload(settings_from_args(args))
    print(render(compute(workload)))


if __name__ == "__main__":
    main()
