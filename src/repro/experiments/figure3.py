"""Figure 3 — the trace-building worked example.

Reconstructs the paper's example weighted graph (ExecThresh 4,
BranchThresh 0.4; counts scaled x20 to stay integral) and shows the
resulting main and secondary sequences, plus the discarded blocks.

Run: ``python -m repro.experiments.figure3``
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.cfg.weighted import WeightedCFG
from repro.core import TraceParams, build_sequences

__all__ = ["example_graph", "compute", "render", "main"]

NAMES = ["A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "B1", "C1", "C2", "C3", "C4", "C5"]
_IDS = {name: i for i, name in enumerate(NAMES)}

_EDGES = [
    ("A1", "A2", 200),
    ("A2", "A3", 180),
    ("A2", "B1", 20),
    ("A3", "A4", 110),
    ("A3", "A5", 90),
    ("A4", "C1", 200),
    ("C1", "C2", 600),
    ("C2", "C3", 594),
    ("C2", "C5", 6),
    ("C3", "C4", 400),
    ("C4", "A7", 280),
    ("C4", "C1", 120),
    ("A5", "A6", 48),
    ("A5", "A7", 72),
    ("A6", "A7", 48),
    ("A7", "A8", 200),
    ("B1", "A8", 20),
]
_COUNTS = [200, 200, 200, 200, 120, 48, 152, 200, 20, 600, 600, 400, 400, 6]


def example_graph() -> WeightedCFG:
    edges = [(_IDS[a], _IDS[b], c) for a, b, c in _EDGES]
    return WeightedCFG.from_edges(len(NAMES), edges, block_count=np.asarray(_COUNTS))


def compute(
    exec_threshold: int = 80, branch_threshold: float = 0.4
) -> tuple[list[list[str]], list[str]]:
    """Returns (sequences as block names, discarded block names)."""
    graph = example_graph()
    sequences = build_sequences(
        graph,
        [_IDS["A1"]],
        TraceParams(exec_threshold=exec_threshold, branch_threshold=branch_threshold),
    )
    named = [[NAMES[b] for b in seq] for seq in sequences]
    placed = {b for seq in sequences for b in seq}
    discarded = [NAMES[b] for b in range(len(NAMES)) if b not in placed]
    return named, discarded


def render(result: tuple[list[list[str]], list[str]]) -> str:
    sequences, discarded = result
    lines = ["Figure 3: trace building example (ExecThresh 4x20, BranchThresh 0.4)"]
    for i, seq in enumerate(sequences):
        kind = "main" if i == 0 else "secondary"
        lines.append(f"  {kind} trace: {' -> '.join(seq)}")
    lines.append(f"  discarded: {', '.join(discarded)}")
    lines.append("  paper: main A1..A8 (inlining C1..C4), secondary [A5]; B1, C5, A6 discarded")
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description="Figure 3: trace building worked example")
    parser.add_argument(
        "--exec-threshold", type=int, default=80,
        help="minimum block execution count (paper's ExecThresh 4, x20 scaling)",
    )
    parser.add_argument(
        "--branch-threshold", type=float, default=0.4,
        help="minimum successor probability to extend a trace (paper's BranchThresh)",
    )
    args = parser.parse_args(argv)
    print(render(compute(args.exec_threshold, args.branch_threshold)))


if __name__ == "__main__":
    main()
