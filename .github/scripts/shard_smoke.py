"""CI smoke for the sharded simulation driver.

Builds a small generated case whose trace spans nine simulation windows,
runs the fused reference pass, then drives ``run_sharded`` through the
paths CI cares about: a four-shard run with an injected permanent failure
(must raise naming the shard job and keep the completed jobs
checkpointed), a resume that recomputes only the missing jobs, and a
two-worker pool run. Every sharded variant is gated on **byte identity**
with the fused pass: counters and carried stream state are pickled and
compared as raw bytes.

Run: ``PYTHONPATH=src python .github/scripts/shard_smoke.py``
"""

from __future__ import annotations

import os
import pickle
import sys
import tempfile

os.environ.setdefault("REPRO_CACHE_DIR", tempfile.mkdtemp(prefix="repro-ci-cache-"))

from repro.simulators import (  # noqa: E402
    FetchStream,
    ShardError,
    TraceCacheStream,
    miss_counter,
    run_fused,
    run_sharded,
)
from repro.simulators import sharded as sharded_mod  # noqa: E402
from repro.validate.generators import random_case  # noqa: E402

SEED = 2  # 514 events; chunk 64 -> 9 windows -> a real 4-shard partition
CHUNK = 64
SHARDS = 4
FAIL_SHARD = 2
REAL_FAMILY = sharded_mod._family_shard


def build_pairs(case):
    line_bytes = case.cache_configs[0].line_bytes
    return [
        (
            case.layout,
            FetchStream(
                case.layout.name,
                line_bytes=line_bytes,
                consumers=[miss_counter(c) for c in case.cache_configs],
                collect_lines=True,
            ),
        ),
        (
            case.layout,
            TraceCacheStream(
                case.layout.name,
                case.tc_config,
                line_bytes=line_bytes,
                consumers=[miss_counter(c) for c in case.cache_configs],
                collect_lines=True,
            ),
        ),
    ]


def snapshot_bytes(pairs) -> bytes:
    """Canonical pickle of every counter and every piece of stream state."""
    out = []
    for _, stream in pairs:
        entry = {"counters": [c.state_dict() for c in stream.consumers]}
        if isinstance(stream, TraceCacheStream):
            entry["sig"] = (
                stream.n_instructions, stream.n_hits, stream.n_misses, stream.n_taken
            )
            entry["state"] = stream.state_dict()
            entry["lines"] = [a.tolist() for a in stream.miss_line_chunks]
        else:
            entry["sig"] = (stream.n_instructions, stream.n_fetches, stream.n_taken)
            entry["lines"] = [a.tolist() for a in stream.line_chunks]
        out.append(entry)
    return pickle.dumps(out, protocol=4)


class DictCheckpoint:
    def __init__(self):
        self.data = {}

    def load(self, key):
        return self.data.get(key)

    def store(self, key, payload):
        self.data[key] = payload


def main() -> None:
    case = random_case(SEED)
    fused_pairs = build_pairs(case)
    run_fused(case.trace, case.program, fused_pairs, chunk_events=CHUNK)
    reference = snapshot_bytes(fused_pairs)

    # 1. injected permanent failure: the run must raise naming the shard
    # job and leave everything that completed in the checkpoint store
    def boom(trace, program, layouts, chunk_events, plan, specs, shard_idx):
        if shard_idx == FAIL_SHARD:
            raise ValueError("injected CI shard failure")
        return REAL_FAMILY(trace, program, layouts, chunk_events, plan, specs, shard_idx)

    ckpt = DictCheckpoint()
    sharded_mod._family_shard = boom
    try:
        try:
            run_sharded(
                case.trace, case.program, build_pairs(case),
                chunk_events=CHUNK, shards=SHARDS, checkpoint=ckpt,
            )
        except ShardError as exc:
            print(f"injected failure surfaced as expected: {exc}")
            if exc.key != ("family", FAIL_SHARD):
                sys.exit(f"FAIL: error names {exc.key!r}, not the failing shard")
        else:
            sys.exit("FAIL: expected ShardError from the injected failure")
    finally:
        sharded_mod._family_shard = REAL_FAMILY
    if not ckpt.data:
        sys.exit("FAIL: no shard jobs survived the crash as checkpoints")

    # 2. resume: only the missing shard jobs recompute, and the stitched
    # result is byte-identical to the fused pass
    survived = set(ckpt.data)
    pairs = build_pairs(case)
    report = run_sharded(
        case.trace, case.program, pairs,
        chunk_events=CHUNK, shards=SHARDS, checkpoint=ckpt,
    )
    if report.plan.n_shards != SHARDS:
        sys.exit(f"FAIL: expected {SHARDS} shards, planned {report.plan.n_shards}")
    if sorted(report.checkpointed) != sorted(survived):
        sys.exit("FAIL: resume did not reuse every surviving checkpoint")
    if any(key in survived for key in report.computed):
        sys.exit("FAIL: resume recomputed an already-checkpointed shard job")
    if snapshot_bytes(pairs) != reference:
        sys.exit("FAIL: resumed sharded result is not byte-identical to fused")

    # 3. pool path: two workers over the same plan, same byte identity
    pool_pairs = build_pairs(case)
    run_sharded(
        case.trace, case.program, pool_pairs,
        chunk_events=CHUNK, shards=SHARDS, jobs=2,
    )
    if snapshot_bytes(pool_pairs) != reference:
        sys.exit("FAIL: pooled sharded result is not byte-identical to fused")

    print(
        f"shard smoke OK: {len(survived)} jobs checkpointed across the crash, "
        f"{len(report.computed)} recomputed on resume, byte-identical to fused "
        f"(serial and 2-worker pool)"
    )


if __name__ == "__main__":
    main()
