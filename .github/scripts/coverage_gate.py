"""Fail CI if line coverage drops below the committed floor.

Reads the ``coverage.json`` that pytest-cov writes (``--cov-report=json``)
and compares ``totals.percent_covered`` against ``COVERAGE_FLOOR``. The
floor is deliberately conservative — it exists to catch a large
regression (a test module silently skipped, a package dropped from the
run), not to ratchet every percentage point. Raise it as the suite grows.

Usage: python .github/scripts/coverage_gate.py [coverage.json]
"""

import json
import sys

COVERAGE_FLOOR = 72.0


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "coverage.json"
    try:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"coverage gate: cannot read {path}: {exc}")
        return 1
    percent = report["totals"]["percent_covered"]
    covered = report["totals"]["covered_lines"]
    total = report["totals"]["num_statements"]
    print(
        f"coverage gate: {percent:.2f}% of lines covered "
        f"({covered}/{total}), floor {COVERAGE_FLOOR:.2f}%"
    )
    if percent < COVERAGE_FLOOR:
        print("coverage gate: FAILED — coverage fell below the floor")
        return 1
    print("coverage gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
