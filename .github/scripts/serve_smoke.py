"""CI smoke for the optimization service.

Boots ``python -m repro.serve`` as a real subprocess, points
``examples/load_test.py`` at it with 4 tenants at tiny scale, shuts the
server down over HTTP, and asserts the benchmark report demonstrates the
service contract: zero failed jobs, cross-tenant cache dedupe observed,
backpressure answered with 429, and the served results byte-identical to
the batch engine. ``BENCH_service.json`` is left behind for the CI
artifact upload.

Run: PYTHONPATH=src python .github/scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
REPORT = REPO / "BENCH_service.json"
BOOT_TIMEOUT = 60.0


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    spool = tempfile.mkdtemp(prefix="serve-smoke-")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve",
            "--port", "0", "--queue-limit", "8", "--workers", "2", "--spool", spool,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO,
    )
    port = None
    try:
        deadline = time.monotonic() + BOOT_TIMEOUT
        while time.monotonic() < deadline:
            line = server.stdout.readline()
            if not line:
                raise SystemExit(f"server exited during boot: {server.poll()}")
            sys.stdout.write(f"[server] {line}")
            match = re.search(r"listening on http://[\d.]+:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            raise SystemExit("server never reported its port")

        load = subprocess.run(
            [
                sys.executable, "examples/load_test.py",
                "--connect", f"127.0.0.1:{port}",
                "--tenants", "4", "--jobs-per-tenant", "1",
                "--scale", "0.0002", "--grid", "quick",
                "--output", str(REPORT),
            ],
            env=env,
            cwd=REPO,
        )
        if load.returncode != 0:
            raise SystemExit(f"load test failed with exit code {load.returncode}")

        with urllib.request.urlopen(
            urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/shutdown", data=b"", method="POST"
            ),
            timeout=10,
        ) as resp:
            print(f"[smoke] shutdown: {resp.status}")
        server.wait(timeout=30)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()

    report = json.loads(REPORT.read_text())
    checks = {
        "all jobs completed": report["jobs"]["failed"] == 0
        and report["jobs"]["completed"] == report["jobs"]["submitted"] > 0,
        "cache dedupe > 0": report["dedupe"]["total"] > 0,
        "backpressure 429 observed": report["backpressure"]["rejected_429"] > 0,
        "probe jobs all completed": report["backpressure"]["accepted_failed"] == 0,
        "byte-identical to batch engine": report["batch_check"]["identical"] is True,
        "tenants agree on one result": report["jobs"]["distinct_result_digests"] == 1,
    }
    for name, ok in checks.items():
        print(f"[smoke] {'ok' if ok else 'FAIL'}: {name}")
    if not all(checks.values()):
        return 1
    print(f"[smoke] report at {REPORT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
