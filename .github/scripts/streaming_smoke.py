"""CI smoke for the streaming trace pipeline.

Exercises the full path on a tiny workload: capture traces straight into
the on-disk store, reload the workload from the artifact cache (the
traces must come back as stores, not rebuilt), survive damage to a trace
file (the workload loader must detect it and rebuild), and run the fused
suite engine end to end, checking its payloads float-for-float against
the one-simulation-per-task reference path.

Run: ``PYTHONPATH=src python .github/scripts/streaming_smoke.py``
"""

from __future__ import annotations

import os
import sys
import tempfile

os.environ.setdefault("REPRO_CACHE_DIR", tempfile.mkdtemp(prefix="repro-ci-cache-"))

from repro.experiments import harness  # noqa: E402
from repro.experiments import suite as suite_mod  # noqa: E402
from repro.experiments.config import PRIMARY_ROWS  # noqa: E402
from repro.experiments.harness import get_workload  # noqa: E402
from repro.profiling import TraceStore  # noqa: E402
from repro.tpcd.workload import WorkloadSettings  # noqa: E402

SETTINGS = WorkloadSettings(scale=0.0005)
GRID = PRIMARY_ROWS[:1]


def main() -> None:
    # generate: trace capture streams into the on-disk store
    workload = get_workload(SETTINGS)
    for label, trace in (("training", workload.training_trace), ("test", workload.test_trace)):
        if not isinstance(trace, TraceStore):
            sys.exit(f"FAIL: {label} trace is {type(trace).__name__}, not a TraceStore")
        trace.verify(deep=True)
        stats = trace.stats()
        if stats["compression_ratio"] <= 1.0:
            sys.exit(f"FAIL: {label} trace did not compress ({stats})")
        print(
            f"{label} trace: {stats['n_events']} events in {stats['n_chunks']} chunks, "
            f"{stats['bytes']} bytes ({stats['compression_ratio']}x)"
        )

    # resume: a fresh lookup must reload the stored workload, not rebuild
    harness._WORKLOADS.clear()
    reloaded = get_workload(SETTINGS)
    if reloaded is workload:
        sys.exit("FAIL: in-memory workload cache was not actually cleared")
    if len(reloaded.test_trace) != len(workload.test_trace):
        sys.exit("FAIL: reloaded workload trace differs from the original")
    print("reload OK: workload came back from the artifact cache with stored traces")

    # damage: a truncated trace file must be detected at load time (the
    # workload loader runs the shallow header/directory verification) and
    # trigger a rebuild over the same path
    path = reloaded.test_trace.path
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    harness._WORKLOADS.clear()
    rebuilt = get_workload(SETTINGS)
    rebuilt.test_trace.verify(deep=True)
    if len(rebuilt.test_trace) != len(workload.test_trace):
        sys.exit("FAIL: rebuilt workload trace differs from the original")
    print("corruption OK: damaged trace file detected and rebuilt")

    # fused-simulate: the streaming suite engine vs the reference path
    tasks = suite_mod._suite_tasks(GRID, GRID)
    cache_sizes = sorted({c for c, _ in GRID})
    payloads, errors = suite_mod._run_group(rebuilt, tasks, GRID, cache_sizes)
    if errors:
        sys.exit(f"FAIL: fused group errors: {errors}")
    for task in tasks:
        reference = suite_mod._task_payload(rebuilt, task, GRID, cache_sizes)
        if payloads[task] != reference:
            sys.exit(f"FAIL: fused payload differs from reference for {task}")
    print(f"fused-simulate OK: {len(tasks)} task payloads bit-identical to reference")
    print("streaming smoke OK")


if __name__ == "__main__":
    main()
