"""CI smoke for the fault-tolerant suite engine.

Runs the evaluation suite at a tiny scale with one injected failing task,
verifies the failure names the task and leaves the completed tasks
checkpointed, then resumes: the resumed run must recompute only the
missing tasks, match a from-scratch run bit for bit, and emit a manifest
recording checkpoint provenance and per-task timing.

Run: ``PYTHONPATH=src python .github/scripts/fault_smoke.py``
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
import tempfile
from pathlib import Path

os.environ.setdefault("REPRO_CACHE_DIR", tempfile.mkdtemp(prefix="repro-ci-cache-"))

from repro.experiments import suite as suite_mod  # noqa: E402
from repro.experiments.config import PRIMARY_ROWS  # noqa: E402
from repro.experiments.harness import get_workload  # noqa: E402
from repro.tpcd.workload import WorkloadSettings  # noqa: E402

SETTINGS = WorkloadSettings(scale=0.0005)
GRID = PRIMARY_ROWS[:2]
FAIL_TASK = ("row", GRID[1])
REAL_UNIT = suite_mod._unit_for


def flatten(s):
    out = {"n": s.n_instructions}
    for row, cells in sorted(s.cells.items()):
        for name, m in sorted(cells.items()):
            out[repr((row, name))] = dataclasses.astuple(m)
    out["assoc"] = s.assoc_miss
    out["victim"] = s.victim_miss
    out["tc"] = (s.tc_ideal, s.tc_hit_rate, sorted(s.tc_ipc.items()))
    out["tc_ops"] = sorted(s.tc_ops_ipc.items())
    return out


def main() -> None:
    workload = get_workload(SETTINGS)

    def boom(wl, task, grid, cache_sizes, layout_memo=None):
        if task == FAIL_TASK:
            raise ValueError("injected CI worker failure")
        return REAL_UNIT(wl, task, grid, cache_sizes, layout_memo)

    suite_mod._unit_for = boom
    try:
        try:
            suite_mod.compute_suite(workload, GRID, jobs=2)
        except suite_mod.SuiteTaskError as exc:
            print(f"injected failure surfaced as expected: {exc}")
            if suite_mod._task_label(FAIL_TASK) not in str(exc):
                sys.exit("FAIL: error does not name the failing task")
        else:
            sys.exit("FAIL: expected SuiteTaskError from the injected failure")
    finally:
        suite_mod._unit_for = REAL_UNIT

    manifest = Path(tempfile.mkdtemp(prefix="repro-ci-manifest-")) / "resume.json"
    resumed = suite_mod.compute_suite(workload, GRID, jobs=2, manifest=manifest)
    fresh = suite_mod.compute_suite(workload, GRID, jobs=1, resume=False)
    if flatten(resumed) != flatten(fresh):
        sys.exit("FAIL: resumed results differ from an uninterrupted run")

    data = json.loads(manifest.read_text())
    sources = [t["source"] for t in data["tasks"]]
    if data["status"] != "completed":
        sys.exit(f"FAIL: manifest status {data['status']!r}")
    if "checkpoint" not in sources:
        sys.exit("FAIL: resume recomputed everything; no checkpoints were reused")
    if any(t["seconds"] < 0 for t in data["tasks"]):
        sys.exit("FAIL: manifest has negative task timings")
    print(
        f"fault-tolerance smoke OK: {sources.count('checkpoint')} checkpointed, "
        f"{sources.count('computed')} recomputed, manifest at {manifest}"
    )


if __name__ == "__main__":
    main()
