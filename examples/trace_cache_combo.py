"""Software + hardware trace cache (the paper's Section 7.3 punchline).

A hardware trace cache alone cannot remember all executed sequences of a
DSS workload; the Software Trace Cache stores the hot sequences statically
in memory, improving both the trace cache's own hit behaviour and the
sequential fetch that backs it up. This example measures the four
combinations: {orig, ops layout} x {SEQ.3 only, +trace cache}.

Run:  python examples/trace_cache_combo.py [scale]    (default 0.002)
"""

import sys

from repro.experiments.harness import WorkloadSettings, get_workload, layouts_for
from repro.simulators import (
    CacheConfig,
    count_misses,
    simulate_fetch,
    simulate_trace_cache,
)
from repro.util import format_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002
    workload = get_workload(WorkloadSettings(scale=scale))
    program = workload.program
    trace = workload.test_trace
    cache = CacheConfig(size_bytes=64 * 1024)

    layouts = layouts_for(workload, 64, 8, names=("orig", "ops"))
    rows = []
    for name, layout in layouts.items():
        seq = simulate_fetch(trace, program, layout)
        misses = count_misses(seq.line_chunks, cache)
        seq_ipc = seq.n_instructions / (seq.n_fetches + 5 * misses)
        tc = simulate_trace_cache(trace, program, layout)
        rows.append([name, seq_ipc, tc.bandwidth(cache), 100 * tc.hit_rate])
    print(
        format_table(
            ["layout", "SEQ.3 IPC", "SEQ.3 + trace cache IPC", "TC hit rate %"],
            rows,
            title="Software and hardware trace caches combine (64 KB i-cache)",
        )
    )
    print(
        "\npaper: orig 5.8 -> 8.6 with TC; ops 10.6 -> 12.1 with TC\n"
        "(the TC alone cannot hold all sequences; the ops layout keeps\n"
        "feeding wide fetches even on TC misses)"
    )


if __name__ == "__main__":
    main()
