"""The paper's full pipeline on the TPC-D decision-support workload.

Builds the TPC-D database (both index kinds), captures the Training and
Test traces, reports the workload characterization (Tables 1-2, Figure 2
claims) and evaluates all five layouts at one cache geometry.

Run:  python examples/dss_workload.py [scale]     (default scale 0.002)
"""

import sys

from repro.experiments import figure2, table1, table2
from repro.experiments.harness import WorkloadSettings, get_workload, layouts_for
from repro.simulators import CacheConfig, count_misses, simulate_fetch
from repro.util import format_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002
    print(f"building TPC-D workload at scale factor {scale} ...")
    workload = get_workload(WorkloadSettings(scale=scale))
    program = workload.program

    print()
    print(table1.render(table1.compute(workload)))
    print()
    print(table2.render(table2.compute(workload)))
    print()
    print(figure2.render(figure2.compute(workload)))
    print()

    cache_kb, cfa_kb = 32, 8
    print(f"evaluating layouts at {cache_kb} KB cache / {cfa_kb} KB CFA ...")
    rows = []
    for name, layout in layouts_for(workload, cache_kb, cfa_kb).items():
        fr = simulate_fetch(workload.test_trace, program, layout)
        misses = count_misses(fr.line_chunks, CacheConfig(size_bytes=cache_kb * 1024))
        rows.append(
            [
                name,
                100.0 * misses / fr.n_instructions,
                fr.n_instructions / (fr.n_fetches + 5 * misses),
                fr.instructions_between_taken,
            ]
        )
    print(format_table(["layout", "miss %", "IPC", "instr/taken-branch"], rows))


if __name__ == "__main__":
    main()
