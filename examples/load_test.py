"""Multi-tenant load test for the layout-optimization service.

Hammers an in-process ``repro.serve`` server (or an external one via
``--connect HOST:PORT``) with N concurrent tenants and reports latency
percentiles, throughput, dedupe and backpressure behaviour into
``BENCH_service.json``. Four phases:

1. **Main** — every tenant submits the same job spec ``--jobs-per-tenant``
   times and polls to completion: exactly one execution should compute,
   every other submission should dedupe (in-flight or artifact cache).
2. **Uploads** — every tenant uploads an identical synthetic RTRC trace;
   one store, the rest content-address dedupe.
3. **Backpressure probe** — a dedicated tiny server (queue limit 2, one
   worker) takes a burst of distinct real jobs; the overflow must be
   rejected with 429 (never crashes or unbounded queuing), and the
   accepted jobs must still complete.
4. **Batch check** — the same spec runs through the batch engine
   (:func:`repro.experiments.suite.suite_for`) and its serialization is
   compared byte-for-byte with the served result.

Exit status is non-zero if any job fails, no dedupe is observed, the
probe sees no 429, or the served result differs from the batch engine.

Run:  PYTHONPATH=src python examples/load_test.py --tenants 8 --scale 0.0005
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.experiments.config import CACHE_CFA_GRID, PRIMARY_ROWS
from repro.experiments.suite import suite_for
from repro.profiling.trace import BlockTrace
from repro.profiling.tracestore import write_trace
from repro.serve.client import Backpressure, ServeClient
from repro.serve.codec import JobSpec, canonical_json, serialize_suite
from repro.serve.jobs import percentile
from repro.serve.server import ServeApp

GRIDS = {
    "quick": ((8, 2),),
    "primary": PRIMARY_ROWS,
    "full": CACHE_CFA_GRID,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=8, help="concurrent tenants (default 8)")
    parser.add_argument(
        "--jobs-per-tenant", type=int, default=2, help="submissions per tenant (default 2)"
    )
    parser.add_argument("--scale", type=float, default=0.0005, help="TPC-D scale (default 0.0005)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--kernel-seed", type=int, default=2029)
    parser.add_argument(
        "--grid", choices=sorted(GRIDS), default="quick", help="geometry grid (default quick)"
    )
    parser.add_argument("--queue-limit", type=int, default=16)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--engine-jobs", type=int, default=1)
    parser.add_argument("--poll", type=float, default=0.05, help="status poll interval seconds")
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="target an already-running server instead of an in-process one",
    )
    parser.add_argument(
        "--probe-scale", type=float, default=0.0002, help="scale for backpressure-probe jobs"
    )
    parser.add_argument("--skip-backpressure", action="store_true")
    parser.add_argument("--skip-uploads", action="store_true")
    parser.add_argument("--skip-batch-check", action="store_true")
    parser.add_argument(
        "--output", default="BENCH_service.json", metavar="PATH", help="benchmark report file"
    )
    return parser


def synthetic_trace_bytes() -> bytes:
    """A tiny, structurally valid RTRC stream for upload-dedupe testing."""
    events = np.tile(np.arange(48, dtype=np.int32), 64)
    with tempfile.TemporaryDirectory(prefix="load-test-trace-") as tmp:
        path = Path(tmp) / "synthetic.trace"
        write_trace(BlockTrace(events), path)
        return path.read_bytes()


async def run_tenant(
    client: ServeClient, spec: dict, n_jobs: int, poll: float, http_ms: list, jobs_out: list
) -> None:
    for _ in range(n_jobs):
        t0 = time.perf_counter()
        job = await client.submit_job_retry(spec)
        http_ms.append(1000 * (time.perf_counter() - t0))
        while True:
            t0 = time.perf_counter()
            record = await client.get_job(job["id"])
            http_ms.append(1000 * (time.perf_counter() - t0))
            if record["state"] in ("completed", "failed"):
                jobs_out.append(record)
                break
            await asyncio.sleep(poll)


async def backpressure_probe(args) -> dict:
    """Burst distinct real jobs at a deliberately tiny server; count 429s."""
    app = ServeApp(queue_limit=2, workers=1, engine_jobs=args.engine_jobs)
    await app.start()
    client = ServeClient("127.0.0.1", app.port, tenant="probe")
    burst = 2 + 1 + 4  # queue + worker + guaranteed overflow
    accepted, rejected = [], 0
    try:
        for i in range(burst):
            spec = {"scale": args.probe_scale, "seed": 90001 + i, "grid": [[8, 2]]}
            try:
                accepted.append(await client.submit_job(spec))
            except Backpressure:
                rejected += 1
        done = await asyncio.gather(
            *(client.wait_job(job["id"], poll=args.poll, timeout=600) for job in accepted)
        )
        completed = sum(1 for record in done if record["state"] == "completed")
    finally:
        await app.stop()
    return {
        "enabled": True,
        "burst": burst,
        "accepted": len(accepted),
        "rejected_429": rejected,
        "accepted_completed": completed,
        "accepted_failed": len(accepted) - completed,
    }


async def amain(args) -> int:
    grid = GRIDS[args.grid]
    spec = {
        "scale": args.scale,
        "seed": args.seed,
        "kernel_seed": args.kernel_seed,
        "grid": [list(row) for row in grid],
    }
    app = None
    if args.connect:
        host, _, port = args.connect.partition(":")
        host, port = host or "127.0.0.1", int(port)
    else:
        app = ServeApp(
            queue_limit=args.queue_limit, workers=args.workers, engine_jobs=args.engine_jobs
        )
        await app.start()
        host, port = "127.0.0.1", app.port
    print(f"load test -> http://{host}:{port} | {args.tenants} tenants x "
          f"{args.jobs_per_tenant} jobs | scale {args.scale} grid {args.grid}", flush=True)

    http_ms: list[float] = []
    job_records: list[dict] = []
    t_wall = time.perf_counter()
    try:
        clients = [
            ServeClient(host, port, tenant=f"tenant-{i:02d}") for i in range(args.tenants)
        ]
        await asyncio.gather(
            *(
                run_tenant(c, spec, args.jobs_per_tenant, args.poll, http_ms, job_records)
                for c in clients
            )
        )
        main_wall = time.perf_counter() - t_wall

        uploads = {"enabled": not args.skip_uploads}
        if not args.skip_uploads:
            payload = synthetic_trace_bytes()
            t0 = time.perf_counter()
            results = await asyncio.gather(*(c.upload_trace(payload) for c in clients))
            http_ms.extend([1000 * (time.perf_counter() - t0) / len(clients)] * len(clients))
            uploads.update(
                tenants=len(results),
                stored=sum(1 for r in results if not r["deduped"]),
                deduped=sum(1 for r in results if r["deduped"]),
                trace_id=results[0]["trace_id"],
            )

        metrics = await clients[0].metrics()
    finally:
        if app is not None:
            await app.stop()

    probe = {"enabled": False}
    if not args.skip_backpressure:
        probe = await backpressure_probe(args)

    failed = [r for r in job_records if r["state"] != "completed"]
    digests = {r["result_digest"] for r in job_records if r["state"] == "completed"}
    sources = {}
    for record in job_records:
        sources[record["source"]] = sources.get(record["source"], 0) + 1

    batch = {"enabled": not args.skip_batch_check}
    if not args.skip_batch_check:
        job_spec = JobSpec.from_dict(spec)
        suite = suite_for(job_spec.settings, job_spec.grid, tc_rows=job_spec.tc_rows)
        batch_doc = canonical_json(serialize_suite(suite))
        served = next(r for r in job_records if r["state"] == "completed")
        batch["identical"] = canonical_json(served["result"]) == batch_doc
        batch["digest"] = served["result_digest"]

    wall = time.perf_counter() - t_wall
    job_seconds = [r["seconds"] for r in job_records if r["seconds"] is not None]
    report = {
        "schema_version": 1,
        "config": {
            "tenants": args.tenants,
            "jobs_per_tenant": args.jobs_per_tenant,
            "scale": args.scale,
            "seed": args.seed,
            "kernel_seed": args.kernel_seed,
            "grid": args.grid,
            "grid_rows": [list(r) for r in grid],
            "queue_limit": args.queue_limit,
            "workers": args.workers,
            "engine_jobs": args.engine_jobs,
            "connect": args.connect,
        },
        "wall_seconds": round(wall, 3),
        "main_phase_seconds": round(main_wall, 3),
        "jobs": {
            "submitted": len(job_records),
            "completed": len(job_records) - len(failed),
            "failed": len(failed),
            "distinct_result_digests": len(digests),
            "sources": sources,
        },
        "dedupe": metrics["dedupe"] | {"traces": metrics["traces"]["dedupe"]},
        "http": {
            "requests": len(http_ms),
            "throughput_rps": round(len(http_ms) / main_wall, 1) if main_wall else 0.0,
            "latency_ms": {
                "p50": round(percentile(http_ms, 50), 3),
                "p90": round(percentile(http_ms, 90), 3),
                "p99": round(percentile(http_ms, 99), 3),
                "max": round(max(http_ms, default=0.0), 3),
            },
        },
        "job_seconds": {
            "p50": round(percentile(job_seconds, 50), 3),
            "p90": round(percentile(job_seconds, 90), 3),
            "p99": round(percentile(job_seconds, 99), 3),
            "max": round(max(job_seconds, default=0.0), 3),
        },
        "uploads": uploads,
        "backpressure": probe,
        "batch_check": batch,
        "server_metrics": metrics,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    problems = []
    if failed:
        problems.append(f"{len(failed)} job(s) failed")
    if len(digests) > 1:
        problems.append(f"tenants saw {len(digests)} distinct results for one spec")
    if report["dedupe"]["total"] == 0:
        problems.append("no cross-tenant dedupe observed")
    if probe["enabled"] and probe["rejected_429"] == 0:
        problems.append("backpressure probe saw no 429")
    if probe["enabled"] and probe.get("accepted_failed"):
        problems.append("backpressure probe had failed jobs")
    if batch["enabled"] and not batch.get("identical"):
        problems.append("served result != batch engine result")

    print(
        f"jobs: {report['jobs']['completed']}/{len(job_records)} completed | "
        f"dedupe: {report['dedupe']['total']} (cache {report['dedupe']['cache']}, "
        f"inflight {report['dedupe']['inflight']}, traces {report['dedupe']['traces']}) | "
        f"http p50/p99: {report['http']['latency_ms']['p50']}/"
        f"{report['http']['latency_ms']['p99']} ms | "
        f"429s: {probe.get('rejected_429', 'skipped')} | "
        f"batch identical: {batch.get('identical', 'skipped')}",
        flush=True,
    )
    print(f"report written to {args.output}", flush=True)
    if problems:
        print("FAILED: " + "; ".join(problems), file=sys.stderr, flush=True)
        return 1
    return 0


def main(argv=None) -> int:
    return asyncio.run(amain(build_parser().parse_args(argv)))


if __name__ == "__main__":
    raise SystemExit(main())
