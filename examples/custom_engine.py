"""Applying the Software Trace Cache to your own system.

The layout pipeline is workload-agnostic: anything that produces a block
trace through the :mod:`repro.kernel` instrumentation can be laid out. This
example instruments a small log-structured key-value store (its own
"kernel": memtable, write-ahead log, compaction, point lookups), runs a
read-heavy workload, and shows the CFA-size trade-off the paper analyzes in
Section 7.2: a larger CFA first helps, then starts stealing space from the
rest of the code.

Run:  python examples/custom_engine.py
"""

import numpy as np

from repro.baselines import original_layout
from repro.core import CacheGeometry, STCParams, stc_layout
from repro.kernel import ColdCodeConfig, KernelModel, Registry, decide
from repro.profiling import profile_trace
from repro.simulators import CacheConfig, count_misses, simulate_fetch
from repro.util import format_table

registry = Registry()


class KVStore:
    """A toy LSM store with instrumented kernel routines."""

    def __init__(self) -> None:
        self.memtable: dict[str, str] = {}
        self.segments: list[dict[str, str]] = []
        self.wal: list[tuple[str, str]] = []

    @registry.routine("storage", sites=0, decides=1, name="wal_append")
    def _wal_append(self, key, value):
        self.wal.append((key, value))
        decide(len(self.wal) % 64 == 0)  # fsync batch boundary

    @registry.routine("executor", sites=2, decides=2, op=True, name="kv_put")
    def put(self, key, value):
        self._wal_append(key, value)
        self.memtable[key] = value
        if decide(len(self.memtable) >= 128):
            self._flush()

    @registry.routine("buffer", sites=0, decides=1, name="memtable_flush")
    def _flush(self):
        decide(len(self.segments) % 2 == 0)
        self.segments.append(dict(sorted(self.memtable.items())))
        self.memtable.clear()

    @registry.routine("executor", sites=3, decides=2, op=True, name="kv_get")
    def get(self, key):
        if decide(key in self.memtable):
            return self.memtable[key]
        for segment in reversed(self.segments):
            if self._segment_probe(segment, key):
                return segment[key]
        return None

    @registry.routine("access", sites=0, decides=2, name="segment_probe")
    def _segment_probe(self, segment, key):
        return decide(key in segment)


def main() -> None:
    model = KernelModel(registry, seed=23, cold=ColdCodeConfig(n_procedures=120))
    program = model.program

    store = KVStore()
    rng = np.random.default_rng(5)
    tracer = model.tracer()
    with tracer:
        for i in range(2000):
            store.put(f"k{int(rng.integers(0, 500))}", f"v{i}")
        tracer.end_run()
        for _ in range(8000):
            store.get(f"k{int(rng.integers(0, 700))}")
    trace = tracer.take_trace()
    cfg = profile_trace(trace, program.n_blocks)
    print(f"traced {trace.n_events} block executions over {program.n_blocks} static blocks")

    cache_kb = 8
    rows = []
    orig = original_layout(program)
    fr = simulate_fetch(trace, program, orig)
    base_misses = count_misses(fr.line_chunks, CacheConfig(size_bytes=cache_kb * 1024))
    rows.append(["orig", None, 100.0 * base_misses / fr.n_instructions, fr.ideal_ipc])
    for cfa_kb in (0, 1, 2, 4, 6, 7):
        geometry = CacheGeometry(cache_bytes=cache_kb * 1024, cfa_bytes=cfa_kb * 1024)
        layout = stc_layout(program, cfg, geometry, STCParams(seed_mode="auto"))
        fr = simulate_fetch(trace, program, layout)
        misses = count_misses(fr.line_chunks, CacheConfig(size_bytes=cache_kb * 1024))
        rows.append(["auto", cfa_kb, 100.0 * misses / fr.n_instructions, fr.ideal_ipc])
    print(
        format_table(
            ["layout", "CFA KB", "miss %", "ideal IPC"],
            rows,
            title=f"CFA trade-off on a custom engine ({cache_kb} KB cache)",
        )
    )


if __name__ == "__main__":
    main()
