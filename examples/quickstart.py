"""Quickstart: profile-guided code layout in ~60 lines.

Builds a miniature instrumented "kernel" (a parent routine calling two
children with data-dependent decisions), traces an execution, profiles it
into a weighted CFG, computes the Software Trace Cache layout, and compares
i-cache miss rate and fetch bandwidth against the original code layout.

Run:  python examples/quickstart.py
"""

from repro.core import CacheGeometry, STCParams, stc_layout
from repro.kernel import ColdCodeConfig, KernelModel, Registry, decide
from repro.profiling import profile_trace
from repro.simulators import CacheConfig, count_misses, simulate_fetch

# 1. An instrumented "kernel": each routine declares how many call-site
#    segments (`sites`) and data-dependent branches (`decides`) it has.
registry = Registry()


@registry.routine("executor", sites=2, decides=1, op=True)
def process(items):
    total = 0
    for item in items:
        if decide(item % 3 == 0):
            total += classify(item)
        else:
            total += score(item)
    return total


@registry.routine("access", sites=0, decides=2)
def classify(item):
    decide(item % 2 == 0)
    return item // 3


@registry.routine("utility", sites=0, decides=1)
def score(item):
    decide(item > 100)
    return 1


def main() -> None:
    # 2. Build the static image (adds never-executed cold procedures, like a
    #    real binary) and trace a run.
    model = KernelModel(registry, seed=11, cold=ColdCodeConfig(n_procedures=60))
    program = model.program
    tracer = model.tracer()
    with tracer:
        process(list(range(500)))
    trace = tracer.take_trace()
    print(f"program: {program.n_procedures} procedures, {program.n_blocks} blocks")
    print(f"trace:   {trace.n_events} block executions, {trace.n_instructions(program.block_size)} instructions")

    # 3. Profile -> weighted CFG -> STC layout for an 8 KB cache, 2 KB CFA.
    cfg = profile_trace(trace, program.n_blocks)
    geometry = CacheGeometry(cache_bytes=8 * 1024, cfa_bytes=2 * 1024)
    layout = stc_layout(program, cfg, geometry, STCParams(seed_mode="auto"))

    # 4. Simulate the SEQ.3 fetch unit under both layouts.
    from repro.baselines import original_layout

    for lay in (original_layout(program), layout):
        fr = simulate_fetch(trace, program, lay)
        misses = count_misses(fr.line_chunks, CacheConfig(size_bytes=8 * 1024))
        miss_rate = 100.0 * misses / fr.n_instructions
        print(
            f"{lay.name:>6}: miss rate {miss_rate:5.2f}%   "
            f"ideal IPC {fr.ideal_ipc:5.2f}   "
            f"instr between taken branches {fr.instructions_between_taken:5.1f}"
        )


if __name__ == "__main__":
    main()
