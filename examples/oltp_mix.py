"""OLTP extension: profile transfer across workload types.

Builds one database hosting both the TPC-D (DSS) and TPC-C-style (OLTP)
schemas — one "binary" — then shows that a layout trained on the read-only
DSS profile barely helps the OLTP transaction mix, because transactions
spend their time in write paths (inserts, index maintenance, in-place
updates) the DSS training never touches. Self-training restores the full
benefit.

Run:  python examples/oltp_mix.py
"""

from repro.experiments.oltp import compute, render
from repro.oltp import OLTPWorkload


def main() -> None:
    print("building combined DSS + OLTP workload ...")
    workload = OLTPWorkload.build(dss_scale=0.001, warehouses=2, n_transactions=200)
    program = workload.program
    print(
        f"one image: {program.n_procedures} procedures / {program.n_blocks} blocks; "
        f"OLTP trace {workload.oltp_trace.n_events} block executions"
    )
    print()
    print(render(compute(workload)))
    print(
        "\nTakeaway: the profile must be representative of the deployed\n"
        "workload -- the question the paper's Section 8 poses for OLTP."
    )


if __name__ == "__main__":
    main()
