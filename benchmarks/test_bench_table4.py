"""Regenerates paper Table 4 (fetch bandwidth with and without trace cache)."""

from repro.experiments import table4
from repro.experiments.config import CACHE_CFA_GRID, PRIMARY_ROWS
from repro.experiments.suite import get_suite


def test_bench_table4(benchmark, workload, publish):
    suite = benchmark.pedantic(
        get_suite, args=(workload, CACHE_CFA_GRID), rounds=1, iterations=1
    )
    publish("table4", table4.render(suite, CACHE_CFA_GRID))

    for row in PRIMARY_ROWS:
        cells = suite.cells[row]
        # reordered layouts provide more bandwidth than the original code
        for name in ("P&H", "Torr", "auto"):
            assert cells[name].ipc > cells["orig"].ipc, (row, name)
        # combining software and hardware trace caches beats the TC alone
        assert suite.tc_ops_ipc[row] > suite.tc_ipc[row[0]], row
    # ideal bandwidth: profile-guided layouts approach the fetch width far
    # better than the original code (paper: 7.6 -> ~10)
    orig_ideal = suite.cells[PRIMARY_ROWS[0]]["orig"].ideal_ipc
    auto_lo, _auto_hi = suite.ideal_range("auto")
    assert auto_lo > orig_ideal
    # bandwidth grows with cache size for every layout
    for name in ("orig", "P&H", "auto", "ops"):
        ipcs = [suite.cells[row][name].ipc for row in PRIMARY_ROWS]
        assert ipcs == sorted(ipcs), name
