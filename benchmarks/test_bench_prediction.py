"""Extension bench: bimodal branch prediction per layout (the fetch factor
the paper holds perfect, Section 7.1)."""

from repro.experiments import prediction


def test_bench_prediction(benchmark, workload, publish):
    rows = benchmark.pedantic(
        prediction.compute, args=(workload,), rounds=1, iterations=1
    )
    publish("prediction", prediction.render(rows))
    by_name = {r[0]: r for r in rows}
    # reordering turns most dynamic branches into not-taken fall-throughs
    for name in ("P&H", "Torr", "auto", "ops"):
        assert by_name[name][1] < by_name["orig"][1], name
    # accuracy stays high everywhere (branches are ~80% deterministic)
    for row in rows:
        assert row[2] > 70.0
