"""Ablation benches: CFA-size sweep, threshold sensitivity, seed selection
(the design choices DESIGN.md calls out, paper Sections 5.1-5.3, 7.2)."""

from repro.experiments import ablations


def test_bench_cfa_sweep(benchmark, workload, publish):
    points = benchmark.pedantic(ablations.cfa_sweep, args=(workload,), rounds=1, iterations=1)
    publish("ablation_cfa_sweep", ablations.render(points, "Ablation: CFA size sweep (32KB, ops)"))
    # some CFA beats no CFA on miss rate, demonstrating the mechanism
    by_label = {p.label: p for p in points}
    assert min(p.miss_rate for p in points) <= by_label["32/0"].miss_rate + 1e-9


def test_bench_threshold_sweep(benchmark, workload, publish):
    points = benchmark.pedantic(
        ablations.threshold_sweep, args=(workload,), rounds=1, iterations=1
    )
    publish(
        "ablation_thresholds", ablations.render(points, "Ablation: threshold sensitivity (32/16, ops)")
    )
    # an extreme branch threshold hurts sequentiality vs the default
    by_label = {p.label: p for p in points}
    assert by_label["branch=0.6"].run_length <= by_label["branch=0.08"].run_length + 1e-9


def test_bench_seed_selection(benchmark, workload, publish):
    points = benchmark.pedantic(
        ablations.seed_comparison, args=(workload,), rounds=1, iterations=1
    )
    publish("ablation_seeds", ablations.render(points, "Ablation: seed selection (32/16)"))
    assert len(points) == 2
    for p in points:
        assert p.ipc > 0
