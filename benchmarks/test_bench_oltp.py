"""Extension bench: OLTP transaction mix and profile cross-training
(paper Section 8 future work)."""

import pytest

from repro.experiments import oltp as oltp_exp
from repro.kernel import ColdCodeConfig
from repro.oltp.workload import OLTPWorkload


@pytest.fixture(scope="module")
def oltp_workload(request):
    return OLTPWorkload.build(dss_scale=0.001, warehouses=2, n_transactions=200)


def test_bench_oltp_cross_training(benchmark, oltp_workload, publish):
    rows = benchmark.pedantic(oltp_exp.compute, args=(oltp_workload,), rounds=1, iterations=1)
    publish("oltp_cross_training", oltp_exp.render(rows))
    by_name = {r[0]: r for r in rows}
    # self-trained layout clearly beats the original code on its own workload
    assert by_name["oltp-trained"][1] < 0.8 * by_name["orig"][1]
    assert by_name["oltp-trained"][2] > by_name["orig"][2]
    # the DSS profile misses OLTP's write paths: the transfer is weaker
    assert by_name["oltp-trained"][1] <= by_name["dss-trained"][1]
