"""Regenerates paper Figure 3 (the trace-building worked example)."""

from repro.experiments import figure3


def test_bench_figure3(benchmark, publish):
    sequences, discarded = benchmark.pedantic(figure3.compute, rounds=1, iterations=1)
    publish("figure3", figure3.render((sequences, discarded)))
    assert sequences[0] == ["A1", "A2", "A3", "A4", "C1", "C2", "C3", "C4", "A7", "A8"]
    assert sequences[1] == ["A5"]
    assert set(discarded) == {"A6", "B1", "C5"}
