"""Regenerates paper Table 2 (block-kind mix and determinism)."""

from repro.cfg import BlockKind
from repro.experiments import table2


def test_bench_table2(benchmark, workload, publish):
    mix, determinism = benchmark.pedantic(table2.compute, args=(workload,), rounds=1, iterations=1)
    publish("table2", table2.render((mix, determinism)))
    # shares sum to one in both views
    assert abs(sum(mix.static.values()) - 1.0) < 1e-9
    assert abs(sum(mix.dynamic.values()) - 1.0) < 1e-9
    # calls and returns balance dynamically (top-level invocations emit a
    # return with no instrumented caller, so a tiny excess of returns is
    # expected) and both are fully predictable
    assert abs(mix.dynamic[BlockKind.CALL] - mix.dynamic[BlockKind.RETURN]) < 1e-3
    assert mix.predictable[BlockKind.FALL_THROUGH] == 1.0
    # the paper's punchline: ~80% of transitions are predictable, branches are not
    assert 0.6 < mix.overall_predictable < 0.95
    assert mix.predictable[BlockKind.BRANCH] < 0.9
