"""Regenerates the paper's Section 8 headline claims."""

from repro.experiments import headline
from repro.experiments.config import CACHE_CFA_GRID


def test_bench_headline(benchmark, workload, publish):
    rows = benchmark.pedantic(
        headline.compute, args=(workload, CACHE_CFA_GRID), rounds=1, iterations=1
    )
    publish("headline", headline.render(rows))

    # run-length roughly doubles (paper: 8.9 -> 22.4)
    orig_run = rows["instructions between taken branches (orig)"][0]
    ops_run = rows["instructions between taken branches (ops)"][0]
    assert ops_run > 1.6 * orig_run
    # the ops layout outperforms the original code at 64 KB
    assert rows["fetch bandwidth 64KB ops"][0] > rows["fetch bandwidth 64KB orig"][0]
    # software + hardware trace caches beat the trace cache alone
    assert rows["trace cache + ops"][0] > rows["trace cache alone"][0]
    # substantial miss reduction at every realistic size
    reductions = [v for k, (v, _p) in rows.items() if k.startswith("miss reduction")]
    assert all(r > 10.0 for r in reductions)
