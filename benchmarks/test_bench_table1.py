"""Regenerates paper Table 1 (static vs executed program elements)."""

from repro.experiments import table1


def test_bench_table1(benchmark, workload, publish):
    rows = benchmark.pedantic(table1.compute, args=(workload,), rounds=1, iterations=1)
    publish("table1", table1.render(rows))
    # sanity on the paper's qualitative claim: most of the binary never runs
    for element, (_total, _executed, pct) in rows.items():
        assert pct < 50.0, f"{element}: executed fraction should be well below half"
