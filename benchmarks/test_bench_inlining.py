"""Extension bench: profile-guided function cloning (paper Section 8:
"code expanding techniques ... can increase the potential fetch bandwidth
... while keeping the miss rate under control")."""

from repro.experiments import inlining


def test_bench_inlining(benchmark, workload, publish):
    rows, n_clones = benchmark.pedantic(
        inlining.compute, args=(workload,), rounds=1, iterations=1
    )
    publish("inlining", inlining.render((rows, n_clones)))
    base, cloned = rows
    assert n_clones > 0
    # replication grows the static image ...
    assert cloned[1] > base[1]
    # ... and raises the *potential* (ideal) fetch bandwidth
    assert cloned[4] >= base[4] - 0.05
