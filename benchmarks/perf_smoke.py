"""Performance smoke benchmark: suite wall-clock and simulator throughput.

Runs the evaluation suite once (uncached), once again resuming from the
per-task checkpoints the first run wrote (the warm-resume path a crashed
run takes), plus the individual simulator hot paths on a small workload,
and records the numbers — including the run's cache hit/miss counters,
the on-disk trace-format footprint/decode throughput, and the process's
peak RSS — to ``BENCH_suite.json`` at the repo root so regressions show
up in review.

Run: ``PYTHONPATH=src python benchmarks/perf_smoke.py [--scale 0.001] [--jobs N]``
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import resource
import time

from repro.cache import default_cache
from repro.experiments.config import KB, PRIMARY_ROWS
from repro.experiments.harness import get_workload, layouts_for, resolve_jobs
from repro.experiments.suite import compute_suite
from repro.profiling import TraceStore
from repro.simulators import sharded as sharded_mod
from repro.simulators import (
    CacheConfig,
    FetchStream,
    TraceCacheStream,
    miss_counter,
    run_fused,
)
from repro.tpcd.workload import WorkloadSettings

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _peak_rss_mb() -> float:
    """Lifetime peak resident set of this process, in MB."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


class _TimedFeed:
    """Wrap a miss counter, accounting its feed() time and line count.

    Lets one streaming pass report the fetch unit and the i-cache model
    separately without ever materializing the full line stream (which at
    SF 0.01 would be gigabytes — exactly what the pipeline avoids).
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.seconds = 0.0
        self.n_lines = 0

    def feed(self, lines) -> None:
        t0 = time.perf_counter()
        self.inner.feed(lines)
        self.seconds += time.perf_counter() - t0
        self.n_lines += int(lines.size)


def _trace_format_stats(trace, n_instructions: int) -> dict | None:
    """On-disk footprint and streaming decode throughput of a stored trace."""
    if not isinstance(trace, TraceStore):
        return None
    stats = trace.stats()
    t0 = time.perf_counter()
    for _window, _nxt in trace.iter_events():
        pass
    decode_s = time.perf_counter() - t0
    return {
        "bytes": stats["bytes"],
        "raw_bytes": stats["raw_bytes"],
        "compression_ratio": round(stats["compression_ratio"], 3),
        "n_chunks": stats["n_chunks"],
        "chunk_events": stats["chunk_events"],
        "decode_seconds": round(decode_s, 3),
        "decode_minstr_per_s": round(n_instructions / decode_s / 1e6, 3) if decode_s else 0.0,
    }


def _suite_fingerprint(suite) -> tuple:
    """Every number a suite run produces, in a comparable shape."""
    cells = tuple(
        (row, name, dataclasses.astuple(m))
        for row, cs in sorted(suite.cells.items())
        for name, m in sorted(cs.items())
    )
    return (
        suite.n_instructions,
        cells,
        tuple(sorted(suite.assoc_miss.items())),
        tuple(sorted(suite.victim_miss.items())),
        suite.tc_ideal,
        suite.tc_hit_rate,
        tuple(sorted(suite.tc_ipc.items())),
        tuple(sorted(suite.tc_ops_ipc.items())),
    )


def _lane_makespan(durations: list[float], lanes: int) -> float:
    """Greedy longest-first schedule of independent items onto ``lanes``."""
    load = [0.0] * max(1, lanes)
    for d in sorted(durations, reverse=True):
        load[load.index(min(load))] += d
    return max(load)


def _measure_sharded(workload, grid, serial_suite, serial_seconds, shards, jobs) -> dict:
    """One cold sharded suite pass, instrumented per shard job.

    This box may have fewer cores than ``jobs``, so alongside the
    measured wall clock the record carries a *modeled* ``jobs``-lane
    makespan built from the measured per-job durations (family shard
    jobs are independent; each relay chain is one serial item), i.e. the
    speedup the same shard plan yields once every lane is a real core.
    """
    cache = default_cache()
    cache.clear("suite-task")
    cache.clear("suite-shard")
    job_seconds: list[tuple[str, float]] = []
    real_family, real_relay = sharded_mod._family_shard, sharded_mod._relay_shard

    def timed_family(trace, program, layouts, chunk_events, plan, specs, shard_idx):
        t0 = time.perf_counter()
        out = real_family(trace, program, layouts, chunk_events, plan, specs, shard_idx)
        job_seconds.append((f"family:{shard_idx}", time.perf_counter() - t0))
        return out

    def timed_relay(trace, program, layouts, chunk_events, plan, spec, shard_idx, state):
        t0 = time.perf_counter()
        out = real_relay(trace, program, layouts, chunk_events, plan, spec, shard_idx, state)
        job_seconds.append((f"chain:{hash(spec) & 0xFFFF:04x}", time.perf_counter() - t0))
        return out

    sharded_mod._family_shard = timed_family
    sharded_mod._relay_shard = timed_relay
    try:
        t0 = time.perf_counter()
        suite = compute_suite(workload, grid, progress=True, jobs=1, shards=shards)
        sharded_s = time.perf_counter() - t0
    finally:
        sharded_mod._family_shard = real_family
        sharded_mod._relay_shard = real_relay

    # family jobs parallelize freely; a relay chain is one serial item
    chains: dict[str, float] = {}
    items: list[float] = []
    for key, seconds in job_seconds:
        if key.startswith("chain:"):
            chains[key] = chains.get(key, 0.0) + seconds
        else:
            items.append(seconds)
    items.extend(chains.values())
    busy = sum(seconds for _, seconds in job_seconds)
    overhead = max(sharded_s - busy, 0.0)  # reconciliation + plumbing
    lanes = max(jobs, 4)
    makespan = _lane_makespan(items, lanes) + overhead
    return {
        "shards": shards,
        "n_jobs": len(job_seconds),
        "suite_seconds": round(sharded_s, 3),
        "serial_suite_seconds": round(serial_seconds, 3),
        "speedup_measured_1cpu": round(serial_seconds / sharded_s, 3) if sharded_s else 0.0,
        "job_busy_seconds": round(busy, 3),
        "reconcile_overhead_seconds": round(overhead, 3),
        "modeled_lanes": lanes,
        "modeled_makespan_seconds": round(makespan, 3),
        "speedup_modeled": round(serial_seconds / makespan, 3) if makespan else 0.0,
        "identical_to_serial": _suite_fingerprint(suite) == _suite_fingerprint(serial_suite),
        "shard_job_seconds": [[k, round(v, 3)] for k, v in job_seconds],
    }


def _measure(scale: float, jobs: int, shards: int | None = None) -> dict:
    """One full measurement pass at ``scale``: suite, resume, hot paths."""
    t0 = time.perf_counter()
    workload = get_workload(WorkloadSettings(scale=scale))
    workload_s = time.perf_counter() - t0

    grid = PRIMARY_ROWS
    cache = default_cache()
    cache.clear("suite-task")  # make the first suite run genuinely cold
    stats0 = cache.stats.snapshot()
    t0 = time.perf_counter()
    suite = compute_suite(workload, grid, progress=True, jobs=jobs)
    suite_s = time.perf_counter() - t0

    # warm resume: every task checkpointed above, so this is load + assembly
    t0 = time.perf_counter()
    compute_suite(workload, grid, jobs=jobs)
    resume_s = time.perf_counter() - t0
    cache_delta = cache.stats.delta(stats0)

    sharded = (
        _measure_sharded(workload, grid, suite, suite_s, shards, jobs)
        if shards is not None and shards > 1
        else None
    )

    # one streaming pass measures the fetch unit and the i-cache model
    # separately (the counter's feed time is accounted by the shim); no
    # full-trace line stream is ever held in memory
    layout = layouts_for(workload, grid[0][0], grid[0][1], names=("orig",))["orig"]
    timed = _TimedFeed(miss_counter(CacheConfig(size_bytes=grid[0][0] * KB)))
    fetch = FetchStream(layout.name, consumers=[timed])
    t0 = time.perf_counter()
    run_fused(workload.test_trace, workload.program, [(layout, fetch)])
    fetch_s = time.perf_counter() - t0 - timed.seconds
    icache_s = timed.seconds
    n_lines = timed.n_lines
    n_instructions = fetch.n_instructions

    tc_stream = TraceCacheStream(layout.name)
    t0 = time.perf_counter()
    run_fused(workload.test_trace, workload.program, [(layout, tc_stream)])
    tc_s = time.perf_counter() - t0

    return {
        "scale": scale,
        "jobs": jobs,
        "grid_rows": len(grid),
        "n_instructions": n_instructions,
        "workload_seconds": round(workload_s, 3),
        "suite_seconds": round(suite_s, 3),
        "suite_resume_seconds": round(resume_s, 3),
        "cache_stats": cache_delta,
        "fetch_seconds": round(fetch_s, 3),
        "fetch_minstr_per_s": round(n_instructions / fetch_s / 1e6, 3),
        "icache_seconds": round(icache_s, 3),
        "icache_mlines_per_s": round(n_lines / icache_s / 1e6, 3),
        "trace_cache_seconds": round(tc_s, 3),
        "trace_cache_minstr_per_s": round(n_instructions / tc_s / 1e6, 3),
        "suite_n_instructions": suite.n_instructions,
        "sharded": sharded,
        "trace_format": _trace_format_stats(workload.test_trace, n_instructions),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.001)
    parser.add_argument(
        "--scale-up",
        type=float,
        default=None,
        help="also measure at this larger scale; nested under 'scale_up'",
    )
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="also run one cold sharded suite pass (repro.simulators.sharded) "
        "at this shard count; nested under 'sharded'",
    )
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_suite.json"))
    args = parser.parse_args(argv)
    jobs = resolve_jobs(args.jobs)

    record = _measure(args.scale, jobs, args.shards)
    if args.scale_up is not None:
        record["scale_up"] = _measure(args.scale_up, jobs, args.shards)
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
