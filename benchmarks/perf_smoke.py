"""Performance smoke benchmark: suite wall-clock and simulator throughput.

Runs the evaluation suite once (uncached), once again resuming from the
per-task checkpoints the first run wrote (the warm-resume path a crashed
run takes), plus the individual simulator hot paths on a small workload,
and records the numbers — including the run's cache hit/miss counters,
the on-disk trace-format footprint/decode throughput, and the process's
peak RSS — to ``BENCH_suite.json`` at the repo root so regressions show
up in review.

Run: ``PYTHONPATH=src python benchmarks/perf_smoke.py [--scale 0.001] [--jobs N]``
"""

from __future__ import annotations

import argparse
import json
import pathlib
import resource
import time

from repro.cache import default_cache
from repro.experiments.config import KB, PRIMARY_ROWS
from repro.experiments.harness import get_workload, layouts_for, resolve_jobs
from repro.experiments.suite import compute_suite
from repro.profiling import TraceStore
from repro.simulators import (
    CacheConfig,
    FetchStream,
    TraceCacheStream,
    miss_counter,
    run_fused,
)
from repro.tpcd.workload import WorkloadSettings

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _peak_rss_mb() -> float:
    """Lifetime peak resident set of this process, in MB."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


class _TimedFeed:
    """Wrap a miss counter, accounting its feed() time and line count.

    Lets one streaming pass report the fetch unit and the i-cache model
    separately without ever materializing the full line stream (which at
    SF 0.01 would be gigabytes — exactly what the pipeline avoids).
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.seconds = 0.0
        self.n_lines = 0

    def feed(self, lines) -> None:
        t0 = time.perf_counter()
        self.inner.feed(lines)
        self.seconds += time.perf_counter() - t0
        self.n_lines += int(lines.size)


def _trace_format_stats(trace, n_instructions: int) -> dict | None:
    """On-disk footprint and streaming decode throughput of a stored trace."""
    if not isinstance(trace, TraceStore):
        return None
    stats = trace.stats()
    t0 = time.perf_counter()
    for _window, _nxt in trace.iter_events():
        pass
    decode_s = time.perf_counter() - t0
    return {
        "bytes": stats["bytes"],
        "raw_bytes": stats["raw_bytes"],
        "compression_ratio": round(stats["compression_ratio"], 3),
        "n_chunks": stats["n_chunks"],
        "chunk_events": stats["chunk_events"],
        "decode_seconds": round(decode_s, 3),
        "decode_minstr_per_s": round(n_instructions / decode_s / 1e6, 3) if decode_s else 0.0,
    }


def _measure(scale: float, jobs: int) -> dict:
    """One full measurement pass at ``scale``: suite, resume, hot paths."""
    t0 = time.perf_counter()
    workload = get_workload(WorkloadSettings(scale=scale))
    workload_s = time.perf_counter() - t0

    grid = PRIMARY_ROWS
    cache = default_cache()
    cache.clear("suite-task")  # make the first suite run genuinely cold
    stats0 = cache.stats.snapshot()
    t0 = time.perf_counter()
    suite = compute_suite(workload, grid, progress=True, jobs=jobs)
    suite_s = time.perf_counter() - t0

    # warm resume: every task checkpointed above, so this is load + assembly
    t0 = time.perf_counter()
    compute_suite(workload, grid, jobs=jobs)
    resume_s = time.perf_counter() - t0
    cache_delta = cache.stats.delta(stats0)

    # one streaming pass measures the fetch unit and the i-cache model
    # separately (the counter's feed time is accounted by the shim); no
    # full-trace line stream is ever held in memory
    layout = layouts_for(workload, grid[0][0], grid[0][1], names=("orig",))["orig"]
    timed = _TimedFeed(miss_counter(CacheConfig(size_bytes=grid[0][0] * KB)))
    fetch = FetchStream(layout.name, consumers=[timed])
    t0 = time.perf_counter()
    run_fused(workload.test_trace, workload.program, [(layout, fetch)])
    fetch_s = time.perf_counter() - t0 - timed.seconds
    icache_s = timed.seconds
    n_lines = timed.n_lines
    n_instructions = fetch.n_instructions

    tc_stream = TraceCacheStream(layout.name)
    t0 = time.perf_counter()
    run_fused(workload.test_trace, workload.program, [(layout, tc_stream)])
    tc_s = time.perf_counter() - t0

    return {
        "scale": scale,
        "jobs": jobs,
        "grid_rows": len(grid),
        "n_instructions": n_instructions,
        "workload_seconds": round(workload_s, 3),
        "suite_seconds": round(suite_s, 3),
        "suite_resume_seconds": round(resume_s, 3),
        "cache_stats": cache_delta,
        "fetch_seconds": round(fetch_s, 3),
        "fetch_minstr_per_s": round(n_instructions / fetch_s / 1e6, 3),
        "icache_seconds": round(icache_s, 3),
        "icache_mlines_per_s": round(n_lines / icache_s / 1e6, 3),
        "trace_cache_seconds": round(tc_s, 3),
        "trace_cache_minstr_per_s": round(n_instructions / tc_s / 1e6, 3),
        "suite_n_instructions": suite.n_instructions,
        "trace_format": _trace_format_stats(workload.test_trace, n_instructions),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.001)
    parser.add_argument(
        "--scale-up",
        type=float,
        default=None,
        help="also measure at this larger scale; nested under 'scale_up'",
    )
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_suite.json"))
    args = parser.parse_args(argv)
    jobs = resolve_jobs(args.jobs)

    record = _measure(args.scale, jobs)
    if args.scale_up is not None:
        record["scale_up"] = _measure(args.scale_up, jobs)
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
