"""Performance smoke benchmark: suite wall-clock and simulator throughput.

Runs the evaluation suite once (uncached), once again resuming from the
per-task checkpoints the first run wrote (the warm-resume path a crashed
run takes), plus the individual simulator hot paths on a small workload,
and records the numbers — including the run's cache hit/miss counters —
to ``BENCH_suite.json`` at the repo root so regressions show up in review.

Run: ``PYTHONPATH=src python benchmarks/perf_smoke.py [--scale 0.001] [--jobs N]``
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.cache import default_cache
from repro.experiments.config import KB, PRIMARY_ROWS
from repro.experiments.harness import get_workload, layouts_for, resolve_jobs
from repro.experiments.suite import compute_suite
from repro.simulators import CacheConfig, count_misses, simulate_fetch, simulate_trace_cache
from repro.tpcd.workload import WorkloadSettings

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.001)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_suite.json"))
    args = parser.parse_args(argv)
    jobs = resolve_jobs(args.jobs)

    t0 = time.perf_counter()
    workload = get_workload(WorkloadSettings(scale=args.scale))
    workload_s = time.perf_counter() - t0

    grid = PRIMARY_ROWS
    cache = default_cache()
    cache.clear("suite-task")  # make the first suite run genuinely cold
    stats0 = cache.stats.snapshot()
    t0 = time.perf_counter()
    suite = compute_suite(workload, grid, progress=True, jobs=jobs)
    suite_s = time.perf_counter() - t0

    # warm resume: every task checkpointed above, so this is load + assembly
    t0 = time.perf_counter()
    compute_suite(workload, grid, jobs=jobs)
    resume_s = time.perf_counter() - t0
    cache_delta = cache.stats.delta(stats0)

    layout = layouts_for(workload, grid[0][0], grid[0][1], names=("orig",))["orig"]
    t0 = time.perf_counter()
    fr = simulate_fetch(workload.test_trace, workload.program, layout)
    fetch_s = time.perf_counter() - t0

    n_lines = sum(int(c.size) for c in fr.line_chunks)
    t0 = time.perf_counter()
    count_misses(fr.line_chunks, CacheConfig(size_bytes=grid[0][0] * KB))
    icache_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    simulate_trace_cache(workload.test_trace, workload.program, layout)
    tc_s = time.perf_counter() - t0

    record = {
        "scale": args.scale,
        "jobs": jobs,
        "grid_rows": len(grid),
        "n_instructions": fr.n_instructions,
        "workload_seconds": round(workload_s, 3),
        "suite_seconds": round(suite_s, 3),
        "suite_resume_seconds": round(resume_s, 3),
        "cache_stats": cache_delta,
        "fetch_seconds": round(fetch_s, 3),
        "fetch_minstr_per_s": round(fr.n_instructions / fetch_s / 1e6, 3),
        "icache_seconds": round(icache_s, 3),
        "icache_mlines_per_s": round(n_lines / icache_s / 1e6, 3),
        "trace_cache_seconds": round(tc_s, 3),
        "trace_cache_minstr_per_s": round(fr.n_instructions / tc_s / 1e6, 3),
        "suite_n_instructions": suite.n_instructions,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
