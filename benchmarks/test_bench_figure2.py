"""Regenerates paper Figure 2 (reference concentration) and the Section 4.1
temporal-locality claims."""

from repro.experiments import figure2


def test_bench_figure2(benchmark, workload, publish):
    data = benchmark.pedantic(figure2.compute, args=(workload,), rounds=1, iterations=1)
    publish("figure2", figure2.render(data))
    # concentration: the hottest blocks capture most references
    fractions = dict(data.curve_samples)
    assert fractions[1000] > 0.85
    assert data.blocks_for_90 <= 1500
    # temporal locality: popular blocks re-execute within a few hundred instructions
    assert data.reuse_within_250 > 0.10
    assert data.reuse_within_100 <= data.reuse_within_250
