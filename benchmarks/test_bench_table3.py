"""Regenerates paper Table 3 (i-cache miss rate per layout/cache/CFA)."""

from repro.experiments import table3
from repro.experiments.config import CACHE_CFA_GRID, PRIMARY_ROWS
from repro.experiments.suite import get_suite


def test_bench_table3(benchmark, workload, publish):
    suite = benchmark.pedantic(
        get_suite, args=(workload, CACHE_CFA_GRID), rounds=1, iterations=1
    )
    publish("table3", table3.render(suite, CACHE_CFA_GRID))

    # shape assertions mirroring the paper's findings
    for row in PRIMARY_ROWS:
        cells = suite.cells[row]
        orig = cells["orig"].miss_rate
        # every profile-guided layout clearly beats the original code
        for name in ("P&H", "Torr", "auto"):
            assert cells[name].miss_rate < 0.75 * orig, (row, name)
        # miss rate shrinks with cache size for every layout
    sizes = [row for row in PRIMARY_ROWS]
    for name in ("orig", "P&H", "Torr", "auto", "ops"):
        rates = [suite.cells[row][name].miss_rate for row in sizes]
        assert rates == sorted(rates, reverse=True), name
    # software layouts beat the hardware-only fixes (2-way, victim), as in
    # the paper's conclusion for realistic sizes
    for row in PRIMARY_ROWS:
        best_layout = min(suite.cells[row][n].miss_rate for n in ("Torr", "auto", "ops"))
        assert best_layout < suite.victim_miss[row[0]]
