"""Benchmark fixtures: one shared workload build per session.

The benchmarks regenerate every table and figure of the paper at a reduced
scale factor (override with ``--repro-scale``). Rendered tables are printed
and also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.harness import WorkloadSettings, get_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        type=float,
        default=0.001,
        help="TPC-D scale factor for benchmark workloads (default 0.001)",
    )


@pytest.fixture(scope="session")
def workload(request):
    scale = request.config.getoption("--repro-scale")
    return get_workload(WorkloadSettings(scale=scale))


@pytest.fixture(scope="session")
def publish():
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _publish(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _publish
